// Recursive-descent parser for the supported SQL subset.

#ifndef VDB_SQL_PARSER_H_
#define VDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "util/result.h"

namespace vdb::sql {

/// Parses one SELECT statement (optionally `;`-terminated).
///
/// Supported dialect: SELECT [DISTINCT] list FROM tables/joins/subqueries
/// [WHERE] [GROUP BY] [HAVING] [ORDER BY ... ASC|DESC] [LIMIT n], with
/// scalar expressions, the five SQL aggregates (incl. COUNT(*) and
/// COUNT(DISTINCT x)), BETWEEN, IN (list), LIKE, IS [NOT] NULL,
/// [NOT] EXISTS (correlated subqueries), CASE WHEN, and DATE 'YYYY-MM-DD'
/// literals.
Result<std::unique_ptr<SelectStatement>> ParseSelect(
    const std::string& sql);

namespace internal {

/// Recursive-descent parser over a token stream. Exposed for testing.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement();

 private:
  const Token& Peek(size_t offset = 0) const;
  const Token& Advance();
  bool MatchKeyword(const char* kw);
  bool MatchOperator(const char* op);
  bool Match(TokenType type);
  Status ExpectKeyword(const char* kw);
  Status Expect(TokenType type, const char* what);
  Status ErrorHere(const std::string& message) const;

  Result<std::unique_ptr<SelectStatement>> ParseSelectBody();
  Result<SelectItem> ParseSelectItem();
  Result<FromItem> ParseFromItem(bool first);
  Result<TableRef> ParseTableRef();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall(const std::string& name);
  Result<ExprPtr> ParseCase();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace internal
}  // namespace vdb::sql

#endif  // VDB_SQL_PARSER_H_
