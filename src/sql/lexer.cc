#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace vdb::sql {

namespace {

constexpr std::array<const char*, 38> kKeywords = {
    "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",      "HAVING", "ORDER",
    "LIMIT",  "AS",     "AND",    "OR",     "NOT",     "IN",     "EXISTS",
    "BETWEEN", "LIKE",  "IS",     "NULL",   "JOIN",    "INNER",  "LEFT",
    "OUTER",  "ON",     "ASC",    "DESC",   "DISTINCT", "CASE",  "WHEN",
    "THEN",   "ELSE",   "END",    "DATE",   "TRUE",    "FALSE",  "COUNT",
    "SUM",    "AVG",    "CROSS"};

}  // namespace

bool IsReservedKeyword(const std::string& upper_word) {
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t offset = 0) -> char {
    return i + offset < n ? input[i + offset] : '\0';
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      const std::string word = input.substr(start, i - start);
      const std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = ToLower(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      const std::string number = input.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::strtod(number.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::strtoll(number.c_str(), nullptr, 10);
      }
      token.text = number;
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = value;
    } else {
      switch (c) {
        case '(':
          token.type = TokenType::kLeftParen;
          ++i;
          break;
        case ')':
          token.type = TokenType::kRightParen;
          ++i;
          break;
        case ',':
          token.type = TokenType::kComma;
          ++i;
          break;
        case '.':
          token.type = TokenType::kDot;
          ++i;
          break;
        case ';':
          token.type = TokenType::kSemicolon;
          ++i;
          break;
        case '<':
          token.type = TokenType::kOperator;
          if (peek(1) == '=') {
            token.text = "<=";
            i += 2;
          } else if (peek(1) == '>') {
            token.text = "<>";
            i += 2;
          } else {
            token.text = "<";
            ++i;
          }
          break;
        case '>':
          token.type = TokenType::kOperator;
          if (peek(1) == '=') {
            token.text = ">=";
            i += 2;
          } else {
            token.text = ">";
            ++i;
          }
          break;
        case '!':
          if (peek(1) != '=') {
            return Status::InvalidArgument("unexpected '!' at offset " +
                                           std::to_string(i));
          }
          token.type = TokenType::kOperator;
          token.text = "<>";
          i += 2;
          break;
        case '=':
        case '+':
        case '-':
        case '*':
        case '/':
        case '%':
          token.type = TokenType::kOperator;
          token.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace vdb::sql
