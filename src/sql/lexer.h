// The SQL tokenizer.

#ifndef VDB_SQL_LEXER_H_
#define VDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace vdb::sql {

enum class TokenType {
  kIdentifier,   // table, column, alias names (case-insensitive)
  kKeyword,      // SELECT, FROM, ... (normalized to upper case)
  kInteger,      // 123
  kFloat,        // 1.5
  kString,       // 'text' (with '' escaping)
  kOperator,     // = <> != < <= > >= + - * / %
  kLeftParen,
  kRightParen,
  kComma,
  kDot,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // keyword/operator text (upper for keywords)
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// Tokenizes a SQL string. Fails with InvalidArgument on unterminated
/// strings or unexpected characters. The trailing token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (upper-cased) is a reserved SQL keyword in this dialect.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace vdb::sql

#endif  // VDB_SQL_LEXER_H_
