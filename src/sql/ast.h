// Parsed (unresolved) SQL AST nodes.

#ifndef VDB_SQL_AST_H_
#define VDB_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/value.h"

namespace vdb::sql {

struct SelectStatement;

/// Kinds of expression AST nodes.
enum class ExprType {
  kLiteral,
  kColumnRef,
  kStar,
  kUnary,
  kBinary,
  kFunctionCall,
  kBetween,
  kInList,
  kInSubquery,
  kScalarSubquery,
  kLike,
  kIsNull,
  kExists,
  kCase,
};

/// Base class for parsed (unresolved) expressions.
struct Expr {
  explicit Expr(ExprType expr_type) : type(expr_type) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Renders the expression as SQL-ish text (for errors and EXPLAIN).
  virtual std::string ToString() const = 0;

  const ExprType type;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(catalog::Value v)
      : Expr(ExprType::kLiteral), value(std::move(v)) {}
  std::string ToString() const override;
  catalog::Value value;
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string table_name, std::string column_name)
      : Expr(ExprType::kColumnRef),
        table(std::move(table_name)),
        column(std::move(column_name)) {}
  std::string ToString() const override;
  std::string table;  // empty if unqualified
  std::string column;
};

/// `*` — only valid in `SELECT *` and `COUNT(*)`.
struct StarExpr : Expr {
  StarExpr() : Expr(ExprType::kStar) {}
  std::string ToString() const override { return "*"; }
};

enum class UnaryOp { kNegate, kNot };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp unary_op, ExprPtr operand_expr)
      : Expr(ExprType::kUnary),
        op(unary_op),
        operand(std::move(operand_expr)) {}
  std::string ToString() const override;
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp binary_op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprType::kBinary),
        op(binary_op),
        left(std::move(lhs)),
        right(std::move(rhs)) {}
  std::string ToString() const override;
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// Function call; in this dialect functions are the five SQL aggregates.
struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string function_name, std::vector<ExprPtr> arguments,
                   bool star_arg, bool is_distinct)
      : Expr(ExprType::kFunctionCall),
        name(std::move(function_name)),
        args(std::move(arguments)),
        star(star_arg),
        distinct(is_distinct) {}
  std::string ToString() const override;
  std::string name;  // lower-case: count, sum, avg, min, max
  std::vector<ExprPtr> args;
  bool star;      // COUNT(*)
  bool distinct;  // COUNT(DISTINCT x)
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr value_expr, ExprPtr low_expr, ExprPtr high_expr,
              bool is_negated)
      : Expr(ExprType::kBetween),
        value(std::move(value_expr)),
        low(std::move(low_expr)),
        high(std::move(high_expr)),
        negated(is_negated) {}
  std::string ToString() const override;
  ExprPtr value;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr value_expr, std::vector<ExprPtr> list_exprs,
             bool is_negated)
      : Expr(ExprType::kInList),
        value(std::move(value_expr)),
        list(std::move(list_exprs)),
        negated(is_negated) {}
  std::string ToString() const override;
  ExprPtr value;
  std::vector<ExprPtr> list;
  bool negated;
};

/// `value [NOT] IN (SELECT ...)`. The subquery must produce one column.
struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr value_expr,
                 std::unique_ptr<SelectStatement> select, bool is_negated)
      : Expr(ExprType::kInSubquery),
        value(std::move(value_expr)),
        subquery(std::move(select)),
        negated(is_negated) {}
  ~InSubqueryExpr() override;
  std::string ToString() const override;
  ExprPtr value;
  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

/// `(SELECT <single aggregate> FROM ...)` used as a scalar value. Only
/// guaranteed-single-row subqueries (a global aggregate without GROUP BY)
/// are accepted by the planner.
struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectStatement> select)
      : Expr(ExprType::kScalarSubquery), subquery(std::move(select)) {}
  ~ScalarSubqueryExpr() override;
  std::string ToString() const override;
  std::unique_ptr<SelectStatement> subquery;
};

struct LikeExpr : Expr {
  LikeExpr(ExprPtr value_expr, std::string like_pattern, bool is_negated)
      : Expr(ExprType::kLike),
        value(std::move(value_expr)),
        pattern(std::move(like_pattern)),
        negated(is_negated) {}
  std::string ToString() const override;
  ExprPtr value;
  std::string pattern;
  bool negated;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr value_expr, bool is_negated)
      : Expr(ExprType::kIsNull),
        value(std::move(value_expr)),
        negated(is_negated) {}
  std::string ToString() const override;
  ExprPtr value;
  bool negated;
};

struct ExistsExpr : Expr {
  ExistsExpr(std::unique_ptr<SelectStatement> select, bool is_negated)
      : Expr(ExprType::kExists),
        subquery(std::move(select)),
        negated(is_negated) {}
  ~ExistsExpr() override;
  std::string ToString() const override;
  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

struct CaseExpr : Expr {
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
           ExprPtr else_expr)
      : Expr(ExprType::kCase),
        branches(std::move(when_then)),
        else_result(std::move(else_expr)) {}
  std::string ToString() const override;
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  ExprPtr else_result;  // may be null (NULL default)
};

/// A table reference in FROM: a base table or a parenthesized subquery,
/// optionally aliased, optionally with a column alias list.
struct TableRef {
  enum class Kind { kBaseTable, kSubquery };
  Kind kind = Kind::kBaseTable;
  std::string name;   // base table name
  std::string alias;  // empty -> use table name
  std::vector<std::string> column_aliases;  // "as t (a, b)" form
  std::unique_ptr<SelectStatement> subquery;
};

enum class JoinType { kCross, kInner, kLeft };

/// One FROM element: the first has join_type kCross and no condition;
/// later ones are combined with the running result.
struct FromItem {
  TableRef table;
  JoinType join_type = JoinType::kCross;
  ExprPtr join_condition;  // null for comma/cross join
};

struct SelectItem {
  ExprPtr expr;  // StarExpr for `SELECT *`
  std::string alias;
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;   // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // -1 = no limit
  bool distinct = false;

  std::string ToString() const;
};

}  // namespace vdb::sql

#endif  // VDB_SQL_AST_H_
