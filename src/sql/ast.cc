#include "sql/ast.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vdb::sql {

namespace {

/// Renders a double so that re-parsing yields the same bits. The lexer has
/// no exponent syntax, so the result must be plain decimal: try the
/// shortest %g form that round-trips without an exponent, then fall back
/// to fixed-point with enough digits.
std::string FormatDoubleLiteral(double value) {
  char buf[512];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strchr(buf, 'e') != nullptr ||
        std::strchr(buf, 'E') != nullptr) {
      break;
    }
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  for (int precision = 17; precision <= 340; precision += 17) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  return buf;
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

ExistsExpr::~ExistsExpr() = default;
InSubqueryExpr::~InSubqueryExpr() = default;
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

std::string LiteralExpr::ToString() const {
  if (!value.is_null() && value.type() == catalog::TypeId::kString) {
    return "'" + value.AsString() + "'";
  }
  if (!value.is_null() && value.type() == catalog::TypeId::kDouble) {
    return FormatDoubleLiteral(value.AsDouble());
  }
  return value.ToString();
}

std::string ColumnRefExpr::ToString() const {
  return table.empty() ? column : table + "." + column;
}

std::string UnaryExpr::ToString() const {
  return std::string(op == UnaryOp::kNegate ? "-" : "NOT ") + "(" +
         operand->ToString() + ")";
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpName(op) + " " +
         right->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string result = name + "(";
  if (distinct) result += "DISTINCT ";
  if (star) {
    result += "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) result += ", ";
      result += args[i]->ToString();
    }
  }
  return result + ")";
}

std::string BetweenExpr::ToString() const {
  return value->ToString() + (negated ? " NOT" : "") + " BETWEEN " +
         low->ToString() + " AND " + high->ToString();
}

std::string InListExpr::ToString() const {
  std::string result = value->ToString() + (negated ? " NOT" : "") + " IN (";
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) result += ", ";
    result += list[i]->ToString();
  }
  return result + ")";
}

std::string InSubqueryExpr::ToString() const {
  return value->ToString() + (negated ? " NOT" : "") + " IN (" +
         subquery->ToString() + ")";
}

std::string ScalarSubqueryExpr::ToString() const {
  return "(" + subquery->ToString() + ")";
}

std::string LikeExpr::ToString() const {
  return value->ToString() + (negated ? " NOT" : "") + " LIKE '" + pattern +
         "'";
}

std::string IsNullExpr::ToString() const {
  return value->ToString() + " IS " + (negated ? "NOT " : "") + "NULL";
}

std::string ExistsExpr::ToString() const {
  return std::string(negated ? "NOT " : "") + "EXISTS (" +
         subquery->ToString() + ")";
}

std::string CaseExpr::ToString() const {
  std::string result = "CASE";
  for (const auto& [when, then] : branches) {
    result += " WHEN " + when->ToString() + " THEN " + then->ToString();
  }
  if (else_result != nullptr) {
    result += " ELSE " + else_result->ToString();
  }
  return result + " END";
}

std::string SelectStatement::ToString() const {
  std::string result = "SELECT ";
  if (distinct) result += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) result += ", ";
    result += items[i].expr->ToString();
    if (!items[i].alias.empty()) result += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    result += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      const FromItem& item = from[i];
      if (i > 0) {
        switch (item.join_type) {
          case JoinType::kCross:
            result += ", ";
            break;
          case JoinType::kInner:
            result += " JOIN ";
            break;
          case JoinType::kLeft:
            result += " LEFT JOIN ";
            break;
        }
      }
      if (item.table.kind == TableRef::Kind::kSubquery) {
        result += "(" + item.table.subquery->ToString() + ")";
      } else {
        result += item.table.name;
      }
      if (!item.table.alias.empty() && item.table.alias != item.table.name) {
        result += " AS " + item.table.alias;
        if (!item.table.column_aliases.empty()) {
          result += " (";
          for (size_t c = 0; c < item.table.column_aliases.size(); ++c) {
            if (c > 0) result += ", ";
            result += item.table.column_aliases[c];
          }
          result += ")";
        }
      }
      if (item.join_condition != nullptr) {
        result += " ON " + item.join_condition->ToString();
      }
    }
  }
  if (where != nullptr) result += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    result += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) result += ", ";
      result += group_by[i]->ToString();
    }
  }
  if (having != nullptr) result += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    result += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) result += ", ";
      result += order_by[i].expr->ToString();
      if (!order_by[i].ascending) result += " DESC";
    }
  }
  if (limit >= 0) result += " LIMIT " + std::to_string(limit);
  return result;
}

}  // namespace vdb::sql
