#include "sql/parser.h"

#include "util/string_util.h"

namespace vdb::sql {

Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql) {
  VDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  internal::Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

namespace internal {

const Token& Parser::Peek(size_t offset) const {
  const size_t index = pos_ + offset;
  return index < tokens_.size() ? tokens_[index] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchOperator(const char* op) {
  if (Peek().IsOperator(op)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenType type) {
  if (Peek().type == type) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(std::string("expected ") + kw);
  }
  return Status::OK();
}

Status Parser::Expect(TokenType type, const char* what) {
  if (!Match(type)) {
    return ErrorHere(std::string("expected ") + what);
  }
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  return Status::InvalidArgument(
      message + " at offset " + std::to_string(token.position) + " (got '" +
      (token.type == TokenType::kEnd ? "<end>" : token.text) + "')");
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseStatement() {
  VDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> select,
                       ParseSelectBody());
  Match(TokenType::kSemicolon);
  if (Peek().type != TokenType::kEnd) {
    return ErrorHere("unexpected trailing input");
  }
  return select;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelectBody() {
  VDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto select = std::make_unique<SelectStatement>();
  select->distinct = MatchKeyword("DISTINCT");
  do {
    VDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    select->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  if (MatchKeyword("FROM")) {
    bool first = true;
    for (;;) {
      VDB_ASSIGN_OR_RETURN(FromItem item, ParseFromItem(first));
      select->from.push_back(std::move(item));
      first = false;
      // Another from element?
      const Token& next = Peek();
      if (next.type == TokenType::kComma || next.IsKeyword("JOIN") ||
          next.IsKeyword("INNER") || next.IsKeyword("LEFT") ||
          next.IsKeyword("CROSS")) {
        continue;
      }
      break;
    }
  }
  if (MatchKeyword("WHERE")) {
    VDB_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    VDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      VDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      select->group_by.push_back(std::move(expr));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    VDB_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    VDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      VDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger) {
      return ErrorHere("expected integer after LIMIT");
    }
    select->limit = Advance().int_value;
  }
  return select;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Peek().IsOperator("*")) {
    Advance();
    item.expr = std::make_unique<StarExpr>();
    return item;
  }
  VDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    item.alias = Advance().text;
  }
  return item;
}

Result<FromItem> Parser::ParseFromItem(bool first) {
  FromItem item;
  if (first) {
    item.join_type = JoinType::kCross;
  } else if (Match(TokenType::kComma)) {
    item.join_type = JoinType::kCross;
  } else if (MatchKeyword("CROSS")) {
    VDB_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    item.join_type = JoinType::kCross;
  } else if (MatchKeyword("LEFT")) {
    MatchKeyword("OUTER");
    VDB_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    item.join_type = JoinType::kLeft;
  } else {
    MatchKeyword("INNER");
    VDB_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    item.join_type = JoinType::kInner;
  }
  VDB_ASSIGN_OR_RETURN(item.table, ParseTableRef());
  if (!first && item.join_type != JoinType::kCross) {
    VDB_RETURN_NOT_OK(ExpectKeyword("ON"));
    VDB_ASSIGN_OR_RETURN(item.join_condition, ParseExpr());
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (Match(TokenType::kLeftParen)) {
    ref.kind = TableRef::Kind::kSubquery;
    VDB_ASSIGN_OR_RETURN(ref.subquery, ParseSelectBody());
    VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
  } else {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name");
    }
    ref.kind = TableRef::Kind::kBaseTable;
    ref.name = Advance().text;
    ref.alias = ref.name;
  }
  const bool saw_as = MatchKeyword("AS");
  if (saw_as || Peek().type == TokenType::kIdentifier) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias");
    }
    ref.alias = Advance().text;
    if (Match(TokenType::kLeftParen)) {
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column alias");
        }
        ref.column_aliases.push_back(Advance().text);
      } while (Match(TokenType::kComma));
      VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    }
  }
  if (ref.kind == TableRef::Kind::kSubquery && ref.alias.empty()) {
    return ErrorHere("subquery in FROM requires an alias");
  }
  return ref;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  VDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  VDB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  // EXISTS is a standalone predicate, not an operand.
  if (MatchKeyword("EXISTS")) {
    VDB_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
    VDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> subquery,
                         ParseSelectBody());
    VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<ExistsExpr>(std::move(subquery),
                                                /*is_negated=*/false));
  }
  VDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // Comparison operators.
  static constexpr struct {
    const char* text;
    BinaryOp op;
  } kComparisons[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                      {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                      {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const auto& cmp : kComparisons) {
    if (MatchOperator(cmp.text)) {
      VDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return ExprPtr(std::make_unique<BinaryExpr>(cmp.op, std::move(left),
                                                  std::move(right)));
    }
  }
  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
       Peek(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("BETWEEN")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    VDB_RETURN_NOT_OK(ExpectKeyword("AND"));
    VDB_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(low), std::move(high), negated));
  }
  if (MatchKeyword("IN")) {
    VDB_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
    if (Peek().IsKeyword("SELECT")) {
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> subquery,
                           ParseSelectBody());
      VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      return ExprPtr(std::make_unique<InSubqueryExpr>(
          std::move(left), std::move(subquery), negated));
    }
    std::vector<ExprPtr> list;
    do {
      VDB_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      list.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(left),
                                                std::move(list), negated));
  }
  if (MatchKeyword("LIKE")) {
    if (Peek().type != TokenType::kString) {
      return ErrorHere("expected string pattern after LIKE");
    }
    const std::string pattern = Advance().text;
    return ExprPtr(
        std::make_unique<LikeExpr>(std::move(left), pattern, negated));
  }
  if (negated) return ErrorHere("expected BETWEEN, IN, or LIKE after NOT");
  if (MatchKeyword("IS")) {
    const bool is_not = MatchKeyword("NOT");
    VDB_RETURN_NOT_OK(ExpectKeyword("NULL"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), is_not));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  VDB_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (MatchOperator("+")) {
      op = BinaryOp::kAdd;
    } else if (MatchOperator("-")) {
      op = BinaryOp::kSub;
    } else {
      return left;
    }
    VDB_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  VDB_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (MatchOperator("*")) {
      op = BinaryOp::kMul;
    } else if (MatchOperator("/")) {
      op = BinaryOp::kDiv;
    } else if (MatchOperator("%")) {
      op = BinaryOp::kMod;
    } else {
      return left;
    }
    VDB_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOperator("-")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.type) {
    case TokenType::kInteger:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(
          catalog::Value::Int64(token.int_value)));
    case TokenType::kFloat:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(
          catalog::Value::Double(token.float_value)));
    case TokenType::kString:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(
          catalog::Value::String(token.text)));
    case TokenType::kLeftParen: {
      Advance();
      if (Peek().IsKeyword("SELECT")) {
        VDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> subquery,
                             ParseSelectBody());
        VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
        return ExprPtr(
            std::make_unique<ScalarSubqueryExpr>(std::move(subquery)));
      }
      VDB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      return expr;
    }
    case TokenType::kKeyword: {
      if (token.text == "NULL") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(
            catalog::Value::Null(catalog::TypeId::kInt64)));
      }
      if (token.text == "TRUE" || token.text == "FALSE") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(
            catalog::Value::Bool(token.text == "TRUE")));
      }
      if (token.text == "DATE") {
        Advance();
        if (Peek().type != TokenType::kString) {
          return ErrorHere("expected date string after DATE");
        }
        VDB_ASSIGN_OR_RETURN(int64_t days,
                             catalog::ParseDate(Advance().text));
        return ExprPtr(std::make_unique<LiteralExpr>(
            catalog::Value::Date(days)));
      }
      if (token.text == "CASE") {
        Advance();
        return ParseCase();
      }
      if (token.text == "COUNT" || token.text == "SUM" ||
          token.text == "AVG") {
        const std::string name = ToLower(token.text);
        Advance();
        return ParseFunctionCall(name);
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      const std::string name = token.text;
      Advance();
      if (Peek().type == TokenType::kLeftParen) {
        return ParseFunctionCall(name);
      }
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column name after '.'");
        }
        const std::string column = Advance().text;
        return ExprPtr(std::make_unique<ColumnRefExpr>(name, column));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", name));
    }
    default:
      return ErrorHere("unexpected token in expression");
  }
}

Result<ExprPtr> Parser::ParseFunctionCall(const std::string& name) {
  VDB_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
  bool star = false;
  bool distinct = false;
  std::vector<ExprPtr> args;
  if (Peek().IsOperator("*")) {
    Advance();
    star = true;
  } else if (Peek().type != TokenType::kRightParen) {
    distinct = MatchKeyword("DISTINCT");
    do {
      VDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      args.push_back(std::move(arg));
    } while (Match(TokenType::kComma));
  }
  VDB_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
  return ExprPtr(std::make_unique<FunctionCallExpr>(name, std::move(args),
                                                    star, distinct));
}

Result<ExprPtr> Parser::ParseCase() {
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  ExprPtr else_result;
  while (MatchKeyword("WHEN")) {
    VDB_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
    VDB_RETURN_NOT_OK(ExpectKeyword("THEN"));
    VDB_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
    branches.emplace_back(std::move(when), std::move(then));
  }
  if (branches.empty()) {
    return ErrorHere("CASE requires at least one WHEN branch");
  }
  if (MatchKeyword("ELSE")) {
    VDB_ASSIGN_OR_RETURN(else_result, ParseExpr());
  }
  VDB_RETURN_NOT_OK(ExpectKeyword("END"));
  return ExprPtr(std::make_unique<CaseExpr>(std::move(branches),
                                            std::move(else_result)));
}

}  // namespace internal
}  // namespace vdb::sql
