// Per-query resource budgets and their cooperative enforcement guard.
// Both engines poll the guard at operator boundaries and inside long
// loops, so an over-budget query aborts between charge events and
// unwinds through the normal Status path (spill files and buffer-pool
// pins release via RAII).

#ifndef VDB_EXEC_BUDGET_H_
#define VDB_EXEC_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace vdb::exec {

/// Hard per-query resource limits (DESIGN.md §13). A zero field means
/// unlimited on that axis. Simulated limits (CPU / elapsed) are expressed
/// in the VM's simulated seconds, so the same budget bites sooner on a VM
/// with a smaller share — exactly the multi-tenant admission story the
/// paper's design advisor allocates shares for. `max_host_seconds` guards
/// real wall-clock on the serving host, independent of the simulation.
struct QueryBudget {
  /// Simulated CPU seconds charged to the VM.
  double max_cpu_seconds = 0.0;
  /// Simulated wall-clock inside the VM (CPU + I/O).
  double max_elapsed_seconds = 0.0;
  /// Cumulative bytes of materialized intermediate rows, coarsely
  /// estimated (row count x schema-width estimate); an allocation budget,
  /// not a high-water mark.
  double max_memory_bytes = 0.0;
  /// Real host wall-clock seconds since the guard was armed.
  double max_host_seconds = 0.0;

  bool Unlimited() const {
    return max_cpu_seconds <= 0.0 && max_elapsed_seconds <= 0.0 &&
           max_memory_bytes <= 0.0 && max_host_seconds <= 0.0;
  }
};

class ExecutionContext;

/// Cooperative budget enforcement for one query. The executors call
/// Check() at batch / morsel / operator boundaries (and every few
/// thousand rows inside long scan loops); the first violated axis turns
/// into a typed StatusCode::kBudgetExceeded error that unwinds the
/// executor like any other failure — the ExecutionContext's RAII listener
/// detach makes the abort leak-free by construction.
///
/// Not thread-safe: one guard belongs to one query on one thread (morsel
/// workers never see the guard; the coordinator checks between morsels).
class BudgetGuard {
 public:
  BudgetGuard(const QueryBudget& budget, const ExecutionContext* context)
      : budget_(budget),
        context_(context),
        start_(std::chrono::steady_clock::now()) {}

  BudgetGuard(const BudgetGuard&) = delete;
  BudgetGuard& operator=(const BudgetGuard&) = delete;

  /// OK while every budgeted axis is under its limit, else a
  /// kBudgetExceeded status naming the axis that tripped.
  Status Check() const;

  /// Records `bytes` of materialized intermediate-row memory.
  void ChargeMemory(double bytes) { memory_bytes_ += bytes; }
  double memory_bytes() const { return memory_bytes_; }

  const QueryBudget& budget() const { return budget_; }

 private:
  QueryBudget budget_;
  const ExecutionContext* context_;
  std::chrono::steady_clock::time_point start_;
  double memory_bytes_ = 0.0;
};

/// Coarse per-row memory estimate used by both engines when charging a
/// BudgetGuard: fixed row overhead plus a per-column width. Deliberately
/// cheap (no per-value walk) — the budget is a guard rail, not an
/// allocator.
inline double ApproxRowBytes(size_t num_columns) {
  return 64.0 + 16.0 * static_cast<double>(num_columns);
}

}  // namespace vdb::exec

#endif  // VDB_EXEC_BUDGET_H_
