#ifndef VDB_EXEC_EXECUTOR_H_
#define VDB_EXEC_EXECUTOR_H_

#include <vector>

#include "catalog/schema.h"
#include "exec/execution_context.h"
#include "optimizer/physical.h"
#include "util/result.h"

namespace vdb::exec {

/// Executes physical plans against the storage engine, charging simulated
/// CPU and I/O time to the ExecutionContext's virtual machine.
///
/// Operators materialize their outputs (the plans the paper's experiments
/// run are analytic queries whose intermediate results fit comfortably in
/// host memory); *simulated* memory pressure is still modeled faithfully —
/// sorts, hash tables, and nested-loop inners that exceed the instance's
/// work_mem charge spill I/O exactly as the optimizer's cost model assumes.
class Executor {
 public:
  explicit Executor(ExecutionContext* context) : context_(context) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the plan to completion and returns the result rows (in the
  /// plan root's output-column order).
  Result<std::vector<catalog::Tuple>> Run(
      const optimizer::PhysicalNode& node);

 private:
  Result<std::vector<catalog::Tuple>> RunNode(
      const optimizer::PhysicalNode& node);
  Result<std::vector<catalog::Tuple>> RunSeqScan(
      const optimizer::PhysSeqScan& scan);
  Result<std::vector<catalog::Tuple>> RunIndexScan(
      const optimizer::PhysIndexScan& scan);
  Result<std::vector<catalog::Tuple>> RunFilter(
      const optimizer::PhysFilter& filter);
  Result<std::vector<catalog::Tuple>> RunProject(
      const optimizer::PhysProject& project);
  Result<std::vector<catalog::Tuple>> RunSort(
      const optimizer::PhysSort& sort);
  Result<std::vector<catalog::Tuple>> RunTopN(
      const optimizer::PhysTopN& top_n);
  Result<std::vector<catalog::Tuple>> RunLimit(
      const optimizer::PhysLimit& limit);
  Result<std::vector<catalog::Tuple>> RunHashJoin(
      const optimizer::PhysHashJoin& join);
  Result<std::vector<catalog::Tuple>> RunMergeJoin(
      const optimizer::PhysMergeJoin& join);
  Result<std::vector<catalog::Tuple>> RunNestedLoopJoin(
      const optimizer::PhysNestedLoopJoin& join);
  Result<std::vector<catalog::Tuple>> RunHashAggregate(
      const optimizer::PhysHashAggregate& aggregate);

  // Clones `expr` and resolves its column slots against `input`.
  Result<plan::BoundExprPtr> Resolve(
      const plan::BoundExpr& expr,
      const std::vector<plan::OutputColumn>& input);

  ExecutionContext* context_;
};

/// Approximate in-memory byte size of a tuple (for spill decisions).
double ApproxTupleBytes(const catalog::Tuple& tuple);

}  // namespace vdb::exec

#endif  // VDB_EXEC_EXECUTOR_H_
