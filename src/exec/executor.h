// The row-at-a-time Volcano executor over physical plans.

#ifndef VDB_EXEC_EXECUTOR_H_
#define VDB_EXEC_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "catalog/schema.h"
#include "exec/execution_context.h"
#include "exec/operator_common.h"
#include "optimizer/physical.h"
#include "util/result.h"

namespace vdb::exec {

/// Executes physical plans against the storage engine, charging simulated
/// CPU and I/O time to the ExecutionContext's virtual machine.
///
/// Operators materialize their outputs (the plans the paper's experiments
/// run are analytic queries whose intermediate results fit comfortably in
/// host memory); *simulated* memory pressure is still modeled faithfully —
/// sorts, hash tables, and nested-loop inners that exceed the instance's
/// work_mem charge spill I/O exactly as the optimizer's cost model assumes.
///
/// This is the row-at-a-time engine; BatchExecutor (the default, see
/// DESIGN.md §12) runs the same plans vectorized. Both charge identical
/// simulated time; under LIMIT the batch engine switches its budgeted
/// subtree to this engine's per-row charge granularity, so even early
/// exits charge the same.
class Executor {
 public:
  explicit Executor(ExecutionContext* context) : context_(context) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// No row-count cap: run the operator to completion.
  static constexpr size_t kNoBudget = static_cast<size_t>(-1);

  /// Runs the plan to completion and returns the result rows (in the
  /// plan root's output-column order). `budget` caps how many rows the
  /// node needs to produce; LIMIT nodes shrink it so that scans and
  /// filters below stop early instead of materializing the full input.
  Result<std::vector<catalog::Tuple>> Run(const optimizer::PhysicalNode& node,
                                          size_t budget = kNoBudget);

 private:
  Result<std::vector<catalog::Tuple>> RunNode(
      const optimizer::PhysicalNode& node, size_t budget);
  Result<std::vector<catalog::Tuple>> RunSeqScan(
      const optimizer::PhysSeqScan& scan, size_t budget);
  Result<std::vector<catalog::Tuple>> RunIndexScan(
      const optimizer::PhysIndexScan& scan, size_t budget);
  Result<std::vector<catalog::Tuple>> RunFilter(
      const optimizer::PhysFilter& filter, size_t budget);
  Result<std::vector<catalog::Tuple>> RunProject(
      const optimizer::PhysProject& project, size_t budget);
  Result<std::vector<catalog::Tuple>> RunSort(
      const optimizer::PhysSort& sort);
  Result<std::vector<catalog::Tuple>> RunTopN(
      const optimizer::PhysTopN& top_n);
  Result<std::vector<catalog::Tuple>> RunLimit(
      const optimizer::PhysLimit& limit, size_t budget);
  Result<std::vector<catalog::Tuple>> RunHashJoin(
      const optimizer::PhysHashJoin& join);
  Result<std::vector<catalog::Tuple>> RunMergeJoin(
      const optimizer::PhysMergeJoin& join);
  Result<std::vector<catalog::Tuple>> RunNestedLoopJoin(
      const optimizer::PhysNestedLoopJoin& join);
  Result<std::vector<catalog::Tuple>> RunHashAggregate(
      const optimizer::PhysHashAggregate& aggregate);

  ExecutionContext* context_;
};

}  // namespace vdb::exec

#endif  // VDB_EXEC_EXECUTOR_H_
