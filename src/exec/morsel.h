// Morsel-driven parallelism for the batch engine: fixed 4096-record
// morsels, thread-local execution, and charge-event replay in serial
// order (DESIGN.md §12).

#ifndef VDB_EXEC_MORSEL_H_
#define VDB_EXEC_MORSEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/batch.h"
#include "catalog/schema.h"
#include "exec/execution_context.h"
#include "exec/operator_common.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/result.h"

// Morsel-driven parallel scan pipelines (DESIGN.md §12).
//
// The coordinator thread slices a heap scan into fixed-size morsels and
// hands each to a ThreadPool worker, which runs the fused scan → filter →
// project (→ partial aggregate) pipeline over it. Workers never touch the
// ExecutionContext or the buffer pool; the coordinator fetches pages
// itself (preserving the serial engine's exact page-access order and
// therefore its buffer-pool hit/miss/eviction sequence) while *recording*
// the simulated charges each fetch would have produced, and replays every
// recorded and computed charge in serial batch order as results are
// emitted. Because a morsel is a whole multiple of the batch size, worker
// batch boundaries land exactly on the serial engine's, so the replayed
// charge sequence — and thus the accumulated floating-point simulated
// time — is bit-identical to a single-threaded run.

namespace vdb::exec {

/// One recorded simulated-charge event, replayed on the coordinator in
/// exact serial order.
struct ChargeEvent {
  enum class Kind : uint8_t { kCpu, kPageRead, kPageWrite };

  Kind kind = Kind::kCpu;
  double cpu_ops = 0.0;  // kCpu only
  storage::AccessPattern pattern =
      storage::AccessPattern::kSequential;  // kPageRead only
};

inline ChargeEvent CpuEvent(double ops) {
  return ChargeEvent{ChargeEvent::Kind::kCpu, ops,
                     storage::AccessPattern::kSequential};
}

/// Applies recorded events to the context in order, reproducing the exact
/// ChargeCpu / page-I/O call sequence the serial engine would have made.
void ReplayCharges(ExecutionContext* context,
                   const std::vector<ChargeEvent>& events);

/// Buffer-pool listener that appends the I/O events a page fetch produces
/// to a list instead of charging them; the coordinator installs it around
/// each page read and replays the events when the corresponding batch is
/// emitted.
class RecordingIoListener final : public storage::IoListener {
 public:
  explicit RecordingIoListener(std::vector<ChargeEvent>* out) : out_(out) {}

  void OnPageRead(storage::AccessPattern pattern) override {
    out_->push_back(ChargeEvent{ChargeEvent::Kind::kPageRead, 0.0, pattern});
  }
  void OnPageWrite() override {
    out_->push_back(ChargeEvent{ChargeEvent::Kind::kPageWrite, 0.0,
                                storage::AccessPattern::kSequential});
  }

 private:
  std::vector<ChargeEvent>* out_;
};

/// A scan work unit: up to kRecordsPerMorsel live records plus the page
/// fetches recorded while the coordinator read them. kRecordsPerMorsel is
/// a multiple of Batch::kDefaultRows so the worker's batch boundaries are
/// the serial engine's batch boundaries.
struct Morsel {
  static constexpr size_t kRecordsPerMorsel = 4 * catalog::Batch::kDefaultRows;

  /// One live record, as (page, byte range) into `pages`.
  struct Record {
    uint32_t page = 0;
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  size_t index = 0;  // dispatch order
  /// Raw page bytes backing `records`. A page straddling a morsel
  /// boundary is shared (not re-read) by both morsels.
  std::vector<std::shared_ptr<const std::string>> pages;
  std::vector<Record> records;
  /// Recorded fetch events per local batch: slot b holds the fetches the
  /// serial engine performs while filling batch b (a fetch lands in the
  /// batch whose fill it happened during — the batch holding the page's
  /// first record, or, for a page with no live records, the batch being
  /// filled when it was skipped over).
  std::vector<std::vector<ChargeEvent>> batch_io;
  /// Fetches past the last record (a tail of empty pages); the serial
  /// engine charges these during its final, empty fill attempt, so they
  /// replay after the last batch, before the scan reports exhaustion.
  std::vector<ChargeEvent> trailing_io;
};

/// Slices a heap scan into morsels. Runs on the coordinator only: pages
/// are read through the buffer pool in strict sequential order (the
/// serial engine's order), with fetch charges recorded rather than
/// applied.
class MorselDispatcher {
 public:
  MorselDispatcher(ExecutionContext* context, storage::BufferPool* pool,
                   const storage::HeapFile* heap);

  /// Fills `out` with the next morsel; returns false once the scan is
  /// exhausted. A morsel can carry zero records (a tail of empty pages,
  /// returned for its trailing events) but never zero of both.
  Result<bool> NextMorsel(Morsel* out);

 private:
  ExecutionContext* context_;
  storage::BufferPool* pool_;
  const storage::HeapFile* heap_;
  size_t page_index_ = 0;
  size_t next_index_ = 0;
  bool done_ = false;
  /// Records of the last page read that did not fit the previous morsel
  /// (the page straddles the boundary; its fetch was already attributed).
  std::shared_ptr<const std::string> carry_page_;
  std::vector<Morsel::Record> carry_records_;
  size_t carry_cursor_ = 0;
  std::string storage_;
  std::vector<storage::HeapFile::RecordView> views_;
};

/// The pipeline every worker runs over its morsels. All pointers
/// reference state owned by the coordinator's operator and are only read:
/// batch expression evaluation is const with stack-local scratch, so one
/// spec is safely shared across workers.
struct MorselPipelineSpec {
  // Scan: deserialize into all-schema-column batches (lazy columns masked
  // by `wanted`), then the optional inline filter.
  const catalog::Schema* schema = nullptr;
  std::vector<catalog::TypeId> scan_types;
  const std::vector<uint8_t>* wanted = nullptr;  // nullptr = all columns
  const plan::BoundExpr* scan_filter = nullptr;
  double scan_filter_ops = 0.0;

  /// A fused FilterOp/ProjectOp stage, charged exactly as the serial
  /// operator charges it.
  struct Stage {
    enum class Kind : uint8_t { kFilter, kProject };

    Kind kind = Kind::kFilter;
    const plan::BoundExpr* filter = nullptr;                       // kFilter
    const std::vector<plan::BoundExprPtr>* project = nullptr;      // kProject
    double ops = 0.0;  // OpCount total of the stage's expressions
  };
  std::vector<Stage> stages;

  // Optional terminal partial aggregate (never DISTINCT — those partials
  // cannot be merged and stay on the serial path).
  bool aggregate = false;
  const std::vector<plan::BoundExprPtr>* group_exprs = nullptr;
  const std::vector<plan::AggSpec>* aggs = nullptr;
  /// Single-column group key borrow fast path (see HashAggregateOp).
  const plan::ColumnExpr* group_col = nullptr;
  double group_ops = 0.0;
  double agg_ops = 0.0;

  const CpuWorkModel* cpu = nullptr;
};

/// One group of a worker's partial aggregate, in morsel-local insertion
/// order (the coordinator merges morsels in dispatch order, so the global
/// first-appearance order equals the serial engine's insertion order).
struct PartialGroup {
  std::vector<catalog::Value> key;
  std::vector<AggState> states;
};

/// Everything a worker hands back for one morsel.
struct MorselResult {
  /// One output batch plus the charges its production incurs, in serial
  /// order: recorded page fetches first, then the scan / stage CPU lumps,
  /// then (aggregate mode) the per-batch aggregation lump.
  struct BatchOut {
    catalog::Batch batch;  // empty in aggregate mode (folded into groups)
    std::vector<ChargeEvent> events;
    size_t rows_scanned = 0;
    /// Aggregate mode: rows this batch fed into the partial aggregate
    /// (post-filter), summed by the coordinator for the spill trigger.
    size_t agg_rows = 0;
  };

  Status status = Status::OK();
  std::vector<BatchOut> batches;
  std::vector<ChargeEvent> trailing;  // the morsel's trailing_io
  std::vector<PartialGroup> groups;   // aggregate mode only
};

/// Runs the pipeline over one morsel. Pure worker function: reads the
/// shared spec and page bytes, writes only its own result.
MorselResult RunMorsel(const MorselPipelineSpec& spec, Morsel morsel);

}  // namespace vdb::exec

#endif  // VDB_EXEC_MORSEL_H_
