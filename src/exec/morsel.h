// Morsel-driven parallelism for the batch engine: fixed 4096-record
// morsels, thread-local execution, and charge-event replay in serial
// order (DESIGN.md §12).

#ifndef VDB_EXEC_MORSEL_H_
#define VDB_EXEC_MORSEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/batch.h"
#include "catalog/schema.h"
#include "exec/execution_context.h"
#include "exec/operator_common.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/result.h"

// Morsel-driven parallel scan pipelines (DESIGN.md §12).
//
// The coordinator thread slices a heap scan into fixed-size morsels and
// hands each to a ThreadPool worker, which runs the fused scan → filter →
// project (→ partial aggregate) pipeline over it. Workers never touch the
// ExecutionContext or the buffer pool; the coordinator fetches pages
// itself (preserving the serial engine's exact page-access order and
// therefore its buffer-pool hit/miss/eviction sequence) while *recording*
// the simulated charges each fetch would have produced, and replays every
// recorded and computed charge in serial batch order as results are
// emitted. Because a morsel is a whole multiple of the batch size, worker
// batch boundaries land exactly on the serial engine's, so the replayed
// charge sequence — and thus the accumulated floating-point simulated
// time — is bit-identical to a single-threaded run.

namespace vdb::exec {

/// One recorded simulated-charge event, replayed on the coordinator in
/// exact serial order.
struct ChargeEvent {
  enum class Kind : uint8_t { kCpu, kPageRead, kPageWrite };

  Kind kind = Kind::kCpu;
  double cpu_ops = 0.0;  // kCpu only
  storage::AccessPattern pattern =
      storage::AccessPattern::kSequential;  // kPageRead only
};

inline ChargeEvent CpuEvent(double ops) {
  return ChargeEvent{ChargeEvent::Kind::kCpu, ops,
                     storage::AccessPattern::kSequential};
}

/// Applies recorded events to the context in order, reproducing the exact
/// ChargeCpu / page-I/O call sequence the serial engine would have made.
void ReplayCharges(ExecutionContext* context,
                   const std::vector<ChargeEvent>& events);

/// Buffer-pool listener that appends the I/O events a page fetch produces
/// to a list instead of charging them; the coordinator installs it around
/// each page read and replays the events when the corresponding batch is
/// emitted.
class RecordingIoListener final : public storage::IoListener {
 public:
  explicit RecordingIoListener(std::vector<ChargeEvent>* out) : out_(out) {}

  void OnPageRead(storage::AccessPattern pattern) override {
    out_->push_back(ChargeEvent{ChargeEvent::Kind::kPageRead, 0.0, pattern});
  }
  void OnPageWrite() override {
    out_->push_back(ChargeEvent{ChargeEvent::Kind::kPageWrite, 0.0,
                                storage::AccessPattern::kSequential});
  }

 private:
  std::vector<ChargeEvent>* out_;
};

/// A scan work unit: up to kRecordsPerMorsel live records plus the page
/// fetches recorded while the coordinator read them. kRecordsPerMorsel is
/// a multiple of Batch::kDefaultRows so the worker's batch boundaries are
/// the serial engine's batch boundaries.
struct Morsel {
  static constexpr size_t kRecordsPerMorsel = 4 * catalog::Batch::kDefaultRows;

  /// One live record, as (page, byte range) into `pages`.
  struct Record {
    uint32_t page = 0;
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  size_t index = 0;  // dispatch order
  /// Raw page bytes backing `records`. A page straddling a morsel
  /// boundary is shared (not re-read) by both morsels.
  std::vector<std::shared_ptr<const std::string>> pages;
  std::vector<Record> records;
  /// Recorded fetch events per local batch: slot b holds the fetches the
  /// serial engine performs while filling batch b (a fetch lands in the
  /// batch whose fill it happened during — the batch holding the page's
  /// first record, or, for a page with no live records, the batch being
  /// filled when it was skipped over).
  std::vector<std::vector<ChargeEvent>> batch_io;
  /// Fetches past the last record (a tail of empty pages); the serial
  /// engine charges these during its final, empty fill attempt, so they
  /// replay after the last batch, before the scan reports exhaustion.
  std::vector<ChargeEvent> trailing_io;
};

/// Slices a heap scan into morsels. Runs on the coordinator only: pages
/// are read through the buffer pool in strict sequential order (the
/// serial engine's order), with fetch charges recorded rather than
/// applied.
class MorselDispatcher {
 public:
  /// `prune` is the zone-map page bitmap (ComputePruneBitmap); prunable
  /// pages are stepped over before any fetch, so they record no events
  /// and contribute no records — exactly what the serial scan does with
  /// the same bitmap, keeping the replayed charge sequence bit-identical.
  MorselDispatcher(ExecutionContext* context, storage::BufferPool* pool,
                   const storage::HeapFile* heap,
                   std::vector<uint8_t> prune = {});

  /// Fills `out` with the next morsel; returns false once the scan is
  /// exhausted. A morsel can carry zero records (a tail of empty pages,
  /// returned for its trailing events) but never zero of both.
  Result<bool> NextMorsel(Morsel* out);

 private:
  ExecutionContext* context_;
  storage::BufferPool* pool_;
  const storage::HeapFile* heap_;
  std::vector<uint8_t> prune_;
  size_t page_index_ = 0;
  size_t next_index_ = 0;
  bool done_ = false;
  /// Records of the last page read that did not fit the previous morsel
  /// (the page straddles the boundary; its fetch was already attributed).
  std::shared_ptr<const std::string> carry_page_;
  std::vector<Morsel::Record> carry_records_;
  size_t carry_cursor_ = 0;
  std::string storage_;
  std::vector<storage::HeapFile::RecordView> views_;
};

/// Planner group-cardinality estimate above which the morsel aggregate
/// switches to the shared-index path (see UseSharedAggregate). Exported
/// so tests can probe the boundary exactly.
inline constexpr double kSharedAggregateMinGroups = 4096.0;

/// Whether a morsel aggregate should intern its group keys in a shared
/// SharedGroupIndex instead of shipping per-morsel key copies: only keyed
/// aggregates, and only when the planner expects more groups than
/// kSharedAggregateMinGroups — for narrow aggregates the per-morsel
/// partial maps are tiny and the shared table is pure locking overhead.
inline bool UseSharedAggregate(double estimated_groups, size_t num_keys) {
  return num_keys > 0 && estimated_groups > kSharedAggregateMinGroups;
}

/// Concurrent group-key intern table for very wide partial aggregates,
/// sharded by hash prefix (the top kShardBits bits of the group hash pick
/// the shard, so one mutex guards 1/64th of the key space). Workers
/// intern each distinct key once per morsel and ship only (dense id,
/// partial states) back to the coordinator, which merges by id — no
/// per-morsel key copies in flight and no coordinator-side re-hashing.
/// Each Intern records the row sequence of the key's first touch in that
/// morsel; the minimum over all morsels is the key's global first
/// appearance, so ordering entries by it reproduces the serial engine's
/// group insertion order exactly even though dense ids are assigned in
/// racy arrival order. Constructing an index ticks the
/// `exec.morsel.shared_agg` counter (one build per wide aggregate).
class SharedGroupIndex {
 public:
  static constexpr size_t kShardBits = 6;
  static constexpr size_t kNumShards = size_t{1} << kShardBits;

  struct Entry {
    std::vector<catalog::Value> key;
    uint64_t first_seen = 0;  ///< min (morsel, row) sequence over morsels
    uint32_t gid = 0;         ///< dense id, in (racy) assignment order
  };

  SharedGroupIndex();

  /// Interns `key` (precomputed group hash `h`) and returns its dense
  /// global id; `seq` is folded into the entry's first_seen (min wins).
  /// Thread-safe.
  uint32_t Intern(size_t h, const std::vector<catalog::Value>& key,
                  uint64_t seq);

  /// Total distinct groups interned so far.
  size_t size() const { return next_gid_.load(std::memory_order_relaxed); }

  /// All entries ordered by first_seen — the serial insertion order.
  /// Coordinator-only: callers must have joined every worker first.
  std::vector<const Entry*> GroupsInFirstSeenOrder() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// group hash → indices into `entries` (a collision chain, mirroring
    /// the serial aggregate's bucket map).
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    std::deque<Entry> entries;  // deque: stable addresses across growth
  };

  Shard& ShardFor(size_t h) {
    return shards_[h >> (sizeof(size_t) * 8 - kShardBits)];
  }

  std::array<Shard, kNumShards> shards_;
  std::atomic<uint32_t> next_gid_{0};
};

/// The pipeline every worker runs over its morsels. All pointers
/// reference state owned by the coordinator's operator and are only read:
/// batch expression evaluation is const with stack-local scratch, so one
/// spec is safely shared across workers.
struct MorselPipelineSpec {
  // Scan: deserialize into all-schema-column batches (lazy columns masked
  // by `wanted`), then the optional inline filter.
  const catalog::Schema* schema = nullptr;
  std::vector<catalog::TypeId> scan_types;
  const std::vector<uint8_t>* wanted = nullptr;  // nullptr = all columns
  const plan::BoundExpr* scan_filter = nullptr;
  double scan_filter_ops = 0.0;

  /// A fused FilterOp/ProjectOp stage, charged exactly as the serial
  /// operator charges it.
  struct Stage {
    enum class Kind : uint8_t { kFilter, kProject };

    Kind kind = Kind::kFilter;
    const plan::BoundExpr* filter = nullptr;                       // kFilter
    const std::vector<plan::BoundExprPtr>* project = nullptr;      // kProject
    double ops = 0.0;  // OpCount total of the stage's expressions
  };
  std::vector<Stage> stages;

  // Optional terminal partial aggregate (never DISTINCT — those partials
  // cannot be merged and stay on the serial path).
  bool aggregate = false;
  const std::vector<plan::BoundExprPtr>* group_exprs = nullptr;
  const std::vector<plan::AggSpec>* aggs = nullptr;
  /// Single-column group key borrow fast path (see HashAggregateOp).
  const plan::ColumnExpr* group_col = nullptr;
  double group_ops = 0.0;
  double agg_ops = 0.0;
  /// Non-null: shared-index ("wide group") aggregate mode. Workers intern
  /// each key on first local touch and return PartialGroups carrying gid
  /// instead of key (keys are cleared before the result ships).
  SharedGroupIndex* shared_groups = nullptr;

  const CpuWorkModel* cpu = nullptr;
};

/// One group of a worker's partial aggregate, in morsel-local insertion
/// order (the coordinator merges morsels in dispatch order, so the global
/// first-appearance order equals the serial engine's insertion order).
struct PartialGroup {
  std::vector<catalog::Value> key;
  std::vector<AggState> states;
  /// Shared-index mode only: the key's dense SharedGroupIndex id (the
  /// key vector itself is cleared before the morsel result ships).
  uint32_t gid = 0;
};

/// Everything a worker hands back for one morsel.
struct MorselResult {
  /// One output batch plus the charges its production incurs, in serial
  /// order: recorded page fetches first, then the scan / stage CPU lumps,
  /// then (aggregate mode) the per-batch aggregation lump.
  struct BatchOut {
    catalog::Batch batch;  // empty in aggregate mode (folded into groups)
    std::vector<ChargeEvent> events;
    size_t rows_scanned = 0;
    /// Aggregate mode: rows this batch fed into the partial aggregate
    /// (post-filter), summed by the coordinator for the spill trigger.
    size_t agg_rows = 0;
  };

  Status status = Status::OK();
  std::vector<BatchOut> batches;
  std::vector<ChargeEvent> trailing;  // the morsel's trailing_io
  std::vector<PartialGroup> groups;   // aggregate mode only
};

/// Runs the pipeline over one morsel. Pure worker function: reads the
/// shared spec and page bytes, writes only its own result.
MorselResult RunMorsel(const MorselPipelineSpec& spec, Morsel morsel);

// ---------------------------------------------------------------------------
// Hash-join probe morsels.
//
// The probe side of HashJoinOp parallelizes the same way the scan
// pipeline does: both inputs are already drained and the build table
// built, so workers probe contiguous global row ranges of the probe
// batches against the shared read-only table, each recording the exact
// CPU-charge sequence the serial probe loop would produce for its rows
// together with the matched output refs. The coordinator replays the
// events and concatenates the refs in morsel order, so charges, output
// order, and the accumulated floating-point simulated time are
// bit-identical to the serial loop.

/// A row of a drained batch vector, as (batch index, selection position).
struct JoinRowRef {
  uint32_t batch = 0;
  uint32_t pos = 0;
};

/// Sentinel batch index: no right-side row (outer / semi / anti emits).
inline constexpr uint32_t kJoinNullBatch = UINT32_MAX;

struct JoinOutRef {
  JoinRowRef left;
  JoinRowRef right;
};

/// Read-only state shared by every probe worker. Key accessors mirror
/// HashJoinOp: a slot >= 0 borrows that input column (physical row
/// index); otherwise the dense per-batch computed key vectors are used.
struct ProbeMorselSpec {
  const std::unordered_map<size_t, std::vector<JoinRowRef>>* table = nullptr;
  const std::vector<catalog::Batch>* left_batches = nullptr;
  const std::vector<catalog::Batch>* right_batches = nullptr;
  int left_col_slot = -1;
  int right_col_slot = -1;
  const std::vector<std::vector<catalog::ValueVector>>* left_key_cols =
      nullptr;
  const std::vector<std::vector<catalog::ValueVector>>* right_key_cols =
      nullptr;
  size_t num_keys = 0;
  plan::LogicalJoinType join_type = plan::LogicalJoinType::kInner;
  const plan::BoundExpr* residual = nullptr;
  double residual_ops = 0.0;
  /// Exclusive prefix sums of active rows per probe batch (size
  /// batches + 1): global row r lives in batch b iff
  /// prefix[b] <= r < prefix[b + 1].
  const std::vector<uint64_t>* probe_prefix = nullptr;
  const CpuWorkModel* cpu = nullptr;
};

struct ProbeMorselResult {
  std::vector<JoinOutRef> refs;
  std::vector<ChargeEvent> events;
};

/// Probes the global probe-row range [row_begin, row_end). Pure worker
/// function: reads the shared spec, writes only its own result. Ranges
/// deliberately need not align with batch boundaries.
ProbeMorselResult RunProbeMorsel(const ProbeMorselSpec& spec,
                                 uint64_t row_begin, uint64_t row_end);

}  // namespace vdb::exec

#endif  // VDB_EXEC_MORSEL_H_
