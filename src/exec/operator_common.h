// Helpers shared by both executors: hashable grouping keys, aggregate
// state machines, and sort comparators.

#ifndef VDB_EXEC_OPERATOR_COMMON_H_
#define VDB_EXEC_OPERATOR_COMMON_H_

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "exec/execution_context.h"
#include "optimizer/physical.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "storage/page.h"
#include "util/result.h"

// Row-level helpers shared by the row (materializing) executor and the
// batch executor. Both engines must charge identical simulated time for
// identical plans — the golden figure tests pin those totals — so the
// shared pieces of the cost accounting live here.

namespace vdb::exec {

/// Hashable key for grouping and hash joins: a vector of values. Grouping
/// treats NULLs as equal (SQL GROUP BY semantics); join-key NULLs are
/// filtered out before reaching the table.
struct ValueKey {
  std::vector<catalog::Value> values;

  bool operator==(const ValueKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool a_null = values[i].is_null();
      const bool b_null = other.values[i].is_null();
      if (a_null != b_null) return false;
      if (a_null) continue;
      if (catalog::Value::Compare(values[i], other.values[i]) != 0) {
        return false;
      }
    }
    return true;
  }
};

struct ValueKeyHash {
  size_t operator()(const ValueKey& key) const {
    size_t h = 14695981039346656037ULL;
    for (const catalog::Value& v : key.values) {
      h = (h ^ v.Hash()) * 1099511628211ULL;
    }
    return h;
  }
};

/// FNV-1a combination of per-value hashes, matching ValueKeyHash so the
/// two engines bucket identically.
inline size_t CombineHash(size_t h, size_t value_hash) {
  return (h ^ value_hash) * 1099511628211ULL;
}
inline constexpr size_t kHashSeed = 14695981039346656037ULL;

inline size_t HashValues(const catalog::Value* values, size_t n) {
  size_t h = kHashSeed;
  for (size_t i = 0; i < n; ++i) h = CombineHash(h, values[i].Hash());
  return h;
}

/// Key equality with NULLs equal (ValueKey semantics). Used to resolve
/// hash-bucket candidates; callers must check this BEFORE charging any
/// comparison cost so that hash collisions stay free, exactly as they
/// were with an exact-key map.
inline bool KeysEqual(const catalog::Value* a, const catalog::Value* b,
                      size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const bool a_null = a[i].is_null();
    const bool b_null = b[i].is_null();
    if (a_null != b_null) return false;
    if (a_null) continue;
    if (catalog::Value::Compare(a[i], b[i]) != 0) return false;
  }
  return true;
}

/// Bucket-count reservation from a planner cardinality estimate (clamped;
/// estimates are advisory and occasionally wild).
inline size_t EstimateReserve(double estimated_rows) {
  if (!(estimated_rows > 0.0)) return 0;
  return static_cast<size_t>(std::min(estimated_rows, 1.0e6));
}

inline double PagesFor(double bytes) {
  return std::max(
      1.0, std::ceil(bytes / static_cast<double>(storage::kPageSize)));
}

/// Three-way tuple comparison for ORDER BY (NULLS LAST on ascending keys).
inline int CompareForSort(const catalog::Value& a, const catalog::Value& b,
                          bool ascending) {
  const bool a_null = a.is_null();
  const bool b_null = b.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = catalog::Value::Compare(a, b);
  return ascending ? cmp : -cmp;
}

/// Evaluates each expression of `exprs` over `row`.
std::vector<catalog::Value> EvalAll(
    const std::vector<plan::BoundExprPtr>& exprs, const catalog::Tuple& row);

double TotalOps(const std::vector<plan::BoundExprPtr>& exprs);

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_double = false;
  catalog::Value min_value;
  catalog::Value max_value;
  bool has_min_max = false;
  std::set<std::string> distinct_seen;

  void Update(const plan::AggSpec& spec, const catalog::Value& v);
  catalog::Value Finalize(const plan::AggSpec& spec) const;

  /// Folds `other` — the same aggregate accumulated over a *later* slice
  /// of the input — into this state, as if this state had seen both
  /// slices in order. Only valid for non-DISTINCT aggregates: DISTINCT
  /// partials cannot be merged (the seen-set keys do not recover the
  /// values a merged SUM would need), so the parallel aggregate keeps
  /// DISTINCT plans on the serial path. Ties in MIN/MAX keep this
  /// state's value, matching Update's first-seen-wins order.
  void Merge(const AggState& other);
};

catalog::Tuple ConcatRows(const catalog::Tuple& left,
                          const catalog::Tuple& right);

catalog::Tuple NullsFor(const std::vector<plan::OutputColumn>& columns);

/// Clones `expr` and resolves its column slots against `input`.
Result<plan::BoundExprPtr> ResolveExpr(
    const plan::BoundExpr& expr,
    const std::vector<plan::OutputColumn>& input);

/// If `keys` is exactly one resolved column reference, returns it (the
/// borrow fast path for hash join/aggregate keys); otherwise nullptr.
const plan::ColumnExpr* SingleColumnKey(
    const std::vector<plan::BoundExprPtr>& keys);

/// The merge-join loop over sorted, materialized inputs. Keys and residual
/// must already be resolved (`residual` may be null). Charges the context
/// exactly as the row executor always has; both engines call this.
Result<std::vector<catalog::Tuple>> MergeJoinRows(
    ExecutionContext* context, const std::vector<catalog::Tuple>& left_rows,
    const std::vector<catalog::Tuple>& right_rows,
    const plan::BoundExpr& left_key, const plan::BoundExpr& right_key,
    const plan::BoundExpr* residual);

/// The nested-loop join over materialized inputs (`condition` may be
/// null), including the inner-side spill model. Both engines call this.
Result<std::vector<catalog::Tuple>> NestedLoopJoinRows(
    ExecutionContext* context, plan::LogicalJoinType join_type,
    const std::vector<plan::OutputColumn>& right_output,
    const std::vector<catalog::Tuple>& left_rows,
    const std::vector<catalog::Tuple>& right_rows,
    const plan::BoundExpr* condition);

/// Approximate in-memory byte size of a tuple (for spill decisions).
double ApproxTupleBytes(const catalog::Tuple& tuple);

}  // namespace vdb::exec

#endif  // VDB_EXEC_OPERATOR_COMMON_H_
