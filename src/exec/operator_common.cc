#include "exec/operator_common.h"

#include <utility>

#include "exec/budget.h"

namespace vdb::exec {

namespace {

// Budget-guard poll period for the shared O(n*m)-capable join loops
// (mask over a power of two; see executor.cc for rationale).
constexpr size_t kBudgetPollMask = 4095;

}  // namespace

using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using plan::BoundExpr;
using plan::BoundExprPtr;
using plan::EvaluatesToTrue;
using plan::OutputColumn;

std::vector<Value> EvalAll(const std::vector<BoundExprPtr>& exprs,
                           const Tuple& row) {
  std::vector<Value> out;
  out.reserve(exprs.size());
  for (const BoundExprPtr& expr : exprs) {
    out.push_back(expr->Evaluate(row));
  }
  return out;
}

double TotalOps(const std::vector<BoundExprPtr>& exprs) {
  double ops = 0;
  for (const BoundExprPtr& expr : exprs) ops += expr->OpCount();
  return ops;
}

void AggState::Update(const plan::AggSpec& spec, const Value& v) {
  if (spec.kind == plan::AggKind::kCountStar) {
    ++count;
    return;
  }
  if (v.is_null()) return;
  if (spec.distinct) {
    std::string key =
        std::to_string(static_cast<int>(v.type())) + ":" + v.ToString();
    if (!distinct_seen.insert(std::move(key)).second) return;
  }
  ++count;
  switch (spec.kind) {
    case plan::AggKind::kSum:
    case plan::AggKind::kAvg:
      sum += v.AsDouble();
      sum_is_double = sum_is_double || v.type() == TypeId::kDouble;
      break;
    case plan::AggKind::kMin:
      if (!has_min_max || Value::Compare(v, min_value) < 0) min_value = v;
      if (!has_min_max || Value::Compare(v, max_value) > 0) max_value = v;
      has_min_max = true;
      break;
    case plan::AggKind::kMax:
      if (!has_min_max || Value::Compare(v, min_value) < 0) min_value = v;
      if (!has_min_max || Value::Compare(v, max_value) > 0) max_value = v;
      has_min_max = true;
      break;
    default:
      break;
  }
}

Value AggState::Finalize(const plan::AggSpec& spec) const {
  switch (spec.kind) {
    case plan::AggKind::kCountStar:
    case plan::AggKind::kCount:
      return Value::Int64(count);
    case plan::AggKind::kSum:
      if (count == 0) return Value::Null(spec.output_type);
      if (spec.output_type == TypeId::kDouble || sum_is_double) {
        return Value::Double(sum);
      }
      return Value::Int64(static_cast<int64_t>(sum));
    case plan::AggKind::kAvg:
      if (count == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(sum / static_cast<double>(count));
    case plan::AggKind::kMin:
      return has_min_max ? min_value : Value::Null(spec.output_type);
    case plan::AggKind::kMax:
      return has_min_max ? max_value : Value::Null(spec.output_type);
  }
  return Value::Null(spec.output_type);
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  sum += other.sum;
  sum_is_double = sum_is_double || other.sum_is_double;
  if (other.has_min_max) {
    if (!has_min_max) {
      min_value = other.min_value;
      max_value = other.max_value;
    } else {
      // `other` covers later rows, so on ties the earlier (this) value
      // stays — the same outcome as feeding Update the rows in order.
      if (Value::Compare(other.min_value, min_value) < 0) {
        min_value = other.min_value;
      }
      if (Value::Compare(other.max_value, max_value) > 0) {
        max_value = other.max_value;
      }
    }
    has_min_max = true;
  }
}

Tuple ConcatRows(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Tuple NullsFor(const std::vector<OutputColumn>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (const OutputColumn& column : columns) {
    out.push_back(Value::Null(column.type));
  }
  return out;
}

Result<BoundExprPtr> ResolveExpr(const BoundExpr& expr,
                                 const std::vector<OutputColumn>& input) {
  BoundExprPtr clone = expr.Clone();
  VDB_RETURN_NOT_OK(clone->ResolveSlots(plan::MakeLayout(input)));
  return clone;
}

const plan::ColumnExpr* SingleColumnKey(
    const std::vector<BoundExprPtr>& keys) {
  if (keys.size() != 1) return nullptr;
  return dynamic_cast<const plan::ColumnExpr*>(keys[0].get());
}

double ApproxTupleBytes(const Tuple& tuple) {
  double bytes = 8.0;  // row header
  for (const Value& v : tuple) {
    if (!v.is_null() && v.type() == TypeId::kString) {
      bytes += 13.0 + static_cast<double>(v.AsString().size());
    } else {
      bytes += 9.0;
    }
  }
  return bytes;
}

Result<std::vector<Tuple>> MergeJoinRows(
    ExecutionContext* context, const std::vector<Tuple>& left_rows,
    const std::vector<Tuple>& right_rows, const BoundExpr& left_key,
    const BoundExpr& right_key, const BoundExpr* residual) {
  const CpuWorkModel& cpu = context->cpu_model();
  const double residual_ops = residual != nullptr ? residual->OpCount() : 0.0;

  std::vector<Value> left_values;
  left_values.reserve(left_rows.size());
  for (const Tuple& row : left_rows) {
    left_values.push_back(left_key.Evaluate(row));
  }
  std::vector<Value> right_values;
  right_values.reserve(right_rows.size());
  for (const Tuple& row : right_rows) {
    right_values.push_back(right_key.Evaluate(row));
  }

  std::vector<Tuple> out;
  size_t li = 0;
  size_t ri = 0;
  BudgetGuard* const guard = context->budget_guard();
  size_t steps = 0;
  while (li < left_rows.size() && ri < right_rows.size()) {
    if (guard != nullptr && (++steps & kBudgetPollMask) == 0) {
      VDB_RETURN_NOT_OK(guard->Check());
    }
    context->ChargeCpu(cpu.ops_per_comparison);
    if (left_values[li].is_null()) {
      ++li;  // NULL keys never join (sorted last)
      continue;
    }
    if (right_values[ri].is_null()) {
      ++ri;
      continue;
    }
    const int cmp = Value::Compare(left_values[li], right_values[ri]);
    if (cmp < 0) {
      ++li;
      continue;
    }
    if (cmp > 0) {
      ++ri;
      continue;
    }
    // Key group: [ri, rj) on the right with equal keys.
    size_t rj = ri;
    while (rj < right_rows.size() && !right_values[rj].is_null() &&
           Value::Compare(left_values[li], right_values[rj]) == 0) {
      ++rj;
    }
    while (li < left_rows.size() && !left_values[li].is_null() &&
           Value::Compare(left_values[li], right_values[ri]) == 0) {
      for (size_t r = ri; r < rj; ++r) {
        context->ChargeCpu(cpu.ops_per_comparison +
                           residual_ops * cpu.ops_per_operator);
        Tuple combined_row = ConcatRows(left_rows[li], right_rows[r]);
        if (residual != nullptr &&
            !EvaluatesToTrue(*residual, combined_row)) {
          continue;
        }
        context->ChargeCpu(cpu.ops_per_tuple);
        out.push_back(std::move(combined_row));
      }
      ++li;
    }
    ri = rj;
  }
  return out;
}

Result<std::vector<Tuple>> NestedLoopJoinRows(
    ExecutionContext* context, plan::LogicalJoinType join_type,
    const std::vector<OutputColumn>& right_output,
    const std::vector<Tuple>& left_rows, const std::vector<Tuple>& right_rows,
    const BoundExpr* condition) {
  const CpuWorkModel& cpu = context->cpu_model();
  const double cond_ops = condition != nullptr ? condition->OpCount() : 0.0;

  // The materialized inner may exceed work_mem: write once, then re-read
  // per outer pass.
  double inner_bytes = 0.0;
  for (const Tuple& row : right_rows) inner_bytes += ApproxTupleBytes(row);
  const bool spilled =
      inner_bytes > static_cast<double>(context->work_mem_bytes());
  const double inner_pages = PagesFor(inner_bytes);
  if (spilled) context->ChargeSpillWrite(inner_pages);

  std::vector<Tuple> out;
  BudgetGuard* const guard = context->budget_guard();
  size_t steps = 0;
  for (const Tuple& left_row : left_rows) {
    if (spilled) context->ChargeSpillRead(inner_pages);
    bool matched = false;
    for (const Tuple& right_row : right_rows) {
      if (guard != nullptr && (++steps & kBudgetPollMask) == 0) {
        VDB_RETURN_NOT_OK(guard->Check());
      }
      context->ChargeCpu(cpu.ops_per_tuple + cond_ops * cpu.ops_per_operator);
      Tuple combined_row = ConcatRows(left_row, right_row);
      if (condition != nullptr &&
          !EvaluatesToTrue(*condition, combined_row)) {
        continue;
      }
      matched = true;
      if (join_type == plan::LogicalJoinType::kInner ||
          join_type == plan::LogicalJoinType::kCross ||
          join_type == plan::LogicalJoinType::kLeft) {
        out.push_back(std::move(combined_row));
      } else {
        break;  // semi/anti need only existence
      }
    }
    switch (join_type) {
      case plan::LogicalJoinType::kLeft:
        if (!matched) {
          out.push_back(ConcatRows(left_row, NullsFor(right_output)));
        }
        break;
      case plan::LogicalJoinType::kSemi:
        if (matched) out.push_back(left_row);
        break;
      case plan::LogicalJoinType::kAnti:
        if (!matched) out.push_back(left_row);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace vdb::exec
