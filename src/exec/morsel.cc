#include "exec/morsel.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace vdb::exec {

namespace {

using catalog::Batch;
using catalog::Value;
using catalog::ValueVector;

// Morsel instrumentation (DESIGN.md §9/§12). Dispatch counters tick on
// the coordinator; exec_latency is recorded from worker threads (the
// registry's metric objects are atomics, shared freely across threads).
struct MorselMetrics {
  obs::Counter* dispatched;
  obs::Counter* rows_dispatched;
  obs::Histogram* exec_latency;

  static const MorselMetrics& Get() {
    static const MorselMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return MorselMetrics{registry.GetCounter("exec.morsel.dispatched"),
                           registry.GetCounter("exec.morsel.rows_dispatched"),
                           registry.GetHistogram("exec.morsel.exec_latency")};
    }();
    return metrics;
  }
};

}  // namespace

void ReplayCharges(ExecutionContext* context,
                   const std::vector<ChargeEvent>& events) {
  for (const ChargeEvent& event : events) {
    switch (event.kind) {
      case ChargeEvent::Kind::kCpu:
        context->ChargeCpu(event.cpu_ops);
        break;
      case ChargeEvent::Kind::kPageRead:
        context->OnPageRead(event.pattern);
        break;
      case ChargeEvent::Kind::kPageWrite:
        context->OnPageWrite();
        break;
    }
  }
}

MorselDispatcher::MorselDispatcher(ExecutionContext* context,
                                   storage::BufferPool* pool,
                                   const storage::HeapFile* heap)
    : context_(context), pool_(pool), heap_(heap) {}

Result<bool> MorselDispatcher::NextMorsel(Morsel* out) {
  out->index = next_index_;
  out->pages.clear();
  out->records.clear();
  out->batch_io.clear();
  out->trailing_io.clear();

  // Fetch events keyed by the record count at fetch time / batch size;
  // normalized into batch_io / trailing_io once the morsel is complete.
  std::vector<std::vector<ChargeEvent>> slots;
  bool any_events = false;

  // Drain records carried over from the page that straddled the previous
  // morsel's boundary; its fetch was already attributed there.
  if (carry_cursor_ < carry_records_.size()) {
    const uint32_t page_slot = static_cast<uint32_t>(out->pages.size());
    out->pages.push_back(carry_page_);
    while (carry_cursor_ < carry_records_.size() &&
           out->records.size() < Morsel::kRecordsPerMorsel) {
      Morsel::Record record = carry_records_[carry_cursor_++];
      record.page = page_slot;
      out->records.push_back(record);
    }
    if (carry_cursor_ >= carry_records_.size()) {
      carry_records_.clear();
      carry_cursor_ = 0;
      carry_page_.reset();
    }
  }

  while (out->records.size() < Morsel::kRecordsPerMorsel && !done_) {
    std::vector<ChargeEvent> events;
    RecordingIoListener recorder(&events);
    pool_->SetIoListener(&recorder);
    Result<bool> more =
        heap_->ReadPageForScan(page_index_, &storage_, &views_);
    pool_->SetIoListener(context_);
    if (!more.ok()) return more.status();
    ++page_index_;
    if (!events.empty()) {
      const size_t slot = out->records.size() / Batch::kDefaultRows;
      if (slots.size() <= slot) slots.resize(slot + 1);
      slots[slot].insert(slots[slot].end(), events.begin(), events.end());
      any_events = true;
    }
    if (!*more) {
      done_ = true;
      continue;
    }
    if (views_.empty()) continue;  // no live records on this page

    // Freeze the page bytes: views become (offset, length) against the
    // frozen string, which is shared if the page straddles the boundary.
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    spans.reserve(views_.size());
    for (const storage::HeapFile::RecordView& view : views_) {
      spans.emplace_back(
          static_cast<uint32_t>(view.data.data() - storage_.data()),
          static_cast<uint32_t>(view.data.size()));
    }
    auto bytes = std::make_shared<const std::string>(std::move(storage_));
    const uint32_t page_slot = static_cast<uint32_t>(out->pages.size());
    out->pages.push_back(bytes);
    size_t i = 0;
    for (; i < spans.size() && out->records.size() < Morsel::kRecordsPerMorsel;
         ++i) {
      out->records.push_back(
          Morsel::Record{page_slot, spans[i].first, spans[i].second});
    }
    if (i < spans.size()) {
      carry_page_ = bytes;
      carry_records_.clear();
      for (; i < spans.size(); ++i) {
        carry_records_.push_back(
            Morsel::Record{0, spans[i].first, spans[i].second});
      }
      carry_cursor_ = 0;
    }
  }

  const size_t nbatches =
      (out->records.size() + Batch::kDefaultRows - 1) / Batch::kDefaultRows;
  out->batch_io.resize(nbatches);
  for (size_t s = 0; s < slots.size(); ++s) {
    if (s < nbatches) {
      out->batch_io[s] = std::move(slots[s]);
    } else {
      out->trailing_io.insert(out->trailing_io.end(), slots[s].begin(),
                              slots[s].end());
    }
  }

  if (out->records.empty() && !any_events) return false;
  ++next_index_;
  const MorselMetrics& metrics = MorselMetrics::Get();
  metrics.dispatched->Add();
  metrics.rows_dispatched->Add(out->records.size());
  return true;
}

namespace {

// Mirrors HashAggregateOp's per-batch update over morsel-local state; the
// per-batch CPU lump is appended to `events` so it replays in the same
// position the serial engine charges it.
void AccumulateAggregate(const MorselPipelineSpec& spec, const Batch& batch,
                         std::vector<ChargeEvent>* events,
                         std::vector<PartialGroup>* groups,
                         std::unordered_map<size_t, std::vector<uint32_t>>*
                             buckets,
                         std::vector<ValueVector>* group_cols,
                         std::vector<ValueVector>* agg_cols) {
  const CpuWorkModel& cpu = *spec.cpu;
  const std::vector<plan::BoundExprPtr>& group_exprs = *spec.group_exprs;
  const std::vector<plan::AggSpec>& aggs = *spec.aggs;
  const size_t num_keys = group_exprs.size();
  const size_t n = batch.NumActive();
  if (spec.group_col == nullptr) {
    for (size_t k = 0; k < num_keys; ++k) {
      group_exprs[k]->EvaluateBatch(batch, &(*group_cols)[k]);
    }
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) {
      aggs[a].arg->EvaluateBatch(batch, &(*agg_cols)[a]);
    }
  }
  events->push_back(CpuEvent(
      static_cast<double>(n) *
      (cpu.ops_per_tuple + cpu.ops_per_hash +
       (spec.group_ops + spec.agg_ops) * cpu.ops_per_operator)));
  if (num_keys == 0) {
    // Global aggregate: one group, bulk COUNT(*) (HashAggregateOp's fast
    // path).
    if (groups->empty()) {
      PartialGroup g;
      g.states.assign(aggs.size(), AggState{});
      groups->push_back(std::move(g));
    }
    PartialGroup& group = groups->front();
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& agg_spec = aggs[a];
      if (agg_spec.kind == plan::AggKind::kCountStar) {
        group.states[a].count += static_cast<int64_t>(n);
        continue;
      }
      if (agg_spec.arg == nullptr) continue;
      for (size_t p = 0; p < n; ++p) {
        group.states[a].Update(agg_spec, (*agg_cols)[a].GetValue(p));
      }
    }
    return;
  }
  auto key_at = [&](size_t k,
                    size_t p) -> std::pair<const ValueVector*, size_t> {
    if (spec.group_col != nullptr) {
      return {&batch.columns[spec.group_col->slot()], batch.sel[p]};
    }
    return {&(*group_cols)[k], p};
  };
  for (size_t p = 0; p < n; ++p) {
    size_t h = kHashSeed;
    for (size_t k = 0; k < num_keys; ++k) {
      auto [vec, idx] = key_at(k, p);
      h = CombineHash(h, vec->HashAt(idx));
    }
    std::vector<uint32_t>& bucket = (*buckets)[h];
    PartialGroup* group = nullptr;
    for (uint32_t gi : bucket) {
      const std::vector<Value>& gkey = (*groups)[gi].key;
      bool equal = true;
      for (size_t k = 0; k < num_keys; ++k) {
        auto [vec, idx] = key_at(k, p);
        const bool a_null = vec->IsNull(idx);
        const bool b_null = gkey[k].is_null();
        if (a_null != b_null) {
          equal = false;
          break;
        }
        if (a_null) continue;
        if (catalog::CompareWithValue(*vec, idx, gkey[k]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        group = &(*groups)[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(static_cast<uint32_t>(groups->size()));
      PartialGroup g;
      g.key.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        auto [vec, idx] = key_at(k, p);
        g.key.push_back(vec->GetValue(idx));
      }
      g.states.assign(aggs.size(), AggState{});
      groups->push_back(std::move(g));
      group = &groups->back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& agg_spec = aggs[a];
      Value v;
      if (agg_spec.arg != nullptr) v = (*agg_cols)[a].GetValue(p);
      group->states[a].Update(agg_spec, v);
    }
  }
}

}  // namespace

MorselResult RunMorsel(const MorselPipelineSpec& spec, Morsel morsel) {
  obs::ScopedTimer timer(MorselMetrics::Get().exec_latency);
  const CpuWorkModel& cpu = *spec.cpu;
  MorselResult result;
  const size_t nrec = morsel.records.size();
  const size_t nbatches =
      (nrec + Batch::kDefaultRows - 1) / Batch::kDefaultRows;
  result.batches.reserve(nbatches);

  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  std::vector<ValueVector> group_cols;
  std::vector<ValueVector> agg_cols;
  if (spec.aggregate) {
    group_cols.resize(spec.group_exprs->size());
    agg_cols.resize(spec.aggs->size());
  }

  std::vector<std::string_view> views;
  size_t rec = 0;
  for (size_t b = 0; b < nbatches; ++b) {
    MorselResult::BatchOut out;
    out.events = std::move(morsel.batch_io[b]);
    const size_t take = std::min(Batch::kDefaultRows, nrec - rec);

    // Scan: mirror SeqScanOp's fill (the single bulk deserialize is
    // equivalent to its incremental per-page fills).
    Batch batch;
    batch.Reset(spec.scan_types, Batch::kDefaultRows);
    views.clear();
    for (size_t i = 0; i < take; ++i) {
      const Morsel::Record& r = morsel.records[rec + i];
      views.emplace_back(morsel.pages[r.page]->data() + r.offset, r.length);
    }
    Status status = catalog::DeserializeRecordsInto(
        views.data(), take, *spec.schema, &batch, 0, spec.wanted);
    if (!status.ok()) {
      result.status = std::move(status);
      return result;
    }
    out.rows_scanned = take;
    out.events.push_back(
        CpuEvent(static_cast<double>(take) * cpu.ops_per_tuple));
    batch.SetRowCount(take);
    if (spec.scan_filter != nullptr) {
      out.events.push_back(CpuEvent(static_cast<double>(take) *
                                    spec.scan_filter_ops *
                                    cpu.ops_per_operator));
      spec.scan_filter->FilterBatch(&batch);
    }

    for (const MorselPipelineSpec::Stage& stage : spec.stages) {
      const size_t n = batch.NumActive();
      if (stage.kind == MorselPipelineSpec::Stage::Kind::kFilter) {
        out.events.push_back(CpuEvent(static_cast<double>(n) * stage.ops *
                                      cpu.ops_per_operator));
        stage.filter->FilterBatch(&batch);
      } else {
        out.events.push_back(
            CpuEvent(static_cast<double>(n) *
                     (cpu.ops_per_tuple + stage.ops * cpu.ops_per_operator)));
        Batch projected;
        projected.columns.resize(stage.project->size());
        for (size_t c = 0; c < stage.project->size(); ++c) {
          (*stage.project)[c]->EvaluateBatch(batch, &projected.columns[c]);
        }
        projected.SetRowCount(n);
        batch = std::move(projected);
      }
    }

    if (spec.aggregate) {
      out.agg_rows = batch.NumActive();
      AccumulateAggregate(spec, batch, &out.events, &result.groups, &buckets,
                          &group_cols, &agg_cols);
    } else {
      out.batch = std::move(batch);
    }
    result.batches.push_back(std::move(out));
    rec += take;
  }

  result.trailing = std::move(morsel.trailing_io);
  return result;
}

}  // namespace vdb::exec
