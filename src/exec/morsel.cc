#include "exec/morsel.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace vdb::exec {

namespace {

using catalog::Batch;
using catalog::Value;
using catalog::ValueVector;

// Morsel instrumentation (DESIGN.md §9/§12). Dispatch counters tick on
// the coordinator; exec_latency is recorded from worker threads (the
// registry's metric objects are atomics, shared freely across threads).
struct MorselMetrics {
  obs::Counter* dispatched;
  obs::Counter* rows_dispatched;
  obs::Counter* shared_agg;
  obs::Histogram* exec_latency;

  static const MorselMetrics& Get() {
    static const MorselMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return MorselMetrics{registry.GetCounter("exec.morsel.dispatched"),
                           registry.GetCounter("exec.morsel.rows_dispatched"),
                           registry.GetCounter("exec.morsel.shared_agg"),
                           registry.GetHistogram("exec.morsel.exec_latency")};
    }();
    return metrics;
  }
};

}  // namespace

SharedGroupIndex::SharedGroupIndex() {
  // One index is built per wide aggregate, so construction is the "shared
  // path taken" observation point.
  MorselMetrics::Get().shared_agg->Add();
}

uint32_t SharedGroupIndex::Intern(size_t h,
                                  const std::vector<Value>& key,
                                  uint64_t seq) {
  Shard& shard = ShardFor(h);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<uint32_t>& bucket = shard.buckets[h];
  for (uint32_t ei : bucket) {
    Entry& entry = shard.entries[ei];
    if (KeysEqual(entry.key.data(), key.data(), key.size())) {
      if (seq < entry.first_seen) entry.first_seen = seq;
      return entry.gid;
    }
  }
  bucket.push_back(static_cast<uint32_t>(shard.entries.size()));
  Entry entry;
  entry.key = key;
  entry.first_seen = seq;
  entry.gid = next_gid_.fetch_add(1, std::memory_order_relaxed);
  shard.entries.push_back(std::move(entry));
  return shard.entries.back().gid;
}

std::vector<const SharedGroupIndex::Entry*>
SharedGroupIndex::GroupsInFirstSeenOrder() const {
  std::vector<const Entry*> out;
  out.reserve(size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& entry : shard.entries) out.push_back(&entry);
  }
  // first_seen values are distinct (each is some row's unique global
  // sequence and a row belongs to exactly one group), so this order is
  // total and equals the serial engine's insertion order.
  std::sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    return a->first_seen < b->first_seen;
  });
  return out;
}

void ReplayCharges(ExecutionContext* context,
                   const std::vector<ChargeEvent>& events) {
  for (const ChargeEvent& event : events) {
    switch (event.kind) {
      case ChargeEvent::Kind::kCpu:
        context->ChargeCpu(event.cpu_ops);
        break;
      case ChargeEvent::Kind::kPageRead:
        context->OnPageRead(event.pattern);
        break;
      case ChargeEvent::Kind::kPageWrite:
        context->OnPageWrite();
        break;
    }
  }
}

MorselDispatcher::MorselDispatcher(ExecutionContext* context,
                                   storage::BufferPool* pool,
                                   const storage::HeapFile* heap,
                                   std::vector<uint8_t> prune)
    : context_(context), pool_(pool), heap_(heap), prune_(std::move(prune)) {}

Result<bool> MorselDispatcher::NextMorsel(Morsel* out) {
  out->index = next_index_;
  out->pages.clear();
  out->records.clear();
  out->batch_io.clear();
  out->trailing_io.clear();

  // Fetch events keyed by the record count at fetch time / batch size;
  // normalized into batch_io / trailing_io once the morsel is complete.
  std::vector<std::vector<ChargeEvent>> slots;
  bool any_events = false;

  // Drain records carried over from the page that straddled the previous
  // morsel's boundary; its fetch was already attributed there.
  if (carry_cursor_ < carry_records_.size()) {
    const uint32_t page_slot = static_cast<uint32_t>(out->pages.size());
    out->pages.push_back(carry_page_);
    while (carry_cursor_ < carry_records_.size() &&
           out->records.size() < Morsel::kRecordsPerMorsel) {
      Morsel::Record record = carry_records_[carry_cursor_++];
      record.page = page_slot;
      out->records.push_back(record);
    }
    if (carry_cursor_ >= carry_records_.size()) {
      carry_records_.clear();
      carry_cursor_ = 0;
      carry_page_.reset();
    }
  }

  while (out->records.size() < Morsel::kRecordsPerMorsel && !done_) {
    // Zone-map skip: a page the bitmap proves empty under the scan's
    // predicate is never fetched, so it records no events and yields no
    // records — the same decision the serial scan makes with this bitmap.
    while (page_index_ < prune_.size() && prune_[page_index_] != 0) {
      context_->AddPagesPruned(1);
      ++page_index_;
    }
    std::vector<ChargeEvent> events;
    RecordingIoListener recorder(&events);
    pool_->SetIoListener(&recorder);
    Result<bool> more =
        heap_->ReadPageForScan(page_index_, &storage_, &views_);
    pool_->SetIoListener(context_);
    if (!more.ok()) return more.status();
    ++page_index_;
    if (!events.empty()) {
      const size_t slot = out->records.size() / Batch::kDefaultRows;
      if (slots.size() <= slot) slots.resize(slot + 1);
      slots[slot].insert(slots[slot].end(), events.begin(), events.end());
      any_events = true;
    }
    if (!*more) {
      done_ = true;
      continue;
    }
    context_->AddPagesScanned(1);
    if (views_.empty()) continue;  // no live records on this page

    // Freeze the page bytes: views become (offset, length) against the
    // frozen string, which is shared if the page straddles the boundary.
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    spans.reserve(views_.size());
    for (const storage::HeapFile::RecordView& view : views_) {
      spans.emplace_back(
          static_cast<uint32_t>(view.data.data() - storage_.data()),
          static_cast<uint32_t>(view.data.size()));
    }
    auto bytes = std::make_shared<const std::string>(std::move(storage_));
    const uint32_t page_slot = static_cast<uint32_t>(out->pages.size());
    out->pages.push_back(bytes);
    size_t i = 0;
    for (; i < spans.size() && out->records.size() < Morsel::kRecordsPerMorsel;
         ++i) {
      out->records.push_back(
          Morsel::Record{page_slot, spans[i].first, spans[i].second});
    }
    if (i < spans.size()) {
      carry_page_ = bytes;
      carry_records_.clear();
      for (; i < spans.size(); ++i) {
        carry_records_.push_back(
            Morsel::Record{0, spans[i].first, spans[i].second});
      }
      carry_cursor_ = 0;
    }
  }

  const size_t nbatches =
      (out->records.size() + Batch::kDefaultRows - 1) / Batch::kDefaultRows;
  out->batch_io.resize(nbatches);
  for (size_t s = 0; s < slots.size(); ++s) {
    if (s < nbatches) {
      out->batch_io[s] = std::move(slots[s]);
    } else {
      out->trailing_io.insert(out->trailing_io.end(), slots[s].begin(),
                              slots[s].end());
    }
  }

  if (out->records.empty() && !any_events) return false;
  ++next_index_;
  const MorselMetrics& metrics = MorselMetrics::Get();
  metrics.dispatched->Add();
  metrics.rows_dispatched->Add(out->records.size());
  return true;
}

namespace {

// Mirrors HashAggregateOp's per-batch update over morsel-local state; the
// per-batch CPU lump is appended to `events` so it replays in the same
// position the serial engine charges it.
void AccumulateAggregate(const MorselPipelineSpec& spec, const Batch& batch,
                         std::vector<ChargeEvent>* events,
                         std::vector<PartialGroup>* groups,
                         std::unordered_map<size_t, std::vector<uint32_t>>*
                             buckets,
                         std::vector<ValueVector>* group_cols,
                         std::vector<ValueVector>* agg_cols,
                         uint64_t* next_seq) {
  const CpuWorkModel& cpu = *spec.cpu;
  const std::vector<plan::BoundExprPtr>& group_exprs = *spec.group_exprs;
  const std::vector<plan::AggSpec>& aggs = *spec.aggs;
  const size_t num_keys = group_exprs.size();
  const size_t n = batch.NumActive();
  if (spec.group_col == nullptr) {
    for (size_t k = 0; k < num_keys; ++k) {
      group_exprs[k]->EvaluateBatch(batch, &(*group_cols)[k]);
    }
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) {
      aggs[a].arg->EvaluateBatch(batch, &(*agg_cols)[a]);
    }
  }
  events->push_back(CpuEvent(
      static_cast<double>(n) *
      (cpu.ops_per_tuple + cpu.ops_per_hash +
       (spec.group_ops + spec.agg_ops) * cpu.ops_per_operator)));
  if (num_keys == 0) {
    // Global aggregate: one group, bulk COUNT(*) (HashAggregateOp's fast
    // path).
    if (groups->empty()) {
      PartialGroup g;
      g.states.assign(aggs.size(), AggState{});
      groups->push_back(std::move(g));
    }
    PartialGroup& group = groups->front();
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& agg_spec = aggs[a];
      if (agg_spec.kind == plan::AggKind::kCountStar) {
        group.states[a].count += static_cast<int64_t>(n);
        continue;
      }
      if (agg_spec.arg == nullptr) continue;
      for (size_t p = 0; p < n; ++p) {
        group.states[a].Update(agg_spec, (*agg_cols)[a].GetValue(p));
      }
    }
    return;
  }
  auto key_at = [&](size_t k,
                    size_t p) -> std::pair<const ValueVector*, size_t> {
    if (spec.group_col != nullptr) {
      return {&batch.columns[spec.group_col->slot()], batch.sel[p]};
    }
    return {&(*group_cols)[k], p};
  };
  for (size_t p = 0; p < n; ++p) {
    // Global row sequence (morsel base + agg-input ordinal): unique per
    // row, so a key's minimum over morsels is its serial first touch.
    const uint64_t seq = (*next_seq)++;
    size_t h = kHashSeed;
    for (size_t k = 0; k < num_keys; ++k) {
      auto [vec, idx] = key_at(k, p);
      h = CombineHash(h, vec->HashAt(idx));
    }
    std::vector<uint32_t>& bucket = (*buckets)[h];
    PartialGroup* group = nullptr;
    for (uint32_t gi : bucket) {
      const std::vector<Value>& gkey = (*groups)[gi].key;
      bool equal = true;
      for (size_t k = 0; k < num_keys; ++k) {
        auto [vec, idx] = key_at(k, p);
        const bool a_null = vec->IsNull(idx);
        const bool b_null = gkey[k].is_null();
        if (a_null != b_null) {
          equal = false;
          break;
        }
        if (a_null) continue;
        if (catalog::CompareWithValue(*vec, idx, gkey[k]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        group = &(*groups)[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(static_cast<uint32_t>(groups->size()));
      PartialGroup g;
      g.key.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        auto [vec, idx] = key_at(k, p);
        g.key.push_back(vec->GetValue(idx));
      }
      g.states.assign(aggs.size(), AggState{});
      if (spec.shared_groups != nullptr) {
        g.gid = spec.shared_groups->Intern(h, g.key, seq);
      }
      groups->push_back(std::move(g));
      group = &groups->back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& agg_spec = aggs[a];
      Value v;
      if (agg_spec.arg != nullptr) v = (*agg_cols)[a].GetValue(p);
      group->states[a].Update(agg_spec, v);
    }
  }
}

}  // namespace

MorselResult RunMorsel(const MorselPipelineSpec& spec, Morsel morsel) {
  obs::ScopedTimer timer(MorselMetrics::Get().exec_latency);
  const CpuWorkModel& cpu = *spec.cpu;
  MorselResult result;
  const size_t nrec = morsel.records.size();
  const size_t nbatches =
      (nrec + Batch::kDefaultRows - 1) / Batch::kDefaultRows;
  result.batches.reserve(nbatches);

  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  std::vector<ValueVector> group_cols;
  std::vector<ValueVector> agg_cols;
  // Aggregate rows per morsel never exceed its record count, so morsel
  // sequence ranges are disjoint and ordered by dispatch index.
  uint64_t next_seq =
      static_cast<uint64_t>(morsel.index) * Morsel::kRecordsPerMorsel;
  if (spec.aggregate) {
    group_cols.resize(spec.group_exprs->size());
    agg_cols.resize(spec.aggs->size());
  }

  std::vector<std::string_view> views;
  size_t rec = 0;
  for (size_t b = 0; b < nbatches; ++b) {
    MorselResult::BatchOut out;
    out.events = std::move(morsel.batch_io[b]);
    const size_t take = std::min(Batch::kDefaultRows, nrec - rec);

    // Scan: mirror SeqScanOp's fill (the single bulk deserialize is
    // equivalent to its incremental per-page fills).
    Batch batch;
    batch.Reset(spec.scan_types, Batch::kDefaultRows);
    views.clear();
    for (size_t i = 0; i < take; ++i) {
      const Morsel::Record& r = morsel.records[rec + i];
      views.emplace_back(morsel.pages[r.page]->data() + r.offset, r.length);
    }
    Status status = catalog::DeserializeRecordsInto(
        views.data(), take, *spec.schema, &batch, 0, spec.wanted);
    if (!status.ok()) {
      result.status = std::move(status);
      return result;
    }
    out.rows_scanned = take;
    out.events.push_back(
        CpuEvent(static_cast<double>(take) * cpu.ops_per_tuple));
    batch.SetRowCount(take);
    if (spec.scan_filter != nullptr) {
      out.events.push_back(CpuEvent(static_cast<double>(take) *
                                    spec.scan_filter_ops *
                                    cpu.ops_per_operator));
      spec.scan_filter->FilterBatch(&batch);
    }

    for (const MorselPipelineSpec::Stage& stage : spec.stages) {
      const size_t n = batch.NumActive();
      if (stage.kind == MorselPipelineSpec::Stage::Kind::kFilter) {
        out.events.push_back(CpuEvent(static_cast<double>(n) * stage.ops *
                                      cpu.ops_per_operator));
        stage.filter->FilterBatch(&batch);
      } else {
        out.events.push_back(
            CpuEvent(static_cast<double>(n) *
                     (cpu.ops_per_tuple + stage.ops * cpu.ops_per_operator)));
        Batch projected;
        projected.columns.resize(stage.project->size());
        for (size_t c = 0; c < stage.project->size(); ++c) {
          (*stage.project)[c]->EvaluateBatch(batch, &projected.columns[c]);
        }
        projected.SetRowCount(n);
        batch = std::move(projected);
      }
    }

    if (spec.aggregate) {
      out.agg_rows = batch.NumActive();
      AccumulateAggregate(spec, batch, &out.events, &result.groups, &buckets,
                          &group_cols, &agg_cols, &next_seq);
    } else {
      out.batch = std::move(batch);
    }
    result.batches.push_back(std::move(out));
    rec += take;
  }

  if (spec.aggregate && spec.shared_groups != nullptr) {
    // Shared-index mode ships only (gid, states): the keys live in the
    // shared table, so drop the per-morsel copies before the result
    // crosses back to the coordinator.
    for (PartialGroup& group : result.groups) {
      group.key.clear();
      group.key.shrink_to_fit();
    }
  }

  result.trailing = std::move(morsel.trailing_io);
  return result;
}

ProbeMorselResult RunProbeMorsel(const ProbeMorselSpec& spec,
                                 uint64_t row_begin, uint64_t row_end) {
  ProbeMorselResult result;
  if (row_begin >= row_end) return result;
  const CpuWorkModel& cpu = *spec.cpu;
  const std::vector<uint64_t>& prefix = *spec.probe_prefix;
  const std::vector<Batch>& left_batches = *spec.left_batches;
  const std::vector<Batch>& right_batches = *spec.right_batches;

  // Key column k of the probe/build row at (batch, active pos) — same
  // accessors as HashJoinOp's serial loop.
  auto left_key = [&](uint32_t b, uint32_t p,
                      size_t k) -> std::pair<const ValueVector*, size_t> {
    if (spec.left_col_slot >= 0) {
      return {&left_batches[b].columns[spec.left_col_slot],
              left_batches[b].sel[p]};
    }
    return {&(*spec.left_key_cols)[b][k], p};
  };
  auto right_key = [&](uint32_t b, uint32_t p,
                       size_t k) -> std::pair<const ValueVector*, size_t> {
    if (spec.right_col_slot >= 0) {
      return {&right_batches[b].columns[spec.right_col_slot],
              right_batches[b].sel[p]};
    }
    return {&(*spec.right_key_cols)[b][k], p};
  };

  // Map the global start row to (batch, pos): the last prefix entry
  // <= row_begin names the starting batch.
  uint32_t b = static_cast<uint32_t>(
      std::upper_bound(prefix.begin(), prefix.end(), row_begin) -
      prefix.begin() - 1);
  uint32_t p = static_cast<uint32_t>(row_begin - prefix[b]);

  for (uint64_t row = row_begin; row < row_end; ++row) {
    while (row >= prefix[b + 1]) {
      ++b;
      p = 0;
    }
    const Batch& batch = left_batches[b];
    result.events.push_back(CpuEvent(cpu.ops_per_hash));
    size_t h = kHashSeed;
    bool has_null = false;
    for (size_t k = 0; k < spec.num_keys; ++k) {
      auto [vec, idx] = left_key(b, p, k);
      if (vec->IsNull(idx)) {
        has_null = true;
        break;
      }
      h = CombineHash(h, vec->HashAt(idx));
    }
    bool matched = false;
    if (!has_null) {
      auto it = spec.table->find(h);
      if (it != spec.table->end()) {
        for (const JoinRowRef& rr : it->second) {
          // Equality before any charge: collisions stay free.
          bool equal = true;
          for (size_t k = 0; k < spec.num_keys; ++k) {
            auto [lv, li] = left_key(b, p, k);
            auto [rv, ri] = right_key(rr.batch, rr.pos, k);
            if (catalog::CompareAt(*lv, li, *rv, ri) != 0) {
              equal = false;
              break;
            }
          }
          if (!equal) continue;
          result.events.push_back(CpuEvent(
              cpu.ops_per_comparison + spec.residual_ops * cpu.ops_per_operator));
          bool passes = true;
          if (spec.residual != nullptr) {
            const Batch& rb = right_batches[rr.batch];
            catalog::Tuple combined_row =
                ConcatRows(batch.RowAsTuple(batch.sel[p]),
                           rb.RowAsTuple(rb.sel[rr.pos]));
            passes = plan::EvaluatesToTrue(*spec.residual, combined_row);
          }
          if (!passes) continue;
          matched = true;
          if (spec.join_type == plan::LogicalJoinType::kInner ||
              spec.join_type == plan::LogicalJoinType::kLeft) {
            result.events.push_back(CpuEvent(cpu.ops_per_tuple));
            result.refs.push_back(JoinOutRef{JoinRowRef{b, p}, rr});
          } else if (spec.join_type == plan::LogicalJoinType::kSemi ||
                     spec.join_type == plan::LogicalJoinType::kAnti) {
            break;  // one match is enough
          }
        }
      }
    }
    switch (spec.join_type) {
      case plan::LogicalJoinType::kLeft:
        if (!matched) {
          result.events.push_back(CpuEvent(cpu.ops_per_tuple));
          result.refs.push_back(
              JoinOutRef{JoinRowRef{b, p}, JoinRowRef{kJoinNullBatch, 0}});
        }
        break;
      case plan::LogicalJoinType::kSemi:
        if (matched) {
          result.events.push_back(CpuEvent(cpu.ops_per_tuple));
          result.refs.push_back(
              JoinOutRef{JoinRowRef{b, p}, JoinRowRef{kJoinNullBatch, 0}});
        }
        break;
      case plan::LogicalJoinType::kAnti:
        if (!matched) {
          result.events.push_back(CpuEvent(cpu.ops_per_tuple));
          result.refs.push_back(
              JoinOutRef{JoinRowRef{b, p}, JoinRowRef{kJoinNullBatch, 0}});
        }
        break;
      default:
        break;
    }
    ++p;
  }
  return result;
}

}  // namespace vdb::exec
