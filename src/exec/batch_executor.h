// The vectorized batch executor: 1024-row column-major batches with
// selection vectors and lazy column materialization (DESIGN.md §12).

#ifndef VDB_EXEC_BATCH_EXECUTOR_H_
#define VDB_EXEC_BATCH_EXECUTOR_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "catalog/batch.h"
#include "catalog/schema.h"
#include "exec/budget.h"
#include "exec/execution_context.h"
#include "exec/operator_common.h"
#include "optimizer/physical.h"
#include "storage/buffer_pool.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vdb::exec {

/// The set of columns a plan actually consumes; scans skip materializing
/// columns outside it (lazy column deserialization).
using NeededColumns =
    std::unordered_set<plan::ColumnId, plan::ColumnIdHash>;

/// A pull-based streaming operator producing one Batch per call.
///
/// `Next` returns false once the operator is exhausted; a true return may
/// carry zero active rows (e.g. a batch fully consumed by a filter), which
/// downstream operators must treat as valid and keep pulling. Batches flow
/// bottom-up through the same `Batch` object wherever possible so column
/// storage (including string heap buffers) is recycled across calls.
class BatchOp {
 public:
  virtual ~BatchOp() = default;
  BatchOp(const BatchOp&) = delete;
  BatchOp& operator=(const BatchOp&) = delete;

  /// Pulls the next batch; wraps NextImpl with per-operator
  /// instrumentation (batches/rows produced, host time).
  Result<bool> Next(catalog::Batch* out);

  const char* name() const { return name_; }
  uint64_t batches_produced() const { return batches_; }
  uint64_t rows_produced() const { return rows_; }
  /// Rows this operator inspected before filtering; 0 for operators that
  /// don't filter (their selectivity is not meaningful).
  uint64_t rows_in() const { return rows_in_; }
  /// Host wall-clock seconds spent inside Next, inclusive of children.
  /// Only accumulated while the global metrics registry is enabled.
  double next_seconds() const { return next_seconds_; }

  /// Attaches the query's cooperative budget guard (nullptr = none).
  /// Every Next call becomes a check point and charges the memory budget
  /// for the batch it produced, so blocking operators that drain their
  /// child inside one NextImpl still abort at batch granularity.
  void set_budget_guard(BudgetGuard* guard) { guard_ = guard; }

 protected:
  explicit BatchOp(const char* name) : name_(name) {}

  virtual Result<bool> NextImpl(catalog::Batch* out) = 0;

  uint64_t rows_in_ = 0;

 private:
  const char* name_;
  uint64_t batches_ = 0;
  uint64_t rows_ = 0;
  double next_seconds_ = 0.0;
  BudgetGuard* guard_ = nullptr;
};

/// Vectorized executor: runs physical plans batch-at-a-time (DESIGN.md
/// §12). Charges the ExecutionContext exactly the same simulated CPU and
/// I/O as the row-at-a-time Executor — batched as per-batch lump sums —
/// and touches buffer-pool pages in the same order, so measured times
/// agree with the row engine to float rounding. Under LIMIT the subtree
/// the row engine would run with a finite row budget is delegated to the
/// row engine itself, so even data-dependent early exits charge
/// identically on both engines.
///
/// With a thread pool attached (see the constructor), eligible scan
/// pipelines — scan → filter/project chains, optionally topped by a
/// non-DISTINCT hash aggregate — run morsel-parallel on the pool while
/// every simulated charge is recorded by the workers and replayed by the
/// coordinator in serial order, keeping results and simulated time
/// bit-identical to a single-threaded run (see morsel.h).
class BatchExecutor {
 public:
  /// `pool` and `workers` enable the morsel-parallel operators: when both
  /// are non-null and `workers->size() > 1`, eligible pipelines fan out
  /// across the pool. With the defaults the executor is serial.
  explicit BatchExecutor(ExecutionContext* context,
                         storage::BufferPool* pool = nullptr,
                         util::ThreadPool* workers = nullptr)
      : context_(context), pool_(pool), workers_(workers) {}

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Runs the plan to completion and returns the result rows (in the
  /// plan root's output-column order, identical to Executor::Run).
  Result<std::vector<catalog::Tuple>> Run(const optimizer::PhysicalNode& node);

 private:
  /// Recursively builds the operator tree for `node`, registering each
  /// operator in `ops_` for post-run instrumentation. A finite `budget`
  /// (set by an enclosing LIMIT) delegates the whole subtree to the row
  /// engine for exact charge parity.
  Result<std::unique_ptr<BatchOp>> Build(const optimizer::PhysicalNode& node,
                                         size_t budget);

  /// Returns a MorselPipelineOp for `node` if it matches an eligible
  /// parallel pipeline shape, nullptr to fall back to the serial build.
  Result<std::unique_ptr<BatchOp>> TryBuildMorselPipeline(
      const optimizer::PhysicalNode& node);

  ExecutionContext* context_;
  storage::BufferPool* pool_;
  util::ThreadPool* workers_;
  std::vector<BatchOp*> ops_;
  /// Columns consumed by the plan being built; computed once per Run.
  NeededColumns needed_;
};

}  // namespace vdb::exec

#endif  // VDB_EXEC_BATCH_EXECUTOR_H_
