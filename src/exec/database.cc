#include "exec/database.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "exec/batch_executor.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "plan/rewriter.h"
#include "sql/parser.h"

namespace vdb::exec {

Database::Database() {
  disk_ = std::make_unique<storage::DiskManager>();
  pool_ = std::make_unique<storage::BufferPool>(disk_.get(),
                                                config_.buffer_pool_pages);
  catalog_ = std::make_unique<catalog::Catalog>(disk_.get(), pool_.get());
  const char* mode = std::getenv("VDB_EXEC_MODE");
  if (mode != nullptr && std::strcmp(mode, "row") == 0) {
    exec_mode_ = ExecMode::kRow;
  }
  const char* threads = std::getenv("VDB_EXEC_THREADS");
  if (threads != nullptr) {
    const int n = std::atoi(threads);
    if (n > 1) query_options_.num_threads = n;
  }
  // Spill-to-disk mechanisms are on by default; VDB_SPILL=off keeps the
  // analytic charge-only model (identical rows and charges either way).
  const char* spill = std::getenv("VDB_SPILL");
  if (spill == nullptr || std::strcmp(spill, "off") != 0) {
    spill_ = std::make_unique<SpillManager>("/tmp/vdb-spill-XXXXXX");
  }
  // Zone-map skipping is on by default; VDB_ZONEMAPS=off (or =0) disables
  // both execution-time pruning and the optimizer's skip-aware costing.
  const char* zones = std::getenv("VDB_ZONEMAPS");
  if (zones != nullptr &&
      (std::strcmp(zones, "off") == 0 || std::strcmp(zones, "0") == 0)) {
    set_zone_maps_enabled(false);
  }
}

Status Database::ApplyVmConfig(const sim::VirtualMachine& vm) {
  config_ = DbInstanceConfig::FromVm(vm);
  return pool_->Resize(config_.buffer_pool_pages);
}

Status Database::DropCaches() { return pool_->EvictAll(); }

Result<RecoveryStats> Database::EnableDurability(const std::string& dir) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durability already enabled");
  }
  if (!catalog_->Tables().empty()) {
    return Status::InvalidArgument(
        "EnableDurability requires a fresh database (recovered state "
        "would collide with existing tables)");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create durability directory: " + dir);
  }
  // Recover with no WAL attached, so redone work is not re-logged.
  VDB_ASSIGN_OR_RETURN(RecoveryStats stats, Recover(dir, catalog_.get()));
  VDB_ASSIGN_OR_RETURN(wal_, storage::WriteAheadLog::Open(WalPath(dir)));
  if (stats.checkpoint_loaded &&
      stats.checkpoint_lsn >= wal_->flushed_lsn()) {
    // The checkpoint covers the whole log: a crash interrupted the
    // post-checkpoint truncation. Complete it now.
    VDB_RETURN_NOT_OK(wal_->Reset(stats.checkpoint_lsn + 1));
  }
  durability_dir_ = dir;
  catalog_->SetWal(wal_.get());
  pool_->SetWal(wal_.get());
  return stats;
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled");
  }
  VDB_RETURN_NOT_OK(wal_->Flush());
  pool_->FlushAll();
  VDB_RETURN_NOT_OK(WriteCheckpoint(catalog_.get(), disk_.get(),
                                    CheckpointPath(durability_dir_),
                                    wal_->flushed_lsn()));
  return wal_->Reset(wal_->flushed_lsn() + 1);
}

Status Database::FlushWal() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled");
  }
  return wal_->Flush();
}

Result<plan::LogicalNodePtr> Database::PlanLogical(
    const std::string& sql) const {
  VDB_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStatement> stmt,
                       sql::ParseSelect(sql));
  plan::Planner planner(catalog_.get());
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, planner.Plan(*stmt));
  return plan::PushDownPredicates(std::move(logical));
}

Result<optimizer::PhysicalNodePtr> Database::Prepare(
    const std::string& sql) {
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, PlanLogical(sql));
  return optimizer_.Optimize(*logical);
}

Result<optimizer::PhysicalNodePtr> Database::Prepare(
    const std::string& sql,
    const optimizer::OptimizerParams& params) const {
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, PlanLogical(sql));
  // A private optimizer keeps what-if costing free of side effects on this
  // database and makes concurrent Prepare calls race-free.
  optimizer::Optimizer whatif(params);
  whatif.set_zone_maps_enabled(zone_maps_enabled_);
  return whatif.Optimize(*logical);
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const sim::VirtualMachine& vm) {
  VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan, Prepare(sql));
  return ExecutePlan(*plan, vm);
}

Result<QueryResult> Database::ExecutePlan(
    const optimizer::PhysicalNode& plan, const sim::VirtualMachine& vm) {
  // Fault injection decides before the plan runs, so a failed "run" does
  // not disturb the buffer pool the way a completed one would.
  if (noise_ != nullptr) {
    VDB_RETURN_NOT_OK(noise_->MaybeInjectFault("query execution"));
  }
  ExecutionContext context(&vm, pool_.get(), config_.work_mem_bytes);
  context.set_spill_manager(spill_.get());
  context.set_zone_maps_enabled(zone_maps_enabled_);
  // Arm the cooperative budget before any operator runs. The guard lives
  // on this frame, so an over-budget abort unwinds through the executor
  // and destroys guard and context together — nothing leaks.
  std::optional<BudgetGuard> guard;
  if (!query_options_.budget.Unlimited()) {
    guard.emplace(query_options_.budget, &context);
    context.set_budget_guard(&*guard);
  }
  std::vector<catalog::Tuple> rows;
  if (exec_mode_ == ExecMode::kBatch) {
    // Morsel-parallel execution: the pool is created lazily (and resized
    // on knob changes) so serial databases never spawn threads.
    util::ThreadPool* workers = nullptr;
    if (query_options_.num_threads > 1) {
      if (workers_ == nullptr ||
          workers_->size() != query_options_.num_threads) {
        workers_ =
            std::make_unique<util::ThreadPool>(query_options_.num_threads);
      }
      workers = workers_.get();
    }
    BatchExecutor executor(&context, pool_.get(), workers);
    VDB_ASSIGN_OR_RETURN(rows, executor.Run(plan));
  } else {
    Executor executor(&context);
    VDB_ASSIGN_OR_RETURN(rows, executor.Run(plan));
  }
  QueryResult result;
  for (const plan::OutputColumn& column : plan.output) {
    result.column_names.push_back(column.name);
  }
  result.rows = std::move(rows);
  result.elapsed_seconds = context.ElapsedSeconds();
  result.cpu_seconds = context.CpuSeconds();
  result.io_seconds = context.IoSeconds();
  result.estimated_ms = plan.total_cost_ms;
  result.physical_reads = context.PhysicalReads();
  result.pages_pruned = context.PagesPruned();
  result.pages_scanned = context.PagesScanned();
  if (result.pages_pruned > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("exec.scan.pages_pruned")
        ->Add(result.pages_pruned);
  }
  if (result.pages_scanned > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("exec.scan.pages_scanned")
        ->Add(result.pages_scanned);
  }
  result.plan_text = plan.ToString();
  if (noise_ != nullptr) {
    // Perturb the measured wall time proportionally to the noisy CPU/IO
    // mix; the component breakdown stays exact for diagnostics.
    const double base = result.cpu_seconds + result.io_seconds;
    const double noisy =
        noise_->PerturbSeconds(result.cpu_seconds, result.io_seconds);
    if (base > 0.0) result.elapsed_seconds *= noisy / base;
  }
  return result;
}

}  // namespace vdb::exec
