#include "exec/database.h"

#include <cstdlib>
#include <cstring>
#include <optional>

#include "exec/batch_executor.h"
#include "plan/planner.h"
#include "plan/rewriter.h"
#include "sql/parser.h"

namespace vdb::exec {

Database::Database() {
  disk_ = std::make_unique<storage::DiskManager>();
  pool_ = std::make_unique<storage::BufferPool>(disk_.get(),
                                                config_.buffer_pool_pages);
  catalog_ = std::make_unique<catalog::Catalog>(disk_.get(), pool_.get());
  const char* mode = std::getenv("VDB_EXEC_MODE");
  if (mode != nullptr && std::strcmp(mode, "row") == 0) {
    exec_mode_ = ExecMode::kRow;
  }
  const char* threads = std::getenv("VDB_EXEC_THREADS");
  if (threads != nullptr) {
    const int n = std::atoi(threads);
    if (n > 1) query_options_.num_threads = n;
  }
}

Status Database::ApplyVmConfig(const sim::VirtualMachine& vm) {
  config_ = DbInstanceConfig::FromVm(vm);
  return pool_->Resize(config_.buffer_pool_pages);
}

Status Database::DropCaches() { return pool_->EvictAll(); }

Result<plan::LogicalNodePtr> Database::PlanLogical(
    const std::string& sql) const {
  VDB_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStatement> stmt,
                       sql::ParseSelect(sql));
  plan::Planner planner(catalog_.get());
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, planner.Plan(*stmt));
  return plan::PushDownPredicates(std::move(logical));
}

Result<optimizer::PhysicalNodePtr> Database::Prepare(
    const std::string& sql) {
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, PlanLogical(sql));
  return optimizer_.Optimize(*logical);
}

Result<optimizer::PhysicalNodePtr> Database::Prepare(
    const std::string& sql,
    const optimizer::OptimizerParams& params) const {
  VDB_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical, PlanLogical(sql));
  // A private optimizer keeps what-if costing free of side effects on this
  // database and makes concurrent Prepare calls race-free.
  optimizer::Optimizer whatif(params);
  return whatif.Optimize(*logical);
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const sim::VirtualMachine& vm) {
  VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan, Prepare(sql));
  return ExecutePlan(*plan, vm);
}

Result<QueryResult> Database::ExecutePlan(
    const optimizer::PhysicalNode& plan, const sim::VirtualMachine& vm) {
  // Fault injection decides before the plan runs, so a failed "run" does
  // not disturb the buffer pool the way a completed one would.
  if (noise_ != nullptr) {
    VDB_RETURN_NOT_OK(noise_->MaybeInjectFault("query execution"));
  }
  ExecutionContext context(&vm, pool_.get(), config_.work_mem_bytes);
  // Arm the cooperative budget before any operator runs. The guard lives
  // on this frame, so an over-budget abort unwinds through the executor
  // and destroys guard and context together — nothing leaks.
  std::optional<BudgetGuard> guard;
  if (!query_options_.budget.Unlimited()) {
    guard.emplace(query_options_.budget, &context);
    context.set_budget_guard(&*guard);
  }
  std::vector<catalog::Tuple> rows;
  if (exec_mode_ == ExecMode::kBatch) {
    // Morsel-parallel execution: the pool is created lazily (and resized
    // on knob changes) so serial databases never spawn threads.
    util::ThreadPool* workers = nullptr;
    if (query_options_.num_threads > 1) {
      if (workers_ == nullptr ||
          workers_->size() != query_options_.num_threads) {
        workers_ =
            std::make_unique<util::ThreadPool>(query_options_.num_threads);
      }
      workers = workers_.get();
    }
    BatchExecutor executor(&context, pool_.get(), workers);
    VDB_ASSIGN_OR_RETURN(rows, executor.Run(plan));
  } else {
    Executor executor(&context);
    VDB_ASSIGN_OR_RETURN(rows, executor.Run(plan));
  }
  QueryResult result;
  for (const plan::OutputColumn& column : plan.output) {
    result.column_names.push_back(column.name);
  }
  result.rows = std::move(rows);
  result.elapsed_seconds = context.ElapsedSeconds();
  result.cpu_seconds = context.CpuSeconds();
  result.io_seconds = context.IoSeconds();
  result.estimated_ms = plan.total_cost_ms;
  result.physical_reads = context.PhysicalReads();
  result.plan_text = plan.ToString();
  if (noise_ != nullptr) {
    // Perturb the measured wall time proportionally to the noisy CPU/IO
    // mix; the component breakdown stays exact for diagnostics.
    const double base = result.cpu_seconds + result.io_seconds;
    const double noisy =
        noise_->PerturbSeconds(result.cpu_seconds, result.io_seconds);
    if (base > 0.0) result.elapsed_seconds *= noisy / base;
  }
  return result;
}

}  // namespace vdb::exec
