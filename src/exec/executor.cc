#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/page.h"
#include "util/logging.h"

namespace vdb::exec {

namespace {

using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using optimizer::PhysicalNode;
using plan::BoundExpr;
using plan::BoundExprPtr;
using plan::EvaluatesToTrue;
using plan::LogicalJoinType;
using plan::OutputColumn;

// Hashable key for grouping and hash joins: a vector of values. Grouping
// treats NULLs as equal (SQL GROUP BY semantics); join-key NULLs are
// filtered out before reaching the table.
struct ValueKey {
  std::vector<Value> values;

  bool operator==(const ValueKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool a_null = values[i].is_null();
      const bool b_null = other.values[i].is_null();
      if (a_null != b_null) return false;
      if (a_null) continue;
      if (Value::Compare(values[i], other.values[i]) != 0) return false;
    }
    return true;
  }
};

struct ValueKeyHash {
  size_t operator()(const ValueKey& key) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : key.values) {
      h = (h ^ v.Hash()) * 1099511628211ULL;
    }
    return h;
  }
};

double PagesFor(double bytes) {
  return std::max(1.0,
                  std::ceil(bytes / static_cast<double>(storage::kPageSize)));
}

// Three-way tuple comparison for ORDER BY (NULLS LAST on ascending keys).
int CompareForSort(const Value& a, const Value& b, bool ascending) {
  const bool a_null = a.is_null();
  const bool b_null = b.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = Value::Compare(a, b);
  return ascending ? cmp : -cmp;
}

// Evaluates each expression of `exprs` over `row`.
std::vector<Value> EvalAll(const std::vector<BoundExprPtr>& exprs,
                           const Tuple& row) {
  std::vector<Value> out;
  out.reserve(exprs.size());
  for (const BoundExprPtr& expr : exprs) {
    out.push_back(expr->Evaluate(row));
  }
  return out;
}

double TotalOps(const std::vector<BoundExprPtr>& exprs) {
  double ops = 0;
  for (const BoundExprPtr& expr : exprs) ops += expr->OpCount();
  return ops;
}

// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_double = false;
  Value min_value;
  Value max_value;
  bool has_min_max = false;
  std::set<std::string> distinct_seen;

  void Update(const plan::AggSpec& spec, const Value& v) {
    if (spec.kind == plan::AggKind::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (spec.distinct) {
      std::string key = std::to_string(static_cast<int>(v.type())) + ":" +
                        v.ToString();
      if (!distinct_seen.insert(std::move(key)).second) return;
    }
    ++count;
    switch (spec.kind) {
      case plan::AggKind::kSum:
      case plan::AggKind::kAvg:
        sum += v.AsDouble();
        sum_is_double =
            sum_is_double || v.type() == TypeId::kDouble;
        break;
      case plan::AggKind::kMin:
        if (!has_min_max || Value::Compare(v, min_value) < 0) min_value = v;
        if (!has_min_max || Value::Compare(v, max_value) > 0) max_value = v;
        has_min_max = true;
        break;
      case plan::AggKind::kMax:
        if (!has_min_max || Value::Compare(v, min_value) < 0) min_value = v;
        if (!has_min_max || Value::Compare(v, max_value) > 0) max_value = v;
        has_min_max = true;
        break;
      default:
        break;
    }
  }

  Value Finalize(const plan::AggSpec& spec) const {
    switch (spec.kind) {
      case plan::AggKind::kCountStar:
      case plan::AggKind::kCount:
        return Value::Int64(count);
      case plan::AggKind::kSum:
        if (count == 0) return Value::Null(spec.output_type);
        if (spec.output_type == TypeId::kDouble || sum_is_double) {
          return Value::Double(sum);
        }
        return Value::Int64(static_cast<int64_t>(sum));
      case plan::AggKind::kAvg:
        if (count == 0) return Value::Null(TypeId::kDouble);
        return Value::Double(sum / static_cast<double>(count));
      case plan::AggKind::kMin:
        return has_min_max ? min_value : Value::Null(spec.output_type);
      case plan::AggKind::kMax:
        return has_min_max ? max_value : Value::Null(spec.output_type);
    }
    return Value::Null(spec.output_type);
  }
};

Tuple ConcatRows(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Tuple NullsFor(const std::vector<OutputColumn>& columns) {
  Tuple out;
  out.reserve(columns.size());
  for (const OutputColumn& column : columns) {
    out.push_back(Value::Null(column.type));
  }
  return out;
}

}  // namespace

double ApproxTupleBytes(const Tuple& tuple) {
  double bytes = 8.0;  // row header
  for (const Value& v : tuple) {
    if (!v.is_null() && v.type() == TypeId::kString) {
      bytes += 13.0 + static_cast<double>(v.AsString().size());
    } else {
      bytes += 9.0;
    }
  }
  return bytes;
}

Result<plan::BoundExprPtr> Executor::Resolve(
    const BoundExpr& expr, const std::vector<OutputColumn>& input) {
  BoundExprPtr clone = expr.Clone();
  VDB_RETURN_NOT_OK(clone->ResolveSlots(plan::MakeLayout(input)));
  return clone;
}

Result<std::vector<Tuple>> Executor::Run(const PhysicalNode& node) {
  // Executor instrumentation (DESIGN.md §9): operator invocations and
  // tuples flowing across plan edges. One Add per operator node, never
  // per tuple, so the executor's inner loops stay unmetered.
  static obs::Counter* const operators_executed =
      obs::MetricsRegistry::Global().GetCounter("exec.operators_executed");
  static obs::Counter* const tuples_produced =
      obs::MetricsRegistry::Global().GetCounter("exec.tuples_produced");
  operators_executed->Add();
  Result<std::vector<Tuple>> rows = RunNode(node);
  if (rows.ok()) tuples_produced->Add(rows->size());
  return rows;
}

Result<std::vector<Tuple>> Executor::RunNode(const PhysicalNode& node) {
  switch (node.op) {
    case optimizer::PhysOp::kSeqScan:
      return RunSeqScan(static_cast<const optimizer::PhysSeqScan&>(node));
    case optimizer::PhysOp::kIndexScan:
      return RunIndexScan(
          static_cast<const optimizer::PhysIndexScan&>(node));
    case optimizer::PhysOp::kFilter:
      return RunFilter(static_cast<const optimizer::PhysFilter&>(node));
    case optimizer::PhysOp::kProject:
      return RunProject(static_cast<const optimizer::PhysProject&>(node));
    case optimizer::PhysOp::kSort:
      return RunSort(static_cast<const optimizer::PhysSort&>(node));
    case optimizer::PhysOp::kTopN:
      return RunTopN(static_cast<const optimizer::PhysTopN&>(node));
    case optimizer::PhysOp::kLimit:
      return RunLimit(static_cast<const optimizer::PhysLimit&>(node));
    case optimizer::PhysOp::kHashJoin:
      return RunHashJoin(static_cast<const optimizer::PhysHashJoin&>(node));
    case optimizer::PhysOp::kMergeJoin:
      return RunMergeJoin(
          static_cast<const optimizer::PhysMergeJoin&>(node));
    case optimizer::PhysOp::kNestedLoopJoin:
      return RunNestedLoopJoin(
          static_cast<const optimizer::PhysNestedLoopJoin&>(node));
    case optimizer::PhysOp::kHashAggregate:
      return RunHashAggregate(
          static_cast<const optimizer::PhysHashAggregate&>(node));
  }
  return Status::Internal("unhandled physical operator");
}

Result<std::vector<Tuple>> Executor::RunSeqScan(
    const optimizer::PhysSeqScan& scan) {
  const CpuWorkModel& cpu = context_->cpu_model();
  BoundExprPtr filter;
  if (scan.filter != nullptr) {
    VDB_ASSIGN_OR_RETURN(filter, Resolve(*scan.filter, scan.output));
  }
  const double filter_ops =
      filter != nullptr ? filter->OpCount() : 0.0;
  std::vector<Tuple> out;
  for (auto it = scan.table->heap->Begin(); it.Valid(); it.Next()) {
    context_->ChargeCpu(cpu.ops_per_tuple);
    VDB_ASSIGN_OR_RETURN(
        Tuple tuple,
        catalog::DeserializeTuple(it.record(), scan.table->schema));
    if (filter != nullptr) {
      context_->ChargeCpu(filter_ops * cpu.ops_per_operator);
      if (!EvaluatesToTrue(*filter, tuple)) continue;
    }
    out.push_back(std::move(tuple));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunIndexScan(
    const optimizer::PhysIndexScan& scan) {
  const CpuWorkModel& cpu = context_->cpu_model();
  BoundExprPtr residual;
  if (scan.residual_filter != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual,
                         Resolve(*scan.residual_filter, scan.output));
  }
  const double residual_ops =
      residual != nullptr ? residual->OpCount() : 0.0;
  std::vector<Tuple> out;
  if (scan.has_lower && scan.has_upper && scan.lower > scan.upper) {
    return out;
  }
  auto it = scan.has_lower ? scan.index->tree->SeekGE(scan.lower)
                           : scan.index->tree->Begin();
  for (; it.Valid(); it.Next()) {
    if (scan.has_upper && it.key() > scan.upper) break;
    context_->ChargeCpu(cpu.ops_per_index_entry);
    const storage::RecordId rid = storage::RecordId::Unpack(it.value());
    VDB_ASSIGN_OR_RETURN(
        std::string record,
        scan.table->heap->Get(rid, storage::AccessPattern::kRandom));
    context_->ChargeCpu(cpu.ops_per_tuple);
    VDB_ASSIGN_OR_RETURN(
        Tuple tuple, catalog::DeserializeTuple(record, scan.table->schema));
    if (residual != nullptr) {
      context_->ChargeCpu(residual_ops * cpu.ops_per_operator);
      if (!EvaluatesToTrue(*residual, tuple)) continue;
    }
    out.push_back(std::move(tuple));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunFilter(
    const optimizer::PhysFilter& filter) {
  const CpuWorkModel& cpu = context_->cpu_model();
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(*filter.children[0]));
  VDB_ASSIGN_OR_RETURN(
      BoundExprPtr condition,
      Resolve(*filter.condition, filter.children[0]->output));
  const double ops = condition->OpCount();
  std::vector<Tuple> out;
  for (Tuple& row : input) {
    context_->ChargeCpu(ops * cpu.ops_per_operator);
    if (EvaluatesToTrue(*condition, row)) out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunProject(
    const optimizer::PhysProject& project) {
  const CpuWorkModel& cpu = context_->cpu_model();
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(*project.children[0]));
  std::vector<BoundExprPtr> exprs;
  for (const BoundExprPtr& expr : project.exprs) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*expr, project.children[0]->output));
    exprs.push_back(std::move(resolved));
  }
  const double ops = TotalOps(exprs);
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (const Tuple& row : input) {
    context_->ChargeCpu(cpu.ops_per_tuple + ops * cpu.ops_per_operator);
    out.push_back(EvalAll(exprs, row));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunSort(
    const optimizer::PhysSort& sort) {
  const CpuWorkModel& cpu = context_->cpu_model();
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(*sort.children[0]));
  std::vector<BoundExprPtr> keys;
  std::vector<bool> ascending;
  for (const optimizer::PhysSort::Key& key : sort.keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*key.expr, sort.children[0]->output));
    keys.push_back(std::move(resolved));
    ascending.push_back(key.ascending);
  }
  // Precompute key vectors.
  std::vector<std::vector<Value>> key_rows;
  key_rows.reserve(input.size());
  double bytes = 0.0;
  for (const Tuple& row : input) {
    key_rows.push_back(EvalAll(keys, row));
    bytes += ApproxTupleBytes(row);
  }
  // Spill if the sort exceeds work_mem (one write + one read pass).
  if (bytes > static_cast<double>(context_->work_mem_bytes())) {
    const double pages = PagesFor(bytes);
    context_->ChargeSpillWrite(pages);
    context_->ChargeSpillRead(pages);
  }
  const double n = static_cast<double>(input.size());
  context_->ChargeCpu(2.0 * n * std::log2(std::max(2.0, n)) *
                      cpu.ops_per_comparison);
  context_->ChargeCpu(n * cpu.ops_per_tuple);  // materialization

  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       const int cmp = CompareForSort(
                           key_rows[a][k], key_rows[b][k], ascending[k]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (size_t index : order) out.push_back(std::move(input[index]));
  return out;
}

Result<std::vector<Tuple>> Executor::RunTopN(
    const optimizer::PhysTopN& top_n) {
  const CpuWorkModel& cpu = context_->cpu_model();
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(*top_n.children[0]));
  std::vector<BoundExprPtr> keys;
  std::vector<bool> ascending;
  for (const optimizer::PhysSort::Key& key : top_n.keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*key.expr, top_n.children[0]->output));
    keys.push_back(std::move(resolved));
    ascending.push_back(key.ascending);
  }
  const size_t k = static_cast<size_t>(top_n.limit);
  // (key vector, input index) entries; `worse` orders the heap so that
  // the WORST retained row is at the front, ready for replacement.
  struct Entry {
    std::vector<Value> key;
    size_t index;
  };
  auto worse = [&](const Entry& a, const Entry& b) {
    for (size_t i = 0; i < ascending.size(); ++i) {
      const int cmp = CompareForSort(a.key[i], b.key[i], ascending[i]);
      if (cmp != 0) return cmp < 0;  // "less" = better; heap keeps worst up
    }
    return a.index < b.index;  // stable tie-break: later rows are "worse"
  };
  std::vector<Entry> heap;
  heap.reserve(k + 1);
  const double n = static_cast<double>(input.size());
  context_->ChargeCpu(2.0 * n *
                      std::log2(std::max<double>(2.0, static_cast<double>(
                                                          std::max<size_t>(
                                                              k, 2)))) *
                      cpu.ops_per_comparison);
  for (size_t i = 0; i < input.size(); ++i) {
    Entry entry{EvalAll(keys, input[i]), i};
    if (heap.size() < k) {
      heap.push_back(std::move(entry));
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (k > 0 && worse(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = std::move(entry);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  context_->ChargeCpu(static_cast<double>(heap.size()) * cpu.ops_per_tuple);
  std::vector<Tuple> out;
  out.reserve(heap.size());
  for (const Entry& entry : heap) {
    out.push_back(std::move(input[entry.index]));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunLimit(
    const optimizer::PhysLimit& limit) {
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(*limit.children[0]));
  if (static_cast<int64_t>(input.size()) > limit.limit) {
    input.resize(static_cast<size_t>(limit.limit));
  }
  return input;
}

Result<std::vector<Tuple>> Executor::RunHashJoin(
    const optimizer::PhysHashJoin& join) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows, Run(left_child));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows, Run(right_child));

  std::vector<BoundExprPtr> left_keys;
  std::vector<BoundExprPtr> right_keys;
  for (const BoundExprPtr& key : join.left_keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*key, left_child.output));
    left_keys.push_back(std::move(resolved));
  }
  for (const BoundExprPtr& key : join.right_keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*key, right_child.output));
    right_keys.push_back(std::move(resolved));
  }
  BoundExprPtr residual;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.residual != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual, Resolve(*join.residual, combined));
  }
  const double residual_ops =
      residual != nullptr ? residual->OpCount() : 0.0;

  // Build side: right input.
  std::unordered_map<ValueKey, std::vector<const Tuple*>, ValueKeyHash>
      table;
  double build_bytes = 0.0;
  for (const Tuple& row : right_rows) {
    context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
    build_bytes += ApproxTupleBytes(row);
    ValueKey key{EvalAll(right_keys, row)};
    bool has_null = false;
    for (const Value& v : key.values) has_null = has_null || v.is_null();
    if (has_null) continue;  // NULL keys never join
    table[std::move(key)].push_back(&row);
  }
  if (build_bytes > static_cast<double>(context_->work_mem_bytes())) {
    // Grace hash join: both sides spilled and re-read once.
    double probe_bytes = 0.0;
    for (const Tuple& row : left_rows) probe_bytes += ApproxTupleBytes(row);
    const double pages = PagesFor(build_bytes) + PagesFor(probe_bytes);
    context_->ChargeSpillWrite(pages);
    context_->ChargeSpillRead(pages);
  }

  std::vector<Tuple> out;
  for (const Tuple& left_row : left_rows) {
    context_->ChargeCpu(cpu.ops_per_hash);
    ValueKey key{EvalAll(left_keys, left_row)};
    bool has_null = false;
    for (const Value& v : key.values) has_null = has_null || v.is_null();
    bool matched = false;
    if (!has_null) {
      auto it = table.find(key);
      if (it != table.end()) {
        for (const Tuple* right_row : it->second) {
          context_->ChargeCpu(cpu.ops_per_comparison +
                              residual_ops * cpu.ops_per_operator);
          bool passes = true;
          Tuple combined_row;
          if (residual != nullptr ||
              join.join_type == LogicalJoinType::kInner ||
              join.join_type == LogicalJoinType::kLeft) {
            combined_row = ConcatRows(left_row, *right_row);
          }
          if (residual != nullptr) {
            passes = EvaluatesToTrue(*residual, combined_row);
          }
          if (!passes) continue;
          matched = true;
          if (join.join_type == LogicalJoinType::kInner ||
              join.join_type == LogicalJoinType::kLeft) {
            context_->ChargeCpu(cpu.ops_per_tuple);
            out.push_back(std::move(combined_row));
          } else if (join.join_type == LogicalJoinType::kSemi) {
            break;  // one match is enough
          } else if (join.join_type == LogicalJoinType::kAnti) {
            break;
          }
        }
      }
    }
    switch (join.join_type) {
      case LogicalJoinType::kLeft:
        if (!matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(
              ConcatRows(left_row, NullsFor(right_child.output)));
        }
        break;
      case LogicalJoinType::kSemi:
        if (matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(left_row);
        }
        break;
      case LogicalJoinType::kAnti:
        if (!matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(left_row);
        }
        break;
      default:
        break;
    }
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunMergeJoin(
    const optimizer::PhysMergeJoin& join) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows, Run(left_child));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows, Run(right_child));
  // Children are Sort nodes planted by the optimizer, so inputs arrive in
  // key order; re-evaluate keys for the merge.
  VDB_ASSIGN_OR_RETURN(BoundExprPtr left_key,
                       Resolve(*join.left_key, left_child.output));
  VDB_ASSIGN_OR_RETURN(BoundExprPtr right_key,
                       Resolve(*join.right_key, right_child.output));
  BoundExprPtr residual;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.residual != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual, Resolve(*join.residual, combined));
  }
  const double residual_ops =
      residual != nullptr ? residual->OpCount() : 0.0;

  std::vector<Value> left_values;
  left_values.reserve(left_rows.size());
  for (const Tuple& row : left_rows) {
    left_values.push_back(left_key->Evaluate(row));
  }
  std::vector<Value> right_values;
  right_values.reserve(right_rows.size());
  for (const Tuple& row : right_rows) {
    right_values.push_back(right_key->Evaluate(row));
  }

  std::vector<Tuple> out;
  size_t li = 0;
  size_t ri = 0;
  while (li < left_rows.size() && ri < right_rows.size()) {
    context_->ChargeCpu(cpu.ops_per_comparison);
    if (left_values[li].is_null()) {
      ++li;  // NULL keys never join (sorted last)
      continue;
    }
    if (right_values[ri].is_null()) {
      ++ri;
      continue;
    }
    const int cmp = Value::Compare(left_values[li], right_values[ri]);
    if (cmp < 0) {
      ++li;
      continue;
    }
    if (cmp > 0) {
      ++ri;
      continue;
    }
    // Key group: [ri, rj) on the right with equal keys.
    size_t rj = ri;
    while (rj < right_rows.size() && !right_values[rj].is_null() &&
           Value::Compare(left_values[li], right_values[rj]) == 0) {
      ++rj;
    }
    while (li < left_rows.size() && !left_values[li].is_null() &&
           Value::Compare(left_values[li], right_values[ri]) == 0) {
      for (size_t r = ri; r < rj; ++r) {
        context_->ChargeCpu(cpu.ops_per_comparison +
                            residual_ops * cpu.ops_per_operator);
        Tuple combined_row = ConcatRows(left_rows[li], right_rows[r]);
        if (residual != nullptr &&
            !EvaluatesToTrue(*residual, combined_row)) {
          continue;
        }
        context_->ChargeCpu(cpu.ops_per_tuple);
        out.push_back(std::move(combined_row));
      }
      ++li;
    }
    ri = rj;
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunNestedLoopJoin(
    const optimizer::PhysNestedLoopJoin& join) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows, Run(left_child));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows, Run(right_child));

  BoundExprPtr condition;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.condition != nullptr) {
    VDB_ASSIGN_OR_RETURN(condition, Resolve(*join.condition, combined));
  }
  const double cond_ops =
      condition != nullptr ? condition->OpCount() : 0.0;

  // The materialized inner may exceed work_mem: write once, then re-read
  // per outer pass.
  double inner_bytes = 0.0;
  for (const Tuple& row : right_rows) inner_bytes += ApproxTupleBytes(row);
  const bool spilled =
      inner_bytes > static_cast<double>(context_->work_mem_bytes());
  const double inner_pages = PagesFor(inner_bytes);
  if (spilled) context_->ChargeSpillWrite(inner_pages);

  std::vector<Tuple> out;
  for (const Tuple& left_row : left_rows) {
    if (spilled) context_->ChargeSpillRead(inner_pages);
    bool matched = false;
    for (const Tuple& right_row : right_rows) {
      context_->ChargeCpu(cpu.ops_per_tuple +
                          cond_ops * cpu.ops_per_operator);
      Tuple combined_row = ConcatRows(left_row, right_row);
      if (condition != nullptr &&
          !EvaluatesToTrue(*condition, combined_row)) {
        continue;
      }
      matched = true;
      if (join.join_type == LogicalJoinType::kInner ||
          join.join_type == LogicalJoinType::kCross ||
          join.join_type == LogicalJoinType::kLeft) {
        out.push_back(std::move(combined_row));
      } else {
        break;  // semi/anti need only existence
      }
    }
    switch (join.join_type) {
      case LogicalJoinType::kLeft:
        if (!matched) {
          out.push_back(
              ConcatRows(left_row, NullsFor(right_child.output)));
        }
        break;
      case LogicalJoinType::kSemi:
        if (matched) out.push_back(left_row);
        break;
      case LogicalJoinType::kAnti:
        if (!matched) out.push_back(left_row);
        break;
      default:
        break;
    }
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunHashAggregate(
    const optimizer::PhysHashAggregate& aggregate) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& child = *aggregate.children[0];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(child));

  std::vector<BoundExprPtr> group_exprs;
  for (const BoundExprPtr& expr : aggregate.group_exprs) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         Resolve(*expr, child.output));
    group_exprs.push_back(std::move(resolved));
  }
  std::vector<plan::AggSpec> aggs;
  for (const plan::AggSpec& spec : aggregate.aggs) {
    plan::AggSpec resolved = spec.Clone();
    if (resolved.arg != nullptr) {
      VDB_RETURN_NOT_OK(
          resolved.arg->ResolveSlots(plan::MakeLayout(child.output)));
    }
    aggs.push_back(std::move(resolved));
  }
  const double group_ops = TotalOps(group_exprs);
  double agg_ops = 0.0;
  for (const plan::AggSpec& spec : aggs) {
    agg_ops += 1.0 + (spec.arg != nullptr ? spec.arg->OpCount() : 0);
  }

  std::unordered_map<ValueKey, std::vector<AggState>, ValueKeyHash> groups;
  std::vector<ValueKey> group_order;
  for (const Tuple& row : input) {
    context_->ChargeCpu(cpu.ops_per_tuple + cpu.ops_per_hash +
                        (group_ops + agg_ops) * cpu.ops_per_operator);
    ValueKey key{EvalAll(group_exprs, row)};
    auto [it, inserted] =
        groups.try_emplace(key, std::vector<AggState>(aggs.size()));
    if (inserted) group_order.push_back(key);
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& spec = aggs[a];
      Value v;
      if (spec.arg != nullptr) v = spec.arg->Evaluate(row);
      it->second[a].Update(spec, v);
    }
  }

  std::vector<Tuple> out;
  if (groups.empty() && group_exprs.empty()) {
    // Global aggregate over zero rows yields one row of initial values.
    Tuple row;
    for (const plan::AggSpec& spec : aggs) {
      row.push_back(AggState().Finalize(spec));
    }
    context_->ChargeCpu(cpu.ops_per_tuple);
    out.push_back(std::move(row));
    return out;
  }
  out.reserve(groups.size());
  for (const ValueKey& key : group_order) {
    context_->ChargeCpu(cpu.ops_per_tuple);
    Tuple row = key.values;
    const std::vector<AggState>& states = groups[key];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[a].Finalize(aggs[a]));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace vdb::exec
