#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "exec/budget.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "util/logging.h"

namespace vdb::exec {

namespace {

using catalog::Tuple;
using catalog::Value;
using optimizer::PhysicalNode;
using plan::BoundExpr;
using plan::BoundExprPtr;
using plan::EvaluatesToTrue;
using plan::LogicalJoinType;
using plan::OutputColumn;

// Budget-guard poll period inside long scan/probe loops (power of two
// minus one, used as a mask): frequent enough that an over-budget query
// aborts mid-scan instead of after materializing its input, rare enough
// to stay invisible next to the per-row simulated-time bookkeeping.
constexpr size_t kBudgetPollMask = 4095;

}  // namespace

Result<std::vector<Tuple>> Executor::Run(const PhysicalNode& node,
                                         size_t budget) {
  // Executor instrumentation (DESIGN.md §9): operator invocations and
  // tuples flowing across plan edges. One Add per operator node, never
  // per tuple, so the executor's inner loops stay unmetered.
  static obs::Counter* const operators_executed =
      obs::MetricsRegistry::Global().GetCounter("exec.operators_executed");
  static obs::Counter* const tuples_produced =
      obs::MetricsRegistry::Global().GetCounter("exec.tuples_produced");
  operators_executed->Add();
  // Cooperative budget enforcement (budget.h): every operator entry is a
  // check point, and each materialized result charges the memory budget
  // with a coarse row-width estimate.
  BudgetGuard* const guard = context_->budget_guard();
  if (guard != nullptr) VDB_RETURN_NOT_OK(guard->Check());
  Result<std::vector<Tuple>> rows = RunNode(node, budget);
  if (rows.ok()) {
    tuples_produced->Add(rows->size());
    if (guard != nullptr) {
      if (!rows->empty()) {
        guard->ChargeMemory(static_cast<double>(rows->size()) *
                            ApproxRowBytes(rows->front().size()));
      }
      VDB_RETURN_NOT_OK(guard->Check());
    }
  }
  return rows;
}

Result<std::vector<Tuple>> Executor::RunNode(const PhysicalNode& node,
                                             size_t budget) {
  switch (node.op) {
    case optimizer::PhysOp::kSeqScan:
      return RunSeqScan(static_cast<const optimizer::PhysSeqScan&>(node),
                        budget);
    case optimizer::PhysOp::kIndexScan:
      return RunIndexScan(static_cast<const optimizer::PhysIndexScan&>(node),
                          budget);
    case optimizer::PhysOp::kFilter:
      return RunFilter(static_cast<const optimizer::PhysFilter&>(node),
                       budget);
    case optimizer::PhysOp::kProject:
      return RunProject(static_cast<const optimizer::PhysProject&>(node),
                        budget);
    case optimizer::PhysOp::kSort:
      return RunSort(static_cast<const optimizer::PhysSort&>(node));
    case optimizer::PhysOp::kTopN:
      return RunTopN(static_cast<const optimizer::PhysTopN&>(node));
    case optimizer::PhysOp::kLimit:
      return RunLimit(static_cast<const optimizer::PhysLimit&>(node), budget);
    case optimizer::PhysOp::kHashJoin:
      return RunHashJoin(static_cast<const optimizer::PhysHashJoin&>(node));
    case optimizer::PhysOp::kMergeJoin:
      return RunMergeJoin(static_cast<const optimizer::PhysMergeJoin&>(node));
    case optimizer::PhysOp::kNestedLoopJoin:
      return RunNestedLoopJoin(
          static_cast<const optimizer::PhysNestedLoopJoin&>(node));
    case optimizer::PhysOp::kHashAggregate:
      return RunHashAggregate(
          static_cast<const optimizer::PhysHashAggregate&>(node));
  }
  return Status::Internal("unhandled physical operator");
}

Result<std::vector<Tuple>> Executor::RunSeqScan(
    const optimizer::PhysSeqScan& scan, size_t budget) {
  const CpuWorkModel& cpu = context_->cpu_model();
  std::vector<Tuple> out;
  if (budget == 0) return out;
  BoundExprPtr filter;
  if (scan.filter != nullptr) {
    VDB_ASSIGN_OR_RETURN(filter, ResolveExpr(*scan.filter, scan.output));
  }
  const double filter_ops = filter != nullptr ? filter->OpCount() : 0.0;
  BudgetGuard* const guard = context_->budget_guard();
  const storage::HeapFile& heap = *scan.table->heap;
  // Page-wise scan sharing the zone-map prune decision with the batch and
  // morsel engines (HeapFile::ComputePruneBitmap): a pruned page is
  // skipped before the fetch, so it charges no I/O and never touches the
  // buffer pool. With nothing prunable the charge sequence is identical
  // to the historical record-iterator path: one sequential fetch per
  // page, then the per-record CPU charges of that page.
  std::vector<uint8_t> prune;
  if (context_->zone_maps_enabled() && !scan.prune_spec.empty()) {
    prune = heap.ComputePruneBitmap(scan.prune_spec);
  }
  std::string page_bytes;
  std::vector<storage::HeapFile::RecordView> records;
  size_t scanned = 0;
  for (size_t page = 0; page < heap.NumPages(); ++page) {
    if (page < prune.size() && prune[page] != 0) {
      context_->AddPagesPruned(1);
      continue;
    }
    VDB_ASSIGN_OR_RETURN(bool more,
                         heap.ReadPageForScan(page, &page_bytes, &records));
    if (!more) break;
    context_->AddPagesScanned(1);
    for (const storage::HeapFile::RecordView& view : records) {
      if (guard != nullptr && (++scanned & kBudgetPollMask) == 0) {
        VDB_RETURN_NOT_OK(guard->Check());
      }
      context_->ChargeCpu(cpu.ops_per_tuple);
      VDB_ASSIGN_OR_RETURN(
          Tuple tuple,
          catalog::DeserializeTuple(view.data, scan.table->schema));
      if (filter != nullptr) {
        context_->ChargeCpu(filter_ops * cpu.ops_per_operator);
        if (!EvaluatesToTrue(*filter, tuple)) continue;
      }
      out.push_back(std::move(tuple));
      if (out.size() >= budget) return out;
    }
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunIndexScan(
    const optimizer::PhysIndexScan& scan, size_t budget) {
  const CpuWorkModel& cpu = context_->cpu_model();
  std::vector<Tuple> out;
  if (budget == 0) return out;
  BoundExprPtr residual;
  if (scan.residual_filter != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual,
                         ResolveExpr(*scan.residual_filter, scan.output));
  }
  const double residual_ops = residual != nullptr ? residual->OpCount() : 0.0;
  if (scan.has_lower && scan.has_upper && scan.lower > scan.upper) {
    return out;
  }
  auto it = scan.has_lower ? scan.index->tree->SeekGE(scan.lower)
                           : scan.index->tree->Begin();
  BudgetGuard* const guard = context_->budget_guard();
  size_t scanned = 0;
  for (; it.Valid(); it.Next()) {
    if (scan.has_upper && it.key() > scan.upper) break;
    if (guard != nullptr && (++scanned & kBudgetPollMask) == 0) {
      VDB_RETURN_NOT_OK(guard->Check());
    }
    context_->ChargeCpu(cpu.ops_per_index_entry);
    const storage::RecordId rid = storage::RecordId::Unpack(it.value());
    VDB_ASSIGN_OR_RETURN(
        std::string record,
        scan.table->heap->Get(rid, storage::AccessPattern::kRandom));
    context_->ChargeCpu(cpu.ops_per_tuple);
    VDB_ASSIGN_OR_RETURN(
        Tuple tuple, catalog::DeserializeTuple(record, scan.table->schema));
    if (residual != nullptr) {
      context_->ChargeCpu(residual_ops * cpu.ops_per_operator);
      if (!EvaluatesToTrue(*residual, tuple)) continue;
    }
    out.push_back(std::move(tuple));
    if (out.size() >= budget) break;
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunFilter(
    const optimizer::PhysFilter& filter, size_t budget) {
  const CpuWorkModel& cpu = context_->cpu_model();
  if (budget == 0) return std::vector<Tuple>{};
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                       Run(*filter.children[0], kNoBudget));
  VDB_ASSIGN_OR_RETURN(
      BoundExprPtr condition,
      ResolveExpr(*filter.condition, filter.children[0]->output));
  const double ops = condition->OpCount();
  std::vector<Tuple> out;
  for (Tuple& row : input) {
    context_->ChargeCpu(ops * cpu.ops_per_operator);
    if (EvaluatesToTrue(*condition, row)) out.push_back(std::move(row));
    if (out.size() >= budget) break;
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunProject(
    const optimizer::PhysProject& project, size_t budget) {
  const CpuWorkModel& cpu = context_->cpu_model();
  // Projection is one-to-one, so the row budget passes straight through.
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                       Run(*project.children[0], budget));
  std::vector<BoundExprPtr> exprs;
  for (const BoundExprPtr& expr : project.exprs) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*expr, project.children[0]->output));
    exprs.push_back(std::move(resolved));
  }
  const double ops = TotalOps(exprs);
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (const Tuple& row : input) {
    context_->ChargeCpu(cpu.ops_per_tuple + ops * cpu.ops_per_operator);
    out.push_back(EvalAll(exprs, row));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunSort(const optimizer::PhysSort& sort) {
  const CpuWorkModel& cpu = context_->cpu_model();
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                       Run(*sort.children[0], kNoBudget));
  std::vector<BoundExprPtr> keys;
  std::vector<bool> ascending;
  for (const optimizer::PhysSort::Key& key : sort.keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*key.expr, sort.children[0]->output));
    keys.push_back(std::move(resolved));
    ascending.push_back(key.ascending);
  }
  // Precompute key vectors.
  std::vector<std::vector<Value>> key_rows;
  key_rows.reserve(input.size());
  std::vector<double> row_bytes;
  row_bytes.reserve(input.size());
  double bytes = 0.0;
  for (const Tuple& row : input) {
    key_rows.push_back(EvalAll(keys, row));
    row_bytes.push_back(ApproxTupleBytes(row));
    bytes += row_bytes.back();
  }
  // Spill if the sort exceeds work_mem (one write + one read pass).
  const bool spills =
      bytes > static_cast<double>(context_->work_mem_bytes());
  if (spills) {
    const double pages = PagesFor(bytes);
    context_->ChargeSpillWrite(pages);
    context_->ChargeSpillRead(pages);
  }
  const double n = static_cast<double>(input.size());
  context_->ChargeCpu(2.0 * n * std::log2(std::max(2.0, n)) *
                      cpu.ops_per_comparison);
  context_->ChargeCpu(n * cpu.ops_per_tuple);  // materialization

  // With a spill provider attached, an over-work_mem sort actually runs
  // as an external merge sort; the merge's input-position tie-break
  // reproduces std::stable_sort's permutation exactly (DESIGN.md §14).
  if (spills && context_->spill_manager() != nullptr) {
    return ExternalMergeSort(context_->spill_manager(), std::move(input),
                             key_rows, ascending, row_bytes,
                             context_->work_mem_bytes());
  }

  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int cmp =
          CompareForSort(key_rows[a][k], key_rows[b][k], ascending[k]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  std::vector<Tuple> out;
  out.reserve(input.size());
  for (size_t index : order) out.push_back(std::move(input[index]));
  return out;
}

Result<std::vector<Tuple>> Executor::RunTopN(
    const optimizer::PhysTopN& top_n) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const size_t k =
      top_n.limit <= 0 ? 0 : static_cast<size_t>(top_n.limit);
  // LIMIT 0: nothing can qualify, so skip the child entirely.
  if (k == 0) return std::vector<Tuple>{};
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                       Run(*top_n.children[0], kNoBudget));
  std::vector<BoundExprPtr> keys;
  std::vector<bool> ascending;
  for (const optimizer::PhysSort::Key& key : top_n.keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*key.expr, top_n.children[0]->output));
    keys.push_back(std::move(resolved));
    ascending.push_back(key.ascending);
  }
  // (key vector, input index) entries; `worse` orders the heap so that
  // the WORST retained row is at the front, ready for replacement.
  struct Entry {
    std::vector<Value> key;
    size_t index;
  };
  auto worse = [&](const Entry& a, const Entry& b) {
    for (size_t i = 0; i < ascending.size(); ++i) {
      const int cmp = CompareForSort(a.key[i], b.key[i], ascending[i]);
      if (cmp != 0) return cmp < 0;  // "less" = better; heap keeps worst up
    }
    return a.index < b.index;  // stable tie-break: later rows are "worse"
  };
  std::vector<Entry> heap;
  heap.reserve(k + 1);
  const double n = static_cast<double>(input.size());
  context_->ChargeCpu(
      2.0 * n *
      std::log2(std::max<double>(
          2.0, static_cast<double>(std::max<size_t>(k, 2)))) *
      cpu.ops_per_comparison);
  for (size_t i = 0; i < input.size(); ++i) {
    Entry entry{EvalAll(keys, input[i]), i};
    if (heap.size() < k) {
      heap.push_back(std::move(entry));
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = std::move(entry);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  context_->ChargeCpu(static_cast<double>(heap.size()) * cpu.ops_per_tuple);
  std::vector<Tuple> out;
  out.reserve(heap.size());
  for (const Entry& entry : heap) {
    out.push_back(std::move(input[entry.index]));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunLimit(
    const optimizer::PhysLimit& limit, size_t budget) {
  const size_t cap =
      limit.limit <= 0 ? 0 : static_cast<size_t>(limit.limit);
  const size_t child_budget = std::min(budget, cap);
  // LIMIT 0 (or a zero budget from above): skip the child entirely.
  if (child_budget == 0) return std::vector<Tuple>{};
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                       Run(*limit.children[0], child_budget));
  if (input.size() > child_budget) input.resize(child_budget);
  return input;
}

Result<std::vector<Tuple>> Executor::RunHashJoin(
    const optimizer::PhysHashJoin& join) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows,
                       Run(left_child, kNoBudget));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows,
                       Run(right_child, kNoBudget));

  std::vector<BoundExprPtr> left_keys;
  std::vector<BoundExprPtr> right_keys;
  for (const BoundExprPtr& key : join.left_keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*key, left_child.output));
    left_keys.push_back(std::move(resolved));
  }
  for (const BoundExprPtr& key : join.right_keys) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*key, right_child.output));
    right_keys.push_back(std::move(resolved));
  }
  BoundExprPtr residual;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.residual != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual, ResolveExpr(*join.residual, combined));
  }
  const double residual_ops = residual != nullptr ? residual->OpCount() : 0.0;

  // Single-column keys skip EvalAll and borrow the value from the row.
  const plan::ColumnExpr* left_col = SingleColumnKey(left_keys);
  const plan::ColumnExpr* right_col = SingleColumnKey(right_keys);
  const size_t num_keys = right_keys.size();

  // With a spill provider attached, an over-work_mem build side runs as a
  // Grace partitioned join. The decision pre-scans build bytes in the
  // same accumulation order as the build loop below, so the trigger
  // agrees bit-for-bit with the analytic model; GraceHashJoin then
  // replays this function's exact charge sequence (DESIGN.md §14).
  if (context_->spill_manager() != nullptr) {
    double scan_bytes = 0.0;
    for (const Tuple& row : right_rows) scan_bytes += ApproxTupleBytes(row);
    if (scan_bytes > static_cast<double>(context_->work_mem_bytes())) {
      // Build-side charges, exactly as the in-memory build loop.
      std::vector<std::vector<Value>> grace_right(right_rows.size());
      for (uint32_t i = 0; i < right_rows.size(); ++i) {
        context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
        grace_right[i] = right_col != nullptr
                             ? std::vector<Value>{right_rows[i]
                                                      [right_col->slot()]}
                             : EvalAll(right_keys, right_rows[i]);
      }
      double probe_bytes = 0.0;
      for (const Tuple& row : left_rows) {
        probe_bytes += ApproxTupleBytes(row);
      }
      const double pages = PagesFor(scan_bytes) + PagesFor(probe_bytes);
      context_->ChargeSpillWrite(pages);
      context_->ChargeSpillRead(pages);

      std::vector<std::vector<Value>> grace_left(left_rows.size());
      for (uint32_t i = 0; i < left_rows.size(); ++i) {
        grace_left[i] =
            left_col != nullptr
                ? std::vector<Value>{left_rows[i][left_col->slot()]}
                : EvalAll(left_keys, left_rows[i]);
      }
      GraceJoinSpec spec;
      spec.join_type = join.join_type;
      spec.residual = residual.get();
      spec.residual_ops = residual_ops;
      spec.num_keys = num_keys;
      spec.left_rows = &left_rows;
      spec.left_keys = &grace_left;
      spec.right_rows = &right_rows;
      spec.right_keys = &grace_right;
      spec.poll_budget = true;
      VDB_ASSIGN_OR_RETURN(
          std::vector<GraceEmit> emits,
          GraceHashJoin(context_, context_->spill_manager(), spec));
      std::vector<Tuple> out;
      out.reserve(emits.size());
      for (const GraceEmit& emit : emits) {
        if (emit.right != kGraceNoRight) {
          out.push_back(
              ConcatRows(left_rows[emit.left], right_rows[emit.right]));
        } else if (join.join_type == LogicalJoinType::kLeft) {
          out.push_back(ConcatRows(left_rows[emit.left],
                                   NullsFor(right_child.output)));
        } else {
          out.push_back(left_rows[emit.left]);
        }
      }
      return out;
    }
  }

  // Build side: right input. Buckets map the key hash to build-row
  // indices; key equality is re-checked at probe time, so hash collisions
  // behave exactly like the exact-key map this replaces.
  std::unordered_map<size_t, std::vector<uint32_t>> table;
  table.reserve(EstimateReserve(right_child.estimated_rows));
  std::vector<std::vector<Value>> build_keys;
  if (right_col == nullptr) build_keys.resize(right_rows.size());
  double build_bytes = 0.0;
  for (uint32_t i = 0; i < right_rows.size(); ++i) {
    const Tuple& row = right_rows[i];
    context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
    build_bytes += ApproxTupleBytes(row);
    if (right_col != nullptr) {
      const Value& v = row[right_col->slot()];
      if (v.is_null()) continue;  // NULL keys never join
      table[CombineHash(kHashSeed, v.Hash())].push_back(i);
    } else {
      std::vector<Value> key = EvalAll(right_keys, row);
      bool has_null = false;
      for (const Value& v : key) has_null = has_null || v.is_null();
      if (has_null) continue;
      table[HashValues(key.data(), key.size())].push_back(i);
      build_keys[i] = std::move(key);
    }
  }
  if (build_bytes > static_cast<double>(context_->work_mem_bytes())) {
    // Grace hash join: both sides spilled and re-read once.
    double probe_bytes = 0.0;
    for (const Tuple& row : left_rows) probe_bytes += ApproxTupleBytes(row);
    const double pages = PagesFor(build_bytes) + PagesFor(probe_bytes);
    context_->ChargeSpillWrite(pages);
    context_->ChargeSpillRead(pages);
  }

  std::vector<Tuple> out;
  std::vector<Value> probe_storage;
  BudgetGuard* const guard = context_->budget_guard();
  size_t probed = 0;
  for (const Tuple& left_row : left_rows) {
    if (guard != nullptr && (++probed & kBudgetPollMask) == 0) {
      VDB_RETURN_NOT_OK(guard->Check());
    }
    context_->ChargeCpu(cpu.ops_per_hash);
    const Value* probe = nullptr;
    if (left_col != nullptr) {
      probe = &left_row[left_col->slot()];
    } else {
      probe_storage = EvalAll(left_keys, left_row);
      probe = probe_storage.data();
    }
    bool has_null = false;
    for (size_t i = 0; i < num_keys; ++i) {
      has_null = has_null || probe[i].is_null();
    }
    bool matched = false;
    if (!has_null) {
      auto it = table.find(HashValues(probe, num_keys));
      if (it != table.end()) {
        for (uint32_t ri : it->second) {
          const Tuple& right_row = right_rows[ri];
          const Value* build = right_col != nullptr
                                   ? &right_row[right_col->slot()]
                                   : build_keys[ri].data();
          // Equality before any charge: collisions stay free.
          if (!KeysEqual(probe, build, num_keys)) continue;
          context_->ChargeCpu(cpu.ops_per_comparison +
                              residual_ops * cpu.ops_per_operator);
          bool passes = true;
          Tuple combined_row;
          if (residual != nullptr ||
              join.join_type == LogicalJoinType::kInner ||
              join.join_type == LogicalJoinType::kLeft) {
            combined_row = ConcatRows(left_row, right_row);
          }
          if (residual != nullptr) {
            passes = EvaluatesToTrue(*residual, combined_row);
          }
          if (!passes) continue;
          matched = true;
          if (join.join_type == LogicalJoinType::kInner ||
              join.join_type == LogicalJoinType::kLeft) {
            context_->ChargeCpu(cpu.ops_per_tuple);
            out.push_back(std::move(combined_row));
          } else if (join.join_type == LogicalJoinType::kSemi) {
            break;  // one match is enough
          } else if (join.join_type == LogicalJoinType::kAnti) {
            break;
          }
        }
      }
    }
    switch (join.join_type) {
      case LogicalJoinType::kLeft:
        if (!matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(ConcatRows(left_row, NullsFor(right_child.output)));
        }
        break;
      case LogicalJoinType::kSemi:
        if (matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(left_row);
        }
        break;
      case LogicalJoinType::kAnti:
        if (!matched) {
          context_->ChargeCpu(cpu.ops_per_tuple);
          out.push_back(left_row);
        }
        break;
      default:
        break;
    }
  }
  return out;
}

Result<std::vector<Tuple>> Executor::RunMergeJoin(
    const optimizer::PhysMergeJoin& join) {
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows,
                       Run(left_child, kNoBudget));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows,
                       Run(right_child, kNoBudget));
  // Children are Sort nodes planted by the optimizer, so inputs arrive in
  // key order; re-evaluate keys for the merge.
  VDB_ASSIGN_OR_RETURN(BoundExprPtr left_key,
                       ResolveExpr(*join.left_key, left_child.output));
  VDB_ASSIGN_OR_RETURN(BoundExprPtr right_key,
                       ResolveExpr(*join.right_key, right_child.output));
  BoundExprPtr residual;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.residual != nullptr) {
    VDB_ASSIGN_OR_RETURN(residual, ResolveExpr(*join.residual, combined));
  }
  return MergeJoinRows(context_, left_rows, right_rows, *left_key, *right_key,
                       residual.get());
}

Result<std::vector<Tuple>> Executor::RunNestedLoopJoin(
    const optimizer::PhysNestedLoopJoin& join) {
  const PhysicalNode& left_child = *join.children[0];
  const PhysicalNode& right_child = *join.children[1];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows,
                       Run(left_child, kNoBudget));
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows,
                       Run(right_child, kNoBudget));

  BoundExprPtr condition;
  std::vector<OutputColumn> combined = left_child.output;
  combined.insert(combined.end(), right_child.output.begin(),
                  right_child.output.end());
  if (join.condition != nullptr) {
    VDB_ASSIGN_OR_RETURN(condition, ResolveExpr(*join.condition, combined));
  }
  return NestedLoopJoinRows(context_, join.join_type, right_child.output,
                            left_rows, right_rows, condition.get());
}

Result<std::vector<Tuple>> Executor::RunHashAggregate(
    const optimizer::PhysHashAggregate& aggregate) {
  const CpuWorkModel& cpu = context_->cpu_model();
  const PhysicalNode& child = *aggregate.children[0];
  VDB_ASSIGN_OR_RETURN(std::vector<Tuple> input, Run(child, kNoBudget));

  std::vector<BoundExprPtr> group_exprs;
  for (const BoundExprPtr& expr : aggregate.group_exprs) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                         ResolveExpr(*expr, child.output));
    group_exprs.push_back(std::move(resolved));
  }
  std::vector<plan::AggSpec> aggs;
  for (const plan::AggSpec& spec : aggregate.aggs) {
    plan::AggSpec resolved = spec.Clone();
    if (resolved.arg != nullptr) {
      VDB_RETURN_NOT_OK(
          resolved.arg->ResolveSlots(plan::MakeLayout(child.output)));
    }
    aggs.push_back(std::move(resolved));
  }
  const double group_ops = TotalOps(group_exprs);
  double agg_ops = 0.0;
  for (const plan::AggSpec& spec : aggs) {
    agg_ops += 1.0 + (spec.arg != nullptr ? spec.arg->OpCount() : 0);
  }

  // Single-column group keys borrow the value straight from the row.
  const plan::ColumnExpr* group_col = SingleColumnKey(group_exprs);

  // Groups live in insertion order (= output order); buckets map the key
  // hash to group indices and collisions are resolved by KeysEqual.
  struct Group {
    ValueKey key;
    std::vector<AggState> states;
  };
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  const size_t estimate = EstimateReserve(aggregate.estimated_rows);
  groups.reserve(estimate);
  buckets.reserve(estimate);
  std::vector<Value> key_storage;
  BudgetGuard* const guard = context_->budget_guard();
  size_t consumed = 0;
  for (const Tuple& row : input) {
    if (guard != nullptr && (++consumed & kBudgetPollMask) == 0) {
      VDB_RETURN_NOT_OK(guard->Check());
    }
    context_->ChargeCpu(cpu.ops_per_tuple + cpu.ops_per_hash +
                        (group_ops + agg_ops) * cpu.ops_per_operator);
    const Value* key = nullptr;
    size_t num_keys = group_exprs.size();
    if (group_col != nullptr) {
      key = &row[group_col->slot()];
    } else {
      key_storage = EvalAll(group_exprs, row);
      key = key_storage.data();
    }
    std::vector<uint32_t>& bucket = buckets[HashValues(key, num_keys)];
    Group* group = nullptr;
    for (uint32_t gi : bucket) {
      if (KeysEqual(groups[gi].key.values.data(), key, num_keys)) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(static_cast<uint32_t>(groups.size()));
      groups.push_back(Group{ValueKey{std::vector<Value>(key, key + num_keys)},
                             std::vector<AggState>(aggs.size())});
      group = &groups.back();
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const plan::AggSpec& spec = aggs[a];
      Value v;
      if (spec.arg != nullptr) v = spec.arg->Evaluate(row);
      group->states[a].Update(spec, v);
    }
  }

  // Memory-pressure model (DESIGN.md §14): the aggregation spills when
  // its hash state exceeds work_mem. Group count only grows, so this
  // final-count check matches a mid-stream check exactly.
  AggSpillStats spill_stats;
  spill_stats.groups = groups.size();
  spill_stats.input_rows = input.size();
  spill_stats.num_keys = group_exprs.size();
  spill_stats.num_aggs = aggs.size();
  spill_stats.input_cols = child.output.size();
  const bool agg_spills =
      AggSpillTriggered(spill_stats, context_->work_mem_bytes());
  if (agg_spills) ChargeAggSpill(context_, spill_stats);

  // With a spill provider, actually re-aggregate through hash partitions
  // on disk. Each group lives in one partition and sees its updates in
  // global row order, so states (and, after the first-appearance sort,
  // group order) are bit-identical to the in-memory table above.
  if (agg_spills && context_->spill_manager() != nullptr) {
    std::vector<std::vector<Value>> ext_keys;
    std::vector<std::vector<Value>> ext_args;
    ext_keys.reserve(input.size());
    ext_args.reserve(input.size());
    for (const Tuple& row : input) {
      ext_keys.push_back(group_col != nullptr
                             ? std::vector<Value>{row[group_col->slot()]}
                             : EvalAll(group_exprs, row));
      std::vector<Value> args;
      args.reserve(aggs.size());
      for (const plan::AggSpec& spec : aggs) {
        args.push_back(spec.arg != nullptr ? spec.arg->Evaluate(row)
                                           : Value());
      }
      ext_args.push_back(std::move(args));
    }
    VDB_ASSIGN_OR_RETURN(std::vector<ExternalAggGroup> external,
                         ExternalHashAggregate(context_->spill_manager(),
                                               aggs, ext_keys, ext_args));
    std::vector<Tuple> spilled_out;
    spilled_out.reserve(external.size());
    for (const ExternalAggGroup& group : external) {
      context_->ChargeCpu(cpu.ops_per_tuple);
      Tuple row = group.key;
      for (size_t a = 0; a < aggs.size(); ++a) {
        row.push_back(group.states[a].Finalize(aggs[a]));
      }
      spilled_out.push_back(std::move(row));
    }
    return spilled_out;
  }

  std::vector<Tuple> out;
  if (groups.empty() && group_exprs.empty()) {
    // Global aggregate over zero rows yields one row of initial values.
    Tuple row;
    for (const plan::AggSpec& spec : aggs) {
      row.push_back(AggState().Finalize(spec));
    }
    context_->ChargeCpu(cpu.ops_per_tuple);
    out.push_back(std::move(row));
    return out;
  }
  out.reserve(groups.size());
  for (const Group& group : groups) {
    context_->ChargeCpu(cpu.ops_per_tuple);
    Tuple row = group.key.values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(group.states[a].Finalize(aggs[a]));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace vdb::exec
