#include "exec/execution_context.h"

#include "obs/metrics.h"
#include "storage/page.h"

namespace vdb::exec {

namespace {

// Page-level I/O instrumentation (DESIGN.md §9): one relaxed atomic load
// per physical page transfer when disabled, which is noise next to the
// simulated-time bookkeeping the same call performs.
struct IoMetrics {
  obs::Counter* pages_read;
  obs::Counter* pages_written;
  obs::Counter* spill_pages;

  static const IoMetrics& Get() {
    static const IoMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return IoMetrics{registry.GetCounter("exec.pages_read"),
                       registry.GetCounter("exec.pages_written"),
                       registry.GetCounter("exec.spill_pages")};
    }();
    return metrics;
  }
};

}  // namespace

ExecutionContext::ExecutionContext(const sim::VirtualMachine* vm,
                                   storage::BufferPool* pool,
                                   uint64_t work_mem_bytes)
    : vm_(vm), pool_(pool), work_mem_bytes_(work_mem_bytes) {
  if (pool_ != nullptr) pool_->SetIoListener(this);
}

ExecutionContext::~ExecutionContext() {
  if (pool_ != nullptr) pool_->SetIoListener(nullptr);
}

void ExecutionContext::ChargeCpu(double ops) {
  if (ops <= 0.0) return;
  total_cpu_ops_ += ops;
  const double seconds = ops / vm_->EffectiveCpuOpsPerSec();
  cpu_seconds_ += seconds;
  clock_.Advance(seconds);
}

void ExecutionContext::OnPageRead(storage::AccessPattern pattern) {
  ++physical_reads_;
  IoMetrics::Get().pages_read->Add();
  const double seconds =
      pattern == storage::AccessPattern::kSequential
          ? vm_->SeqReadSecondsPerPage(storage::kPageSize)
          : vm_->RandomReadSeconds();
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  // Hypervisor I/O path CPU tax, paid from the VM's CPU allocation.
  ChargeCpu(vm_->IoCpuOpsPerPage());
}

void ExecutionContext::OnPageWrite() {
  IoMetrics::Get().pages_written->Add();
  const double seconds = vm_->WriteSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(vm_->IoCpuOpsPerPage());
}

void ExecutionContext::ChargeSpillWrite(double pages) {
  if (pages <= 0.0) return;
  IoMetrics::Get().spill_pages->Add(static_cast<uint64_t>(pages));
  const double seconds =
      pages * vm_->WriteSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(pages * vm_->IoCpuOpsPerPage());
}

void ExecutionContext::ChargeSpillRead(double pages) {
  if (pages <= 0.0) return;
  IoMetrics::Get().spill_pages->Add(static_cast<uint64_t>(pages));
  const double seconds =
      pages * vm_->SeqReadSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(pages * vm_->IoCpuOpsPerPage());
}

void ExecutionContext::Reset() {
  clock_.Reset();
  cpu_seconds_ = 0.0;
  io_seconds_ = 0.0;
  total_cpu_ops_ = 0.0;
  physical_reads_ = 0;
  pages_pruned_ = 0;
  pages_scanned_ = 0;
}

}  // namespace vdb::exec
