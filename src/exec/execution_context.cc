#include "exec/execution_context.h"

#include "storage/page.h"

namespace vdb::exec {

ExecutionContext::ExecutionContext(const sim::VirtualMachine* vm,
                                   storage::BufferPool* pool,
                                   uint64_t work_mem_bytes)
    : vm_(vm), pool_(pool), work_mem_bytes_(work_mem_bytes) {
  if (pool_ != nullptr) pool_->SetIoListener(this);
}

ExecutionContext::~ExecutionContext() {
  if (pool_ != nullptr) pool_->SetIoListener(nullptr);
}

void ExecutionContext::ChargeCpu(double ops) {
  if (ops <= 0.0) return;
  total_cpu_ops_ += ops;
  const double seconds = ops / vm_->EffectiveCpuOpsPerSec();
  cpu_seconds_ += seconds;
  clock_.Advance(seconds);
}

void ExecutionContext::OnPageRead(storage::AccessPattern pattern) {
  ++physical_reads_;
  const double seconds =
      pattern == storage::AccessPattern::kSequential
          ? vm_->SeqReadSecondsPerPage(storage::kPageSize)
          : vm_->RandomReadSeconds();
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  // Hypervisor I/O path CPU tax, paid from the VM's CPU allocation.
  ChargeCpu(vm_->IoCpuOpsPerPage());
}

void ExecutionContext::OnPageWrite() {
  const double seconds = vm_->WriteSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(vm_->IoCpuOpsPerPage());
}

void ExecutionContext::ChargeSpillWrite(double pages) {
  if (pages <= 0.0) return;
  const double seconds =
      pages * vm_->WriteSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(pages * vm_->IoCpuOpsPerPage());
}

void ExecutionContext::ChargeSpillRead(double pages) {
  if (pages <= 0.0) return;
  const double seconds =
      pages * vm_->SeqReadSecondsPerPage(storage::kPageSize);
  io_seconds_ += seconds;
  clock_.Advance(seconds);
  ChargeCpu(pages * vm_->IoCpuOpsPerPage());
}

void ExecutionContext::Reset() {
  clock_.Reset();
  cpu_seconds_ = 0.0;
  io_seconds_ = 0.0;
  total_cpu_ops_ = 0.0;
  physical_reads_ = 0;
}

}  // namespace vdb::exec
