#include "exec/budget.h"

#include <cstdio>

#include "exec/execution_context.h"

namespace vdb::exec {

namespace {

Status Exceeded(const char* axis, double used, double limit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "query exceeded its %s budget (%.6g > %.6g)",
                axis, used, limit);
  return Status::BudgetExceeded(buf);
}

}  // namespace

Status BudgetGuard::Check() const {
  if (budget_.max_cpu_seconds > 0.0) {
    const double used = context_->CpuSeconds();
    if (used > budget_.max_cpu_seconds) {
      return Exceeded("simulated-cpu-seconds", used, budget_.max_cpu_seconds);
    }
  }
  if (budget_.max_elapsed_seconds > 0.0) {
    const double used = context_->ElapsedSeconds();
    if (used > budget_.max_elapsed_seconds) {
      return Exceeded("simulated-elapsed-seconds", used,
                      budget_.max_elapsed_seconds);
    }
  }
  if (budget_.max_memory_bytes > 0.0 &&
      memory_bytes_ > budget_.max_memory_bytes) {
    return Exceeded("memory-bytes", memory_bytes_, budget_.max_memory_bytes);
  }
  if (budget_.max_host_seconds > 0.0) {
    const double used =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (used > budget_.max_host_seconds) {
      return Exceeded("host-seconds", used, budget_.max_host_seconds);
    }
  }
  return Status::OK();
}

}  // namespace vdb::exec
