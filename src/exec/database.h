// Database: the top-level engine facade — storage, catalog, optimizer,
// and both executors, with durability (WAL + crash recovery) and
// spill-to-disk attached (DESIGN.md §14).

#ifndef VDB_EXEC_DATABASE_H_
#define VDB_EXEC_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/db_config.h"
#include "exec/execution_context.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "exec/spill.h"
#include "optimizer/optimizer.h"
#include "sim/noise.h"
#include "sim/virtual_machine.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vdb::exec {

/// Which execution engine a Database runs plans with. Both engines return
/// identical rows and charge identical simulated time — including under
/// LIMIT, where the batch engine runs the capped subtree at the row
/// engine's charge granularity; the differential fuzzer cross-checks them
/// against each other.
enum class ExecMode {
  kRow,    // row-at-a-time materializing Executor
  kBatch,  // vectorized BatchExecutor (the default)
};

/// Result of one executed query.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<catalog::Tuple> rows;
  /// Simulated wall-clock inside the VM ("actual" time in paper terms).
  double elapsed_seconds = 0.0;
  double cpu_seconds = 0.0;
  double io_seconds = 0.0;
  /// The optimizer's estimate for the executed plan, in milliseconds.
  double estimated_ms = 0.0;
  /// Physical page reads performed.
  uint64_t physical_reads = 0;
  /// Zone-map scan accounting: heap pages skipped without a fetch vs.
  /// pages a sequential scan actually read (DESIGN.md §16).
  uint64_t pages_pruned = 0;
  uint64_t pages_scanned = 0;
  /// The executed plan, for EXPLAIN-style inspection.
  std::string plan_text;
};

/// One database instance: simulated disk, buffer pool, catalog, optimizer,
/// executor. Attach it to a VirtualMachine to derive its memory
/// configuration and to charge execution time against that VM's resources.
///
/// This is the top-level engine API used by the examples, the calibration
/// process, and the virtualization-design experiments.
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  catalog::Catalog* catalog() { return catalog_.get(); }
  storage::BufferPool* buffer_pool() { return pool_.get(); }
  storage::DiskManager* disk() { return disk_.get(); }
  optimizer::Optimizer* optimizer() { return &optimizer_; }
  const DbInstanceConfig& config() const { return config_; }

  /// Re-derives the instance configuration (buffer pool size, work_mem)
  /// from the VM's memory allocation. Call after changing the VM's share.
  Status ApplyVmConfig(const sim::VirtualMachine& vm);

  /// Drops the page cache, so the next query measures cold-cache behavior.
  Status DropCaches();

  /// Turns on durability against directory `dir` (created if missing) and
  /// runs crash recovery first: any checkpoint image plus surviving WAL
  /// records in `dir` are replayed into this (required fresh) database.
  /// Afterwards every catalog mutation is WAL-logged, and the buffer pool
  /// enforces write-ahead ordering on dirty-page write-back. Returns what
  /// recovery found (all zeroes for a brand-new directory).
  Result<RecoveryStats> EnableDurability(const std::string& dir);

  /// Flushes the WAL, flushes all dirty pages, writes an atomic checkpoint
  /// image, and truncates the WAL. Requires EnableDurability.
  Status Checkpoint();

  /// Forces buffered WAL records to disk (the group-commit boundary).
  /// Requires EnableDurability.
  Status FlushWal();

  /// The attached WAL, or nullptr when durability is off.
  storage::WriteAheadLog* wal() { return wal_.get(); }

  /// The spill-file provider handed to every query, or nullptr when the
  /// VDB_SPILL environment variable was "off" at construction time (the
  /// escape hatch that keeps the analytic charge-only spill model). Rows
  /// and charges are identical either way; the provider's live-file count
  /// lets tests assert that aborted queries leak nothing.
  SpillManager* spill_manager() { return spill_.get(); }

  /// Sets the optimizer's what-if parameters (the calibrated P(R)).
  void SetOptimizerParams(const optimizer::OptimizerParams& params) {
    optimizer_.SetParams(params);
  }

  /// Parses, plans, and optimizes `sql` under the current optimizer
  /// parameters without executing it (what-if mode). Returns the physical
  /// plan, whose total_cost_ms is the estimated execution time.
  Result<optimizer::PhysicalNodePtr> Prepare(const std::string& sql);

  /// Side-effect-free what-if preparation: optimizes `sql` under `params`
  /// without touching the database's own optimizer state. Safe to call
  /// concurrently from multiple threads against the same Database (each
  /// call plans with a private optimizer over the read-only catalog), so
  /// the design-search layer can evaluate many candidate allocations in
  /// parallel.
  Result<optimizer::PhysicalNodePtr> Prepare(
      const std::string& sql,
      const optimizer::OptimizerParams& params) const;

  /// Parses, optimizes, and executes `sql` inside `vm`, charging simulated
  /// time to the VM's resources. Fails with the parser/planner error for
  /// malformed SQL, or with ResourceExhausted when an installed noise
  /// model injects a transient fault (see set_noise_model).
  Result<QueryResult> Execute(const std::string& sql,
                              const sim::VirtualMachine& vm);

  /// Executes an already-prepared plan. Same error behavior as Execute.
  Result<QueryResult> ExecutePlan(const optimizer::PhysicalNode& plan,
                                  const sim::VirtualMachine& vm);

  /// Installs a measurement noise / fault-injection model (non-owning;
  /// nullptr uninstalls). While installed, every ExecutePlan either fails
  /// transiently (ResourceExhausted, decided by the model before the plan
  /// runs) or has its measured elapsed_seconds perturbed; cpu_seconds /
  /// io_seconds and all row results stay exact. `noise` must outlive its
  /// installation. Used to test calibration robustness (DESIGN.md §10).
  void set_noise_model(sim::NoiseModel* noise) { noise_ = noise; }
  sim::NoiseModel* noise_model() const { return noise_; }

  /// Selects the execution engine. Defaults to ExecMode::kBatch unless the
  /// VDB_EXEC_MODE environment variable is set to "row" at construction
  /// time (the escape hatch for comparing engines and bisecting
  /// divergences).
  void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }
  ExecMode exec_mode() const { return exec_mode_; }

  /// Per-query execution knobs, applied to every subsequent ExecutePlan.
  /// num_threads > 1 runs eligible batch-engine pipelines morsel-parallel
  /// (DESIGN.md §12) with results and simulated charges bit-identical to
  /// the serial engine. Defaults from the VDB_EXEC_THREADS environment
  /// variable at construction time; 1 otherwise.
  void set_query_options(const QueryOptions& options) {
    query_options_ = options;
  }
  const QueryOptions& query_options() const { return query_options_; }

  /// Whether scans may skip pages via zone maps and the optimizer may
  /// cost that skipping (DESIGN.md §16). Defaults on; the VDB_ZONEMAPS
  /// environment variable set to "off" or "0" at construction time is the
  /// escape hatch — rows are bitwise identical either way, only timing
  /// and page counts change. The differential fuzzer flips this between
  /// two executions of the same plan to cross-check pruning.
  void set_zone_maps_enabled(bool enabled) {
    zone_maps_enabled_ = enabled;
    optimizer_.set_zone_maps_enabled(enabled);
  }
  bool zone_maps_enabled() const { return zone_maps_enabled_; }

 private:
  /// Shared front half of Prepare: parse, bind, and rewrite `sql` into a
  /// logical plan. Read-only with respect to the database.
  Result<plan::LogicalNodePtr> PlanLogical(const std::string& sql) const;

  std::unique_ptr<storage::DiskManager> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::string durability_dir_;
  std::unique_ptr<SpillManager> spill_;
  optimizer::Optimizer optimizer_;
  DbInstanceConfig config_;
  sim::NoiseModel* noise_ = nullptr;
  ExecMode exec_mode_ = ExecMode::kBatch;
  bool zone_maps_enabled_ = true;
  QueryOptions query_options_;
  /// Lazily created batch-engine worker pool, sized to
  /// query_options_.num_threads (absent while num_threads <= 1).
  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace vdb::exec

#endif  // VDB_EXEC_DATABASE_H_
