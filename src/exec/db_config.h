// Instance memory configuration derived from the VM's allocation
// (buffer-pool pages, work_mem), plus per-query execution options.

#ifndef VDB_EXEC_DB_CONFIG_H_
#define VDB_EXEC_DB_CONFIG_H_

#include <algorithm>
#include <cstdint>

#include "exec/budget.h"
#include "sim/virtual_machine.h"
#include "storage/page.h"

namespace vdb::exec {

/// Database-instance memory configuration, derived from the memory the VM
/// grants the instance (PostgreSQL-style shared_buffers / work_mem split).
/// Changing the VM's memory share and re-deriving this config is how the
/// memory resource dimension reaches the engine.
struct DbInstanceConfig {
  uint64_t buffer_pool_pages = 1024;
  uint64_t work_mem_bytes = 8ULL << 20;

  /// Fractions of VM memory granted to the page cache and to each
  /// sort/hash operation.
  static constexpr double kBufferPoolFraction = 0.50;
  static constexpr double kWorkMemFraction = 0.05;

  static DbInstanceConfig FromVm(const sim::VirtualMachine& vm) {
    DbInstanceConfig config;
    const double memory = static_cast<double>(vm.MemoryBytes());
    config.buffer_pool_pages = std::max<uint64_t>(
        16, static_cast<uint64_t>(memory * kBufferPoolFraction /
                                  static_cast<double>(storage::kPageSize)));
    config.work_mem_bytes = std::max<uint64_t>(
        64 << 10, static_cast<uint64_t>(memory * kWorkMemFraction));
    return config;
  }
};

/// Per-query execution knobs, set on the Database and read by every
/// subsequent ExecutePlan. Distinct from DbInstanceConfig: these do not
/// derive from the VM's resources, they select how the engine uses them.
struct QueryOptions {
  /// Worker threads for the batch engine's morsel-parallel operators.
  /// 1 (the default) runs the serial code path, bit-identical to the
  /// pre-parallel engine; values < 1 are treated as 1. The row engine
  /// ignores this knob. Overridable at Database construction with the
  /// VDB_EXEC_THREADS environment variable.
  int num_threads = 1;
  /// Hard per-query resource limits enforced cooperatively inside both
  /// engines (budget.h). All-zero (the default) disables enforcement.
  QueryBudget budget;
};

}  // namespace vdb::exec

#endif  // VDB_EXEC_DB_CONFIG_H_
