// Spill-to-disk (DESIGN.md §14): SpillManager/SpillFile temp-file
// plumbing and the external merge sort, Grace hash join, and external
// hash aggregate mechanisms, all bit-identical in rows and charges to
// their in-memory counterparts.

#ifndef VDB_EXEC_SPILL_H_
#define VDB_EXEC_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "exec/execution_context.h"
#include "exec/operator_common.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "util/result.h"

namespace vdb::exec {

class SpillManager;

/// One temp file of serialized tuples, created through a SpillManager and
/// unlinked when destroyed — so an error (e.g. a budget abort) unwinding
/// through an operator releases every spill file it had open. Each row is
/// stored with a caller-chosen u64 index (its global input position);
/// values round-trip bitwise (doubles via memcpy), which is what lets the
/// spilling operators reproduce in-memory results exactly.
class SpillFile {
 public:
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one (index, row) entry.
  Status WriteRow(uint64_t index, const catalog::Tuple& row);

  /// Seeks back to the start for reading.
  Status Rewind();

  /// Reads the next entry; returns false at end of file.
  Result<bool> ReadRow(uint64_t* index, catalog::Tuple* row);

  uint64_t rows_written() const { return rows_written_; }
  const std::string& path() const { return path_; }

 private:
  friend class SpillManager;
  SpillFile(SpillManager* manager, std::string path, std::FILE* file)
      : manager_(manager), path_(std::move(path)), file_(file) {}

  SpillManager* manager_;
  std::string path_;
  std::FILE* file_;
  uint64_t rows_written_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Hands out spill files in a private temp directory (created lazily on
/// the first file, removed on destruction) and tracks live/created file
/// counts so tests can assert that aborted queries leak nothing.
class SpillManager {
 public:
  /// `dir_template` is a mkdtemp template ending in "XXXXXX"; the
  /// directory is created on first use.
  explicit SpillManager(std::string dir_template);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a fresh spill file; `hint` names it for debugging.
  Result<std::unique_ptr<SpillFile>> NewFile(const std::string& hint);

  /// Spill files currently open (0 once every query released its files).
  uint64_t live_files() const;
  uint64_t files_created() const;
  uint64_t bytes_spilled() const;

 private:
  friend class SpillFile;
  void OnFileClosed(uint64_t bytes);

  mutable std::mutex mu_;
  std::string dir_template_;
  std::string dir_;  // empty until the first file is created
  uint64_t next_id_ = 0;
  uint64_t live_files_ = 0;
  uint64_t files_created_ = 0;
  uint64_t bytes_spilled_ = 0;
};

// ---------------------------------------------------------------------------
// Spilling operator mechanisms (DESIGN.md §14). Each reproduces its
// in-memory counterpart's rows AND simulated charges bit-for-bit: the
// mechanisms do their file work charge-free, then replay the exact charge
// sequence the in-memory operator issues, so turning spill on or off (or
// crossing the work_mem trigger by one byte of working set) never changes
// what a query costs beyond the analytic spill charge itself.

/// External merge sort. Chunks rows into runs of at most `work_mem_bytes`
/// (per `row_bytes` estimates), sorts each run, writes it to a spill
/// file, and k-way merges the runs. `key_rows[i]` holds row i's sort keys.
/// The (keys, input-order) tie-break makes the merge reproduce
/// std::stable_sort exactly. Charges nothing — callers keep their
/// unchanged charge sequence.
Result<std::vector<catalog::Tuple>> ExternalMergeSort(
    SpillManager* spill, std::vector<catalog::Tuple> rows,
    const std::vector<std::vector<catalog::Value>>& key_rows,
    const std::vector<bool>& ascending, const std::vector<double>& row_bytes,
    uint64_t work_mem_bytes);

/// One emitted output row of a Grace hash join, by global input indices.
struct GraceEmit {
  uint64_t left = 0;
  uint64_t right = 0;  // kGraceNoRight: left-outer NULL row or semi/anti
};
inline constexpr uint64_t kGraceNoRight = ~0ULL;

/// Inputs to the Grace hash join core. Key vectors are per-row boxed key
/// values (rows with any NULL key never join, exactly as in-memory).
struct GraceJoinSpec {
  plan::LogicalJoinType join_type = plan::LogicalJoinType::kInner;
  const plan::BoundExpr* residual = nullptr;  // over concat(left, right)
  double residual_ops = 0.0;
  size_t num_keys = 0;
  const std::vector<catalog::Tuple>* left_rows = nullptr;
  const std::vector<std::vector<catalog::Value>>* left_keys = nullptr;
  const std::vector<catalog::Tuple>* right_rows = nullptr;
  const std::vector<std::vector<catalog::Value>>* right_keys = nullptr;
  /// Row engine polls the budget guard every 4096 probe rows; the batch
  /// engine's probe loop does not (it polls at batch boundaries).
  bool poll_budget = false;
};

/// Grace (partitioned) hash join: hash-partitions both inputs onto spill
/// files, joins partition pairs with small in-memory tables, and replays
/// the in-memory operator's charge sequence (build charges, spill charge,
/// probe/emit charges) in global row order. Returns emitted (left, right)
/// index pairs in exactly the in-memory output order. Handles all join
/// types (inner/left/semi/anti).
Result<std::vector<GraceEmit>> GraceHashJoin(ExecutionContext* context,
                                             SpillManager* spill,
                                             const GraceJoinSpec& spec);

// --- Hash-aggregate spill accounting (integer, so the row engine, the
// serial batch engine, and the morsel coordinator — which only sees
// per-morsel totals — compute the identical trigger and charge).

struct AggSpillStats {
  uint64_t groups = 0;
  uint64_t input_rows = 0;
  uint64_t num_keys = 0;
  uint64_t num_aggs = 0;
  uint64_t input_cols = 0;
};

/// Modeled aggregate hash-state footprint: per group, a fixed overhead
/// plus per-key and per-state costs.
inline uint64_t AggStateBytes(const AggSpillStats& s) {
  return s.groups * (64 + 16 * s.num_keys + 64 * s.num_aggs);
}

/// Modeled bytes of input routed through the spill partitions.
inline uint64_t AggInputBytes(const AggSpillStats& s) {
  return s.input_rows * (64 + 16 * s.input_cols);
}

/// The trigger: aggregation spills when its hash state alone exceeds
/// work_mem. State grows monotonically, so checking the final group count
/// is equivalent to checking mid-stream.
inline bool AggSpillTriggered(const AggSpillStats& s,
                              uint64_t work_mem_bytes) {
  return AggStateBytes(s) > work_mem_bytes;
}

/// Charges one write + one read pass over state plus routed input.
void ChargeAggSpill(ExecutionContext* context, const AggSpillStats& s);

/// One recovered group from the external aggregation below.
struct ExternalAggGroup {
  uint64_t first_row = 0;  // global index of the group's first input row
  std::vector<catalog::Value> key;
  std::vector<AggState> states;
};

/// External hash aggregation: routes every input row (its boxed group key
/// and aggregate argument values) to a hash partition on a spill file,
/// aggregates each partition, and returns groups sorted by first
/// appearance — the in-memory insertion order. Within a group, updates
/// happen in global row order (a group lives wholly inside one
/// partition), so every accumulated state is bit-identical to the
/// in-memory result. Charges nothing.
Result<std::vector<ExternalAggGroup>> ExternalHashAggregate(
    SpillManager* spill, const std::vector<plan::AggSpec>& aggs,
    const std::vector<std::vector<catalog::Value>>& key_rows,
    const std::vector<std::vector<catalog::Value>>& arg_rows);

}  // namespace vdb::exec

#endif  // VDB_EXEC_SPILL_H_
