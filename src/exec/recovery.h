// Crash recovery (DESIGN.md §14): checkpoint-image load plus WAL redo
// replay, entered from Database::EnableDurability.

#ifndef VDB_EXEC_RECOVERY_H_
#define VDB_EXEC_RECOVERY_H_

#include <string>

#include "catalog/catalog.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/result.h"

namespace vdb::exec {

/// Crash recovery for a durable database directory (DESIGN.md §14).
///
/// The directory holds two files:
///   wal.log         — the paged, checksummed write-ahead log
///   checkpoint.img  — a fuzzy-free full image of every table's pages,
///                     written atomically (tmp + fsync + rename)
///
/// Recovery is ARIES-lite redo-only: load the checkpoint image if present,
/// then replay WAL records with lsn > checkpoint LSN, skipping any page
/// whose recovery LSN already covers a record (idempotent, so recovering
/// twice — or crashing during recovery and starting over — is safe).
/// Indexes are not checkpointed page-by-page; their definitions are
/// recorded and every index is rebuilt from its base table after redo.

/// Where durable files live inside `dir`.
std::string WalPath(const std::string& dir);
std::string CheckpointPath(const std::string& dir);

/// Outcome of a recovery pass, for logging and tests.
struct RecoveryStats {
  bool checkpoint_loaded = false;
  /// Last LSN captured by the checkpoint image (0 = none).
  storage::Lsn checkpoint_lsn = 0;
  /// WAL scan outcome; `wal.clean == false` means the log ended in a torn
  /// or corrupt record, which recovery treats as the end of history.
  storage::WalReplayStats wal;
  uint64_t tables_recovered = 0;
  uint64_t indexes_rebuilt = 0;
};

/// Rebuilds `catalog` (which must be empty, with no WAL attached) from the
/// durable state in `dir`. Missing files mean a fresh database: returns
/// success with nothing loaded.
Result<RecoveryStats> Recover(const std::string& dir,
                              catalog::Catalog* catalog);

/// Writes a checkpoint image of every table to `path`, atomically.
/// The caller must first flush the WAL and the buffer pool so the disk
/// pages are current; `last_lsn` records the WAL horizon the image covers.
Status WriteCheckpoint(catalog::Catalog* catalog,
                       storage::DiskManager* disk, const std::string& path,
                       storage::Lsn last_lsn);

}  // namespace vdb::exec

#endif  // VDB_EXEC_RECOVERY_H_
