// ExecutionContext: the simulator's ledger — charges CPU work units and
// I/O events against a VM and advances simulated time.

#ifndef VDB_EXEC_EXECUTION_CONTEXT_H_
#define VDB_EXEC_EXECUTION_CONTEXT_H_

#include <cstdint>

#include "sim/sim_clock.h"
#include "sim/virtual_machine.h"
#include "storage/buffer_pool.h"

namespace vdb::exec {

class BudgetGuard;
class SpillManager;

/// Ground-truth CPU work constants (abstract work units). These are the
/// simulator's "physics": the executor charges them as it processes data,
/// and the calibration process (paper Section 5) rediscovers their effect
/// as optimizer parameters — it never reads these constants directly.
struct CpuWorkModel {
  // Tuned so a sequential scan is ~90% I/O-bound on the paper-testbed
  // machine (PostgreSQL-era engines scan several million simple tuples
  // per second per core), while expression-heavy queries are CPU-bound.
  double ops_per_tuple = 300.0;         // per tuple formed/copied/deserialized
  double ops_per_operator = 120.0;      // per predicate/expression operator
  double ops_per_index_entry = 180.0;   // per B+-tree entry visited
  double ops_per_hash = 150.0;          // per hash computation/probe
  double ops_per_comparison = 120.0;    // per sort comparison
};

/// Tracks simulated time for one query (or workload) running inside a VM.
///
/// Installed as the buffer pool's IoListener, it converts every physical
/// page transfer into I/O time at the VM's I/O share, plus the hypervisor's
/// per-I/O CPU tax; explicit ChargeCpu calls convert CPU work into time at
/// the VM's effective CPU rate. The result is a deterministic "measured"
/// execution time that responds to the VM's resource allocation the same
/// way the paper's Xen testbed did.
class ExecutionContext final : public storage::IoListener {
 public:
  ExecutionContext(const sim::VirtualMachine* vm,
                   storage::BufferPool* pool, uint64_t work_mem_bytes);
  ~ExecutionContext() override;

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  const sim::VirtualMachine& vm() const { return *vm_; }
  uint64_t work_mem_bytes() const { return work_mem_bytes_; }
  const CpuWorkModel& cpu_model() const { return cpu_model_; }

  /// Charges `ops` CPU work units (advances the clock immediately).
  void ChargeCpu(double ops);

  /// Charges simulated spill I/O of `pages` pages (sequential), used by
  /// sort/hash/nested-loop operators whose state exceeds work_mem. These
  /// transfers don't move real pages; only time (and the hypervisor I/O
  /// CPU tax) is charged.
  void ChargeSpillWrite(double pages);
  void ChargeSpillRead(double pages);

  // storage::IoListener:
  void OnPageRead(storage::AccessPattern pattern) override;
  void OnPageWrite() override;

  double ElapsedSeconds() const { return clock_.NowSeconds(); }
  double CpuSeconds() const { return cpu_seconds_; }
  double IoSeconds() const { return io_seconds_; }
  double TotalCpuOps() const { return total_cpu_ops_; }
  uint64_t PhysicalReads() const { return physical_reads_; }

  /// Whether scans may skip pages via zone maps. All engines consult this
  /// one flag, so flipping it (VDB_ZONEMAPS=off, or the fuzzer's
  /// same-plan cross-check) changes pruning behavior uniformly.
  void set_zone_maps_enabled(bool enabled) { zone_maps_enabled_ = enabled; }
  bool zone_maps_enabled() const { return zone_maps_enabled_; }

  /// Scan page accounting: pages skipped without a fetch vs. pages
  /// actually read by a sequential scan. Only the scan operators tick
  /// these; ExecutePlan publishes them per query and to the obs counters
  /// exec.scan.pages_pruned / exec.scan.pages_scanned.
  void AddPagesPruned(uint64_t n) { pages_pruned_ += n; }
  void AddPagesScanned(uint64_t n) { pages_scanned_ += n; }
  uint64_t PagesPruned() const { return pages_pruned_; }
  uint64_t PagesScanned() const { return pages_scanned_; }

  void Reset();

  /// Attaches a cooperative per-query budget (non-owning; nullptr
  /// detaches). Executors poll it at batch / morsel / operator boundaries
  /// (see budget.h); the context itself never reads it.
  void set_budget_guard(BudgetGuard* guard) { budget_guard_ = guard; }
  BudgetGuard* budget_guard() const { return budget_guard_; }

  /// Attaches a spill-file provider (non-owning; nullptr detaches). With
  /// one attached, sort / hash join / aggregate actually externalize their
  /// state through temp files when it exceeds work_mem; without one they
  /// keep the analytic model — charge spill I/O but stay in memory. Rows
  /// and charges are identical either way (DESIGN.md §14).
  void set_spill_manager(SpillManager* spill) { spill_manager_ = spill; }
  SpillManager* spill_manager() const { return spill_manager_; }

 private:
  const sim::VirtualMachine* vm_;
  storage::BufferPool* pool_;
  uint64_t work_mem_bytes_;
  CpuWorkModel cpu_model_;
  sim::SimClock clock_;
  double cpu_seconds_ = 0.0;
  double io_seconds_ = 0.0;
  double total_cpu_ops_ = 0.0;
  uint64_t physical_reads_ = 0;
  bool zone_maps_enabled_ = true;
  uint64_t pages_pruned_ = 0;
  uint64_t pages_scanned_ = 0;
  BudgetGuard* budget_guard_ = nullptr;
  SpillManager* spill_manager_ = nullptr;
};

}  // namespace vdb::exec

#endif  // VDB_EXEC_EXECUTION_CONTEXT_H_
