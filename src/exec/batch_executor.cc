#include "exec/batch_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/executor.h"
#include "exec/morsel.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/logging.h"

namespace vdb::exec {

namespace {

using catalog::Batch;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using catalog::ValueVector;
using optimizer::PhysicalNode;
using plan::BoundExpr;
using plan::BoundExprPtr;
using plan::EvaluatesToTrue;
using plan::LogicalJoinType;
using plan::OutputColumn;

std::vector<TypeId> DeclaredTypes(const std::vector<OutputColumn>& columns) {
  std::vector<TypeId> types;
  types.reserve(columns.size());
  for (const OutputColumn& column : columns) types.push_back(column.type);
  return types;
}

std::vector<TypeId> ColumnTypes(const Batch& batch) {
  std::vector<TypeId> types;
  types.reserve(batch.columns.size());
  for (const ValueVector& column : batch.columns) {
    types.push_back(column.type());
  }
  return types;
}

/// Byte estimate of one physical row; must agree exactly with
/// ApproxTupleBytes on the boxed row so both engines make identical spill
/// decisions (and charge identical spill I/O).
double ApproxBatchRowBytes(const Batch& batch, size_t row) {
  double bytes = 8.0;  // row header
  for (const ValueVector& column : batch.columns) {
    if (!column.IsNull(row) && column.type() == TypeId::kString) {
      bytes += 13.0 + static_cast<double>(column.GetString(row).size());
    } else {
      bytes += 9.0;
    }
  }
  return bytes;
}

/// CompareForSort over vector rows (NULLS LAST on ascending keys).
int CompareVectorsForSort(const ValueVector& a, size_t i,
                          const ValueVector& b, size_t j, bool ascending) {
  const bool a_null = a.IsNull(i);
  const bool b_null = b.IsNull(j);
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = catalog::CompareAt(a, i, b, j);
  return ascending ? cmp : -cmp;
}

/// CompareForSort of vector row `i` against a boxed value.
int CompareVectorWithValue(const ValueVector& a, size_t i, const Value& v,
                           bool ascending) {
  const bool a_null = a.IsNull(i);
  const bool b_null = v.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = catalog::CompareWithValue(a, i, v);
  return ascending ? cmp : -cmp;
}

/// Re-batches materialized row-major output (sort/join/aggregate results)
/// into column-major batches. Column vector types are inferred from the
/// values actually present — any non-null double makes the column a double
/// channel (mixed int/double arises from e.g. SUM), otherwise the first
/// non-null value's type wins, and all-null columns keep the declared type
/// — so the re-boxed values match what the row engine would have produced.
class RowsEmitter {
 public:
  void SetRows(std::vector<Tuple> rows, const std::vector<TypeId>& declared) {
    rows_ = std::move(rows);
    offset_ = 0;
    types_ = declared;
    for (size_t c = 0; c < types_.size(); ++c) {
      bool has_first = false;
      for (const Tuple& row : rows_) {
        const Value& v = row[c];
        if (v.is_null()) continue;
        if (!has_first) {
          types_[c] = v.type();
          has_first = true;
        }
        if (v.type() == TypeId::kDouble) {
          types_[c] = TypeId::kDouble;
          break;
        }
      }
    }
  }

  bool Emit(Batch* out) {
    if (offset_ >= rows_.size()) return false;
    const size_t m = std::min(Batch::kDefaultRows, rows_.size() - offset_);
    out->Reset(types_, m);
    for (size_t i = 0; i < m; ++i) {
      const Tuple& row = rows_[offset_ + i];
      for (size_t c = 0; c < types_.size(); ++c) {
        out->columns[c].SetValue(i, row[c]);
      }
    }
    out->SetRowCount(m);
    offset_ += m;
    return true;
  }

 private:
  std::vector<Tuple> rows_;
  std::vector<TypeId> types_;
  size_t offset_ = 0;
};

Result<std::vector<Tuple>> DrainToTuples(BatchOp* op) {
  std::vector<Tuple> rows;
  Batch batch;
  while (true) {
    VDB_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    for (uint32_t row : batch.sel) rows.push_back(batch.RowAsTuple(row));
  }
  return rows;
}

Status DrainBatches(BatchOp* op, std::vector<Batch>* out) {
  Batch batch;
  while (true) {
    VDB_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) return Status::OK();
    out->push_back(std::move(batch));
    batch = Batch{};
  }
}

/// Runs a budget-capped subtree on the row engine and re-batches its
/// rows. LIMIT stops at a data-dependent row mid-batch, so exact charge
/// parity with the row engine is only reachable at row granularity: the
/// subtree beneath a LIMIT executes (and charges) exactly as the row
/// engine would, which makes LIMIT queries charge identically on both
/// engines bit for bit. LIMIT 0 never pulls this operator, matching the
/// row engine's child skip.
class BudgetedExecOp final : public BatchOp {
 public:
  BudgetedExecOp(ExecutionContext* context, const PhysicalNode& node,
                 size_t budget)
      : BatchOp("row_budget"),
        context_(context),
        node_(node),
        budget_(budget) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      Executor executor(context_);
      VDB_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                           executor.Run(node_, budget_));
      emitter_.SetRows(std::move(rows), DeclaredTypes(node_.output));
    }
    return emitter_.Emit(out);
  }

 private:
  ExecutionContext* context_;
  const PhysicalNode& node_;
  const size_t budget_;
  bool built_ = false;
  RowsEmitter emitter_;
};

// ---------------------------------------------------------------------------
// Leaf operators

class SeqScanOp final : public BatchOp {
 public:
  SeqScanOp(ExecutionContext* context, const optimizer::PhysSeqScan& scan,
            BoundExprPtr filter, std::vector<uint8_t> wanted)
      : BatchOp("seq_scan"),
        context_(context),
        scan_(scan),
        filter_(std::move(filter)),
        filter_ops_(filter_ != nullptr ? filter_->OpCount() : 0.0),
        wanted_(std::move(wanted)) {
    for (const catalog::Column& column : scan.table->schema.columns()) {
      types_.push_back(column.type);
    }
    if (context->zone_maps_enabled() && !scan.prune_spec.empty()) {
      prune_ = scan.table->heap->ComputePruneBitmap(scan.prune_spec);
    }
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    const CpuWorkModel& cpu = context_->cpu_model();
    out->Reset(types_, Batch::kDefaultRows);
    size_t filled = 0;
    while (filled < Batch::kDefaultRows && !done_) {
      if (cursor_ >= records_.size()) {
        // Zone-map skip: step over provably-empty pages before fetching,
        // the same bitmap the row engine and morsel coordinator use.
        while (page_index_ < prune_.size() && prune_[page_index_] != 0) {
          context_->AddPagesPruned(1);
          ++page_index_;
        }
        VDB_ASSIGN_OR_RETURN(bool more,
                             scan_.table->heap->ReadPageForScanPinned(
                                 page_index_, &pin_, &records_));
        ++page_index_;
        cursor_ = 0;
        if (!more) {
          done_ = true;
        } else {
          context_->AddPagesScanned(1);
        }
        continue;
      }
      const size_t take =
          std::min(Batch::kDefaultRows - filled, records_.size() - cursor_);
      // Deserialize straight out of the pinned page, striding over the
      // RecordView array — no page copy, no repacked view array.
      VDB_RETURN_NOT_OK(catalog::DeserializeRecordsInto(
          &records_[cursor_].data, sizeof(storage::HeapFile::RecordView),
          take, scan_.table->schema, out, filled,
          wanted_.empty() ? nullptr : &wanted_));
      cursor_ += take;
      filled += take;
    }
    if (filled == 0 && done_) return false;
    rows_in_ += filled;
    context_->ChargeCpu(static_cast<double>(filled) * cpu.ops_per_tuple);
    out->SetRowCount(filled);
    if (filter_ != nullptr) {
      context_->ChargeCpu(static_cast<double>(filled) * filter_ops_ *
                          cpu.ops_per_operator);
      filter_->FilterBatch(out);
    }
    return true;
  }

 private:
  ExecutionContext* context_;
  const optimizer::PhysSeqScan& scan_;
  BoundExprPtr filter_;
  const double filter_ops_;
  /// Lazy-materialization mask by schema position; empty = all columns.
  std::vector<uint8_t> wanted_;
  std::vector<TypeId> types_;
  /// Per-page zone-map prune bitmap (empty when pruning is off).
  std::vector<uint8_t> prune_;
  size_t page_index_ = 0;
  size_t cursor_ = 0;
  storage::HeapFile::ScanPagePin pin_;
  std::vector<storage::HeapFile::RecordView> records_;
  bool done_ = false;
};

class IndexScanOp final : public BatchOp {
 public:
  IndexScanOp(ExecutionContext* context, const optimizer::PhysIndexScan& scan,
              BoundExprPtr residual, std::vector<uint8_t> wanted)
      : BatchOp("index_scan"),
        context_(context),
        scan_(scan),
        residual_(std::move(residual)),
        residual_ops_(residual_ != nullptr ? residual_->OpCount() : 0.0),
        wanted_(std::move(wanted)) {
    for (const catalog::Column& column : scan.table->schema.columns()) {
      types_.push_back(column.type);
    }
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    const CpuWorkModel& cpu = context_->cpu_model();
    if (!started_) {
      started_ = true;
      if (!(scan_.has_lower && scan_.has_upper && scan_.lower > scan_.upper)) {
        it_.emplace(scan_.has_lower ? scan_.index->tree->SeekGE(scan_.lower)
                                    : scan_.index->tree->Begin());
        if (!it_->Valid()) it_.reset();
      }
    }
    if (!it_.has_value()) return false;
    out->Reset(types_, Batch::kDefaultRows);
    size_t filled = 0;
    while (filled < Batch::kDefaultRows && it_.has_value()) {
      if (scan_.has_upper && it_->key() > scan_.upper) {
        it_.reset();
        break;
      }
      context_->ChargeCpu(cpu.ops_per_index_entry);
      const storage::RecordId rid = storage::RecordId::Unpack(it_->value());
      VDB_ASSIGN_OR_RETURN(
          std::string record,
          scan_.table->heap->Get(rid, storage::AccessPattern::kRandom));
      context_->ChargeCpu(cpu.ops_per_tuple);
      VDB_RETURN_NOT_OK(catalog::DeserializeTupleInto(
          record, scan_.table->schema, out, filled,
          wanted_.empty() ? nullptr : &wanted_));
      ++filled;
      it_->Next();
      if (!it_->Valid()) it_.reset();
    }
    if (filled == 0) return false;
    rows_in_ += filled;
    out->SetRowCount(filled);
    if (residual_ != nullptr) {
      context_->ChargeCpu(static_cast<double>(filled) * residual_ops_ *
                          cpu.ops_per_operator);
      residual_->FilterBatch(out);
    }
    return true;
  }

 private:
  ExecutionContext* context_;
  const optimizer::PhysIndexScan& scan_;
  BoundExprPtr residual_;
  const double residual_ops_;
  /// Lazy-materialization mask by schema position; empty = all columns.
  std::vector<uint8_t> wanted_;
  std::vector<TypeId> types_;
  bool started_ = false;
  std::optional<storage::BPlusTree::Iterator> it_;
};

// ---------------------------------------------------------------------------
// Streaming unary operators

class FilterOp final : public BatchOp {
 public:
  FilterOp(ExecutionContext* context, BoundExprPtr condition,
           std::unique_ptr<BatchOp> child)
      : BatchOp("filter"),
        context_(context),
        condition_(std::move(condition)),
        ops_(condition_->OpCount()),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    VDB_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    const size_t n = out->NumActive();
    rows_in_ += n;
    context_->ChargeCpu(static_cast<double>(n) * ops_ *
                        context_->cpu_model().ops_per_operator);
    condition_->FilterBatch(out);
    return true;  // possibly zero active rows; caller keeps pulling
  }

 private:
  ExecutionContext* context_;
  BoundExprPtr condition_;
  const double ops_;
  std::unique_ptr<BatchOp> child_;
};

class ProjectOp final : public BatchOp {
 public:
  ProjectOp(ExecutionContext* context, std::vector<BoundExprPtr> exprs,
            std::unique_ptr<BatchOp> child)
      : BatchOp("project"),
        context_(context),
        exprs_(std::move(exprs)),
        ops_(TotalOps(exprs_)),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    VDB_ASSIGN_OR_RETURN(bool more, child_->Next(&input_));
    if (!more) return false;
    const CpuWorkModel& cpu = context_->cpu_model();
    const size_t n = input_.NumActive();
    context_->ChargeCpu(static_cast<double>(n) *
                        (cpu.ops_per_tuple + ops_ * cpu.ops_per_operator));
    out->columns.resize(exprs_.size());
    for (size_t c = 0; c < exprs_.size(); ++c) {
      exprs_[c]->EvaluateBatch(input_, &out->columns[c]);
    }
    out->SetRowCount(n);
    return true;
  }

 private:
  ExecutionContext* context_;
  std::vector<BoundExprPtr> exprs_;
  const double ops_;
  std::unique_ptr<BatchOp> child_;
  Batch input_;
};

class LimitOp final : public BatchOp {
 public:
  LimitOp(int64_t limit, std::unique_ptr<BatchOp> child)
      : BatchOp("limit"),
        remaining_(limit <= 0 ? 0 : static_cast<size_t>(limit)),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    // Once satisfied, the child is never pulled again (the batch engine's
    // early exit; LIMIT 0 never pulls it at all, like the row engine).
    if (remaining_ == 0) return false;
    VDB_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) {
      remaining_ = 0;
      return false;
    }
    const size_t n = out->NumActive();
    if (n >= remaining_) {
      out->sel.resize(remaining_);
      remaining_ = 0;
    } else {
      remaining_ -= n;
    }
    return true;
  }

 private:
  size_t remaining_;
  std::unique_ptr<BatchOp> child_;
};

// ---------------------------------------------------------------------------
// Materializing operators

class SortOp final : public BatchOp {
 public:
  SortOp(ExecutionContext* context, std::vector<BoundExprPtr> keys,
         std::vector<bool> ascending, std::vector<TypeId> declared,
         std::unique_ptr<BatchOp> child)
      : BatchOp("sort"),
        context_(context),
        keys_(std::move(keys)),
        ascending_(std::move(ascending)),
        types_(std::move(declared)),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_RETURN_NOT_OK(Build());
    }
    if (spilled_) return emitter_.Emit(out);
    if (cursor_ >= order_.size()) return false;
    const size_t m = std::min(Batch::kDefaultRows, order_.size() - cursor_);
    out->Reset(types_, m);
    for (size_t i = 0; i < m; ++i) {
      const RowRef& ref = order_[cursor_ + i];
      const Batch& src = batches_[ref.batch];
      const size_t phys = src.sel[ref.pos];
      for (size_t c = 0; c < types_.size(); ++c) {
        out->columns[c].CopyFrom(src.columns[c], phys, i);
      }
    }
    out->SetRowCount(m);
    cursor_ += m;
    return true;
  }

 private:
  struct RowRef {
    uint32_t batch;
    uint32_t pos;  // index into the batch's selection vector
  };

  Status Build() {
    const CpuWorkModel& cpu = context_->cpu_model();
    Batch batch;
    double bytes = 0.0;
    size_t total = 0;
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool more, child_->Next(&batch));
      if (!more) break;
      std::vector<ValueVector> key_cols(keys_.size());
      for (size_t k = 0; k < keys_.size(); ++k) {
        keys_[k]->EvaluateBatch(batch, &key_cols[k]);
      }
      for (uint32_t row : batch.sel) {
        bytes += ApproxBatchRowBytes(batch, row);
      }
      total += batch.NumActive();
      key_cols_.push_back(std::move(key_cols));
      batches_.push_back(std::move(batch));
      batch = Batch{};
    }
    const bool spills =
        bytes > static_cast<double>(context_->work_mem_bytes());
    if (spills) {
      const double pages = PagesFor(bytes);
      context_->ChargeSpillWrite(pages);
      context_->ChargeSpillRead(pages);
    }
    const double n = static_cast<double>(total);
    context_->ChargeCpu(2.0 * n * std::log2(std::max(2.0, n)) *
                        cpu.ops_per_comparison);
    context_->ChargeCpu(n * cpu.ops_per_tuple);  // materialization
    // With a spill provider attached, run as an external merge sort over
    // the boxed rows (DESIGN.md §14); the merge's input-position
    // tie-break reproduces the stable_sort permutation below exactly.
    if (spills && context_->spill_manager() != nullptr) {
      std::vector<Tuple> rows;
      std::vector<std::vector<Value>> key_rows;
      std::vector<double> row_bytes;
      rows.reserve(total);
      key_rows.reserve(total);
      row_bytes.reserve(total);
      for (uint32_t b = 0; b < batches_.size(); ++b) {
        const Batch& src = batches_[b];
        for (uint32_t p = 0; p < src.sel.size(); ++p) {
          const size_t phys = src.sel[p];
          rows.push_back(src.RowAsTuple(phys));
          std::vector<Value> key;
          key.reserve(keys_.size());
          for (size_t k = 0; k < keys_.size(); ++k) {
            key.push_back(key_cols_[b][k].GetValue(p));
          }
          key_rows.push_back(std::move(key));
          row_bytes.push_back(ApproxBatchRowBytes(src, phys));
        }
      }
      VDB_ASSIGN_OR_RETURN(
          std::vector<Tuple> sorted,
          ExternalMergeSort(context_->spill_manager(), std::move(rows),
                            key_rows, ascending_, row_bytes,
                            context_->work_mem_bytes()));
      if (!batches_.empty()) types_ = ColumnTypes(batches_[0]);
      emitter_.SetRows(std::move(sorted), types_);
      spilled_ = true;
      batches_.clear();
      key_cols_.clear();
      return Status::OK();
    }
    order_.reserve(total);
    for (uint32_t b = 0; b < batches_.size(); ++b) {
      const uint32_t active = static_cast<uint32_t>(batches_[b].NumActive());
      for (uint32_t p = 0; p < active; ++p) {
        order_.push_back(RowRef{b, p});
      }
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [this](const RowRef& a, const RowRef& b) {
                       for (size_t k = 0; k < keys_.size(); ++k) {
                         const int cmp = CompareVectorsForSort(
                             key_cols_[a.batch][k], a.pos,
                             key_cols_[b.batch][k], b.pos, ascending_[k]);
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
    // Output column types come from the input batches; with no input the
    // declared types passed at construction stand (nothing is emitted).
    if (!batches_.empty()) types_ = ColumnTypes(batches_[0]);
    return Status::OK();
  }

  ExecutionContext* context_;
  std::vector<BoundExprPtr> keys_;
  std::vector<bool> ascending_;
  std::vector<TypeId> types_;
  std::unique_ptr<BatchOp> child_;
  bool built_ = false;
  std::vector<Batch> batches_;
  std::vector<std::vector<ValueVector>> key_cols_;
  std::vector<RowRef> order_;
  size_t cursor_ = 0;
  bool spilled_ = false;
  RowsEmitter emitter_;
};

class TopNOp final : public BatchOp {
 public:
  TopNOp(ExecutionContext* context, const optimizer::PhysTopN& node,
         std::vector<BoundExprPtr> keys, std::vector<bool> ascending,
         std::unique_ptr<BatchOp> child)
      : BatchOp("top_n"),
        context_(context),
        keys_(std::move(keys)),
        ascending_(std::move(ascending)),
        declared_(DeclaredTypes(node.output)),
        k_(node.limit <= 0 ? 0 : static_cast<size_t>(node.limit)),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_RETURN_NOT_OK(Build());
    }
    return emitter_.Emit(out);
  }

 private:
  // (boxed key vector, global input index, materialized row); `worse`
  // orders the heap identically to the row engine's, so both retain
  // exactly the same rows.
  struct Entry {
    std::vector<Value> key;
    size_t index;
    Tuple row;
  };

  Entry BoxEntry(const Batch& batch, const std::vector<ValueVector>& key_cols,
                 size_t p, size_t index) const {
    Entry entry;
    entry.key.reserve(key_cols.size());
    for (const ValueVector& kc : key_cols) {
      entry.key.push_back(kc.GetValue(p));
    }
    entry.index = index;
    entry.row = batch.RowAsTuple(batch.sel[p]);
    return entry;
  }

  Status Build() {
    // LIMIT 0: nothing can qualify, so skip the child entirely.
    if (k_ == 0) return Status::OK();
    const CpuWorkModel& cpu = context_->cpu_model();
    auto worse = [this](const Entry& a, const Entry& b) {
      for (size_t i = 0; i < ascending_.size(); ++i) {
        const int cmp = CompareForSort(a.key[i], b.key[i], ascending_[i]);
        if (cmp != 0) return cmp < 0;  // "less" = better; heap keeps worst up
      }
      return a.index < b.index;  // stable tie-break: later rows are "worse"
    };
    std::vector<Entry> heap;
    heap.reserve(k_ + 1);
    Batch batch;
    std::vector<ValueVector> key_cols(keys_.size());
    size_t total = 0;
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool more, child_->Next(&batch));
      if (!more) break;
      for (size_t k = 0; k < keys_.size(); ++k) {
        keys_[k]->EvaluateBatch(batch, &key_cols[k]);
      }
      const size_t n = batch.NumActive();
      for (size_t p = 0; p < n; ++p) {
        const size_t index = total + p;
        if (heap.size() < k_) {
          heap.push_back(BoxEntry(batch, key_cols, p, index));
          std::push_heap(heap.begin(), heap.end(), worse);
          continue;
        }
        // Compare the candidate against the worst retained row without
        // boxing. A full-key tie keeps the earlier row (the candidate's
        // index is always larger), matching the row engine's tie-break.
        const Entry& front = heap.front();
        int cmp = 0;
        for (size_t k = 0; k < keys_.size(); ++k) {
          cmp = CompareVectorWithValue(key_cols[k], p, front.key[k],
                                       ascending_[k]);
          if (cmp != 0) break;
        }
        if (cmp >= 0) continue;  // not better than the worst retained
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.back() = BoxEntry(batch, key_cols, p, index);
        std::push_heap(heap.begin(), heap.end(), worse);
      }
      total += n;
    }
    const double n = static_cast<double>(total);
    context_->ChargeCpu(
        2.0 * n *
        std::log2(std::max<double>(
            2.0, static_cast<double>(std::max<size_t>(k_, 2)))) *
        cpu.ops_per_comparison);
    std::sort_heap(heap.begin(), heap.end(), worse);
    context_->ChargeCpu(static_cast<double>(heap.size()) *
                        cpu.ops_per_tuple);
    std::vector<Tuple> rows;
    rows.reserve(heap.size());
    for (Entry& entry : heap) rows.push_back(std::move(entry.row));
    emitter_.SetRows(std::move(rows), declared_);
    return Status::OK();
  }

  ExecutionContext* context_;
  std::vector<BoundExprPtr> keys_;
  std::vector<bool> ascending_;
  std::vector<TypeId> declared_;
  const size_t k_;
  std::unique_ptr<BatchOp> child_;
  bool built_ = false;
  RowsEmitter emitter_;
};

// ---------------------------------------------------------------------------
// Joins and aggregation

class HashJoinOp final : public BatchOp {
 public:
  /// `workers` may be null (serial build). With a pool of 2+ threads the
  /// build side is hashed by parallel workers; see Build().
  HashJoinOp(ExecutionContext* context, util::ThreadPool* workers,
             const optimizer::PhysHashJoin& join,
             std::vector<BoundExprPtr> left_keys,
             std::vector<BoundExprPtr> right_keys, BoundExprPtr residual,
             std::unique_ptr<BatchOp> left, std::unique_ptr<BatchOp> right)
      : BatchOp("hash_join"),
        context_(context),
        workers_(workers),
        join_(join),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        residual_ops_(residual_ != nullptr ? residual_->OpCount() : 0.0),
        left_col_(SingleColumnKey(left_keys_)),
        right_col_(SingleColumnKey(right_keys_)),
        emit_right_(join.join_type == LogicalJoinType::kInner ||
                    join.join_type == LogicalJoinType::kLeft),
        left_(std::move(left)),
        right_(std::move(right)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_RETURN_NOT_OK(Build());
    }
    if (cursor_ >= out_refs_.size()) return false;
    const size_t m = std::min(Batch::kDefaultRows, out_refs_.size() - cursor_);
    out->Reset(types_, m);
    for (size_t i = 0; i < m; ++i) {
      const OutRef& ref = out_refs_[cursor_ + i];
      const Batch& lb = left_batches_[ref.left.batch];
      const size_t lphys = lb.sel[ref.left.pos];
      for (size_t c = 0; c < left_width_; ++c) {
        out->columns[c].CopyFrom(lb.columns[c], lphys, i);
      }
      if (!emit_right_) continue;
      if (ref.right.batch == kNullBatch) {
        for (size_t c = left_width_; c < types_.size(); ++c) {
          out->columns[c].SetNull(i);
        }
      } else {
        const Batch& rb = right_batches_[ref.right.batch];
        const size_t rphys = rb.sel[ref.right.pos];
        for (size_t c = left_width_; c < types_.size(); ++c) {
          out->columns[c].CopyFrom(rb.columns[c - left_width_], rphys, i);
        }
      }
    }
    out->SetRowCount(m);
    cursor_ += m;
    return true;
  }

 private:
  // Shared with the probe-morsel worker (morsel.h): batch index plus
  // index into the batch's selection vector; right.batch == kNullBatch
  // marks no right side (outer/semi/anti).
  using RowRef = JoinRowRef;
  using OutRef = JoinOutRef;
  static constexpr uint32_t kNullBatch = kJoinNullBatch;

  Status Build() {
    const CpuWorkModel& cpu = context_->cpu_model();
    // Drain the left (probe) child fully before the right (build) child —
    // the same page-access order as the row engine, so buffer-pool
    // eviction behaves identically.
    VDB_RETURN_NOT_OK(DrainBatches(left_.get(), &left_batches_));
    VDB_RETURN_NOT_OK(DrainBatches(right_.get(), &right_batches_));

    const size_t num_keys = right_keys_.size();
    if (left_col_ == nullptr) {
      left_key_cols_.resize(left_batches_.size());
      for (size_t b = 0; b < left_batches_.size(); ++b) {
        left_key_cols_[b].resize(left_keys_.size());
        for (size_t k = 0; k < left_keys_.size(); ++k) {
          left_keys_[k]->EvaluateBatch(left_batches_[b],
                                       &left_key_cols_[b][k]);
        }
      }
    }
    if (right_col_ == nullptr) {
      right_key_cols_.resize(right_batches_.size());
      for (size_t b = 0; b < right_batches_.size(); ++b) {
        right_key_cols_[b].resize(right_keys_.size());
        for (size_t k = 0; k < right_keys_.size(); ++k) {
          right_keys_[k]->EvaluateBatch(right_batches_[b],
                                        &right_key_cols_[b][k]);
        }
      }
    }
    // Key column k of the row at (batch, active pos): single-column keys
    // borrow the stored input column (physical index), computed keys use
    // the dense per-batch key vectors.
    auto left_key = [&](uint32_t b, uint32_t p,
                        size_t k) -> std::pair<const ValueVector*, size_t> {
      if (left_col_ != nullptr) {
        return {&left_batches_[b].columns[left_col_->slot()],
                left_batches_[b].sel[p]};
      }
      return {&left_key_cols_[b][k], p};
    };
    auto right_key = [&](uint32_t b, uint32_t p,
                         size_t k) -> std::pair<const ValueVector*, size_t> {
      if (right_col_ != nullptr) {
        return {&right_batches_[b].columns[right_col_->slot()],
                right_batches_[b].sel[p]};
      }
      return {&right_key_cols_[b][k], p};
    };

    // With a spill provider attached, an over-work_mem build side runs as
    // a Grace partitioned join. The decision pre-scans build bytes in the
    // same accumulation order as the build loop below (bitwise-identical
    // trigger); GraceHashJoin replays the serial charge sequence exactly
    // (DESIGN.md §14).
    if (context_->spill_manager() != nullptr) {
      double scan_bytes = 0.0;
      for (const Batch& batch : right_batches_) {
        for (uint32_t row : batch.sel) {
          scan_bytes += ApproxBatchRowBytes(batch, row);
        }
      }
      if (scan_bytes > static_cast<double>(context_->work_mem_bytes())) {
        // Build-side charges, exactly as the build loop below.
        std::vector<RowRef> right_refs;
        std::vector<Tuple> grace_right_rows;
        std::vector<std::vector<Value>> grace_right_keys;
        for (uint32_t b = 0; b < right_batches_.size(); ++b) {
          const Batch& batch = right_batches_[b];
          const uint32_t active = static_cast<uint32_t>(batch.NumActive());
          for (uint32_t p = 0; p < active; ++p) {
            context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
            right_refs.push_back(RowRef{b, p});
            grace_right_rows.push_back(batch.RowAsTuple(batch.sel[p]));
            std::vector<Value> key;
            key.reserve(num_keys);
            for (size_t k = 0; k < num_keys; ++k) {
              auto [vec, idx] = right_key(b, p, k);
              key.push_back(vec->GetValue(idx));
            }
            grace_right_keys.push_back(std::move(key));
          }
        }
        double probe_bytes = 0.0;
        for (const Batch& batch : left_batches_) {
          for (uint32_t row : batch.sel) {
            probe_bytes += ApproxBatchRowBytes(batch, row);
          }
        }
        const double pages = PagesFor(scan_bytes) + PagesFor(probe_bytes);
        context_->ChargeSpillWrite(pages);
        context_->ChargeSpillRead(pages);

        std::vector<RowRef> left_refs;
        std::vector<Tuple> grace_left_rows;
        std::vector<std::vector<Value>> grace_left_keys;
        for (uint32_t b = 0; b < left_batches_.size(); ++b) {
          const Batch& batch = left_batches_[b];
          const uint32_t active = static_cast<uint32_t>(batch.NumActive());
          for (uint32_t p = 0; p < active; ++p) {
            left_refs.push_back(RowRef{b, p});
            grace_left_rows.push_back(batch.RowAsTuple(batch.sel[p]));
            std::vector<Value> key;
            key.reserve(num_keys);
            for (size_t k = 0; k < num_keys; ++k) {
              auto [vec, idx] = left_key(b, p, k);
              key.push_back(vec->GetValue(idx));
            }
            grace_left_keys.push_back(std::move(key));
          }
        }
        GraceJoinSpec spec;
        spec.join_type = join_.join_type;
        spec.residual = residual_.get();
        spec.residual_ops = residual_ops_;
        spec.num_keys = num_keys;
        spec.left_rows = &grace_left_rows;
        spec.left_keys = &grace_left_keys;
        spec.right_rows = &grace_right_rows;
        spec.right_keys = &grace_right_keys;
        spec.poll_budget = false;  // this probe loop polls per batch
        VDB_ASSIGN_OR_RETURN(
            std::vector<GraceEmit> emits,
            GraceHashJoin(context_, context_->spill_manager(), spec));
        out_refs_.reserve(emits.size());
        for (const GraceEmit& emit : emits) {
          out_refs_.push_back(
              OutRef{left_refs[emit.left],
                     emit.right == kGraceNoRight ? RowRef{kNullBatch, 0}
                                                 : right_refs[emit.right]});
        }
        types_ = left_batches_.empty()
                     ? DeclaredTypes(join_.children[0]->output)
                     : ColumnTypes(left_batches_[0]);
        left_width_ = types_.size();
        if (emit_right_) {
          const std::vector<TypeId> right_types =
              right_batches_.empty()
                  ? DeclaredTypes(join_.children[1]->output)
                  : ColumnTypes(right_batches_[0]);
          types_.insert(types_.end(), right_types.begin(),
                        right_types.end());
        }
        return Status::OK();
      }
    }

    // Build side: right input. Buckets map the key hash to build-row
    // refs; key equality is re-checked at probe time, so hash collisions
    // behave exactly like the row engine's exact-key map.
    std::unordered_map<size_t, std::vector<RowRef>> table;
    table.reserve(EstimateReserve(join_.children[1]->estimated_rows));
    double build_bytes = 0.0;
    const bool parallel_build = workers_ != nullptr && workers_->size() > 1 &&
                                right_batches_.size() > 1;
    if (parallel_build) {
      // Workers hash contiguous batch ranges into local tables while the
      // coordinator runs the unchanged serial per-row charge/spill-bytes
      // loop (identical charge sequence, bitwise-identical spill
      // decision). Merging per-hash buckets in worker index order
      // restores the global build-row order, so the finished table —
      // including the first-match row semi/anti joins see — is exactly
      // the serial one.
      using LocalTable = std::unordered_map<size_t, std::vector<RowRef>>;
      const size_t num_workers = std::min(
          static_cast<size_t>(workers_->size()), right_batches_.size());
      const size_t per_worker =
          (right_batches_.size() + num_workers - 1) / num_workers;
      std::vector<std::future<LocalTable>> futures;
      for (size_t w = 0; w < num_workers; ++w) {
        const uint32_t begin = static_cast<uint32_t>(w * per_worker);
        const uint32_t end = static_cast<uint32_t>(
            std::min(right_batches_.size(), (w + 1) * per_worker));
        if (begin >= end) break;
        futures.push_back(
            workers_->Submit([this, begin, end, num_keys, &right_key]() {
              LocalTable local;
              for (uint32_t b = begin; b < end; ++b) {
                const uint32_t active =
                    static_cast<uint32_t>(right_batches_[b].NumActive());
                for (uint32_t p = 0; p < active; ++p) {
                  size_t h = kHashSeed;
                  bool has_null = false;
                  for (size_t k = 0; k < num_keys; ++k) {
                    auto [vec, idx] = right_key(b, p, k);
                    if (vec->IsNull(idx)) {
                      has_null = true;
                      break;
                    }
                    h = CombineHash(h, vec->HashAt(idx));
                  }
                  if (has_null) continue;  // NULL keys never join
                  local[h].push_back(RowRef{b, p});
                }
              }
              return local;
            }));
      }
      for (uint32_t b = 0; b < right_batches_.size(); ++b) {
        const Batch& batch = right_batches_[b];
        const uint32_t active = static_cast<uint32_t>(batch.NumActive());
        for (uint32_t p = 0; p < active; ++p) {
          context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
          build_bytes += ApproxBatchRowBytes(batch, batch.sel[p]);
        }
      }
      for (std::future<LocalTable>& future : futures) {
        LocalTable local = future.get();
        for (auto& [h, refs] : local) {
          std::vector<RowRef>& dst = table[h];
          dst.insert(dst.end(), refs.begin(), refs.end());
        }
      }
    } else {
      for (uint32_t b = 0; b < right_batches_.size(); ++b) {
        const Batch& batch = right_batches_[b];
        const uint32_t active = static_cast<uint32_t>(batch.NumActive());
        for (uint32_t p = 0; p < active; ++p) {
          context_->ChargeCpu(cpu.ops_per_hash + cpu.ops_per_tuple);
          build_bytes += ApproxBatchRowBytes(batch, batch.sel[p]);
          size_t h = kHashSeed;
          bool has_null = false;
          for (size_t k = 0; k < num_keys; ++k) {
            auto [vec, idx] = right_key(b, p, k);
            if (vec->IsNull(idx)) {
              has_null = true;
              break;
            }
            h = CombineHash(h, vec->HashAt(idx));
          }
          if (has_null) continue;  // NULL keys never join
          table[h].push_back(RowRef{b, p});
        }
      }
    }
    if (build_bytes > static_cast<double>(context_->work_mem_bytes())) {
      // Grace hash join: both sides spilled and re-read once.
      double probe_bytes = 0.0;
      for (const Batch& batch : left_batches_) {
        for (uint32_t row : batch.sel) {
          probe_bytes += ApproxBatchRowBytes(batch, row);
        }
      }
      const double pages = PagesFor(build_bytes) + PagesFor(probe_bytes);
      context_->ChargeSpillWrite(pages);
      context_->ChargeSpillRead(pages);
    }

    const bool parallel_probe =
        workers_ != nullptr && workers_->size() > 1 && !left_batches_.empty();
    if (parallel_probe) {
      // Probe morsels (see morsel.h): workers probe contiguous global
      // row ranges against the finished table — deliberately row-based,
      // so morsel boundaries need not align with batch boundaries — and
      // the coordinator replays each morsel's recorded charge sequence
      // and concatenates its refs in morsel order. Charges, output
      // order, and simulated time are bit-identical to the serial loop.
      std::vector<uint64_t> prefix(left_batches_.size() + 1, 0);
      for (size_t b = 0; b < left_batches_.size(); ++b) {
        prefix[b + 1] = prefix[b] + left_batches_[b].NumActive();
      }
      const uint64_t total = prefix.back();
      ProbeMorselSpec pspec;
      pspec.table = &table;
      pspec.left_batches = &left_batches_;
      pspec.right_batches = &right_batches_;
      pspec.left_col_slot =
          left_col_ != nullptr ? static_cast<int>(left_col_->slot()) : -1;
      pspec.right_col_slot =
          right_col_ != nullptr ? static_cast<int>(right_col_->slot()) : -1;
      pspec.left_key_cols = &left_key_cols_;
      pspec.right_key_cols = &right_key_cols_;
      pspec.num_keys = num_keys;
      pspec.join_type = join_.join_type;
      pspec.residual = residual_.get();
      pspec.residual_ops = residual_ops_;
      pspec.probe_prefix = &prefix;
      pspec.cpu = &cpu;
      std::vector<std::future<ProbeMorselResult>> futures;
      for (uint64_t begin = 0; begin < total;
           begin += Morsel::kRecordsPerMorsel) {
        const uint64_t end =
            std::min<uint64_t>(total, begin + Morsel::kRecordsPerMorsel);
        futures.push_back(workers_->Submit(
            [&pspec, begin, end] { return RunProbeMorsel(pspec, begin, end); }));
      }
      for (std::future<ProbeMorselResult>& future : futures) {
        ProbeMorselResult probed = future.get();
        ReplayCharges(context_, probed.events);
        out_refs_.insert(out_refs_.end(), probed.refs.begin(),
                         probed.refs.end());
      }
    } else {
      for (uint32_t b = 0; b < left_batches_.size(); ++b) {
        const Batch& batch = left_batches_[b];
        const uint32_t active = static_cast<uint32_t>(batch.NumActive());
        for (uint32_t p = 0; p < active; ++p) {
          context_->ChargeCpu(cpu.ops_per_hash);
          size_t h = kHashSeed;
          bool has_null = false;
          for (size_t k = 0; k < num_keys; ++k) {
            auto [vec, idx] = left_key(b, p, k);
            if (vec->IsNull(idx)) {
              has_null = true;
              break;
            }
            h = CombineHash(h, vec->HashAt(idx));
          }
          bool matched = false;
          if (!has_null) {
            auto it = table.find(h);
            if (it != table.end()) {
              for (const RowRef& rr : it->second) {
                // Equality before any charge: collisions stay free.
                bool equal = true;
                for (size_t k = 0; k < num_keys; ++k) {
                  auto [lv, li] = left_key(b, p, k);
                  auto [rv, ri] = right_key(rr.batch, rr.pos, k);
                  if (catalog::CompareAt(*lv, li, *rv, ri) != 0) {
                    equal = false;
                    break;
                  }
                }
                if (!equal) continue;
                context_->ChargeCpu(cpu.ops_per_comparison +
                                    residual_ops_ * cpu.ops_per_operator);
                bool passes = true;
                if (residual_ != nullptr) {
                  const Batch& rb = right_batches_[rr.batch];
                  Tuple combined_row =
                      ConcatRows(batch.RowAsTuple(batch.sel[p]),
                                 rb.RowAsTuple(rb.sel[rr.pos]));
                  passes = EvaluatesToTrue(*residual_, combined_row);
                }
                if (!passes) continue;
                matched = true;
                if (join_.join_type == LogicalJoinType::kInner ||
                    join_.join_type == LogicalJoinType::kLeft) {
                  context_->ChargeCpu(cpu.ops_per_tuple);
                  out_refs_.push_back(OutRef{RowRef{b, p}, rr});
                } else if (join_.join_type == LogicalJoinType::kSemi ||
                           join_.join_type == LogicalJoinType::kAnti) {
                  break;  // one match is enough
                }
              }
            }
          }
          switch (join_.join_type) {
            case LogicalJoinType::kLeft:
              if (!matched) {
                context_->ChargeCpu(cpu.ops_per_tuple);
                out_refs_.push_back(
                    OutRef{RowRef{b, p}, RowRef{kNullBatch, 0}});
              }
              break;
            case LogicalJoinType::kSemi:
              if (matched) {
                context_->ChargeCpu(cpu.ops_per_tuple);
                out_refs_.push_back(
                    OutRef{RowRef{b, p}, RowRef{kNullBatch, 0}});
              }
              break;
            case LogicalJoinType::kAnti:
              if (!matched) {
                context_->ChargeCpu(cpu.ops_per_tuple);
                out_refs_.push_back(
                    OutRef{RowRef{b, p}, RowRef{kNullBatch, 0}});
              }
              break;
            default:
              break;
          }
        }
      }
    }

    types_ = left_batches_.empty() ? DeclaredTypes(join_.children[0]->output)
                                   : ColumnTypes(left_batches_[0]);
    left_width_ = types_.size();
    if (emit_right_) {
      const std::vector<TypeId> right_types =
          right_batches_.empty() ? DeclaredTypes(join_.children[1]->output)
                                 : ColumnTypes(right_batches_[0]);
      types_.insert(types_.end(), right_types.begin(), right_types.end());
    }
    return Status::OK();
  }

  ExecutionContext* context_;
  util::ThreadPool* workers_;
  const optimizer::PhysHashJoin& join_;
  std::vector<BoundExprPtr> left_keys_;
  std::vector<BoundExprPtr> right_keys_;
  BoundExprPtr residual_;
  const double residual_ops_;
  const plan::ColumnExpr* left_col_;
  const plan::ColumnExpr* right_col_;
  const bool emit_right_;
  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  bool built_ = false;
  std::vector<Batch> left_batches_;
  std::vector<Batch> right_batches_;
  std::vector<std::vector<ValueVector>> left_key_cols_;
  std::vector<std::vector<ValueVector>> right_key_cols_;
  std::vector<OutRef> out_refs_;
  std::vector<TypeId> types_;
  size_t left_width_ = 0;
  size_t cursor_ = 0;
};

class HashAggregateOp final : public BatchOp {
 public:
  HashAggregateOp(ExecutionContext* context,
                  const optimizer::PhysHashAggregate& node,
                  std::vector<BoundExprPtr> group_exprs,
                  std::vector<plan::AggSpec> aggs,
                  std::unique_ptr<BatchOp> child)
      : BatchOp("hash_aggregate"),
        context_(context),
        node_(node),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)),
        group_col_(SingleColumnKey(group_exprs_)),
        child_(std::move(child)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_RETURN_NOT_OK(Build());
    }
    return emitter_.Emit(out);
  }

 private:
  struct Group {
    ValueKey key;
    std::vector<AggState> states;
  };

  Status Build() {
    const CpuWorkModel& cpu = context_->cpu_model();
    const double group_ops = TotalOps(group_exprs_);
    double agg_ops = 0.0;
    for (const plan::AggSpec& spec : aggs_) {
      agg_ops += 1.0 + (spec.arg != nullptr ? spec.arg->OpCount() : 0);
    }
    const size_t num_keys = group_exprs_.size();

    // Groups live in insertion order (= output order); buckets map the
    // key hash to group indices. GROUP BY treats NULLs as equal, so NULL
    // keys hash (to a constant) and group like any other value.
    std::vector<Group> groups;
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    const size_t estimate = EstimateReserve(node_.estimated_rows);
    groups.reserve(estimate);
    buckets.reserve(estimate);

    Batch batch;
    std::vector<ValueVector> group_cols(num_keys);
    std::vector<ValueVector> agg_cols(aggs_.size());
    uint64_t input_rows = 0;
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool more, child_->Next(&batch));
      if (!more) break;
      const size_t n = batch.NumActive();
      input_rows += n;
      if (group_col_ == nullptr) {
        for (size_t k = 0; k < num_keys; ++k) {
          group_exprs_[k]->EvaluateBatch(batch, &group_cols[k]);
        }
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].arg != nullptr) {
          aggs_[a].arg->EvaluateBatch(batch, &agg_cols[a]);
        }
      }
      context_->ChargeCpu(static_cast<double>(n) *
                          (cpu.ops_per_tuple + cpu.ops_per_hash +
                           (group_ops + agg_ops) * cpu.ops_per_operator));
      if (num_keys == 0) {
        // Global aggregate: exactly one group ever exists, so skip the
        // per-row hash and bucket probe entirely; COUNT(*) states advance
        // in one bulk step per batch.
        if (groups.empty()) {
          Group g;
          g.states.assign(aggs_.size(), AggState{});
          groups.push_back(std::move(g));
        }
        Group& group = groups.front();
        for (size_t a = 0; a < aggs_.size(); ++a) {
          const plan::AggSpec& spec = aggs_[a];
          if (spec.kind == plan::AggKind::kCountStar) {
            group.states[a].count += static_cast<int64_t>(n);
            continue;
          }
          if (spec.arg == nullptr) continue;  // null-arg updates are no-ops
          for (size_t p = 0; p < n; ++p) {
            group.states[a].Update(spec, agg_cols[a].GetValue(p));
          }
        }
        continue;
      }
      // A single-column group borrows the input column (physical index);
      // computed keys use the dense vectors.
      auto key_at = [&](size_t k,
                        size_t p) -> std::pair<const ValueVector*, size_t> {
        if (group_col_ != nullptr) {
          return {&batch.columns[group_col_->slot()], batch.sel[p]};
        }
        return {&group_cols[k], p};
      };
      for (size_t p = 0; p < n; ++p) {
        size_t h = kHashSeed;
        for (size_t k = 0; k < num_keys; ++k) {
          auto [vec, idx] = key_at(k, p);
          h = CombineHash(h, vec->HashAt(idx));
        }
        std::vector<uint32_t>& bucket = buckets[h];
        Group* group = nullptr;
        for (uint32_t gi : bucket) {
          const std::vector<Value>& gkey = groups[gi].key.values;
          bool equal = true;
          for (size_t k = 0; k < num_keys; ++k) {
            auto [vec, idx] = key_at(k, p);
            const bool a_null = vec->IsNull(idx);
            const bool b_null = gkey[k].is_null();
            if (a_null != b_null) {
              equal = false;
              break;
            }
            if (a_null) continue;
            if (catalog::CompareWithValue(*vec, idx, gkey[k]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            group = &groups[gi];
            break;
          }
        }
        if (group == nullptr) {
          bucket.push_back(static_cast<uint32_t>(groups.size()));
          Group g;
          g.key.values.reserve(num_keys);
          for (size_t k = 0; k < num_keys; ++k) {
            auto [vec, idx] = key_at(k, p);
            g.key.values.push_back(vec->GetValue(idx));
          }
          g.states.assign(aggs_.size(), AggState{});
          groups.push_back(std::move(g));
          group = &groups.back();
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          const plan::AggSpec& spec = aggs_[a];
          Value v;
          if (spec.arg != nullptr) v = agg_cols[a].GetValue(p);
          group->states[a].Update(spec, v);
        }
      }
    }

    // Memory-pressure model (DESIGN.md §14): the same integer accounting
    // as the row engine, so both engines charge the identical spill pass.
    // This engine keeps the in-memory table either way (charge-only; the
    // row engine also carries the external re-aggregation mechanism).
    AggSpillStats spill_stats;
    spill_stats.groups = groups.size();
    spill_stats.input_rows = input_rows;
    spill_stats.num_keys = num_keys;
    spill_stats.num_aggs = aggs_.size();
    spill_stats.input_cols = node_.children[0]->output.size();
    if (AggSpillTriggered(spill_stats, context_->work_mem_bytes())) {
      ChargeAggSpill(context_, spill_stats);
    }

    std::vector<Tuple> rows;
    if (groups.empty() && group_exprs_.empty()) {
      // Global aggregate over zero rows yields one row of initial values.
      Tuple row;
      for (const plan::AggSpec& spec : aggs_) {
        row.push_back(AggState().Finalize(spec));
      }
      context_->ChargeCpu(cpu.ops_per_tuple);
      rows.push_back(std::move(row));
    } else {
      rows.reserve(groups.size());
      for (const Group& group : groups) {
        context_->ChargeCpu(cpu.ops_per_tuple);
        Tuple row = group.key.values;
        for (size_t a = 0; a < aggs_.size(); ++a) {
          row.push_back(group.states[a].Finalize(aggs_[a]));
        }
        rows.push_back(std::move(row));
      }
    }
    emitter_.SetRows(std::move(rows), DeclaredTypes(node_.output));
    return Status::OK();
  }

  ExecutionContext* context_;
  const optimizer::PhysHashAggregate& node_;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<plan::AggSpec> aggs_;
  const plan::ColumnExpr* group_col_;
  std::unique_ptr<BatchOp> child_;
  bool built_ = false;
  RowsEmitter emitter_;
};

/// Coordinator side of a morsel-parallel pipeline (see morsel.h): slices
/// the scan into morsels, keeps a bounded window of them in flight on the
/// worker pool, and emits each worker batch after replaying its recorded
/// charges, in strict morsel order — so rows, simulated charges, and
/// buffer-pool state are bit-identical to the serial pipeline. With an
/// aggregate terminal it instead merges the workers' partial groups in
/// morsel order (first-appearance order equals the serial insertion
/// order) and finalizes exactly like HashAggregateOp.
class MorselPipelineOp final : public BatchOp {
 public:
  struct Stage {
    MorselPipelineSpec::Stage::Kind kind =
        MorselPipelineSpec::Stage::Kind::kFilter;
    BoundExprPtr filter;                // kFilter
    std::vector<BoundExprPtr> project;  // kProject
  };

  MorselPipelineOp(ExecutionContext* context, storage::BufferPool* pool,
                   util::ThreadPool* workers,
                   const optimizer::PhysSeqScan& scan,
                   BoundExprPtr scan_filter, std::vector<uint8_t> wanted,
                   std::vector<Stage> stages,
                   const optimizer::PhysHashAggregate* aggregate,
                   std::vector<BoundExprPtr> group_exprs,
                   std::vector<plan::AggSpec> aggs)
      : BatchOp(aggregate != nullptr ? "morsel_aggregate"
                                     : "morsel_pipeline"),
        context_(context),
        workers_(workers),
        scan_filter_(std::move(scan_filter)),
        wanted_(std::move(wanted)),
        stages_(std::move(stages)),
        agg_node_(aggregate),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)),
        dispatcher_(context, pool, scan.table->heap.get(),
                    context->zone_maps_enabled() && !scan.prune_spec.empty()
                        ? scan.table->heap->ComputePruneBitmap(scan.prune_spec)
                        : std::vector<uint8_t>{}) {
    for (const catalog::Column& column : scan.table->schema.columns()) {
      scan_types_.push_back(column.type);
    }
    spec_.schema = &scan.table->schema;
    spec_.scan_types = scan_types_;
    spec_.wanted = wanted_.empty() ? nullptr : &wanted_;
    spec_.scan_filter = scan_filter_.get();
    spec_.scan_filter_ops =
        scan_filter_ != nullptr ? scan_filter_->OpCount() : 0.0;
    for (const Stage& stage : stages_) {
      MorselPipelineSpec::Stage s;
      s.kind = stage.kind;
      if (stage.kind == MorselPipelineSpec::Stage::Kind::kFilter) {
        s.filter = stage.filter.get();
        s.ops = stage.filter->OpCount();
      } else {
        s.project = &stage.project;
        s.ops = TotalOps(stage.project);
      }
      spec_.stages.push_back(s);
    }
    if (agg_node_ != nullptr) {
      spec_.aggregate = true;
      spec_.group_exprs = &group_exprs_;
      spec_.aggs = &aggs_;
      spec_.group_col = SingleColumnKey(group_exprs_);
      spec_.group_ops = TotalOps(group_exprs_);
      for (const plan::AggSpec& spec : aggs_) {
        spec_.agg_ops +=
            1.0 + (spec.arg != nullptr ? spec.arg->OpCount() : 0);
      }
      if (UseSharedAggregate(agg_node_->estimated_rows,
                             group_exprs_.size())) {
        shared_index_ = std::make_unique<SharedGroupIndex>();
        spec_.shared_groups = shared_index_.get();
      }
    }
    spec_.cpu = &context->cpu_model();
  }

  ~MorselPipelineOp() override {
    // Workers reference spec_ and the op-owned expressions; drain any
    // still-running morsels before those die (e.g. after an early exit).
    for (std::future<MorselResult>& future : inflight_) {
      if (future.valid()) future.wait();
    }
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (agg_node_ != nullptr) {
      if (!built_) {
        built_ = true;
        VDB_RETURN_NOT_OK(BuildAggregate());
      }
      return emitter_.Emit(out);
    }
    while (true) {
      if (have_current_ && batch_cursor_ < current_.batches.size()) {
        MorselResult::BatchOut& batch_out = current_.batches[batch_cursor_++];
        ReplayCharges(context_, batch_out.events);
        rows_in_ += batch_out.rows_scanned;
        *out = std::move(batch_out.batch);
        VDB_RETURN_NOT_OK(Pump());
        return true;
      }
      if (have_current_) {
        pending_trailing_.insert(pending_trailing_.end(),
                                 current_.trailing.begin(),
                                 current_.trailing.end());
        have_current_ = false;
      }
      VDB_RETURN_NOT_OK(Pump());
      if (inflight_.empty()) {
        // Exhausted. The trailing empty-page fetches replay now, exactly
        // where the serial scan charges them (its final, empty fill).
        ReplayCharges(context_, pending_trailing_);
        pending_trailing_.clear();
        return false;
      }
      current_ = inflight_.front().get();
      inflight_.pop_front();
      VDB_RETURN_NOT_OK(current_.status);
      batch_cursor_ = 0;
      have_current_ = true;
    }
  }

 private:
  /// Tops the in-flight window up to 2x the pool size: reads pages on
  /// the coordinator (strict serial order, so the buffer pool sees the
  /// serial fetch sequence) and hands the morsels to workers.
  Status Pump() {
    const size_t window = 2 * static_cast<size_t>(workers_->size());
    while (!dispatcher_done_ && inflight_.size() < window) {
      Morsel morsel;
      VDB_ASSIGN_OR_RETURN(bool more, dispatcher_.NextMorsel(&morsel));
      if (!more) {
        dispatcher_done_ = true;
        break;
      }
      const MorselPipelineSpec* spec = &spec_;
      inflight_.push_back(
          workers_->Submit([spec, m = std::move(morsel)]() mutable {
            return RunMorsel(*spec, std::move(m));
          }));
    }
    return Status::OK();
  }

  /// Aggregate mode: drains every morsel, replaying charges and merging
  /// partial groups in morsel order, then finalizes like the serial op.
  Status BuildAggregate() {
    const CpuWorkModel& cpu = context_->cpu_model();
    const size_t num_keys = group_exprs_.size();
    const bool shared = shared_index_ != nullptr;
    std::vector<PartialGroup> merged;
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    /// Shared-index mode: partial states per dense shared-group id, no
    /// coordinator-side re-hashing or key compares.
    std::vector<std::vector<AggState>> by_gid;
    const size_t estimate = EstimateReserve(agg_node_->estimated_rows);
    if (shared) {
      by_gid.reserve(estimate);
    } else {
      merged.reserve(estimate);
      buckets.reserve(estimate);
    }
    uint64_t input_rows = 0;
    VDB_RETURN_NOT_OK(Pump());
    while (!inflight_.empty()) {
      // Per-morsel budget check point: an over-budget abort returns here
      // mid-drain, and the destructor waits out the in-flight morsels.
      if (BudgetGuard* guard = context_->budget_guard()) {
        VDB_RETURN_NOT_OK(guard->Check());
      }
      MorselResult result = inflight_.front().get();
      inflight_.pop_front();
      VDB_RETURN_NOT_OK(result.status);
      VDB_RETURN_NOT_OK(Pump());  // refill the window while merging
      for (MorselResult::BatchOut& batch_out : result.batches) {
        ReplayCharges(context_, batch_out.events);
        rows_in_ += batch_out.rows_scanned;
        input_rows += batch_out.agg_rows;
      }
      pending_trailing_.insert(pending_trailing_.end(),
                               result.trailing.begin(),
                               result.trailing.end());
      for (PartialGroup& group : result.groups) {
        if (shared) {
          // Morsels drain in dispatch order, so each gid's partials merge
          // in exactly the order the keyed path below would merge them.
          if (group.gid >= by_gid.size()) by_gid.resize(group.gid + 1);
          std::vector<AggState>& dst = by_gid[group.gid];
          if (dst.empty()) {
            dst = std::move(group.states);
          } else {
            for (size_t a = 0; a < aggs_.size(); ++a) {
              dst[a].Merge(group.states[a]);
            }
          }
          continue;
        }
        if (num_keys == 0) {
          if (merged.empty()) {
            merged.push_back(std::move(group));
          } else {
            for (size_t a = 0; a < aggs_.size(); ++a) {
              merged.front().states[a].Merge(group.states[a]);
            }
          }
          continue;
        }
        const size_t h = HashValues(group.key.data(), num_keys);
        std::vector<uint32_t>& bucket = buckets[h];
        PartialGroup* dst = nullptr;
        for (uint32_t gi : bucket) {
          if (KeysEqual(merged[gi].key.data(), group.key.data(), num_keys)) {
            dst = &merged[gi];
            break;
          }
        }
        if (dst == nullptr) {
          bucket.push_back(static_cast<uint32_t>(merged.size()));
          merged.push_back(std::move(group));
        } else {
          for (size_t a = 0; a < aggs_.size(); ++a) {
            dst->states[a].Merge(group.states[a]);
          }
        }
      }
    }
    ReplayCharges(context_, pending_trailing_);
    pending_trailing_.clear();

    // Memory-pressure model (DESIGN.md §14): merged group and input-row
    // totals equal the serial engine's, so this charges the identical
    // spill pass in the identical position (after the drain, before
    // finalization).
    AggSpillStats spill_stats;
    spill_stats.groups = shared ? shared_index_->size() : merged.size();
    spill_stats.input_rows = input_rows;
    spill_stats.num_keys = num_keys;
    spill_stats.num_aggs = aggs_.size();
    spill_stats.input_cols = agg_node_->children[0]->output.size();
    if (AggSpillTriggered(spill_stats, context_->work_mem_bytes())) {
      ChargeAggSpill(context_, spill_stats);
    }

    std::vector<Tuple> rows;
    if (shared) {
      // Emit in first-seen order — the serial insertion order — with the
      // identical per-group finalize charge.
      std::vector<const SharedGroupIndex::Entry*> order =
          shared_index_->GroupsInFirstSeenOrder();
      rows.reserve(order.size());
      for (const SharedGroupIndex::Entry* entry : order) {
        context_->ChargeCpu(cpu.ops_per_tuple);
        Tuple row = entry->key;
        const std::vector<AggState>& states = by_gid[entry->gid];
        for (size_t a = 0; a < aggs_.size(); ++a) {
          row.push_back(states[a].Finalize(aggs_[a]));
        }
        rows.push_back(std::move(row));
      }
    } else if (merged.empty() && group_exprs_.empty()) {
      // Global aggregate over zero rows yields one row of initial values.
      Tuple row;
      for (const plan::AggSpec& spec : aggs_) {
        row.push_back(AggState().Finalize(spec));
      }
      context_->ChargeCpu(cpu.ops_per_tuple);
      rows.push_back(std::move(row));
    } else {
      rows.reserve(merged.size());
      for (const PartialGroup& group : merged) {
        context_->ChargeCpu(cpu.ops_per_tuple);
        Tuple row = group.key;
        for (size_t a = 0; a < aggs_.size(); ++a) {
          row.push_back(group.states[a].Finalize(aggs_[a]));
        }
        rows.push_back(std::move(row));
      }
    }
    emitter_.SetRows(std::move(rows), DeclaredTypes(agg_node_->output));
    return Status::OK();
  }

  ExecutionContext* context_;
  util::ThreadPool* workers_;
  BoundExprPtr scan_filter_;
  std::vector<uint8_t> wanted_;
  std::vector<Stage> stages_;
  const optimizer::PhysHashAggregate* agg_node_;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<plan::AggSpec> aggs_;
  std::vector<TypeId> scan_types_;
  std::unique_ptr<SharedGroupIndex> shared_index_;
  MorselPipelineSpec spec_;
  MorselDispatcher dispatcher_;
  bool dispatcher_done_ = false;
  std::deque<std::future<MorselResult>> inflight_;
  MorselResult current_;
  size_t batch_cursor_ = 0;
  bool have_current_ = false;
  std::vector<ChargeEvent> pending_trailing_;
  bool built_ = false;       // aggregate mode
  RowsEmitter emitter_;      // aggregate mode
};

/// Merge join delegates the join loop (and its charges) to the shared
/// MergeJoinRows; inputs are drained batch-wise and boxed.
class MergeJoinOp final : public BatchOp {
 public:
  MergeJoinOp(ExecutionContext* context, const optimizer::PhysMergeJoin& node,
              BoundExprPtr left_key, BoundExprPtr right_key,
              BoundExprPtr residual, std::unique_ptr<BatchOp> left,
              std::unique_ptr<BatchOp> right)
      : BatchOp("merge_join"),
        context_(context),
        node_(node),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        residual_(std::move(residual)),
        left_(std::move(left)),
        right_(std::move(right)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows,
                           DrainToTuples(left_.get()));
      VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows,
                           DrainToTuples(right_.get()));
      VDB_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          MergeJoinRows(context_, left_rows, right_rows, *left_key_,
                        *right_key_, residual_.get()));
      emitter_.SetRows(std::move(rows), DeclaredTypes(node_.output));
    }
    return emitter_.Emit(out);
  }

 private:
  ExecutionContext* context_;
  const optimizer::PhysMergeJoin& node_;
  BoundExprPtr left_key_;
  BoundExprPtr right_key_;
  BoundExprPtr residual_;
  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  bool built_ = false;
  RowsEmitter emitter_;
};

/// Nested-loop join delegates to the shared NestedLoopJoinRows (including
/// the inner-side spill model).
class NestedLoopJoinOp final : public BatchOp {
 public:
  NestedLoopJoinOp(ExecutionContext* context,
                   const optimizer::PhysNestedLoopJoin& node,
                   BoundExprPtr condition, std::unique_ptr<BatchOp> left,
                   std::unique_ptr<BatchOp> right)
      : BatchOp("nested_loop_join"),
        context_(context),
        node_(node),
        condition_(std::move(condition)),
        left_(std::move(left)),
        right_(std::move(right)) {}

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (!built_) {
      built_ = true;
      VDB_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows,
                           DrainToTuples(left_.get()));
      VDB_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows,
                           DrainToTuples(right_.get()));
      VDB_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          NestedLoopJoinRows(context_, node_.join_type,
                             node_.children[1]->output, left_rows, right_rows,
                             condition_.get()));
      emitter_.SetRows(std::move(rows), DeclaredTypes(node_.output));
    }
    return emitter_.Emit(out);
  }

 private:
  ExecutionContext* context_;
  const optimizer::PhysNestedLoopJoin& node_;
  BoundExprPtr condition_;
  std::unique_ptr<BatchOp> left_;
  std::unique_ptr<BatchOp> right_;
  bool built_ = false;
  RowsEmitter emitter_;
};

// Collects every column the plan consumes anywhere above the scans: ids
// referenced by any expression (filters, keys, projections, aggregate
// arguments), plus the pass-through output ids of every non-scan node and
// of the root. A scan column absent from this set is never read, so the
// scan can skip materializing it (lazy column deserialization).
void CollectNeededColumns(const PhysicalNode& node, bool is_root,
                          NeededColumns* needed) {
  auto add_expr = [needed](const BoundExpr* expr) {
    if (expr == nullptr) return;
    std::vector<plan::ColumnId> ids;
    expr->CollectColumns(&ids);
    needed->insert(ids.begin(), ids.end());
  };
  switch (node.op) {
    case optimizer::PhysOp::kSeqScan:
      add_expr(static_cast<const optimizer::PhysSeqScan&>(node).filter.get());
      break;
    case optimizer::PhysOp::kIndexScan:
      add_expr(static_cast<const optimizer::PhysIndexScan&>(node)
                   .residual_filter.get());
      break;
    case optimizer::PhysOp::kFilter:
      add_expr(static_cast<const optimizer::PhysFilter&>(node).condition.get());
      break;
    case optimizer::PhysOp::kProject:
      for (const BoundExprPtr& expr :
           static_cast<const optimizer::PhysProject&>(node).exprs) {
        add_expr(expr.get());
      }
      break;
    case optimizer::PhysOp::kNestedLoopJoin:
      add_expr(static_cast<const optimizer::PhysNestedLoopJoin&>(node)
                   .condition.get());
      break;
    case optimizer::PhysOp::kHashJoin: {
      const auto& join = static_cast<const optimizer::PhysHashJoin&>(node);
      for (const BoundExprPtr& key : join.left_keys) add_expr(key.get());
      for (const BoundExprPtr& key : join.right_keys) add_expr(key.get());
      add_expr(join.residual.get());
      break;
    }
    case optimizer::PhysOp::kMergeJoin: {
      const auto& join = static_cast<const optimizer::PhysMergeJoin&>(node);
      add_expr(join.left_key.get());
      add_expr(join.right_key.get());
      add_expr(join.residual.get());
      break;
    }
    case optimizer::PhysOp::kSort:
      for (const optimizer::PhysSort::Key& key :
           static_cast<const optimizer::PhysSort&>(node).keys) {
        add_expr(key.expr.get());
      }
      break;
    case optimizer::PhysOp::kTopN:
      for (const optimizer::PhysSort::Key& key :
           static_cast<const optimizer::PhysTopN&>(node).keys) {
        add_expr(key.expr.get());
      }
      break;
    case optimizer::PhysOp::kHashAggregate: {
      const auto& aggregate =
          static_cast<const optimizer::PhysHashAggregate&>(node);
      for (const BoundExprPtr& expr : aggregate.group_exprs) {
        add_expr(expr.get());
      }
      for (const plan::AggSpec& spec : aggregate.aggs) {
        add_expr(spec.arg.get());
      }
      break;
    }
    case optimizer::PhysOp::kLimit:
      break;
  }
  const bool is_scan = node.op == optimizer::PhysOp::kSeqScan ||
                       node.op == optimizer::PhysOp::kIndexScan;
  if (!is_scan || is_root) {
    for (const OutputColumn& column : node.output) needed->insert(column.id);
  }
  for (const auto& child : node.children) {
    CollectNeededColumns(*child, /*is_root=*/false, needed);
  }
}

// Schema-positional lazy-materialization mask for one scan. Empty when
// every column is consumed (the common case — scans feeding joins, sorts,
// or the root pass all columns through).
std::vector<uint8_t> ScanWantedMask(const std::vector<OutputColumn>& output,
                                    size_t num_columns,
                                    const NeededColumns& needed) {
  std::vector<uint8_t> wanted(num_columns, 0);
  for (const OutputColumn& column : output) {
    const auto pos = static_cast<size_t>(column.id.column_index);
    if (pos < num_columns && needed.count(column.id) != 0) wanted[pos] = 1;
  }
  if (std::all_of(wanted.begin(), wanted.end(),
                  [](uint8_t w) { return w != 0; })) {
    wanted.clear();
  }
  return wanted;
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchOp

Result<bool> BatchOp::Next(catalog::Batch* out) {
  // Budget check point (budget.h): pulls happen at batch boundaries
  // throughout the tree, including inside blocking operators' drains.
  if (guard_ != nullptr) VDB_RETURN_NOT_OK(guard_->Check());
  const bool timed = obs::MetricsRegistry::Global().enabled();
  std::chrono::steady_clock::time_point start;
  if (timed) start = std::chrono::steady_clock::now();
  Result<bool> more = NextImpl(out);
  if (timed) {
    next_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  if (more.ok() && *more) {
    ++batches_;
    rows_ += out->NumActive();
    if (guard_ != nullptr && out->NumActive() > 0) {
      guard_->ChargeMemory(static_cast<double>(out->NumActive()) *
                           ApproxRowBytes(out->columns.size()));
      VDB_RETURN_NOT_OK(guard_->Check());
    }
  }
  return more;
}

// ---------------------------------------------------------------------------
// BatchExecutor

Result<std::unique_ptr<BatchOp>> BatchExecutor::Build(
    const PhysicalNode& node, size_t budget) {
  std::unique_ptr<BatchOp> op;
  if (budget != Executor::kNoBudget) {
    // An enclosing LIMIT capped this subtree: run it on the row engine
    // for exact charge parity (see BudgetedExecOp).
    op = std::make_unique<BudgetedExecOp>(context_, node, budget);
    ops_.push_back(op.get());
    return op;
  }
  VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> parallel,
                       TryBuildMorselPipeline(node));
  if (parallel != nullptr) {
    ops_.push_back(parallel.get());
    return parallel;
  }
  switch (node.op) {
    case optimizer::PhysOp::kSeqScan: {
      const auto& scan = static_cast<const optimizer::PhysSeqScan&>(node);
      BoundExprPtr filter;
      if (scan.filter != nullptr) {
        VDB_ASSIGN_OR_RETURN(filter, ResolveExpr(*scan.filter, scan.output));
      }
      op = std::make_unique<SeqScanOp>(
          context_, scan, std::move(filter),
          ScanWantedMask(scan.output, scan.table->schema.NumColumns(),
                         needed_));
      break;
    }
    case optimizer::PhysOp::kIndexScan: {
      const auto& scan = static_cast<const optimizer::PhysIndexScan&>(node);
      BoundExprPtr residual;
      if (scan.residual_filter != nullptr) {
        VDB_ASSIGN_OR_RETURN(residual,
                             ResolveExpr(*scan.residual_filter, scan.output));
      }
      op = std::make_unique<IndexScanOp>(
          context_, scan, std::move(residual),
          ScanWantedMask(scan.output, scan.table->schema.NumColumns(),
                         needed_));
      break;
    }
    case optimizer::PhysOp::kFilter: {
      const auto& filter = static_cast<const optimizer::PhysFilter&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*filter.children[0], Executor::kNoBudget));
      VDB_ASSIGN_OR_RETURN(
          BoundExprPtr condition,
          ResolveExpr(*filter.condition, filter.children[0]->output));
      op = std::make_unique<FilterOp>(context_, std::move(condition),
                                      std::move(child));
      break;
    }
    case optimizer::PhysOp::kProject: {
      const auto& project = static_cast<const optimizer::PhysProject&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*project.children[0], Executor::kNoBudget));
      std::vector<BoundExprPtr> exprs;
      for (const BoundExprPtr& expr : project.exprs) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                             ResolveExpr(*expr, project.children[0]->output));
        exprs.push_back(std::move(resolved));
      }
      op = std::make_unique<ProjectOp>(context_, std::move(exprs),
                                       std::move(child));
      break;
    }
    case optimizer::PhysOp::kSort: {
      const auto& sort = static_cast<const optimizer::PhysSort&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*sort.children[0], Executor::kNoBudget));
      std::vector<BoundExprPtr> keys;
      std::vector<bool> ascending;
      for (const optimizer::PhysSort::Key& key : sort.keys) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                             ResolveExpr(*key.expr, sort.children[0]->output));
        keys.push_back(std::move(resolved));
        ascending.push_back(key.ascending);
      }
      op = std::make_unique<SortOp>(context_, std::move(keys),
                                    std::move(ascending),
                                    DeclaredTypes(sort.output),
                                    std::move(child));
      break;
    }
    case optimizer::PhysOp::kTopN: {
      const auto& top_n = static_cast<const optimizer::PhysTopN&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*top_n.children[0], Executor::kNoBudget));
      std::vector<BoundExprPtr> keys;
      std::vector<bool> ascending;
      for (const optimizer::PhysSort::Key& key : top_n.keys) {
        VDB_ASSIGN_OR_RETURN(
            BoundExprPtr resolved,
            ResolveExpr(*key.expr, top_n.children[0]->output));
        keys.push_back(std::move(resolved));
        ascending.push_back(key.ascending);
      }
      op = std::make_unique<TopNOp>(context_, top_n, std::move(keys),
                                    std::move(ascending), std::move(child));
      break;
    }
    case optimizer::PhysOp::kLimit: {
      const auto& limit = static_cast<const optimizer::PhysLimit&>(node);
      // The capped subtree runs on the row engine (BudgetedExecOp above),
      // so the early exit charges exactly what the row engine charges.
      // LIMIT 0 yields budget 0; LimitOp then never pulls the child,
      // matching RunLimit's child skip.
      const size_t cap =
          limit.limit <= 0 ? 0 : static_cast<size_t>(limit.limit);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*limit.children[0], cap));
      op = std::make_unique<LimitOp>(limit.limit, std::move(child));
      break;
    }
    case optimizer::PhysOp::kHashJoin: {
      const auto& join = static_cast<const optimizer::PhysHashJoin&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> left,
                           Build(*join.children[0], Executor::kNoBudget));
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> right,
                           Build(*join.children[1], Executor::kNoBudget));
      std::vector<BoundExprPtr> left_keys;
      std::vector<BoundExprPtr> right_keys;
      for (const BoundExprPtr& key : join.left_keys) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                             ResolveExpr(*key, join.children[0]->output));
        left_keys.push_back(std::move(resolved));
      }
      for (const BoundExprPtr& key : join.right_keys) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr resolved,
                             ResolveExpr(*key, join.children[1]->output));
        right_keys.push_back(std::move(resolved));
      }
      BoundExprPtr residual;
      if (join.residual != nullptr) {
        std::vector<OutputColumn> combined = join.children[0]->output;
        combined.insert(combined.end(), join.children[1]->output.begin(),
                        join.children[1]->output.end());
        VDB_ASSIGN_OR_RETURN(residual, ResolveExpr(*join.residual, combined));
      }
      op = std::make_unique<HashJoinOp>(
          context_, workers_, join, std::move(left_keys),
          std::move(right_keys), std::move(residual), std::move(left),
          std::move(right));
      break;
    }
    case optimizer::PhysOp::kMergeJoin: {
      const auto& join = static_cast<const optimizer::PhysMergeJoin&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> left,
                           Build(*join.children[0], Executor::kNoBudget));
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> right,
                           Build(*join.children[1], Executor::kNoBudget));
      VDB_ASSIGN_OR_RETURN(
          BoundExprPtr left_key,
          ResolveExpr(*join.left_key, join.children[0]->output));
      VDB_ASSIGN_OR_RETURN(
          BoundExprPtr right_key,
          ResolveExpr(*join.right_key, join.children[1]->output));
      BoundExprPtr residual;
      if (join.residual != nullptr) {
        std::vector<OutputColumn> combined = join.children[0]->output;
        combined.insert(combined.end(), join.children[1]->output.begin(),
                        join.children[1]->output.end());
        VDB_ASSIGN_OR_RETURN(residual, ResolveExpr(*join.residual, combined));
      }
      op = std::make_unique<MergeJoinOp>(
          context_, join, std::move(left_key), std::move(right_key),
          std::move(residual), std::move(left), std::move(right));
      break;
    }
    case optimizer::PhysOp::kNestedLoopJoin: {
      const auto& join =
          static_cast<const optimizer::PhysNestedLoopJoin&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> left,
                           Build(*join.children[0], Executor::kNoBudget));
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> right,
                           Build(*join.children[1], Executor::kNoBudget));
      BoundExprPtr condition;
      if (join.condition != nullptr) {
        std::vector<OutputColumn> combined = join.children[0]->output;
        combined.insert(combined.end(), join.children[1]->output.begin(),
                        join.children[1]->output.end());
        VDB_ASSIGN_OR_RETURN(condition,
                             ResolveExpr(*join.condition, combined));
      }
      op = std::make_unique<NestedLoopJoinOp>(context_, join,
                                              std::move(condition),
                                              std::move(left),
                                              std::move(right));
      break;
    }
    case optimizer::PhysOp::kHashAggregate: {
      const auto& aggregate =
          static_cast<const optimizer::PhysHashAggregate&>(node);
      VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> child,
                           Build(*aggregate.children[0], Executor::kNoBudget));
      std::vector<BoundExprPtr> group_exprs;
      for (const BoundExprPtr& expr : aggregate.group_exprs) {
        VDB_ASSIGN_OR_RETURN(
            BoundExprPtr resolved,
            ResolveExpr(*expr, aggregate.children[0]->output));
        group_exprs.push_back(std::move(resolved));
      }
      std::vector<plan::AggSpec> aggs;
      for (const plan::AggSpec& spec : aggregate.aggs) {
        plan::AggSpec resolved = spec.Clone();
        if (resolved.arg != nullptr) {
          VDB_RETURN_NOT_OK(resolved.arg->ResolveSlots(
              plan::MakeLayout(aggregate.children[0]->output)));
        }
        aggs.push_back(std::move(resolved));
      }
      op = std::make_unique<HashAggregateOp>(context_, aggregate,
                                             std::move(group_exprs),
                                             std::move(aggs),
                                             std::move(child));
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unhandled physical operator");
  ops_.push_back(op.get());
  return op;
}

Result<std::unique_ptr<BatchOp>> BatchExecutor::TryBuildMorselPipeline(
    const PhysicalNode& node) {
  std::unique_ptr<BatchOp> none;
  if (workers_ == nullptr || pool_ == nullptr || workers_->size() < 2) {
    return none;
  }
  // Match [non-DISTINCT HashAggregate →] (Filter | Project)* → SeqScan.
  const optimizer::PhysHashAggregate* aggregate = nullptr;
  const PhysicalNode* cursor = &node;
  if (cursor->op == optimizer::PhysOp::kHashAggregate) {
    const auto& agg =
        static_cast<const optimizer::PhysHashAggregate&>(*cursor);
    bool mergeable = true;
    for (const plan::AggSpec& spec : agg.aggs) {
      // DISTINCT partials cannot be merged (see AggState::Merge); the
      // aggregate stays serial, but its input chain may still match when
      // the serial HashAggregateOp builds its child recursively.
      if (spec.distinct) mergeable = false;
    }
    if (mergeable) {
      aggregate = &agg;
      cursor = agg.children[0].get();
    }
  }
  std::vector<const PhysicalNode*> chain;  // top-down
  while (cursor->op == optimizer::PhysOp::kFilter ||
         cursor->op == optimizer::PhysOp::kProject) {
    chain.push_back(cursor);
    cursor = cursor->children[0].get();
  }
  if (cursor->op != optimizer::PhysOp::kSeqScan) return none;
  const auto& scan = static_cast<const optimizer::PhysSeqScan&>(*cursor);

  BoundExprPtr scan_filter;
  if (scan.filter != nullptr) {
    VDB_ASSIGN_OR_RETURN(scan_filter, ResolveExpr(*scan.filter, scan.output));
  }
  std::vector<MorselPipelineOp::Stage> stages;  // bottom-up
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const PhysicalNode& stage_node = **it;
    MorselPipelineOp::Stage stage;
    if (stage_node.op == optimizer::PhysOp::kFilter) {
      const auto& filter =
          static_cast<const optimizer::PhysFilter&>(stage_node);
      stage.kind = MorselPipelineSpec::Stage::Kind::kFilter;
      VDB_ASSIGN_OR_RETURN(
          stage.filter,
          ResolveExpr(*filter.condition, filter.children[0]->output));
    } else {
      const auto& project =
          static_cast<const optimizer::PhysProject&>(stage_node);
      stage.kind = MorselPipelineSpec::Stage::Kind::kProject;
      for (const BoundExprPtr& expr : project.exprs) {
        VDB_ASSIGN_OR_RETURN(
            BoundExprPtr resolved,
            ResolveExpr(*expr, project.children[0]->output));
        stage.project.push_back(std::move(resolved));
      }
    }
    stages.push_back(std::move(stage));
  }
  std::vector<BoundExprPtr> group_exprs;
  std::vector<plan::AggSpec> aggs;
  if (aggregate != nullptr) {
    for (const BoundExprPtr& expr : aggregate->group_exprs) {
      VDB_ASSIGN_OR_RETURN(
          BoundExprPtr resolved,
          ResolveExpr(*expr, aggregate->children[0]->output));
      group_exprs.push_back(std::move(resolved));
    }
    for (const plan::AggSpec& spec : aggregate->aggs) {
      plan::AggSpec resolved = spec.Clone();
      if (resolved.arg != nullptr) {
        VDB_RETURN_NOT_OK(resolved.arg->ResolveSlots(
            plan::MakeLayout(aggregate->children[0]->output)));
      }
      aggs.push_back(std::move(resolved));
    }
  }
  std::unique_ptr<BatchOp> op = std::make_unique<MorselPipelineOp>(
      context_, pool_, workers_, scan, std::move(scan_filter),
      ScanWantedMask(scan.output, scan.table->schema.NumColumns(), needed_),
      std::move(stages), aggregate, std::move(group_exprs), std::move(aggs));
  return op;
}

Result<std::vector<Tuple>> BatchExecutor::Run(const PhysicalNode& node) {
  ops_.clear();
  needed_.clear();
  CollectNeededColumns(node, /*is_root=*/true, &needed_);
  VDB_ASSIGN_OR_RETURN(std::unique_ptr<BatchOp> root,
                       Build(node, Executor::kNoBudget));
  if (BudgetGuard* guard = context_->budget_guard()) {
    // Arm every operator, not just the root: blocking operators (sort,
    // aggregate, join builds) drain their children inside one NextImpl
    // call, and the child pulls are where the budget has to bite.
    for (BatchOp* op : ops_) op->set_budget_guard(guard);
  }
  std::vector<Tuple> rows;
  Batch batch;
  while (true) {
    VDB_ASSIGN_OR_RETURN(bool more, root->Next(&batch));
    if (!more) break;
    for (uint32_t row : batch.sel) rows.push_back(batch.RowAsTuple(row));
  }
  // Executor instrumentation (DESIGN.md §9/§12): the same per-node
  // counters the row engine keeps, plus batch-specific throughput and
  // selectivity gauges per operator.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const operators_executed =
      obs::MetricsRegistry::Global().GetCounter("exec.operators_executed");
  static obs::Counter* const tuples_produced =
      obs::MetricsRegistry::Global().GetCounter("exec.tuples_produced");
  static obs::Counter* const batches_produced =
      obs::MetricsRegistry::Global().GetCounter("exec.batch.batches_produced");
  static obs::Counter* const batch_rows =
      obs::MetricsRegistry::Global().GetCounter("exec.batch.rows_produced");
  uint64_t total_rows = 0;
  uint64_t total_batches = 0;
  for (const BatchOp* op : ops_) {
    total_rows += op->rows_produced();
    total_batches += op->batches_produced();
  }
  operators_executed->Add(ops_.size());
  tuples_produced->Add(total_rows);
  batches_produced->Add(total_batches);
  batch_rows->Add(total_rows);
  if (registry.enabled()) {
    for (const BatchOp* op : ops_) {
      const std::string name = op->name();
      if (op->next_seconds() > 0.0) {
        registry.GetGauge("exec.batch.rows_per_sec." + name)
            ->Set(static_cast<double>(op->rows_produced()) /
                  op->next_seconds());
      }
      if (op->rows_in() > 0) {
        registry.GetGauge("exec.batch.selectivity." + name)
            ->Set(static_cast<double>(op->rows_produced()) /
                  static_cast<double>(op->rows_in()));
      }
    }
  }
  return rows;
}

}  // namespace vdb::exec
