#include "exec/spill.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <queue>
#include <unordered_map>

#include "exec/budget.h"
#include "obs/metrics.h"

namespace vdb::exec {

namespace {

// Value serialization: one tag byte (TypeId << 1 | is_null), then the
// payload for non-null values. Doubles round-trip via memcpy so spilled
// rows are bitwise identical to their in-memory originals.

Status WriteBytes(std::FILE* file, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, file) != n) {
    return Status::IOError("spill file write failed");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* file, void* data, size_t n) {
  if (std::fread(data, 1, n, file) != n) {
    return Status::IOError("spill file truncated");
  }
  return Status::OK();
}

Status WriteValue(std::FILE* file, const catalog::Value& v) {
  const uint8_t tag = static_cast<uint8_t>(
      (static_cast<uint8_t>(v.type()) << 1) | (v.is_null() ? 1 : 0));
  VDB_RETURN_NOT_OK(WriteBytes(file, &tag, 1));
  if (v.is_null()) return Status::OK();
  switch (v.type()) {
    case catalog::TypeId::kBool: {
      const uint8_t b = v.AsBool() ? 1 : 0;
      return WriteBytes(file, &b, 1);
    }
    case catalog::TypeId::kInt64:
    case catalog::TypeId::kDate: {
      const int64_t i = v.AsInt64();
      return WriteBytes(file, &i, 8);
    }
    case catalog::TypeId::kDouble: {
      double d = v.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, 8);
      return WriteBytes(file, &bits, 8);
    }
    case catalog::TypeId::kString: {
      const std::string& s = v.AsString();
      const uint32_t len = static_cast<uint32_t>(s.size());
      VDB_RETURN_NOT_OK(WriteBytes(file, &len, 4));
      return WriteBytes(file, s.data(), s.size());
    }
  }
  return Status::IOError("spill file: unknown value type");
}

Result<catalog::Value> ReadValue(std::FILE* file) {
  uint8_t tag = 0;
  VDB_RETURN_NOT_OK(ReadBytes(file, &tag, 1));
  const catalog::TypeId type = static_cast<catalog::TypeId>(tag >> 1);
  if (tag & 1) return catalog::Value::Null(type);
  switch (type) {
    case catalog::TypeId::kBool: {
      uint8_t b = 0;
      VDB_RETURN_NOT_OK(ReadBytes(file, &b, 1));
      return catalog::Value::Bool(b != 0);
    }
    case catalog::TypeId::kInt64:
    case catalog::TypeId::kDate: {
      int64_t i = 0;
      VDB_RETURN_NOT_OK(ReadBytes(file, &i, 8));
      return type == catalog::TypeId::kInt64 ? catalog::Value::Int64(i)
                                             : catalog::Value::Date(i);
    }
    case catalog::TypeId::kDouble: {
      uint64_t bits = 0;
      VDB_RETURN_NOT_OK(ReadBytes(file, &bits, 8));
      double d = 0.0;
      std::memcpy(&d, &bits, 8);
      return catalog::Value::Double(d);
    }
    case catalog::TypeId::kString: {
      uint32_t len = 0;
      VDB_RETURN_NOT_OK(ReadBytes(file, &len, 4));
      std::string s(len, '\0');
      if (len > 0) VDB_RETURN_NOT_OK(ReadBytes(file, s.data(), len));
      return catalog::Value::String(std::move(s));
    }
  }
  return Status::IOError("spill file: unknown value type");
}

size_t ApproxValueBytes(const catalog::Value& v) {
  size_t bytes = 1 + 8;
  if (!v.is_null() && v.type() == catalog::TypeId::kString) {
    bytes += v.AsString().size();
  }
  return bytes;
}

}  // namespace

// --- SpillFile -------------------------------------------------------------

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
  if (manager_ != nullptr) manager_->OnFileClosed(bytes_written_);
}

Status SpillFile::WriteRow(uint64_t index, const catalog::Tuple& row) {
  VDB_RETURN_NOT_OK(WriteBytes(file_, &index, 8));
  const uint16_t nvals = static_cast<uint16_t>(row.size());
  VDB_RETURN_NOT_OK(WriteBytes(file_, &nvals, 2));
  size_t bytes = 10;
  for (const catalog::Value& v : row) {
    VDB_RETURN_NOT_OK(WriteValue(file_, v));
    bytes += ApproxValueBytes(v);
  }
  ++rows_written_;
  bytes_written_ += bytes;
  return Status::OK();
}

Status SpillFile::Rewind() {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("spill file rewind failed");
  }
  return Status::OK();
}

Result<bool> SpillFile::ReadRow(uint64_t* index, catalog::Tuple* row) {
  uint64_t idx = 0;
  if (std::fread(&idx, 1, 8, file_) != 8) {
    if (std::feof(file_)) return false;
    return Status::IOError("spill file read failed");
  }
  uint16_t nvals = 0;
  VDB_RETURN_NOT_OK(ReadBytes(file_, &nvals, 2));
  row->clear();
  row->reserve(nvals);
  for (uint16_t i = 0; i < nvals; ++i) {
    VDB_ASSIGN_OR_RETURN(catalog::Value v, ReadValue(file_));
    row->push_back(std::move(v));
  }
  *index = idx;
  return true;
}

// --- SpillManager ----------------------------------------------------------

SpillManager::SpillManager(std::string dir_template)
    : dir_template_(std::move(dir_template)) {}

SpillManager::~SpillManager() {
  if (!dir_.empty()) ::rmdir(dir_.c_str());
}

Result<std::unique_ptr<SpillFile>> SpillManager::NewFile(
    const std::string& hint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    std::string tmpl = dir_template_;
    if (::mkdtemp(tmpl.data()) == nullptr) {
      return Status::IOError("cannot create spill directory: " +
                             dir_template_);
    }
    dir_ = tmpl;
  }
  const std::string path =
      dir_ + "/" + std::to_string(next_id_++) + "-" + hint + ".spill";
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError("cannot create spill file: " + path);
  }
  ++live_files_;
  ++files_created_;
  static obs::Counter* const spill_files =
      obs::MetricsRegistry::Global().GetCounter("exec.spill.files_created");
  spill_files->Add(1);
  return std::unique_ptr<SpillFile>(new SpillFile(this, path, file));
}

void SpillManager::OnFileClosed(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  --live_files_;
  bytes_spilled_ += bytes;
  static obs::Counter* const spill_bytes =
      obs::MetricsRegistry::Global().GetCounter("exec.spill.bytes_written");
  spill_bytes->Add(bytes);
}

uint64_t SpillManager::live_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_files_;
}

uint64_t SpillManager::files_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_created_;
}

uint64_t SpillManager::bytes_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_spilled_;
}

// --- External merge sort ---------------------------------------------------

namespace {

/// Compares two key tuples per the ORDER BY directions; ties broken by
/// original input position, which is exactly std::stable_sort's order.
bool SortLess(const catalog::Tuple& a_keys, uint64_t a_idx,
              const catalog::Tuple& b_keys, uint64_t b_idx,
              const std::vector<bool>& ascending) {
  for (size_t k = 0; k < ascending.size(); ++k) {
    const int cmp = CompareForSort(a_keys[k], b_keys[k], ascending[k]);
    if (cmp != 0) return cmp < 0;
  }
  return a_idx < b_idx;
}

}  // namespace

Result<std::vector<catalog::Tuple>> ExternalMergeSort(
    SpillManager* spill, std::vector<catalog::Tuple> rows,
    const std::vector<std::vector<catalog::Value>>& key_rows,
    const std::vector<bool>& ascending, const std::vector<double>& row_bytes,
    uint64_t work_mem_bytes) {
  const size_t num_keys = ascending.size();
  // Cut runs greedily so each fits in work_mem (at least one row per run).
  std::vector<std::unique_ptr<SpillFile>> runs;
  size_t begin = 0;
  while (begin < rows.size()) {
    size_t end = begin;
    double run_bytes = 0.0;
    while (end < rows.size() &&
           (end == begin ||
            run_bytes + row_bytes[end] <=
                static_cast<double>(work_mem_bytes))) {
      run_bytes += row_bytes[end];
      ++end;
    }
    std::vector<uint64_t> order(end - begin);
    for (size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
      return SortLess(key_rows[a], a, key_rows[b], b, ascending);
    });
    VDB_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> run,
                         spill->NewFile("sort-run"));
    // File rows carry keys ++ payload so the merge never re-evaluates
    // key expressions; the stored index is the global input position.
    catalog::Tuple file_row;
    for (const uint64_t idx : order) {
      file_row.clear();
      file_row.reserve(num_keys + rows[idx].size());
      for (size_t k = 0; k < num_keys; ++k) {
        file_row.push_back(key_rows[idx][k]);
      }
      for (const catalog::Value& v : rows[idx]) file_row.push_back(v);
      VDB_RETURN_NOT_OK(run->WriteRow(idx, file_row));
    }
    VDB_RETURN_NOT_OK(run->Rewind());
    runs.push_back(std::move(run));
    begin = end;
  }
  rows.clear();

  // K-way merge by (keys, input position).
  struct HeapEntry {
    catalog::Tuple row;  // keys ++ payload
    uint64_t index;
    size_t run;
  };
  const auto greater = [&](const HeapEntry& a, const HeapEntry& b) {
    catalog::Tuple a_keys(a.row.begin(), a.row.begin() + num_keys);
    catalog::Tuple b_keys(b.row.begin(), b.row.begin() + num_keys);
    return SortLess(b_keys, b.index, a_keys, a.index, ascending);
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(greater)>
      heap(greater);
  for (size_t r = 0; r < runs.size(); ++r) {
    HeapEntry entry;
    entry.run = r;
    VDB_ASSIGN_OR_RETURN(bool ok, runs[r]->ReadRow(&entry.index, &entry.row));
    if (ok) heap.push(std::move(entry));
  }
  std::vector<catalog::Tuple> sorted;
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    sorted.emplace_back(top.row.begin() + num_keys, top.row.end());
    HeapEntry next;
    next.run = top.run;
    VDB_ASSIGN_OR_RETURN(bool ok,
                         runs[top.run]->ReadRow(&next.index, &next.row));
    if (ok) heap.push(std::move(next));
  }
  return sorted;
}

// --- Grace hash join -------------------------------------------------------

namespace {

constexpr size_t kGraceFanout = 32;
constexpr uint64_t kSpillBudgetPollMask = 4095;

/// What happened when one probe row met one bucket candidate that passed
/// KeysEqual — recorded during the charge-free partition phase, replayed
/// in global probe order to reproduce the in-memory charge sequence.
struct ProbeEvent {
  uint64_t right_gidx;
  bool passed_residual;
};

struct ProbeTapeEntry {
  std::vector<ProbeEvent> events;
  bool matched = false;
};

}  // namespace

Result<std::vector<GraceEmit>> GraceHashJoin(ExecutionContext* context,
                                             SpillManager* spill,
                                             const GraceJoinSpec& spec) {
  using plan::LogicalJoinType;
  const std::vector<catalog::Tuple>& left_rows = *spec.left_rows;
  const std::vector<catalog::Tuple>& right_rows = *spec.right_rows;
  const std::vector<std::vector<catalog::Value>>& left_keys =
      *spec.left_keys;
  const std::vector<std::vector<catalog::Value>>& right_keys =
      *spec.right_keys;

  // Partition both sides by key hash onto spill files; rows with a NULL
  // key never join, so they are not written (left-side NULL-key rows
  // still get a tape entry below, for left-outer emission).
  const auto has_null_key = [&](const std::vector<catalog::Value>& key) {
    for (size_t k = 0; k < spec.num_keys; ++k) {
      if (key[k].is_null()) return true;
    }
    return false;
  };
  std::vector<std::unique_ptr<SpillFile>> build_parts(kGraceFanout);
  std::vector<std::unique_ptr<SpillFile>> probe_parts(kGraceFanout);
  for (size_t p = 0; p < kGraceFanout; ++p) {
    VDB_ASSIGN_OR_RETURN(build_parts[p], spill->NewFile("join-build"));
    VDB_ASSIGN_OR_RETURN(probe_parts[p], spill->NewFile("join-probe"));
  }
  // File rows carry keys ++ payload, like the sort runs.
  catalog::Tuple file_row;
  const auto write_side =
      [&](const std::vector<catalog::Tuple>& rows,
          const std::vector<std::vector<catalog::Value>>& keys,
          std::vector<std::unique_ptr<SpillFile>>& parts) -> Status {
    for (uint64_t i = 0; i < rows.size(); ++i) {
      if (has_null_key(keys[i])) continue;
      const size_t p =
          HashValues(keys[i].data(), spec.num_keys) % kGraceFanout;
      file_row.clear();
      file_row.reserve(spec.num_keys + rows[i].size());
      for (size_t k = 0; k < spec.num_keys; ++k) {
        file_row.push_back(keys[i][k]);
      }
      for (const catalog::Value& v : rows[i]) file_row.push_back(v);
      VDB_RETURN_NOT_OK(parts[p]->WriteRow(i, file_row));
    }
    return Status::OK();
  };
  VDB_RETURN_NOT_OK(write_side(right_rows, right_keys, build_parts));
  VDB_RETURN_NOT_OK(write_side(left_rows, left_keys, probe_parts));

  // Join each partition pair with a small in-memory table, recording a
  // tape entry per probe row: which build rows passed KeysEqual (bucket
  // candidates in build insertion order — the only candidates that ever
  // charge a comparison in-memory, so hash-collision differences between
  // engines cannot perturb the replayed charges) and whether each passed
  // the residual. Partition files preserve global order, and candidate
  // order within a bucket is build insertion order, so the tape replay
  // below emits in exactly the in-memory order.
  std::unordered_map<uint64_t, ProbeTapeEntry> tape;
  tape.reserve(left_rows.size());
  for (size_t p = 0; p < kGraceFanout; ++p) {
    VDB_RETURN_NOT_OK(build_parts[p]->Rewind());
    VDB_RETURN_NOT_OK(probe_parts[p]->Rewind());
    // Build: bucket build-row indices by key hash, insertion order kept.
    std::vector<uint64_t> build_idx;
    std::vector<catalog::Tuple> build_rows_local;
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    uint64_t idx = 0;
    catalog::Tuple row;
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool ok, build_parts[p]->ReadRow(&idx, &row));
      if (!ok) break;
      const size_t h = HashValues(row.data(), spec.num_keys);
      buckets[h].push_back(build_rows_local.size());
      build_idx.push_back(idx);
      build_rows_local.push_back(row);
    }
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool ok, probe_parts[p]->ReadRow(&idx, &row));
      if (!ok) break;
      ProbeTapeEntry entry;
      const size_t h = HashValues(row.data(), spec.num_keys);
      const auto it = buckets.find(h);
      if (it != buckets.end()) {
        for (const size_t local : it->second) {
          const catalog::Tuple& build_row = build_rows_local[local];
          if (!KeysEqual(row.data(), build_row.data(), spec.num_keys)) {
            continue;
          }
          bool passed = true;
          if (spec.residual != nullptr) {
            const catalog::Tuple combined = ConcatRows(
                catalog::Tuple(row.begin() + spec.num_keys, row.end()),
                catalog::Tuple(build_row.begin() + spec.num_keys,
                               build_row.end()));
            passed = plan::EvaluatesToTrue(*spec.residual, combined);
          }
          entry.events.push_back(ProbeEvent{build_idx[local], passed});
          if (passed) {
            entry.matched = true;
            if (spec.join_type == LogicalJoinType::kSemi ||
                spec.join_type == LogicalJoinType::kAnti) {
              break;  // in-memory probe stops at the first passing match
            }
          }
        }
      }
      tape.emplace(idx, std::move(entry));
    }
  }
  build_parts.clear();
  probe_parts.clear();

  // Replay the tape in global probe order, issuing the in-memory probe
  // loop's exact charge sequence and emission order.
  const CpuWorkModel& cpu = context->cpu_model();
  std::vector<GraceEmit> emits;
  static const ProbeTapeEntry kEmptyEntry;
  uint64_t probed = 0;
  for (uint64_t i = 0; i < left_rows.size(); ++i) {
    if (spec.poll_budget && context->budget_guard() != nullptr &&
        (++probed & kSpillBudgetPollMask) == 0) {
      VDB_RETURN_NOT_OK(context->budget_guard()->Check());
    }
    context->ChargeCpu(cpu.ops_per_hash);
    const auto it = tape.find(i);
    const ProbeTapeEntry& entry =
        it == tape.end() ? kEmptyEntry : it->second;
    for (const ProbeEvent& event : entry.events) {
      context->ChargeCpu(cpu.ops_per_comparison +
                         spec.residual_ops * cpu.ops_per_operator);
      if (event.passed_residual &&
          (spec.join_type == LogicalJoinType::kInner ||
           spec.join_type == LogicalJoinType::kLeft)) {
        context->ChargeCpu(cpu.ops_per_tuple);
        emits.push_back(GraceEmit{i, event.right_gidx});
      }
    }
    switch (spec.join_type) {
      case LogicalJoinType::kLeft:
        if (!entry.matched) {
          context->ChargeCpu(cpu.ops_per_tuple);
          emits.push_back(GraceEmit{i, kGraceNoRight});
        }
        break;
      case LogicalJoinType::kSemi:
        if (entry.matched) {
          context->ChargeCpu(cpu.ops_per_tuple);
          emits.push_back(GraceEmit{i, kGraceNoRight});
        }
        break;
      case LogicalJoinType::kAnti:
        if (!entry.matched) {
          context->ChargeCpu(cpu.ops_per_tuple);
          emits.push_back(GraceEmit{i, kGraceNoRight});
        }
        break;
      default:
        break;
    }
  }
  return emits;
}

// --- External hash aggregation ---------------------------------------------

void ChargeAggSpill(ExecutionContext* context, const AggSpillStats& s) {
  const double pages =
      PagesFor(static_cast<double>(AggStateBytes(s))) +
      PagesFor(static_cast<double>(AggInputBytes(s)));
  context->ChargeSpillWrite(pages);
  context->ChargeSpillRead(pages);
}

Result<std::vector<ExternalAggGroup>> ExternalHashAggregate(
    SpillManager* spill, const std::vector<plan::AggSpec>& aggs,
    const std::vector<std::vector<catalog::Value>>& key_rows,
    const std::vector<std::vector<catalog::Value>>& arg_rows) {
  const size_t num_keys = key_rows.empty() ? 0 : key_rows[0].size();
  // Route each row (group key ++ aggregate args) to a hash partition.
  // NULL group keys participate (SQL GROUP BY groups NULLs together).
  std::vector<std::unique_ptr<SpillFile>> parts(kGraceFanout);
  for (size_t p = 0; p < kGraceFanout; ++p) {
    VDB_ASSIGN_OR_RETURN(parts[p], spill->NewFile("agg"));
  }
  catalog::Tuple file_row;
  for (uint64_t i = 0; i < key_rows.size(); ++i) {
    const size_t p =
        HashValues(key_rows[i].data(), num_keys) % kGraceFanout;
    file_row.clear();
    file_row.reserve(num_keys + arg_rows[i].size());
    for (const catalog::Value& v : key_rows[i]) file_row.push_back(v);
    for (const catalog::Value& v : arg_rows[i]) file_row.push_back(v);
    VDB_RETURN_NOT_OK(parts[p]->WriteRow(i, file_row));
  }

  // Aggregate each partition. A group lives wholly inside one partition
  // and partition files preserve global row order, so every state sees
  // its updates in exactly the in-memory order (bit-identical floating-
  // point accumulation).
  std::vector<ExternalAggGroup> groups;
  for (size_t p = 0; p < kGraceFanout; ++p) {
    VDB_RETURN_NOT_OK(parts[p]->Rewind());
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    std::vector<ExternalAggGroup> local;
    uint64_t idx = 0;
    catalog::Tuple row;
    while (true) {
      VDB_ASSIGN_OR_RETURN(bool ok, parts[p]->ReadRow(&idx, &row));
      if (!ok) break;
      const size_t h = HashValues(row.data(), num_keys);
      ExternalAggGroup* group = nullptr;
      for (const size_t g : buckets[h]) {
        if (KeysEqual(local[g].key.data(), row.data(), num_keys)) {
          group = &local[g];
          break;
        }
      }
      if (group == nullptr) {
        buckets[h].push_back(local.size());
        ExternalAggGroup fresh;
        fresh.first_row = idx;
        fresh.key.assign(row.begin(), row.begin() + num_keys);
        fresh.states.resize(aggs.size());
        local.push_back(std::move(fresh));
        group = &local.back();
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        group->states[a].Update(aggs[a], row[num_keys + a]);
      }
    }
    for (ExternalAggGroup& g : local) groups.push_back(std::move(g));
  }
  // First-appearance order is the in-memory insertion order.
  std::sort(groups.begin(), groups.end(),
            [](const ExternalAggGroup& a, const ExternalAggGroup& b) {
              return a.first_row < b.first_row;
            });
  return groups;
}

}  // namespace vdb::exec
