#include "exec/recovery.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "catalog/wal_payloads.h"

namespace vdb::exec {

namespace {

constexpr uint32_t kCheckpointMagic = 0x564B4843;  // "CHKV"
// Version 2 appends one zone-map entry per heap page after its image;
// version-1 images (no zone section) still load, with every restored
// page's zone entry marked untracked so it simply never prunes.
constexpr uint32_t kCheckpointVersion = 2;
constexpr uint32_t kCheckpointVersionNoZones = 1;

/// An index to rebuild after redo, by name (the CreateIndex API).
struct IndexDef {
  std::string index_name;
  std::string table_name;
  std::string column_name;
};

Result<IndexDef> ResolveIndexDef(catalog::Catalog* catalog,
                                 const std::string& index_name,
                                 uint32_t table_id, uint32_t column_index) {
  VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                       catalog->TableById(table_id));
  if (column_index >= table->schema.NumColumns()) {
    return Status::IOError("index definition references a missing column");
  }
  return IndexDef{index_name, table->name,
                  table->schema.column(column_index).name};
}

/// Loads checkpoint.img into the (empty) catalog; records index
/// definitions for deferred rebuild. A missing file is not an error.
Status LoadCheckpoint(const std::string& path, catalog::Catalog* catalog,
                      std::vector<IndexDef>* index_defs,
                      RecoveryStats* stats) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::OK();  // fresh database
  std::string blob;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    blob.append(buf, n);
  }
  std::fclose(file);

  if (blob.size() < 4) {
    return Status::IOError("checkpoint image truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
  if (storage::Crc32c(blob.data(), blob.size() - 4) != stored_crc) {
    return Status::IOError("checkpoint image checksum mismatch");
  }

  catalog::walenc::PayloadReader reader(
      std::string_view(blob.data(), blob.size() - 4));
  VDB_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  VDB_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (magic != kCheckpointMagic ||
      (version != kCheckpointVersion &&
       version != kCheckpointVersionNoZones)) {
    return Status::IOError("not a checkpoint image (bad magic or version)");
  }
  const bool has_zones = version >= kCheckpointVersion;
  VDB_ASSIGN_OR_RETURN(uint64_t last_lsn, reader.ReadU64());
  VDB_ASSIGN_OR_RETURN(uint32_t num_tables, reader.ReadU32());
  for (uint32_t t = 0; t < num_tables; ++t) {
    VDB_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    VDB_ASSIGN_OR_RETURN(catalog::Schema schema, reader.ReadSchema());
    VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                         catalog->CreateTable(name, schema));
    VDB_ASSIGN_OR_RETURN(uint64_t num_pages, reader.ReadU64());
    storage::Page image;
    for (uint64_t p = 0; p < num_pages; ++p) {
      VDB_ASSIGN_OR_RETURN(storage::Lsn page_lsn, reader.ReadU64());
      VDB_ASSIGN_OR_RETURN(std::string_view bytes,
                           reader.ReadBytes(storage::kPageSize));
      std::memcpy(image.data(), bytes.data(), storage::kPageSize);
      if (has_zones) {
        VDB_ASSIGN_OR_RETURN(storage::ZoneEntry zone,
                             catalog::walenc::ReadZoneEntry(&reader));
        VDB_RETURN_NOT_OK(table->heap->RestorePage(image, page_lsn, &zone));
      } else {
        VDB_RETURN_NOT_OK(table->heap->RestorePage(image, page_lsn));
      }
    }
  }
  VDB_ASSIGN_OR_RETURN(uint32_t num_indexes, reader.ReadU32());
  for (uint32_t i = 0; i < num_indexes; ++i) {
    VDB_ASSIGN_OR_RETURN(std::string index_name, reader.ReadString());
    VDB_ASSIGN_OR_RETURN(uint32_t table_id, reader.ReadU32());
    VDB_ASSIGN_OR_RETURN(uint32_t column_index, reader.ReadU32());
    VDB_ASSIGN_OR_RETURN(
        IndexDef def,
        ResolveIndexDef(catalog, index_name, table_id, column_index));
    index_defs->push_back(std::move(def));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("checkpoint image has trailing bytes");
  }
  stats->checkpoint_loaded = true;
  stats->checkpoint_lsn = last_lsn;
  return Status::OK();
}

}  // namespace

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.img";
}

Result<RecoveryStats> Recover(const std::string& dir,
                              catalog::Catalog* catalog) {
  if (!catalog->Tables().empty()) {
    return Status::InvalidArgument("Recover requires an empty catalog");
  }
  RecoveryStats stats;
  std::vector<IndexDef> index_defs;
  VDB_RETURN_NOT_OK(
      LoadCheckpoint(CheckpointPath(dir), catalog, &index_defs, &stats));

  // Redo everything past the checkpoint horizon. kCreateIndex records only
  // collect a definition here: rebuilding as we go would make every later
  // insert pay index maintenance twice, and the backfill below produces
  // the identical tree from the recovered heap.
  const auto apply = [&](const storage::WalRecord& rec) -> Status {
    using storage::WalRecordType;
    namespace walenc = catalog::walenc;
    switch (rec.type) {
      case WalRecordType::kCreateTable: {
        VDB_ASSIGN_OR_RETURN(walenc::CreateTablePayload p,
                             walenc::DecodeCreateTable(rec.payload));
        return catalog->CreateTable(p.name, p.schema).status();
      }
      case WalRecordType::kCreateIndex: {
        VDB_ASSIGN_OR_RETURN(walenc::CreateIndexPayload p,
                             walenc::DecodeCreateIndex(rec.payload));
        VDB_ASSIGN_OR_RETURN(IndexDef def,
                             ResolveIndexDef(catalog, p.index_name,
                                             p.table_id, p.column_index));
        index_defs.push_back(std::move(def));
        return Status::OK();
      }
      case WalRecordType::kInsert: {
        VDB_ASSIGN_OR_RETURN(walenc::InsertPayload p,
                             walenc::DecodeInsert(rec.payload));
        VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                             catalog->TableById(p.table_id));
        // Rebuild the zone-map samples the original insert folded: the
        // logged record deserializes under the table schema, giving the
        // same per-column numeric keys. ApplyRedoInsert's LSN-skip test
        // runs first, so an already-applied record folds nothing twice.
        VDB_ASSIGN_OR_RETURN(
            catalog::Tuple tuple,
            catalog::DeserializeTuple(p.record, table->schema));
        const std::vector<storage::ZoneSample> samples =
            catalog::ComputeZoneSamples(tuple);
        return table->heap
            ->ApplyRedoInsert(p.page_index, p.slot, p.record, rec.lsn,
                              &samples)
            .status();
      }
      case WalRecordType::kDelete: {
        VDB_ASSIGN_OR_RETURN(walenc::DeletePayload p,
                             walenc::DecodeDelete(rec.payload));
        VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                             catalog->TableById(p.table_id));
        return table->heap->ApplyRedoDelete(p.page_index, p.slot, rec.lsn)
            .status();
      }
    }
    return Status::IOError("unknown WAL record type");
  };
  VDB_ASSIGN_OR_RETURN(
      stats.wal,
      storage::WriteAheadLog::Replay(WalPath(dir), stats.checkpoint_lsn,
                                     apply));

  for (const IndexDef& def : index_defs) {
    VDB_RETURN_NOT_OK(catalog
                          ->CreateIndex(def.index_name, def.table_name,
                                        def.column_name)
                          .status());
    ++stats.indexes_rebuilt;
  }
  stats.tables_recovered = catalog->Tables().size();
  return stats;
}

Status WriteCheckpoint(catalog::Catalog* catalog,
                       storage::DiskManager* disk, const std::string& path,
                       storage::Lsn last_lsn) {
  namespace walenc = catalog::walenc;
  std::string blob;
  walenc::AppendU32(&blob, kCheckpointMagic);
  walenc::AppendU32(&blob, kCheckpointVersion);
  walenc::AppendU64(&blob, last_lsn);

  const std::vector<catalog::TableInfo*> tables = catalog->Tables();
  walenc::AppendU32(&blob, static_cast<uint32_t>(tables.size()));
  storage::Page image;
  for (const catalog::TableInfo* table : tables) {
    walenc::AppendString(&blob, table->name);
    walenc::AppendSchema(&blob, table->schema);
    const std::vector<storage::PageId>& pages = table->heap->pages();
    walenc::AppendU64(&blob, pages.size());
    const std::vector<storage::ZoneEntry>& zones =
        table->heap->zone_map().entries();
    for (uint64_t p = 0; p < pages.size(); ++p) {
      walenc::AppendU64(&blob, table->heap->PageLsn(p));
      disk->ReadPage(pages[p], &image);
      blob.append(image.data(), storage::kPageSize);
      walenc::AppendZoneEntry(&blob, zones[p]);
    }
  }

  uint32_t num_indexes = 0;
  for (const catalog::TableInfo* table : tables) {
    num_indexes += static_cast<uint32_t>(table->indexes.size());
  }
  walenc::AppendU32(&blob, num_indexes);
  for (uint32_t t = 0; t < tables.size(); ++t) {
    for (const catalog::IndexInfo* index : tables[t]->indexes) {
      walenc::AppendString(&blob, index->name);
      walenc::AppendU32(&blob, t);
      walenc::AppendU32(&blob,
                        static_cast<uint32_t>(index->column_index));
    }
  }
  walenc::AppendU32(&blob, storage::Crc32c(blob.data(), blob.size()));

  // Atomic publication: a crash before the rename leaves the previous
  // checkpoint (or none) intact; after it, the new image is complete.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create checkpoint temp file: " + tmp);
  }
  const bool written =
      std::fwrite(blob.data(), 1, blob.size(), file) == blob.size() &&
      std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  std::fclose(file);
  if (!written) {
    std::remove(tmp.c_str());
    return Status::IOError("checkpoint write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("checkpoint rename failed: " + path);
  }
  return Status::OK();
}

}  // namespace vdb::exec
