#include "plan/planner.h"

#include <unordered_set>

#include "util/string_util.h"

namespace vdb::plan {

namespace {

using catalog::TypeId;
using catalog::Value;
using sql::BinaryOp;
using sql::ExprType;

// Splits an AST expression into its top-level AND conjuncts.
void SplitConjuncts(const sql::Expr* expr,
                    std::vector<const sql::Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->type == ExprType::kBinary) {
    const auto* binary = static_cast<const sql::BinaryExpr*>(expr);
    if (binary->op == BinaryOp::kAnd) {
      SplitConjuncts(binary->left.get(), out);
      SplitConjuncts(binary->right.get(), out);
      return;
    }
  }
  out->push_back(expr);
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<TypeId> ArithmeticResultType(BinaryOp op, TypeId left, TypeId right) {
  if (left == TypeId::kString || right == TypeId::kString ||
      left == TypeId::kBool || right == TypeId::kBool) {
    return Status::InvalidArgument("arithmetic on non-numeric operand");
  }
  if (left == TypeId::kDouble || right == TypeId::kDouble) {
    if (op == BinaryOp::kMod) {
      return Status::InvalidArgument("MOD requires integer operands");
    }
    return TypeId::kDouble;
  }
  if (left == TypeId::kDate || right == TypeId::kDate) {
    if (op == BinaryOp::kAdd || op == BinaryOp::kSub) {
      // date - date -> days; date +/- days -> date.
      return (left == TypeId::kDate && right == TypeId::kDate)
                 ? TypeId::kInt64
                 : TypeId::kDate;
    }
    return Status::InvalidArgument("invalid arithmetic on DATE");
  }
  return TypeId::kInt64;
}

Status CheckComparable(TypeId left, TypeId right) {
  const bool left_string = left == TypeId::kString;
  const bool right_string = right == TypeId::kString;
  if (left_string != right_string) {
    return Status::InvalidArgument(
        "cannot compare string with non-string value");
  }
  return Status::OK();
}

// Folds an expression whose operands are all constants.
BoundExprPtr MaybeFold(BoundExprPtr expr) {
  std::vector<ColumnId> columns;
  expr->CollectColumns(&columns);
  if (!columns.empty() || expr->kind() == BoundExprKind::kConstant) {
    return expr;
  }
  const Value folded = expr->Evaluate({});
  return std::make_unique<ConstantExpr>(folded);
}

// Name for an AST node used as an output column (falls back to ToString).
std::string ColumnNameForItem(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->type == ExprType::kColumnRef) {
    return static_cast<const sql::ColumnRefExpr*>(item.expr.get())->column;
  }
  return item.expr->ToString();
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

// Table ids referenced by a bound expression.
std::unordered_set<int> ReferencedTableIds(const BoundExpr& expr) {
  std::vector<ColumnId> columns;
  expr.CollectColumns(&columns);
  std::unordered_set<int> ids;
  for (const ColumnId& column : columns) ids.insert(column.table_id);
  return ids;
}

// True if every column of `expr` is produced by `node`.
bool NodeCovers(const LogicalNode& node, const BoundExpr& expr) {
  std::vector<ColumnId> columns;
  expr.CollectColumns(&columns);
  for (const ColumnId& needed : columns) {
    bool found = false;
    for (const OutputColumn& have : node.output) {
      if (have.id == needed) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

Result<LogicalNodePtr> Planner::Plan(const sql::SelectStatement& stmt) {
  if (stmt.from.empty()) {
    return Status::NotSupported("SELECT without FROM is not supported");
  }
  Scope scope;
  VDB_ASSIGN_OR_RETURN(LogicalNodePtr plan, PlanFromWhere(stmt, &scope));
  return PlanSelectList(stmt, std::move(plan), scope);
}

Result<LogicalNodePtr> Planner::PlanFrom(
    const std::vector<sql::FromItem>& items, Scope* scope) {
  LogicalNodePtr plan;
  for (size_t i = 0; i < items.size(); ++i) {
    const sql::FromItem& item = items[i];
    if (i == 0) {
      VDB_ASSIGN_OR_RETURN(plan, PlanTableRef(item.table, scope));
      continue;
    }
    Scope right_scope;
    VDB_ASSIGN_OR_RETURN(LogicalNodePtr right,
                         PlanTableRef(item.table, &right_scope));
    // Extend the visible scope with the right side's columns.
    for (const ScopeColumn& column : right_scope.columns) {
      scope->columns.push_back(column);
    }
    auto join = std::make_unique<LogicalJoin>();
    switch (item.join_type) {
      case sql::JoinType::kCross:
        join->join_type = LogicalJoinType::kCross;
        break;
      case sql::JoinType::kInner:
        join->join_type = LogicalJoinType::kInner;
        break;
      case sql::JoinType::kLeft:
        join->join_type = LogicalJoinType::kLeft;
        break;
    }
    join->output = plan->output;
    join->output.insert(join->output.end(), right->output.begin(),
                        right->output.end());
    join->children.push_back(std::move(plan));
    join->children.push_back(std::move(right));
    if (item.join_condition != nullptr) {
      VDB_ASSIGN_OR_RETURN(join->condition,
                           BindExpr(*item.join_condition, *scope));
      if (join->condition->type() != TypeId::kBool) {
        return Status::InvalidArgument("join condition must be boolean");
      }
    }
    plan = std::move(join);
  }
  return plan;
}

Result<LogicalNodePtr> Planner::PlanFromWhere(
    const sql::SelectStatement& stmt, Scope* scope) {
  VDB_ASSIGN_OR_RETURN(LogicalNodePtr plan, PlanFrom(stmt.from, scope));

  if (stmt.where != nullptr) {
    std::vector<const sql::Expr*> conjuncts;
    SplitConjuncts(stmt.where.get(), &conjuncts);
    BoundExprPtr filter_condition;
    for (const sql::Expr* conjunct : conjuncts) {
      // [NOT] EXISTS conjuncts become semi/anti joins.
      if (conjunct->type == ExprType::kExists) {
        const auto* exists =
            static_cast<const sql::ExistsExpr*>(conjunct);
        VDB_ASSIGN_OR_RETURN(
            plan, PlanExists(std::move(plan), *scope, *exists->subquery,
                             exists->negated));
        continue;
      }
      if (conjunct->type == ExprType::kInSubquery) {
        const auto* in = static_cast<const sql::InSubqueryExpr*>(conjunct);
        VDB_ASSIGN_OR_RETURN(
            plan, PlanInSubquery(std::move(plan), *scope, *in->value,
                                 *in->subquery, in->negated));
        continue;
      }
      if (conjunct->type == ExprType::kUnary) {
        const auto* unary = static_cast<const sql::UnaryExpr*>(conjunct);
        if (unary->op == sql::UnaryOp::kNot &&
            unary->operand->type == ExprType::kExists) {
          const auto* exists =
              static_cast<const sql::ExistsExpr*>(unary->operand.get());
          VDB_ASSIGN_OR_RETURN(
              plan, PlanExists(std::move(plan), *scope, *exists->subquery,
                               !exists->negated));
          continue;
        }
        if (unary->op == sql::UnaryOp::kNot &&
            unary->operand->type == ExprType::kInSubquery) {
          const auto* in = static_cast<const sql::InSubqueryExpr*>(
              unary->operand.get());
          VDB_ASSIGN_OR_RETURN(
              plan, PlanInSubquery(std::move(plan), *scope, *in->value,
                                   *in->subquery, !in->negated));
          continue;
        }
      }
      VDB_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*conjunct, *scope));
      if (bound->type() != TypeId::kBool) {
        return Status::InvalidArgument("WHERE predicate must be boolean: " +
                                       conjunct->ToString());
      }
      filter_condition = AndExprs(std::move(filter_condition),
                                  std::move(bound));
    }
    // Attach any scalar-subquery relations (each a single row) below the
    // filter via cross joins, making their output columns available.
    for (PendingScalarSubquery& pending : pending_scalar_subqueries_) {
      auto join = std::make_unique<LogicalJoin>();
      join->join_type = LogicalJoinType::kCross;
      join->output = plan->output;
      join->output.insert(join->output.end(),
                          pending.plan->output.begin(),
                          pending.plan->output.end());
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(pending.plan));
      plan = std::move(join);
    }
    pending_scalar_subqueries_.clear();
    if (filter_condition != nullptr) {
      auto filter = std::make_unique<LogicalFilter>();
      filter->output = plan->output;
      filter->condition = std::move(filter_condition);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }
  return plan;
}

Result<LogicalNodePtr> Planner::PlanTableRef(const sql::TableRef& ref,
                                             Scope* scope) {
  if (ref.kind == sql::TableRef::Kind::kBaseTable) {
    VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                         catalog_->GetTable(ref.name));
    auto get = std::make_unique<LogicalGet>();
    get->table = table;
    get->alias = ref.alias.empty() ? ref.name : ref.alias;
    get->table_id = NextTableId();
    for (size_t i = 0; i < table->schema.NumColumns(); ++i) {
      OutputColumn column;
      column.id = ColumnId{get->table_id, static_cast<int>(i)};
      column.name = table->schema.column(i).name;
      column.type = table->schema.column(i).type;
      get->output.push_back(column);
      scope->columns.push_back(ScopeColumn{column, get->alias});
    }
    return LogicalNodePtr(std::move(get));
  }
  // Derived table: plan the subquery, then re-expose its outputs under the
  // derived table's alias (and column aliases, if given).
  VDB_ASSIGN_OR_RETURN(LogicalNodePtr subplan, Plan(*ref.subquery));
  if (!ref.column_aliases.empty() &&
      ref.column_aliases.size() != subplan->output.size()) {
    return Status::InvalidArgument(
        "derived table '" + ref.alias + "' has " +
        std::to_string(subplan->output.size()) + " columns but " +
        std::to_string(ref.column_aliases.size()) + " aliases");
  }
  for (size_t i = 0; i < subplan->output.size(); ++i) {
    OutputColumn column = subplan->output[i];
    if (!ref.column_aliases.empty()) {
      column.name = ref.column_aliases[i];
      subplan->output[i].name = column.name;
    }
    scope->columns.push_back(ScopeColumn{column, ref.alias});
  }
  return subplan;
}

Result<LogicalNodePtr> Planner::PlanExists(
    LogicalNodePtr plan, const Scope& scope,
    const sql::SelectStatement& sub, bool negated) {
  if (!sub.group_by.empty() || sub.having != nullptr || sub.from.empty()) {
    return Status::NotSupported(
        "EXISTS subqueries with grouping are not supported");
  }
  if (sub.limit >= 0) {
    // The semi/anti join this lowers to cannot honor a row cap, and
    // EXISTS (... LIMIT 0) must be false — not "ignore the LIMIT".
    return Status::NotSupported(
        "LIMIT in EXISTS subqueries is not supported");
  }
  // Plan the subquery's FROM clause; its WHERE is handled here because its
  // conjuncts may reference the outer query (correlation).
  Scope inner_scope;
  VDB_ASSIGN_OR_RETURN(LogicalNodePtr inner,
                       PlanFrom(sub.from, &inner_scope));
  std::unordered_set<int> inner_ids;
  for (const OutputColumn& column : inner->output) {
    inner_ids.insert(column.id.table_id);
  }
  // Bind the subquery WHERE over the combined (outer ++ inner) scope and
  // split conjuncts into local filters vs. correlated join predicates.
  Scope combined = scope;
  combined.columns.insert(combined.columns.end(),
                          inner_scope.columns.begin(),
                          inner_scope.columns.end());
  std::vector<const sql::Expr*> conjuncts;
  SplitConjuncts(sub.where.get(), &conjuncts);
  BoundExprPtr local_condition;
  BoundExprPtr join_condition;
  for (const sql::Expr* conjunct : conjuncts) {
    VDB_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*conjunct, combined));
    bool references_outer = false;
    for (int table_id : ReferencedTableIds(*bound)) {
      if (inner_ids.find(table_id) == inner_ids.end()) {
        references_outer = true;
        break;
      }
    }
    if (references_outer) {
      join_condition = AndExprs(std::move(join_condition), std::move(bound));
    } else {
      local_condition = AndExprs(std::move(local_condition),
                                 std::move(bound));
    }
  }
  if (local_condition != nullptr) {
    auto filter = std::make_unique<LogicalFilter>();
    filter->output = inner->output;
    filter->condition = std::move(local_condition);
    filter->children.push_back(std::move(inner));
    inner = std::move(filter);
  }
  auto join = std::make_unique<LogicalJoin>();
  join->join_type =
      negated ? LogicalJoinType::kAnti : LogicalJoinType::kSemi;
  join->condition = std::move(join_condition);
  join->output = plan->output;
  join->children.push_back(std::move(plan));
  join->children.push_back(std::move(inner));
  return LogicalNodePtr(std::move(join));
}

Result<LogicalNodePtr> Planner::PlanInSubquery(
    LogicalNodePtr plan, const Scope& scope, const sql::Expr& value,
    const sql::SelectStatement& subquery, bool negated) {
  // Uncorrelated IN-subquery: plan the subquery independently and join
  // the outer value against its single output column with a semi join
  // (anti join for NOT IN; NULL subquery values never match, i.e. we use
  // NOT EXISTS semantics, the common engine interpretation).
  VDB_ASSIGN_OR_RETURN(LogicalNodePtr inner, Plan(subquery));
  if (inner->output.size() != 1) {
    return Status::InvalidArgument(
        "IN subquery must produce exactly one column, got " +
        std::to_string(inner->output.size()));
  }
  VDB_ASSIGN_OR_RETURN(BoundExprPtr outer_value, BindExpr(value, scope));
  const OutputColumn& inner_column = inner->output[0];
  VDB_RETURN_NOT_OK(CheckComparable(outer_value->type(),
                                    inner_column.type));
  auto join = std::make_unique<LogicalJoin>();
  join->join_type =
      negated ? LogicalJoinType::kAnti : LogicalJoinType::kSemi;
  join->condition = std::make_unique<BinaryBoundExpr>(
      BinaryOp::kEq, std::move(outer_value),
      std::make_unique<ColumnExpr>(inner_column.id, inner_column.name,
                                   inner_column.type),
      TypeId::kBool);
  join->output = plan->output;
  join->children.push_back(std::move(plan));
  join->children.push_back(std::move(inner));
  return LogicalNodePtr(std::move(join));
}

Result<LogicalNodePtr> Planner::PlanSelectList(
    const sql::SelectStatement& stmt, LogicalNodePtr child,
    const Scope& scope) {
  if (!pending_scalar_subqueries_.empty()) {
    pending_scalar_subqueries_.clear();
    return Status::Internal("unattached scalar subquery");
  }
  // Gather aggregate calls from the select list, HAVING, and ORDER BY.
  std::vector<const sql::FunctionCallExpr*> agg_calls;
  bool select_star = false;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->type == ExprType::kStar) {
      select_star = true;
      continue;
    }
    VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &agg_calls));
  }
  if (stmt.having != nullptr) {
    VDB_RETURN_NOT_OK(CollectAggregates(*stmt.having, &agg_calls));
  }
  for (const sql::OrderByItem& item : stmt.order_by) {
    VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &agg_calls));
  }
  const bool grouped = !stmt.group_by.empty() || !agg_calls.empty();
  if (grouped && select_star) {
    return Status::InvalidArgument("SELECT * cannot be combined with "
                                   "aggregation");
  }
  if (stmt.having != nullptr && !grouped) {
    return Status::InvalidArgument("HAVING requires aggregation");
  }

  LogicalNodePtr current = std::move(child);
  AggBindingContext agg_context;
  agg_context.child_scope = &scope;

  if (grouped) {
    auto aggregate = std::make_unique<LogicalAggregate>();
    const int agg_table = NextTableId();
    int next_column = 0;
    for (const sql::ExprPtr& group_ast : stmt.group_by) {
      VDB_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*group_ast, scope));
      OutputColumn column;
      if (bound->kind() == BoundExprKind::kColumn) {
        const auto* col = static_cast<const ColumnExpr*>(bound.get());
        column.id = col->id();
        column.name = col->name();
      } else {
        column.id = ColumnId{agg_table, next_column};
        column.name = group_ast->ToString();
      }
      ++next_column;
      column.type = bound->type();
      aggregate->group_exprs.push_back(std::move(bound));
      aggregate->output.push_back(column);
      agg_context.group_texts.push_back(group_ast->ToString());
      agg_context.group_outputs.push_back(column);
    }
    for (const sql::FunctionCallExpr* call : agg_calls) {
      AggSpec spec;
      spec.name = call->ToString();
      if (call->name == "count") {
        spec.kind = call->star ? AggKind::kCountStar : AggKind::kCount;
      } else if (call->name == "sum") {
        spec.kind = AggKind::kSum;
      } else if (call->name == "avg") {
        spec.kind = AggKind::kAvg;
      } else if (call->name == "min") {
        spec.kind = AggKind::kMin;
      } else {
        spec.kind = AggKind::kMax;
      }
      if (!call->star) {
        if (call->args.size() != 1) {
          return Status::InvalidArgument("aggregate " + call->name +
                                         " takes exactly one argument");
        }
        VDB_ASSIGN_OR_RETURN(spec.arg, BindExpr(*call->args[0], scope));
      }
      spec.distinct = call->distinct;
      switch (spec.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          spec.output_type = TypeId::kInt64;
          break;
        case AggKind::kAvg:
          spec.output_type = TypeId::kDouble;
          break;
        default:
          spec.output_type = spec.arg->type();
          break;
      }
      if ((spec.kind == AggKind::kSum || spec.kind == AggKind::kAvg) &&
          spec.arg != nullptr &&
          (spec.arg->type() == TypeId::kString ||
           spec.arg->type() == TypeId::kBool)) {
        return Status::InvalidArgument(
            "sum/avg require a numeric argument");
      }
      OutputColumn column;
      column.id = ColumnId{agg_table, next_column++};
      column.name = spec.name;
      column.type = spec.output_type;
      spec.output_id = column.id;
      aggregate->output.push_back(column);
      agg_context.agg_texts.push_back(spec.name);
      agg_context.agg_outputs.push_back(column);
      aggregate->aggs.push_back(std::move(spec));
    }
    aggregate->children.push_back(std::move(current));
    current = std::move(aggregate);

    if (stmt.having != nullptr) {
      VDB_ASSIGN_OR_RETURN(BoundExprPtr condition,
                           BindPostAggExpr(*stmt.having, agg_context));
      if (condition->type() != TypeId::kBool) {
        return Status::InvalidArgument("HAVING must be boolean");
      }
      auto filter = std::make_unique<LogicalFilter>();
      filter->output = current->output;
      filter->condition = std::move(condition);
      filter->children.push_back(std::move(current));
      current = std::move(filter);
    }
  }

  // Final projection.
  auto project = std::make_unique<LogicalProject>();
  const int project_table = NextTableId();
  std::vector<std::string> item_texts;  // for ORDER BY matching
  int next_column = 0;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->type == ExprType::kStar) {
      for (const ScopeColumn& sc : scope.columns) {
        project->exprs.push_back(std::make_unique<ColumnExpr>(
            sc.column.id, sc.column.name, sc.column.type));
        project->output.push_back(sc.column);
        item_texts.push_back(sc.column.name);
        ++next_column;
      }
      continue;
    }
    BoundExprPtr bound;
    if (grouped) {
      VDB_ASSIGN_OR_RETURN(bound, BindPostAggExpr(*item.expr, agg_context));
    } else {
      VDB_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, scope));
    }
    OutputColumn column;
    if (bound->kind() == BoundExprKind::kColumn) {
      column.id = static_cast<const ColumnExpr*>(bound.get())->id();
    } else {
      column.id = ColumnId{project_table, next_column};
    }
    ++next_column;
    column.name = ColumnNameForItem(item);
    column.type = bound->type();
    project->exprs.push_back(std::move(bound));
    project->output.push_back(column);
    item_texts.push_back(item.expr->ToString());
  }
  // For plain (non-grouped, non-distinct) queries, ORDER BY may reference
  // any input column, not just select-list items; sort below the project in
  // that case. Aliases still resolve to the select item's expression.
  if (!stmt.order_by.empty() && !grouped && !stmt.distinct) {
    auto sort = std::make_unique<LogicalSort>();
    sort->output = current->output;
    bool all_bound = true;
    for (const sql::OrderByItem& item : stmt.order_by) {
      SortKey key;
      key.ascending = item.ascending;
      // Alias of a select item?
      if (item.expr->type == ExprType::kColumnRef) {
        const auto* ref =
            static_cast<const sql::ColumnRefExpr*>(item.expr.get());
        if (ref->table.empty()) {
          for (size_t i = 0; i < stmt.items.size(); ++i) {
            if (stmt.items[i].expr->type != ExprType::kStar &&
                EqualsIgnoreCase(stmt.items[i].alias, ref->column)) {
              key.expr = project->exprs[i]->Clone();
              break;
            }
          }
        }
      }
      if (key.expr == nullptr) {
        auto bound = BindExpr(*item.expr, scope);
        if (!bound.ok()) {
          all_bound = false;
          break;
        }
        key.expr = std::move(*bound);
      }
      sort->keys.push_back(std::move(key));
    }
    if (all_bound) {
      sort->children.push_back(std::move(current));
      // Attach the project above the sort and finish.
      project->children.push_back(std::move(sort));
      current = std::move(project);
      if (stmt.limit >= 0) {
        auto limit = std::make_unique<LogicalLimit>();
        limit->limit = stmt.limit;
        limit->output = current->output;
        limit->children.push_back(std::move(current));
        current = std::move(limit);
      }
      return current;
    }
    // Fall through to select-list matching below.
  }

  project->children.push_back(std::move(current));
  current = std::move(project);

  if (stmt.distinct) {
    auto distinct = std::make_unique<LogicalAggregate>();
    for (const OutputColumn& column : current->output) {
      distinct->group_exprs.push_back(std::make_unique<ColumnExpr>(
          column.id, column.name, column.type));
      distinct->output.push_back(column);
    }
    distinct->children.push_back(std::move(current));
    current = std::move(distinct);
  }

  if (!stmt.order_by.empty()) {
    auto sort = std::make_unique<LogicalSort>();
    sort->output = current->output;
    for (const sql::OrderByItem& item : stmt.order_by) {
      // Match against select-item aliases/names, then item text.
      const std::string text = item.expr->ToString();
      int match = -1;
      for (size_t i = 0; i < current->output.size(); ++i) {
        if (EqualsIgnoreCase(current->output[i].name, text)) {
          match = static_cast<int>(i);
          break;
        }
      }
      if (match < 0) {
        for (size_t i = 0; i < item_texts.size(); ++i) {
          if (item_texts[i] == text) {
            match = static_cast<int>(i);
            break;
          }
        }
      }
      if (match < 0) {
        return Status::NotSupported(
            "ORDER BY expression must name a select-list column: " + text);
      }
      const OutputColumn& column = current->output[match];
      SortKey key;
      key.expr =
          std::make_unique<ColumnExpr>(column.id, column.name, column.type);
      key.ascending = item.ascending;
      sort->keys.push_back(std::move(key));
    }
    sort->children.push_back(std::move(current));
    current = std::move(sort);
  }

  if (stmt.limit >= 0) {
    auto limit = std::make_unique<LogicalLimit>();
    limit->limit = stmt.limit;
    limit->output = current->output;
    limit->children.push_back(std::move(current));
    current = std::move(limit);
  }
  return current;
}

Status Planner::CollectAggregates(
    const sql::Expr& expr,
    std::vector<const sql::FunctionCallExpr*>* out) {
  switch (expr.type) {
    case ExprType::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      if (!IsAggregateName(call.name)) {
        return Status::NotSupported("unknown function: " + call.name);
      }
      // No nested aggregates.
      for (const sql::ExprPtr& arg : call.args) {
        std::vector<const sql::FunctionCallExpr*> nested;
        VDB_RETURN_NOT_OK(CollectAggregates(*arg, &nested));
        if (!nested.empty()) {
          return Status::InvalidArgument("aggregates cannot be nested");
        }
      }
      for (const sql::FunctionCallExpr* existing : *out) {
        if (existing->ToString() == call.ToString()) return Status::OK();
      }
      out->push_back(&call);
      return Status::OK();
    }
    case ExprType::kUnary:
      return CollectAggregates(
          *static_cast<const sql::UnaryExpr&>(expr).operand, out);
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*binary.left, out));
      return CollectAggregates(*binary.right, out);
    }
    case ExprType::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*between.value, out));
      VDB_RETURN_NOT_OK(CollectAggregates(*between.low, out));
      return CollectAggregates(*between.high, out);
    }
    case ExprType::kInList: {
      const auto& in_list = static_cast<const sql::InListExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*in_list.value, out));
      for (const sql::ExprPtr& item : in_list.list) {
        VDB_RETURN_NOT_OK(CollectAggregates(*item, out));
      }
      return Status::OK();
    }
    case ExprType::kInSubquery:
      return CollectAggregates(
          *static_cast<const sql::InSubqueryExpr&>(expr).value, out);
    case ExprType::kLike:
      return CollectAggregates(
          *static_cast<const sql::LikeExpr&>(expr).value, out);
    case ExprType::kIsNull:
      return CollectAggregates(
          *static_cast<const sql::IsNullExpr&>(expr).value, out);
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [when, then] : case_expr.branches) {
        VDB_RETURN_NOT_OK(CollectAggregates(*when, out));
        VDB_RETURN_NOT_OK(CollectAggregates(*then, out));
      }
      if (case_expr.else_result != nullptr) {
        return CollectAggregates(*case_expr.else_result, out);
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Result<BoundExprPtr> Planner::BindColumnRef(const sql::ColumnRefExpr& ref,
                                            const Scope& scope) {
  const ScopeColumn* found = nullptr;
  for (const ScopeColumn& sc : scope.columns) {
    const bool qualifier_matches =
        ref.table.empty() || EqualsIgnoreCase(sc.qualifier, ref.table);
    if (qualifier_matches && EqualsIgnoreCase(sc.column.name, ref.column)) {
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous column reference: " +
                                       ref.ToString());
      }
      found = &sc;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("column not found: " + ref.ToString());
  }
  return BoundExprPtr(std::make_unique<ColumnExpr>(
      found->column.id, found->column.name, found->column.type));
}

Result<BoundExprPtr> Planner::BindExpr(const sql::Expr& expr,
                                       const Scope& scope) {
  switch (expr.type) {
    case ExprType::kLiteral:
      return BoundExprPtr(std::make_unique<ConstantExpr>(
          static_cast<const sql::LiteralExpr&>(expr).value));
    case ExprType::kColumnRef:
      return BindColumnRef(static_cast<const sql::ColumnRefExpr&>(expr),
                           scope);
    case ExprType::kStar:
      return Status::InvalidArgument("'*' is not valid here");
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindExpr(*unary.operand, scope));
      TypeId type;
      if (unary.op == sql::UnaryOp::kNot) {
        if (operand->type() != TypeId::kBool) {
          return Status::InvalidArgument("NOT requires a boolean operand");
        }
        type = TypeId::kBool;
      } else {
        if (operand->type() == TypeId::kString ||
            operand->type() == TypeId::kBool) {
          return Status::InvalidArgument("unary minus on non-numeric");
        }
        type = operand->type();
      }
      return MaybeFold(std::make_unique<UnaryBoundExpr>(
          unary.op, std::move(operand), type));
    }
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr left, BindExpr(*binary.left, scope));
      VDB_ASSIGN_OR_RETURN(BoundExprPtr right,
                           BindExpr(*binary.right, scope));
      TypeId type;
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        if (left->type() != TypeId::kBool ||
            right->type() != TypeId::kBool) {
          return Status::InvalidArgument(
              std::string(sql::BinaryOpName(binary.op)) +
              " requires boolean operands");
        }
        type = TypeId::kBool;
      } else if (IsComparison(binary.op)) {
        VDB_RETURN_NOT_OK(CheckComparable(left->type(), right->type()));
        type = TypeId::kBool;
      } else {
        VDB_ASSIGN_OR_RETURN(
            type, ArithmeticResultType(binary.op, left->type(),
                                       right->type()));
      }
      return MaybeFold(std::make_unique<BinaryBoundExpr>(
          binary.op, std::move(left), std::move(right), type));
    }
    case ExprType::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr value,
                           BindExpr(*between.value, scope));
      VDB_ASSIGN_OR_RETURN(BoundExprPtr low, BindExpr(*between.low, scope));
      VDB_ASSIGN_OR_RETURN(BoundExprPtr high,
                           BindExpr(*between.high, scope));
      VDB_RETURN_NOT_OK(CheckComparable(value->type(), low->type()));
      VDB_RETURN_NOT_OK(CheckComparable(value->type(), high->type()));
      // Rewrite to value >= low AND value <= high (negated: OR of inverses).
      BoundExprPtr ge = std::make_unique<BinaryBoundExpr>(
          between.negated ? BinaryOp::kLt : BinaryOp::kGe, value->Clone(),
          std::move(low), TypeId::kBool);
      BoundExprPtr le = std::make_unique<BinaryBoundExpr>(
          between.negated ? BinaryOp::kGt : BinaryOp::kLe, std::move(value),
          std::move(high), TypeId::kBool);
      return MaybeFold(std::make_unique<BinaryBoundExpr>(
          between.negated ? BinaryOp::kOr : BinaryOp::kAnd, std::move(ge),
          std::move(le), TypeId::kBool));
    }
    case ExprType::kInList: {
      const auto& in_list = static_cast<const sql::InListExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr value,
                           BindExpr(*in_list.value, scope));
      std::vector<Value> constants;
      for (const sql::ExprPtr& item : in_list.list) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*item, scope));
        if (bound->kind() != BoundExprKind::kConstant) {
          return Status::NotSupported(
              "IN list elements must be constants");
        }
        const Value& v =
            static_cast<const ConstantExpr*>(bound.get())->value();
        VDB_RETURN_NOT_OK(CheckComparable(value->type(), v.type()));
        constants.push_back(v);
      }
      return MaybeFold(std::make_unique<InListBoundExpr>(
          std::move(value), std::move(constants), in_list.negated));
    }
    case ExprType::kLike: {
      const auto& like = static_cast<const sql::LikeExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr value, BindExpr(*like.value, scope));
      if (value->type() != TypeId::kString) {
        return Status::InvalidArgument("LIKE requires a string operand");
      }
      return MaybeFold(std::make_unique<LikeBoundExpr>(
          std::move(value), like.pattern, like.negated));
    }
    case ExprType::kIsNull: {
      const auto& is_null = static_cast<const sql::IsNullExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr value,
                           BindExpr(*is_null.value, scope));
      return MaybeFold(std::make_unique<IsNullBoundExpr>(
          std::move(value), is_null.negated));
    }
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches;
      TypeId result_type = TypeId::kInt64;
      bool type_set = false;
      for (const auto& [when_ast, then_ast] : case_expr.branches) {
        VDB_ASSIGN_OR_RETURN(BoundExprPtr when, BindExpr(*when_ast, scope));
        if (when->type() != TypeId::kBool) {
          return Status::InvalidArgument("CASE WHEN must be boolean");
        }
        VDB_ASSIGN_OR_RETURN(BoundExprPtr then, BindExpr(*then_ast, scope));
        if (!type_set) {
          result_type = then->type();
          type_set = true;
        } else if (then->type() == TypeId::kDouble &&
                   result_type == TypeId::kInt64) {
          result_type = TypeId::kDouble;
        } else if (then->type() == TypeId::kInt64 &&
                   result_type == TypeId::kDouble) {
          // keep double
        } else if (then->type() != result_type) {
          return Status::InvalidArgument(
              "CASE branches have incompatible types");
        }
        branches.emplace_back(std::move(when), std::move(then));
      }
      BoundExprPtr else_result;
      if (case_expr.else_result != nullptr) {
        VDB_ASSIGN_OR_RETURN(else_result,
                             BindExpr(*case_expr.else_result, scope));
        if (else_result->type() == TypeId::kDouble &&
            result_type == TypeId::kInt64) {
          result_type = TypeId::kDouble;
        }
      }
      return MaybeFold(std::make_unique<CaseBoundExpr>(
          std::move(branches), std::move(else_result), result_type));
    }
    case ExprType::kExists:
      return Status::NotSupported(
          "EXISTS is only supported as a top-level WHERE conjunct");
    case ExprType::kInSubquery:
      return Status::NotSupported(
          "IN (SELECT ...) is only supported as a top-level WHERE "
          "conjunct");
    case ExprType::kScalarSubquery: {
      // Plan the (uncorrelated) subquery; require a guaranteed-single-row
      // shape: a global aggregate with no GROUP BY. The planned relation
      // is queued for PlanFromWhere to cross-join below the filter, and
      // the expression binds to its single output column.
      const auto& scalar =
          static_cast<const sql::ScalarSubqueryExpr&>(expr);
      const sql::SelectStatement& sub = *scalar.subquery;
      std::vector<const sql::FunctionCallExpr*> aggs;
      bool has_aggregate = false;
      for (const sql::SelectItem& item : sub.items) {
        if (item.expr->type != ExprType::kStar) {
          std::vector<const sql::FunctionCallExpr*> found;
          VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &found));
          has_aggregate = has_aggregate || !found.empty();
        }
      }
      if (!has_aggregate || !sub.group_by.empty()) {
        return Status::NotSupported(
            "scalar subqueries must be single-row global aggregates");
      }
      VDB_ASSIGN_OR_RETURN(LogicalNodePtr subplan, Plan(sub));
      if (subplan->output.size() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must produce exactly one column");
      }
      const OutputColumn& column = subplan->output[0];
      pending_scalar_subqueries_.push_back(
          PendingScalarSubquery{std::move(subplan)});
      return BoundExprPtr(std::make_unique<ColumnExpr>(
          column.id, column.name, column.type));
    }
    case ExprType::kFunctionCall:
      return Status::InvalidArgument(
          "aggregate function is not allowed here: " + expr.ToString());
  }
  return Status::Internal("unhandled expression type");
}

Result<BoundExprPtr> Planner::BindPostAggExpr(
    const sql::Expr& expr, const AggBindingContext& context) {
  const std::string text = expr.ToString();
  for (size_t i = 0; i < context.group_texts.size(); ++i) {
    if (context.group_texts[i] == text) {
      const OutputColumn& column = context.group_outputs[i];
      return BoundExprPtr(std::make_unique<ColumnExpr>(
          column.id, column.name, column.type));
    }
  }
  if (expr.type == ExprType::kFunctionCall) {
    for (size_t i = 0; i < context.agg_texts.size(); ++i) {
      if (context.agg_texts[i] == text) {
        const OutputColumn& column = context.agg_outputs[i];
        return BoundExprPtr(std::make_unique<ColumnExpr>(
            column.id, column.name, column.type));
      }
    }
    return Status::Internal("aggregate was not planned: " + text);
  }
  switch (expr.type) {
    case ExprType::kLiteral:
      return BoundExprPtr(std::make_unique<ConstantExpr>(
          static_cast<const sql::LiteralExpr&>(expr).value));
    case ExprType::kColumnRef:
      return Status::InvalidArgument(
          "column must appear in GROUP BY or inside an aggregate: " + text);
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindPostAggExpr(*unary.operand, context));
      const TypeId type = unary.op == sql::UnaryOp::kNot
                              ? TypeId::kBool
                              : operand->type();
      return MaybeFold(std::make_unique<UnaryBoundExpr>(
          unary.op, std::move(operand), type));
    }
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(BoundExprPtr left,
                           BindPostAggExpr(*binary.left, context));
      VDB_ASSIGN_OR_RETURN(BoundExprPtr right,
                           BindPostAggExpr(*binary.right, context));
      TypeId type;
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr ||
          IsComparison(binary.op)) {
        type = TypeId::kBool;
      } else {
        VDB_ASSIGN_OR_RETURN(
            type, ArithmeticResultType(binary.op, left->type(),
                                       right->type()));
      }
      return MaybeFold(std::make_unique<BinaryBoundExpr>(
          binary.op, std::move(left), std::move(right), type));
    }
    default:
      return Status::NotSupported(
          "unsupported expression after aggregation: " + text);
  }
}

// NodeCovers is used by the rewriter too; re-exported there.
bool LogicalNodeCovers(const LogicalNode& node, const BoundExpr& expr) {
  return NodeCovers(node, expr);
}

}  // namespace vdb::plan
