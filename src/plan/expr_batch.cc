// Batch (columnar) evaluation kernels for bound expressions. Each kernel
// must be value-equivalent to the scalar Evaluate in expr.cc: same NULL
// propagation, same type of every produced value, same three-valued
// logic. The differential fuzzer cross-checks the two paths query for
// query, so any divergence here is a test failure, not just a perf bug.

#include <algorithm>
#include <iterator>

#include "plan/expr.h"
#include "plan/kernels/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vdb::plan {

namespace {

using catalog::Batch;
using catalog::TypeId;
using catalog::Value;
using catalog::ValueVector;

// View over an evaluated operand. Columns are borrowed straight from the
// batch (indexed by physical row id), constants materialize one slot that
// every row maps to, and anything else evaluates into a dense scratch
// vector (indexed by active position). `Index` translates an active
// position into the right index for `vec()`.
class OperandView {
 public:
  OperandView(const BoundExpr& expr, const Batch& batch) {
    if (expr.kind() == BoundExprKind::kColumn) {
      vec_ = &batch.columns[static_cast<const ColumnExpr&>(expr).slot()];
      mode_ = kBorrowed;
    } else if (expr.kind() == BoundExprKind::kConstant) {
      const Value& v = static_cast<const ConstantExpr&>(expr).value();
      scratch_.Reset(v.type(), 1);
      scratch_.SetValue(0, v);
      vec_ = &scratch_;
      mode_ = kConstant;
    } else {
      expr.EvaluateBatch(batch, &scratch_);
      vec_ = &scratch_;
      mode_ = kDense;
    }
  }

  const ValueVector& vec() const { return *vec_; }

  size_t Index(const Batch& batch, size_t pos) const {
    switch (mode_) {
      case kBorrowed:
        return batch.sel[pos];
      case kConstant:
        return 0;
      default:
        return pos;
    }
  }

 private:
  enum Mode { kBorrowed, kConstant, kDense };
  Mode mode_ = kDense;
  const ValueVector* vec_ = nullptr;
  ValueVector scratch_;
};

bool ComparisonHolds(sql::BinaryOp op, int cmp) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return cmp == 0;
    case sql::BinaryOp::kNe:
      return cmp != 0;
    case sql::BinaryOp::kLt:
      return cmp < 0;
    case sql::BinaryOp::kLe:
      return cmp <= 0;
    case sql::BinaryOp::kGt:
      return cmp > 0;
    default:
      return cmp >= 0;
  }
}

bool IsComparison(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kNe:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Which comparison channel a (left, right) vector pair resolves to.
// catalog::CompareAt re-derives this from the operand types on every row;
// both types are batch-invariant, so the comparison kernels hoist the
// dispatch out of the loop and run a tight typed body the compiler can
// auto-vectorize. The channel choice mirrors CompareAt exactly: strings
// compare as strings, any double operand promotes both sides to double,
// everything else (int64 / bool / date) compares on the int64 channel.
enum class CompareChannel { kInt64, kDouble, kGeneric };

CompareChannel ChannelFor(const ValueVector& l, const ValueVector& r) {
  if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
    return CompareChannel::kGeneric;
  }
  if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
    return CompareChannel::kDouble;
  }
  return CompareChannel::kInt64;
}

// Compacts `batch->sel` keeping the active rows whose dense result in
// `flags` (a kBool vector) is non-null true.
void CompactByBools(const ValueVector& flags, Batch* batch) {
  size_t kept = 0;
  for (size_t i = 0; i < batch->sel.size(); ++i) {
    if (!flags.IsNull(i) && flags.GetInt64(i) != 0) {
      batch->sel[kept++] = batch->sel[i];
    }
  }
  batch->sel.resize(kept);
}

// --- SIMD kernel fast paths (src/plan/kernels/) -----------------------------
// Comparisons and fused arithmetic over column/constant operands on the
// int64 or double channel dispatch to the runtime-selected kernel table.
// Anything outside that domain (strings, dense sub-expression operands,
// null constants, mixed int/double columns) falls back to the loops
// below, which remain the semantic reference.

namespace kern = ::vdb::plan::kernels;

bool KernelCmpOpFor(sql::BinaryOp op, kern::CmpOp* out) {
  switch (op) {
    case sql::BinaryOp::kEq:
      *out = kern::CmpOp::kEq;
      return true;
    case sql::BinaryOp::kNe:
      *out = kern::CmpOp::kNe;
      return true;
    case sql::BinaryOp::kLt:
      *out = kern::CmpOp::kLt;
      return true;
    case sql::BinaryOp::kLe:
      *out = kern::CmpOp::kLe;
      return true;
    case sql::BinaryOp::kGt:
      *out = kern::CmpOp::kGt;
      return true;
    case sql::BinaryOp::kGe:
      *out = kern::CmpOp::kGe;
      return true;
    default:
      return false;
  }
}

// `a op b` with the constant on the left becomes `b mirror(op) a`.
kern::CmpOp MirrorCmpOp(kern::CmpOp op) {
  switch (op) {
    case kern::CmpOp::kLt:
      return kern::CmpOp::kGt;
    case kern::CmpOp::kLe:
      return kern::CmpOp::kGe;
    case kern::CmpOp::kGt:
      return kern::CmpOp::kLt;
    case kern::CmpOp::kGe:
      return kern::CmpOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

const ValueVector* LeafColumn(const BoundExpr& e, const Batch& batch) {
  if (e.kind() != BoundExprKind::kColumn) return nullptr;
  return &batch.columns[static_cast<const ColumnExpr&>(e).slot()];
}

const Value* LeafConstant(const BoundExpr& e) {
  if (e.kind() != BoundExprKind::kConstant) return nullptr;
  return &static_cast<const ConstantExpr&>(e).value();
}

// Per-batch null-free probe: a column with no set null byte among the
// batch's physical rows takes the kernels' no-null fast path.
const uint8_t* NullsOrNullptr(const ValueVector& col, size_t rows) {
  return kern::HasNulls(col.NullData(), rows) ? col.NullData() : nullptr;
}

// A comparison in kernel-eligible shape: column vs column or column vs
// non-null constant, on one numeric channel (the double channel demands
// actual kDouble columns; promoted int64 columns fall back).
struct KernelCompare {
  kern::CmpOp op = kern::CmpOp::kEq;
  bool is_double = false;
  const ValueVector* lhs = nullptr;      // always a column
  const ValueVector* rhs_col = nullptr;  // null when rhs is a constant
  const Value* rhs_const = nullptr;
};

bool ClassifyKernelCompare(sql::BinaryOp op, const BoundExpr& left,
                           const BoundExpr& right, const Batch& batch,
                           KernelCompare* out) {
  if (!KernelCmpOpFor(op, &out->op)) return false;
  const TypeId lt = left.type();
  const TypeId rt = right.type();
  if (lt == TypeId::kString || rt == TypeId::kString) return false;
  out->is_double = lt == TypeId::kDouble || rt == TypeId::kDouble;
  const ValueVector* lcol = LeafColumn(left, batch);
  const ValueVector* rcol = LeafColumn(right, batch);
  if (lcol != nullptr && rcol != nullptr) {
    out->lhs = lcol;
    out->rhs_col = rcol;
  } else if (lcol != nullptr) {
    const Value* c = LeafConstant(right);
    if (c == nullptr || c->is_null()) return false;
    out->lhs = lcol;
    out->rhs_const = c;
  } else if (rcol != nullptr) {
    const Value* c = LeafConstant(left);
    if (c == nullptr || c->is_null()) return false;
    out->op = MirrorCmpOp(out->op);
    out->lhs = rcol;
    out->rhs_const = c;
  } else {
    return false;
  }
  if (out->is_double) {
    if (out->lhs->type() != TypeId::kDouble) return false;
    if (out->rhs_col != nullptr && out->rhs_col->type() != TypeId::kDouble) {
      return false;
    }
  }
  return true;
}

bool TryKernelFilterCompare(sql::BinaryOp op, const BoundExpr& left,
                            const BoundExpr& right, Batch* batch) {
  KernelCompare cmp;
  if (!ClassifyKernelCompare(op, left, right, *batch, &cmp)) return false;
  const kern::KernelTable& kt = kern::Active();
  const size_t n = batch->sel.size();
  uint32_t* sel = batch->sel.data();
  const size_t rows = batch->num_rows;
  const uint8_t* lnulls = NullsOrNullptr(*cmp.lhs, rows);
  size_t kept = 0;
  if (cmp.is_double) {
    if (cmp.rhs_col != nullptr) {
      kept = kt.filter_f64_col_col(cmp.op, cmp.lhs->DoubleData(), lnulls,
                                   cmp.rhs_col->DoubleData(),
                                   NullsOrNullptr(*cmp.rhs_col, rows), sel, n);
    } else {
      kept = kt.filter_f64_col_const(cmp.op, cmp.lhs->DoubleData(), lnulls,
                                     sel, n, cmp.rhs_const->AsDouble());
    }
  } else {
    if (cmp.rhs_col != nullptr) {
      kept = kt.filter_i64_col_col(cmp.op, cmp.lhs->Int64Data(), lnulls,
                                   cmp.rhs_col->Int64Data(),
                                   NullsOrNullptr(*cmp.rhs_col, rows), sel, n);
    } else {
      kept = kt.filter_i64_col_const(cmp.op, cmp.lhs->Int64Data(), lnulls,
                                     sel, n, cmp.rhs_const->AsInt64());
    }
  }
  batch->sel.resize(kept);
  return true;
}

bool TryKernelEvalCompare(sql::BinaryOp op, const BoundExpr& left,
                          const BoundExpr& right, const Batch& batch,
                          ValueVector* out) {
  KernelCompare cmp;
  if (!ClassifyKernelCompare(op, left, right, batch, &cmp)) return false;
  const kern::KernelTable& kt = kern::Active();
  const size_t n = batch.sel.size();
  const uint32_t* sel = batch.sel.data();
  const size_t rows = batch.num_rows;
  const uint8_t* lnulls = NullsOrNullptr(*cmp.lhs, rows);
  out->Reset(TypeId::kBool, n);
  int64_t* out_vals = out->MutableInt64Data();
  uint8_t* out_nulls = out->MutableNullData();
  if (cmp.is_double) {
    if (cmp.rhs_col != nullptr) {
      kt.eval_f64_col_col(cmp.op, cmp.lhs->DoubleData(), lnulls,
                          cmp.rhs_col->DoubleData(),
                          NullsOrNullptr(*cmp.rhs_col, rows), sel, n, out_vals,
                          out_nulls);
    } else {
      kt.eval_f64_col_const(cmp.op, cmp.lhs->DoubleData(), lnulls, sel, n,
                            cmp.rhs_const->AsDouble(), out_vals, out_nulls);
    }
  } else {
    if (cmp.rhs_col != nullptr) {
      kt.eval_i64_col_col(cmp.op, cmp.lhs->Int64Data(), lnulls,
                          cmp.rhs_col->Int64Data(),
                          NullsOrNullptr(*cmp.rhs_col, rows), sel, n, out_vals,
                          out_nulls);
    } else {
      kt.eval_i64_col_const(cmp.op, cmp.lhs->Int64Data(), lnulls, sel, n,
                            cmp.rhs_const->AsInt64(), out_vals, out_nulls);
    }
  }
  return true;
}

// --- fused arithmetic pattern matcher ---------------------------------------

bool KernelArithOpFor(sql::BinaryOp op, kern::ArithOp* out) {
  switch (op) {
    case sql::BinaryOp::kAdd:
      *out = kern::ArithOp::kAdd;
      return true;
    case sql::BinaryOp::kSub:
      *out = kern::ArithOp::kSub;
      return true;
    case sql::BinaryOp::kMul:
      *out = kern::ArithOp::kMul;
      return true;
    default:
      return false;
  }
}

bool BuildI64Operand(const BoundExpr& e, const Batch& batch, size_t rows,
                     kern::I64Operand* out) {
  if (const ValueVector* col = LeafColumn(e, batch); col != nullptr) {
    if (col->type() == TypeId::kDouble || col->type() == TypeId::kString) {
      return false;
    }
    out->vals = col->Int64Data();
    out->nulls = NullsOrNullptr(*col, rows);
    return true;
  }
  if (const Value* c = LeafConstant(e); c != nullptr) {
    if (c->is_null() || c->type() == TypeId::kDouble ||
        c->type() == TypeId::kString) {
      return false;
    }
    out->vals = nullptr;
    out->nulls = nullptr;
    out->constant = c->AsInt64();
    return true;
  }
  return false;
}

bool BuildF64Operand(const BoundExpr& e, const Batch& batch, size_t rows,
                     kern::F64Operand* out) {
  if (const ValueVector* col = LeafColumn(e, batch); col != nullptr) {
    if (col->type() != TypeId::kDouble) return false;
    out->vals = col->DoubleData();
    out->nulls = NullsOrNullptr(*col, rows);
    return true;
  }
  if (const Value* c = LeafConstant(e); c != nullptr) {
    if (c->is_null() || c->type() == TypeId::kString) return false;
    out->vals = nullptr;
    out->nulls = nullptr;
    out->constant = c->AsDouble();
    return true;
  }
  return false;
}

// Matches `(x ⊕ y) ⊗ z` / `z ⊗ (x ⊕ y)` with ⊕,⊗ ∈ {+,-,*} and
// column/constant leaves, and evaluates it in one fused kernel pass with
// no intermediate vector. The fused kernels keep the two operations
// separate (never FMA-contracted), so results match the two-pass path
// bitwise; see src/plan/CMakeLists.txt for the -ffp-contract=off guard.
bool TryKernelFusedArith(const BinaryBoundExpr& expr, const Batch& batch,
                         ValueVector* out) {
  kern::ArithOp outer_op;
  if (!KernelArithOpFor(expr.op(), &outer_op)) return false;

  auto as_arith = [](const BoundExpr& e) -> const BinaryBoundExpr* {
    if (e.kind() != BoundExprKind::kBinary) return nullptr;
    const auto& b = static_cast<const BinaryBoundExpr&>(e);
    kern::ArithOp ignored;
    return KernelArithOpFor(b.op(), &ignored) ? &b : nullptr;
  };
  auto is_leaf = [](const BoundExpr& e) {
    return e.kind() == BoundExprKind::kColumn ||
           e.kind() == BoundExprKind::kConstant;
  };

  const BinaryBoundExpr* inner = nullptr;
  const BoundExpr* z_expr = nullptr;
  bool inner_on_left = false;
  if (const BinaryBoundExpr* b = as_arith(expr.left());
      b != nullptr && is_leaf(b->left()) && is_leaf(b->right()) &&
      is_leaf(expr.right())) {
    inner = b;
    z_expr = &expr.right();
    inner_on_left = true;
  } else if (const BinaryBoundExpr* r = as_arith(expr.right());
             r != nullptr && is_leaf(r->left()) && is_leaf(r->right()) &&
             is_leaf(expr.left())) {
    inner = r;
    z_expr = &expr.left();
    inner_on_left = false;
  } else {
    return false;
  }

  kern::ArithOp inner_op;
  KernelArithOpFor(inner->op(), &inner_op);
  const kern::KernelTable& kt = kern::Active();
  const size_t n = batch.sel.size();
  const uint32_t* sel = batch.sel.data();
  const size_t rows = batch.num_rows;

  if (expr.type() == TypeId::kDouble) {
    // The unfused path materializes the inner result at its own type; an
    // int64-typed inner chain rounds through int64 before the promote,
    // which a double-channel fusion would skip. Only fuse all-double.
    if (inner->type() != TypeId::kDouble) return false;
    kern::F64Operand x, y, z;
    if (!BuildF64Operand(inner->left(), batch, rows, &x) ||
        !BuildF64Operand(inner->right(), batch, rows, &y) ||
        !BuildF64Operand(*z_expr, batch, rows, &z)) {
      return false;
    }
    out->Reset(TypeId::kDouble, n);
    kt.fused_arith_f64(inner_op, outer_op, inner_on_left, x, y, z, sel, n,
                       out->MutableDoubleData(), out->MutableNullData());
    return true;
  }

  kern::I64Operand x, y, z;
  if (!BuildI64Operand(inner->left(), batch, rows, &x) ||
      !BuildI64Operand(inner->right(), batch, rows, &y) ||
      !BuildI64Operand(*z_expr, batch, rows, &z)) {
    return false;
  }
  using sql::BinaryOp;
  const TypeId out_type =
      expr.type() == TypeId::kDate &&
              (expr.op() == BinaryOp::kAdd || expr.op() == BinaryOp::kSub)
          ? TypeId::kDate
          : TypeId::kInt64;
  out->Reset(out_type, n);
  kt.fused_arith_i64(inner_op, outer_op, inner_on_left, x, y, z, sel, n,
                     out->MutableInt64Data(), out->MutableNullData());
  return true;
}

}  // namespace

void BoundExpr::EvaluateBatch(const Batch& batch, ValueVector* out) const {
  out->Reset(type(), batch.sel.size());
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    out->SetValue(i, Evaluate(batch.RowAsTuple(batch.sel[i])));
  }
}

void BoundExpr::FilterBatch(Batch* batch) const {
  ValueVector result;
  EvaluateBatch(*batch, &result);
  CompactByBools(result, batch);
}

void ConstantExpr::EvaluateBatch(const Batch& batch,
                                 ValueVector* out) const {
  out->Reset(value_.type(), batch.sel.size());
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    out->SetValue(i, value_);
  }
}

void ConstantExpr::FilterBatch(Batch* batch) const {
  if (value_.is_null() || !value_.AsBool()) batch->sel.clear();
}

void ColumnExpr::EvaluateBatch(const Batch& batch, ValueVector* out) const {
  const ValueVector& column = batch.columns[slot_];
  out->Reset(column.type(), batch.sel.size());
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    out->CopyFrom(column, batch.sel[i], i);
  }
}

void ColumnExpr::FilterBatch(Batch* batch) const {
  const ValueVector& column = batch->columns[slot_];
  size_t kept = 0;
  for (size_t i = 0; i < batch->sel.size(); ++i) {
    const uint32_t row = batch->sel[i];
    if (!column.IsNull(row) && column.GetInt64(row) != 0) {
      batch->sel[kept++] = batch->sel[i];
    }
  }
  batch->sel.resize(kept);
}

void UnaryBoundExpr::EvaluateBatch(const Batch& batch,
                                   ValueVector* out) const {
  const size_t n = batch.sel.size();
  const OperandView operand(*operand_, batch);
  const ValueVector& v = operand.vec();
  if (op_ == sql::UnaryOp::kNegate) {
    // Mirrors the scalar path: double stays double, every other numeric
    // negates on the int64 channel (so -DATE deliberately yields int64).
    const TypeId out_type =
        v.type() == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    out->Reset(out_type, n);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = operand.Index(batch, i);
      if (v.IsNull(j)) {
        out->SetNull(i);
      } else if (out_type == TypeId::kDouble) {
        out->SetDouble(i, -v.GetDouble(j));
      } else {
        out->SetInt64(i, -v.GetInt64(j));
      }
    }
    return;
  }
  out->Reset(TypeId::kBool, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = operand.Index(batch, i);
    if (v.IsNull(j)) {
      out->SetNull(i);
    } else {
      out->SetInt64(i, v.GetInt64(j) != 0 ? 0 : 1);
    }
  }
}

void BinaryBoundExpr::EvaluateBatch(const Batch& batch,
                                    ValueVector* out) const {
  using sql::BinaryOp;
  const size_t n = batch.sel.size();

  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    // Both sides are side-effect free, so evaluating the right side even
    // where the scalar path would short-circuit produces the same values.
    const OperandView left(*left_, batch);
    const OperandView right(*right_, batch);
    const ValueVector& l = left.vec();
    const ValueVector& r = right.vec();
    out->Reset(TypeId::kBool, n);
    for (size_t i = 0; i < n; ++i) {
      const size_t li = left.Index(batch, i);
      const size_t ri = right.Index(batch, i);
      const bool l_null = l.IsNull(li);
      const bool r_null = r.IsNull(ri);
      const bool l_true = !l_null && l.GetInt64(li) != 0;
      const bool r_true = !r_null && r.GetInt64(ri) != 0;
      if (op_ == BinaryOp::kAnd) {
        if ((!l_null && !l_true) || (!r_null && !r_true)) {
          out->SetInt64(i, 0);
        } else if (l_null || r_null) {
          out->SetNull(i);
        } else {
          out->SetInt64(i, 1);
        }
      } else {
        if (l_true || r_true) {
          out->SetInt64(i, 1);
        } else if (l_null || r_null) {
          out->SetNull(i);
        } else {
          out->SetInt64(i, 0);
        }
      }
    }
    return;
  }

  if (IsComparison(op_) &&
      TryKernelEvalCompare(op_, *left_, *right_, batch, out)) {
    return;
  }
  if (TryKernelFusedArith(*this, batch, out)) return;

  const OperandView left(*left_, batch);
  const OperandView right(*right_, batch);
  const ValueVector& l = left.vec();
  const ValueVector& r = right.vec();

  if (IsComparison(op_)) {
    out->Reset(TypeId::kBool, n);
    switch (ChannelFor(l, r)) {
      case CompareChannel::kInt64:
        for (size_t i = 0; i < n; ++i) {
          const size_t li = left.Index(batch, i);
          const size_t ri = right.Index(batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) {
            out->SetNull(i);
            continue;
          }
          const int64_t a = l.GetInt64(li);
          const int64_t b = r.GetInt64(ri);
          out->SetInt64(
              i, ComparisonHolds(op_, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0);
        }
        break;
      case CompareChannel::kDouble:
        for (size_t i = 0; i < n; ++i) {
          const size_t li = left.Index(batch, i);
          const size_t ri = right.Index(batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) {
            out->SetNull(i);
            continue;
          }
          const double a = l.AsDouble(li);
          const double b = r.AsDouble(ri);
          out->SetInt64(
              i, ComparisonHolds(op_, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0);
        }
        break;
      case CompareChannel::kGeneric:
        for (size_t i = 0; i < n; ++i) {
          const size_t li = left.Index(batch, i);
          const size_t ri = right.Index(batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) {
            out->SetNull(i);
            continue;
          }
          out->SetInt64(
              i, ComparisonHolds(op_, catalog::CompareAt(l, li, r, ri)) ? 1
                                                                        : 0);
        }
        break;
    }
    return;
  }

  // Arithmetic. The static type decides the channel exactly like the
  // scalar path: kDouble computes on doubles, everything else on int64
  // (with kDate results only for +/- per ArithmeticResultType).
  if (type() == TypeId::kDouble) {
    out->Reset(TypeId::kDouble, n);
    for (size_t i = 0; i < n; ++i) {
      const size_t li = left.Index(batch, i);
      const size_t ri = right.Index(batch, i);
      if (l.IsNull(li) || r.IsNull(ri)) {
        out->SetNull(i);
        continue;
      }
      const double a = l.AsDouble(li);
      const double b = r.AsDouble(ri);
      switch (op_) {
        case BinaryOp::kAdd:
          out->SetDouble(i, a + b);
          break;
        case BinaryOp::kSub:
          out->SetDouble(i, a - b);
          break;
        case BinaryOp::kMul:
          out->SetDouble(i, a * b);
          break;
        case BinaryOp::kDiv:
          if (b == 0.0) {
            out->SetNull(i);
          } else {
            out->SetDouble(i, a / b);
          }
          break;
        default:
          out->SetNull(i);
          break;
      }
    }
    return;
  }

  const TypeId out_type =
      type() == TypeId::kDate &&
              (op_ == BinaryOp::kAdd || op_ == BinaryOp::kSub)
          ? TypeId::kDate
          : TypeId::kInt64;
  out->Reset(out_type, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t li = left.Index(batch, i);
    const size_t ri = right.Index(batch, i);
    if (l.IsNull(li) || r.IsNull(ri)) {
      out->SetNull(i);
      continue;
    }
    const int64_t a = l.GetInt64(li);
    const int64_t b = r.GetInt64(ri);
    switch (op_) {
      case BinaryOp::kAdd:
        out->SetInt64(i, a + b);
        break;
      case BinaryOp::kSub:
        out->SetInt64(i, a - b);
        break;
      case BinaryOp::kMul:
        out->SetInt64(i, a * b);
        break;
      case BinaryOp::kDiv:
        if (b == 0) {
          out->SetNull(i);
        } else {
          out->SetInt64(i, a / b);
        }
        break;
      case BinaryOp::kMod:
        if (b == 0) {
          out->SetNull(i);
        } else {
          out->SetInt64(i, a % b);
        }
        break;
      default:
        out->SetNull(i);
        break;
    }
  }
}

void BinaryBoundExpr::FilterBatch(Batch* batch) const {
  using sql::BinaryOp;
  if (op_ == BinaryOp::kAnd) {
    // A row passes a AND b iff it passes both (non-null true is the only
    // passing outcome), so chaining the selection vector is exact.
    left_->FilterBatch(batch);
    right_->FilterBatch(batch);
    return;
  }
  if (op_ == BinaryOp::kOr) {
    // Rows passing the left side pass outright; only the remainder needs
    // the right side. Both subsets stay ascending, so a merge restores
    // the selection order.
    std::vector<uint32_t> original = batch->sel;
    left_->FilterBatch(batch);
    std::vector<uint32_t> passed_left = std::move(batch->sel);
    batch->sel.clear();
    std::set_difference(original.begin(), original.end(),
                        passed_left.begin(), passed_left.end(),
                        std::back_inserter(batch->sel));
    right_->FilterBatch(batch);
    std::vector<uint32_t> merged;
    merged.reserve(passed_left.size() + batch->sel.size());
    std::merge(passed_left.begin(), passed_left.end(), batch->sel.begin(),
               batch->sel.end(), std::back_inserter(merged));
    batch->sel = std::move(merged);
    return;
  }
  if (IsComparison(op_)) {
    if (TryKernelFilterCompare(op_, *left_, *right_, batch)) return;
    const OperandView left(*left_, *batch);
    const OperandView right(*right_, *batch);
    const ValueVector& l = left.vec();
    const ValueVector& r = right.vec();
    size_t kept = 0;
    switch (ChannelFor(l, r)) {
      case CompareChannel::kInt64:
        for (size_t i = 0; i < batch->sel.size(); ++i) {
          const size_t li = left.Index(*batch, i);
          const size_t ri = right.Index(*batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) continue;
          const int64_t a = l.GetInt64(li);
          const int64_t b = r.GetInt64(ri);
          if (ComparisonHolds(op_, a < b ? -1 : (a > b ? 1 : 0))) {
            batch->sel[kept++] = batch->sel[i];
          }
        }
        break;
      case CompareChannel::kDouble:
        for (size_t i = 0; i < batch->sel.size(); ++i) {
          const size_t li = left.Index(*batch, i);
          const size_t ri = right.Index(*batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) continue;
          const double a = l.AsDouble(li);
          const double b = r.AsDouble(ri);
          if (ComparisonHolds(op_, a < b ? -1 : (a > b ? 1 : 0))) {
            batch->sel[kept++] = batch->sel[i];
          }
        }
        break;
      case CompareChannel::kGeneric:
        for (size_t i = 0; i < batch->sel.size(); ++i) {
          const size_t li = left.Index(*batch, i);
          const size_t ri = right.Index(*batch, i);
          if (l.IsNull(li) || r.IsNull(ri)) continue;
          if (ComparisonHolds(op_, catalog::CompareAt(l, li, r, ri))) {
            batch->sel[kept++] = batch->sel[i];
          }
        }
        break;
    }
    batch->sel.resize(kept);
    return;
  }
  BoundExpr::FilterBatch(batch);
}

void LikeBoundExpr::EvaluateBatch(const Batch& batch,
                                  ValueVector* out) const {
  const size_t n = batch.sel.size();
  const OperandView value(*value_, batch);
  const ValueVector& v = value.vec();
  out->Reset(TypeId::kBool, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = value.Index(batch, i);
    if (v.IsNull(j)) {
      out->SetNull(i);
    } else {
      const bool match = LikeMatch(v.GetString(j), pattern_);
      out->SetInt64(i, (negated_ ? !match : match) ? 1 : 0);
    }
  }
}

void LikeBoundExpr::FilterBatch(Batch* batch) const {
  const OperandView value(*value_, *batch);
  const ValueVector& v = value.vec();
  size_t kept = 0;
  for (size_t i = 0; i < batch->sel.size(); ++i) {
    const size_t j = value.Index(*batch, i);
    if (v.IsNull(j)) continue;
    const bool match = LikeMatch(v.GetString(j), pattern_);
    if (negated_ ? !match : match) batch->sel[kept++] = batch->sel[i];
  }
  batch->sel.resize(kept);
}

void InListBoundExpr::EvaluateBatch(const Batch& batch,
                                    ValueVector* out) const {
  const size_t n = batch.sel.size();
  const OperandView value(*value_, batch);
  const ValueVector& v = value.vec();
  out->Reset(TypeId::kBool, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = value.Index(batch, i);
    if (v.IsNull(j)) {
      out->SetNull(i);
      continue;
    }
    bool found = false;
    for (const Value& candidate : list_) {
      if (!candidate.is_null() &&
          catalog::CompareWithValue(v, j, candidate) == 0) {
        found = true;
        break;
      }
    }
    out->SetInt64(i, (negated_ ? !found : found) ? 1 : 0);
  }
}

void InListBoundExpr::FilterBatch(Batch* batch) const {
  const OperandView value(*value_, *batch);
  const ValueVector& v = value.vec();
  size_t kept = 0;
  for (size_t i = 0; i < batch->sel.size(); ++i) {
    const size_t j = value.Index(*batch, i);
    if (v.IsNull(j)) continue;
    bool found = false;
    for (const Value& candidate : list_) {
      if (!candidate.is_null() &&
          catalog::CompareWithValue(v, j, candidate) == 0) {
        found = true;
        break;
      }
    }
    if (negated_ ? !found : found) batch->sel[kept++] = batch->sel[i];
  }
  batch->sel.resize(kept);
}

void IsNullBoundExpr::EvaluateBatch(const Batch& batch,
                                    ValueVector* out) const {
  const size_t n = batch.sel.size();
  const OperandView value(*value_, batch);
  const ValueVector& v = value.vec();
  out->Reset(TypeId::kBool, n);
  for (size_t i = 0; i < n; ++i) {
    const bool is_null = v.IsNull(value.Index(batch, i));
    out->SetInt64(i, (negated_ ? !is_null : is_null) ? 1 : 0);
  }
}

void IsNullBoundExpr::FilterBatch(Batch* batch) const {
  const OperandView value(*value_, *batch);
  const ValueVector& v = value.vec();
  size_t kept = 0;
  for (size_t i = 0; i < batch->sel.size(); ++i) {
    const bool is_null = v.IsNull(value.Index(*batch, i));
    if (negated_ ? !is_null : is_null) batch->sel[kept++] = batch->sel[i];
  }
  batch->sel.resize(kept);
}

}  // namespace vdb::plan
