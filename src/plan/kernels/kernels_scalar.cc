// Scalar reference kernels: the portable table every ISA variant must
// match byte for byte. Compiled with the project's baseline flags only.

#include "plan/kernels/kernels.h"
#include "plan/kernels/kernels_common.h"

namespace vdb::plan::kernels {

namespace {

size_t FilterI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, int64_t constant) {
  return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
}

size_t FilterF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, double constant) {
  return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
}

size_t FilterI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                       const int64_t* b, const uint8_t* b_nulls,
                       uint32_t* sel, size_t n) {
  return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
}

size_t FilterF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                       const double* b, const uint8_t* b_nulls, uint32_t* sel,
                       size_t n) {
  return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
}

void EvalI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, int64_t constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals, out_nulls);
}

void EvalF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, double constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals, out_nulls);
}

void EvalI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                   const int64_t* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
}

void EvalF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                   const double* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
}

void FusedArithI64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   I64Operand x, I64Operand y, I64Operand z,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  ScalarFusedArith<int64_t>(inner, outer, inner_on_left, x, y, z, sel, n,
                            out_vals, out_nulls);
}

void FusedArithF64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   F64Operand x, F64Operand y, F64Operand z,
                   const uint32_t* sel, size_t n, double* out_vals,
                   uint8_t* out_nulls) {
  ScalarFusedArith<double>(inner, outer, inner_on_left, x, y, z, sel, n,
                           out_vals, out_nulls);
}

}  // namespace

const KernelTable* GetScalarKernelTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.isa = Isa::kScalar;
    t.filter_i64_col_const = FilterI64ColConst;
    t.filter_f64_col_const = FilterF64ColConst;
    t.filter_i64_col_col = FilterI64ColCol;
    t.filter_f64_col_col = FilterF64ColCol;
    t.eval_i64_col_const = EvalI64ColConst;
    t.eval_f64_col_const = EvalF64ColConst;
    t.eval_i64_col_col = EvalI64ColCol;
    t.eval_f64_col_col = EvalF64ColCol;
    t.fused_arith_i64 = FusedArithI64;
    t.fused_arith_f64 = FusedArithF64;
    return t;
  }();
  return &table;
}

}  // namespace vdb::plan::kernels
