// Element-wise kernel bodies shared by every ISA translation unit.
// Everything here lives in an anonymous namespace so each TU gets its
// own internal-linkage copy: the AVX2 TU is compiled with -mavx2, and a
// linker folding its instantiation into the baseline table would smuggle
// AVX encodings into the unguarded path.
//
// These bodies are the reference semantics: SIMD fast paths must produce
// byte-identical selections, payloads, and null bytes. The three-way
// double compare (`a < b ? -1 : (a > b ? 1 : 0)`) deliberately treats
// NaN as equal to everything — same as catalog::CompareAt — and the
// kernels preserve that by composing every predicate from IEEE `<`/`>`.

#ifndef VDB_PLAN_KERNELS_KERNELS_COMMON_H_
#define VDB_PLAN_KERNELS_KERNELS_COMMON_H_

#include <cstddef>
#include <cstdint>

#include "plan/kernels/kernels.h"

namespace vdb::plan::kernels {
namespace {

template <typename T>
inline bool CmpHolds(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::kEq:
      return !(a < b) && !(a > b);
    case CmpOp::kNe:
      return (a < b) || (a > b);
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return !(a > b);
    case CmpOp::kGt:
      return a > b;
    default:
      return !(a < b);
  }
}

inline double ArithApply(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    default:
      return a * b;
  }
}

// Int64 arithmetic wraps (computed in unsigned): the kernels evaluate
// payloads unconditionally, including rows whose inputs are null and
// whose payload bytes are stale, so signed-overflow UB must be avoided.
inline int64_t ArithApply(ArithOp op, int64_t a, int64_t b) {
  const uint64_t ua = static_cast<uint64_t>(a);
  const uint64_t ub = static_cast<uint64_t>(b);
  uint64_t r = 0;
  switch (op) {
    case ArithOp::kAdd:
      r = ua + ub;
      break;
    case ArithOp::kSub:
      r = ua - ub;
      break;
    default:
      r = ua * ub;
      break;
  }
  return static_cast<int64_t>(r);
}

// --- scalar filter bodies -------------------------------------------------

template <typename T>
inline size_t ScalarFilterColConst(CmpOp op, const T* vals,
                                   const uint8_t* nulls, uint32_t* sel,
                                   size_t n, T constant) {
  size_t kept = 0;
  if (nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = sel[i];
      if (CmpHolds(op, vals[row], constant)) sel[kept++] = row;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = sel[i];
      if (nulls[row] == 0 && CmpHolds(op, vals[row], constant)) {
        sel[kept++] = row;
      }
    }
  }
  return kept;
}

template <typename T>
inline size_t ScalarFilterColCol(CmpOp op, const T* a, const uint8_t* a_nulls,
                                 const T* b, const uint8_t* b_nulls,
                                 uint32_t* sel, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = sel[i];
    if (a_nulls != nullptr && a_nulls[row] != 0) continue;
    if (b_nulls != nullptr && b_nulls[row] != 0) continue;
    if (CmpHolds(op, a[row], b[row])) sel[kept++] = row;
  }
  return kept;
}

// --- scalar eval bodies ---------------------------------------------------
// Payloads are computed for every row (even null ones) so the output
// bytes are a pure function of the input bytes on every ISA.

template <typename T>
inline void ScalarEvalColConst(CmpOp op, const T* vals, const uint8_t* nulls,
                               const uint32_t* sel, size_t n, T constant,
                               int64_t* out_vals, uint8_t* out_nulls) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = sel[i];
    out_vals[i] = CmpHolds(op, vals[row], constant) ? 1 : 0;
    out_nulls[i] = nulls != nullptr ? nulls[row] : 0;
  }
}

template <typename T>
inline void ScalarEvalColCol(CmpOp op, const T* a, const uint8_t* a_nulls,
                             const T* b, const uint8_t* b_nulls,
                             const uint32_t* sel, size_t n, int64_t* out_vals,
                             uint8_t* out_nulls) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = sel[i];
    out_vals[i] = CmpHolds(op, a[row], b[row]) ? 1 : 0;
    uint8_t null_byte = a_nulls != nullptr ? a_nulls[row] : 0;
    null_byte |= b_nulls != nullptr ? b_nulls[row] : 0;
    out_nulls[i] = null_byte;
  }
}

// --- scalar fused arithmetic ----------------------------------------------

template <typename T, typename Operand>
inline T OperandAt(const Operand& operand, uint32_t row) {
  return operand.vals != nullptr ? operand.vals[row] : operand.constant;
}

template <typename Operand>
inline uint8_t OperandNullAt(const Operand& operand, uint32_t row) {
  return operand.nulls != nullptr ? operand.nulls[row] : 0;
}

template <typename T, typename Operand>
inline void ScalarFusedArith(ArithOp inner, ArithOp outer, bool inner_on_left,
                             const Operand& x, const Operand& y,
                             const Operand& z, const uint32_t* sel, size_t n,
                             T* out_vals, uint8_t* out_nulls) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = sel[i];
    const T t = ArithApply(inner, OperandAt<T>(x, row), OperandAt<T>(y, row));
    const T zv = OperandAt<T>(z, row);
    out_vals[i] = inner_on_left ? ArithApply(outer, t, zv)
                                : ArithApply(outer, zv, t);
    out_nulls[i] = OperandNullAt(x, row) | OperandNullAt(y, row) |
                   OperandNullAt(z, row);
  }
}

}  // namespace
}  // namespace vdb::plan::kernels

#endif  // VDB_PLAN_KERNELS_KERNELS_COMMON_H_
