// Explicit-SIMD expression kernels with runtime ISA dispatch
// (DESIGN.md §15). Function-pointer tables per ISA (scalar / SSE2 /
// AVX2); the active table is picked once from CPUID + the VDB_KERNELS
// environment escape hatch (`scalar` forces the reference kernels,
// `native` — the default — picks the best ISA the host supports).
//
// Every kernel is byte-identical to the scalar reference over the same
// input bytes: identical selection results, identical 0/1 payloads, and
// identical null bytes — including rows whose inputs are null (payloads
// are computed unconditionally, then masked by the null OR), NaN and
// ±0.0 doubles (compares are composed from IEEE `<`/`>` exactly as the
// scalar three-way compare), and INT64_MIN/MAX boundaries. The
// conformance test (tests/kernel_conformance_test.cc) and the kernel
// fuzz mode (`vdb_fuzz --mode kernels`) enforce this.
//
// This header is deliberately freestanding (cstdint/cstddef only): the
// per-ISA translation units include it under different -m flags, and
// pulling in STL headers there would risk the linker folding an
// AVX2-compiled inline symbol into the baseline path.

#ifndef VDB_PLAN_KERNELS_KERNELS_H_
#define VDB_PLAN_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace vdb::plan::kernels {

enum class Isa : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };
inline constexpr int kNumIsas = 3;

const char* IsaName(Isa isa);

/// Comparison operators, mirroring the sql::BinaryOp comparison subset.
enum class CmpOp : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// Fusable arithmetic operators (division and modulo produce NULL on
/// zero divisors and stay on the unfused path).
enum class ArithOp : uint8_t { kAdd = 0, kSub, kMul };

/// One operand of a fused arithmetic chain: a column (payload indexed by
/// the selection vector, optional null bytes) or, when `vals` is null, a
/// broadcast constant.
struct I64Operand {
  const int64_t* vals = nullptr;
  const uint8_t* nulls = nullptr;  // nullptr: proven null-free
  int64_t constant = 0;
};
struct F64Operand {
  const double* vals = nullptr;
  const uint8_t* nulls = nullptr;
  double constant = 0.0;
};

/// Function-pointer table of one ISA's kernels.
///
/// Filter kernels compact `sel` in place (keep rows where the compare
/// holds and both inputs are non-null) and return the kept count;
/// column payloads are indexed by `sel[i]`, fusing the compare with the
/// selection-vector compaction. Eval kernels write dense 0/1 payloads
/// to `out_vals[i]` and ORed null bytes to `out_nulls[i]`. A null
/// `nulls` pointer marks a column the caller proved null-free, which
/// skips the per-row null logic for the whole batch.
struct KernelTable {
  Isa isa = Isa::kScalar;

  size_t (*filter_i64_col_const)(CmpOp op, const int64_t* vals,
                                 const uint8_t* nulls, uint32_t* sel,
                                 size_t n, int64_t constant) = nullptr;
  size_t (*filter_f64_col_const)(CmpOp op, const double* vals,
                                 const uint8_t* nulls, uint32_t* sel,
                                 size_t n, double constant) = nullptr;
  size_t (*filter_i64_col_col)(CmpOp op, const int64_t* a,
                               const uint8_t* a_nulls, const int64_t* b,
                               const uint8_t* b_nulls, uint32_t* sel,
                               size_t n) = nullptr;
  size_t (*filter_f64_col_col)(CmpOp op, const double* a,
                               const uint8_t* a_nulls, const double* b,
                               const uint8_t* b_nulls, uint32_t* sel,
                               size_t n) = nullptr;

  void (*eval_i64_col_const)(CmpOp op, const int64_t* vals,
                             const uint8_t* nulls, const uint32_t* sel,
                             size_t n, int64_t constant, int64_t* out_vals,
                             uint8_t* out_nulls) = nullptr;
  void (*eval_f64_col_const)(CmpOp op, const double* vals,
                             const uint8_t* nulls, const uint32_t* sel,
                             size_t n, double constant, int64_t* out_vals,
                             uint8_t* out_nulls) = nullptr;
  void (*eval_i64_col_col)(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                           const int64_t* b, const uint8_t* b_nulls,
                           const uint32_t* sel, size_t n, int64_t* out_vals,
                           uint8_t* out_nulls) = nullptr;
  void (*eval_f64_col_col)(CmpOp op, const double* a, const uint8_t* a_nulls,
                           const double* b, const uint8_t* b_nulls,
                           const uint32_t* sel, size_t n, int64_t* out_vals,
                           uint8_t* out_nulls) = nullptr;

  /// Fused two-op arithmetic: `(x inner y) outer z` when `inner_on_left`,
  /// else `z outer (x inner y)` — one pass, no intermediate vector.
  /// Evaluation order matches the unfused two-pass path exactly (separate
  /// mul/add, never FMA-contracted), so results are bitwise identical.
  void (*fused_arith_i64)(ArithOp inner, ArithOp outer, bool inner_on_left,
                          I64Operand x, I64Operand y, I64Operand z,
                          const uint32_t* sel, size_t n, int64_t* out_vals,
                          uint8_t* out_nulls) = nullptr;
  void (*fused_arith_f64)(ArithOp inner, ArithOp outer, bool inner_on_left,
                          F64Operand x, F64Operand y, F64Operand z,
                          const uint32_t* sel, size_t n, double* out_vals,
                          uint8_t* out_nulls) = nullptr;
};

/// The table picked at startup (CPUID + VDB_KERNELS). Never null.
const KernelTable& Active();
Isa ActiveIsa();

/// Forces the active table (tests and the kernel fuzzer flip between
/// `scalar` and `native` in-process). Returns false if `isa` is not
/// compiled in or not supported by this CPU.
bool SetActiveIsa(Isa isa);

/// The table for one ISA, or nullptr when it is not compiled in or the
/// host CPU lacks it. `TableFor(Isa::kScalar)` never returns null.
const KernelTable* TableFor(Isa isa);

/// True when any of the first `n` null bytes is set. The per-batch
/// null-free check behind the kernels' fast path.
bool HasNulls(const uint8_t* nulls, size_t n);

/// True when `sel` is the identity permutation 0..n-1 (fresh scan
/// batches); the kernels' contiguous SIMD path triggers on this.
inline bool SelIsIdentity(const uint32_t* sel, size_t n) {
  // sel is ascending and duplicate-free, so testing the ends suffices.
  return n == 0 || (sel[0] == 0 && sel[n - 1] == n - 1);
}

}  // namespace vdb::plan::kernels

#endif  // VDB_PLAN_KERNELS_KERNELS_H_
