// AVX2 kernels, compiled with -mavx2 for this translation unit only (see
// src/plan/CMakeLists.txt). The dispatcher only installs this table after
// a runtime __builtin_cpu_supports("avx2") check, and every helper the TU
// uses lives in an anonymous namespace so the linker cannot fold an AVX
// encoding into the baseline path. Identity selection vectors take the
// 256-bit path; gathered selections fall back to the shared scalar
// bodies, which are byte-identical by construction.

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

#include "plan/kernels/kernels.h"
#include "plan/kernels/kernels_common.h"
#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {

namespace {

inline __m256i Not256(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi32(-1));
}

inline __m256i CmpVecI64(CmpOp op, __m256i a, __m256i b) {
  switch (op) {
    case CmpOp::kEq:
      return _mm256_cmpeq_epi64(a, b);
    case CmpOp::kNe:
      return Not256(_mm256_cmpeq_epi64(a, b));
    case CmpOp::kLt:
      return _mm256_cmpgt_epi64(b, a);
    case CmpOp::kLe:
      return Not256(_mm256_cmpgt_epi64(a, b));
    case CmpOp::kGt:
      return _mm256_cmpgt_epi64(a, b);
    default:
      return Not256(_mm256_cmpgt_epi64(b, a));
  }
}

/// Predicates composed from ordered `<`/`>` so NaN compares "equal" to
/// everything, matching the scalar three-way compare.
inline __m256d CmpVecF64(CmpOp op, __m256d a, __m256d b) {
  const __m256d lt = _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  const __m256d gt = _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi32(-1));
  switch (op) {
    case CmpOp::kEq:
      return _mm256_xor_pd(_mm256_or_pd(lt, gt), ones);
    case CmpOp::kNe:
      return _mm256_or_pd(lt, gt);
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return _mm256_xor_pd(gt, ones);
    case CmpOp::kGt:
      return gt;
    default:
      return _mm256_xor_pd(lt, ones);
  }
}

/// 4-bit not-null mask for lanes i..i+3.
inline int NotNullMask4(const uint8_t* nulls, size_t i) {
  return (nulls[i] == 0 ? 1 : 0) | (nulls[i + 1] == 0 ? 2 : 0) |
         (nulls[i + 2] == 0 ? 4 : 0) | (nulls[i + 3] == 0 ? 8 : 0);
}

inline void EmitMask(int mask, size_t base, uint32_t* sel, size_t* kept) {
  while (mask != 0) {
    const int bit = __builtin_ctz(static_cast<unsigned>(mask));
    sel[(*kept)++] = static_cast<uint32_t>(base + static_cast<size_t>(bit));
    mask &= mask - 1;
  }
}

size_t FilterI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, int64_t constant) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
  }
  const __m256i c = _mm256_set1_epi64x(constant);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(CmpVecI64(op, v, c)));
    if (nulls != nullptr) mask &= NotNullMask4(nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if ((nulls == nullptr || nulls[i] == 0) &&
        CmpHolds(op, vals[i], constant)) {
      sel[kept++] = static_cast<uint32_t>(i);
    }
  }
  return kept;
}

size_t FilterF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, double constant) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
  }
  const __m256d c = _mm256_set1_pd(constant);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    int mask = _mm256_movemask_pd(CmpVecF64(op, v, c));
    if (nulls != nullptr) mask &= NotNullMask4(nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if ((nulls == nullptr || nulls[i] == 0) &&
        CmpHolds(op, vals[i], constant)) {
      sel[kept++] = static_cast<uint32_t>(i);
    }
  }
  return kept;
}

size_t FilterI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                       const int64_t* b, const uint8_t* b_nulls,
                       uint32_t* sel, size_t n) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
  }
  size_t kept = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(CmpVecI64(op, av, bv)));
    if (a_nulls != nullptr) mask &= NotNullMask4(a_nulls, i);
    if (b_nulls != nullptr) mask &= NotNullMask4(b_nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if (a_nulls != nullptr && a_nulls[i] != 0) continue;
    if (b_nulls != nullptr && b_nulls[i] != 0) continue;
    if (CmpHolds(op, a[i], b[i])) sel[kept++] = static_cast<uint32_t>(i);
  }
  return kept;
}

size_t FilterF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                       const double* b, const uint8_t* b_nulls, uint32_t* sel,
                       size_t n) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
  }
  size_t kept = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    const __m256d bv = _mm256_loadu_pd(b + i);
    int mask = _mm256_movemask_pd(CmpVecF64(op, av, bv));
    if (a_nulls != nullptr) mask &= NotNullMask4(a_nulls, i);
    if (b_nulls != nullptr) mask &= NotNullMask4(b_nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if (a_nulls != nullptr && a_nulls[i] != 0) continue;
    if (b_nulls != nullptr && b_nulls[i] != 0) continue;
    if (CmpHolds(op, a[i], b[i])) sel[kept++] = static_cast<uint32_t>(i);
  }
  return kept;
}

inline void StoreBoolPayload(__m256i mask, int64_t* out) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_and_si256(mask, _mm256_set1_epi64x(1)));
}

inline void OrNullBytes(const uint8_t* a_nulls, const uint8_t* b_nulls,
                        size_t n, uint8_t* out) {
  if (a_nulls == nullptr && b_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
  } else if (a_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = b_nulls[i];
  } else if (b_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = a_nulls[i];
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = a_nulls[i] | b_nulls[i];
  }
}

void EvalI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, int64_t constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals,
                       out_nulls);
    return;
  }
  const __m256i c = _mm256_set1_epi64x(constant);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    StoreBoolPayload(CmpVecI64(op, v, c), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, vals[i], constant) ? 1 : 0;
  OrNullBytes(nulls, nullptr, n, out_nulls);
}

void EvalF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, double constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals,
                       out_nulls);
    return;
  }
  const __m256d c = _mm256_set1_pd(constant);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    StoreBoolPayload(_mm256_castpd_si256(CmpVecF64(op, v, c)), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, vals[i], constant) ? 1 : 0;
  OrNullBytes(nulls, nullptr, n, out_nulls);
}

void EvalI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                   const int64_t* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
    return;
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    StoreBoolPayload(CmpVecI64(op, av, bv), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, a[i], b[i]) ? 1 : 0;
  OrNullBytes(a_nulls, b_nulls, n, out_nulls);
}

void EvalF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                   const double* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
    return;
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    const __m256d bv = _mm256_loadu_pd(b + i);
    StoreBoolPayload(_mm256_castpd_si256(CmpVecF64(op, av, bv)),
                     out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, a[i], b[i]) ? 1 : 0;
  OrNullBytes(a_nulls, b_nulls, n, out_nulls);
}

/// Wrapping 64-bit lane multiply from 32x32->64 partial products
/// (no _mm256_mullo_epi64 before AVX-512DQ).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i hi2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  return _mm256_add_epi64(
      lo, _mm256_slli_epi64(_mm256_add_epi64(hi1, hi2), 32));
}

inline __m256i ArithVecI64(ArithOp op, __m256i a, __m256i b) {
  switch (op) {
    case ArithOp::kAdd:
      return _mm256_add_epi64(a, b);
    case ArithOp::kSub:
      return _mm256_sub_epi64(a, b);
    default:
      return Mul64(a, b);
  }
}

inline __m256d ArithVecF64(ArithOp op, __m256d a, __m256d b) {
  switch (op) {
    case ArithOp::kAdd:
      return _mm256_add_pd(a, b);
    case ArithOp::kSub:
      return _mm256_sub_pd(a, b);
    default:
      return _mm256_mul_pd(a, b);
  }
}

inline void OrNullBytes3(const I64Operand& x, const I64Operand& y,
                         const I64Operand& z, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t v = x.nulls != nullptr ? x.nulls[i] : 0;
    v |= y.nulls != nullptr ? y.nulls[i] : 0;
    v |= z.nulls != nullptr ? z.nulls[i] : 0;
    out[i] = v;
  }
}

inline void OrNullBytes3(const F64Operand& x, const F64Operand& y,
                         const F64Operand& z, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t v = x.nulls != nullptr ? x.nulls[i] : 0;
    v |= y.nulls != nullptr ? y.nulls[i] : 0;
    v |= z.nulls != nullptr ? z.nulls[i] : 0;
    out[i] = v;
  }
}

void FusedArithI64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   I64Operand x, I64Operand y, I64Operand z,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarFusedArith<int64_t>(inner, outer, inner_on_left, x, y, z, sel, n,
                              out_vals, out_nulls);
    return;
  }
  const __m256i xc = _mm256_set1_epi64x(x.constant);
  const __m256i yc = _mm256_set1_epi64x(y.constant);
  const __m256i zc = _mm256_set1_epi64x(z.constant);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xv =
        x.vals != nullptr
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x.vals + i))
            : xc;
    const __m256i yv =
        y.vals != nullptr
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y.vals + i))
            : yc;
    const __m256i zv =
        z.vals != nullptr
            ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z.vals + i))
            : zc;
    const __m256i t = ArithVecI64(inner, xv, yv);
    const __m256i r = inner_on_left ? ArithVecI64(outer, t, zv)
                                    : ArithVecI64(outer, zv, t);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_vals + i), r);
  }
  for (; i < n; ++i) {
    const uint32_t row = static_cast<uint32_t>(i);
    const int64_t t = ArithApply(inner, OperandAt<int64_t>(x, row),
                                 OperandAt<int64_t>(y, row));
    const int64_t zv = OperandAt<int64_t>(z, row);
    out_vals[i] =
        inner_on_left ? ArithApply(outer, t, zv) : ArithApply(outer, zv, t);
  }
  OrNullBytes3(x, y, z, n, out_nulls);
}

void FusedArithF64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   F64Operand x, F64Operand y, F64Operand z,
                   const uint32_t* sel, size_t n, double* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarFusedArith<double>(inner, outer, inner_on_left, x, y, z, sel, n,
                             out_vals, out_nulls);
    return;
  }
  const __m256d xc = _mm256_set1_pd(x.constant);
  const __m256d yc = _mm256_set1_pd(y.constant);
  const __m256d zc = _mm256_set1_pd(z.constant);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = x.vals != nullptr ? _mm256_loadu_pd(x.vals + i) : xc;
    const __m256d yv = y.vals != nullptr ? _mm256_loadu_pd(y.vals + i) : yc;
    const __m256d zv = z.vals != nullptr ? _mm256_loadu_pd(z.vals + i) : zc;
    const __m256d t = ArithVecF64(inner, xv, yv);
    const __m256d r = inner_on_left ? ArithVecF64(outer, t, zv)
                                    : ArithVecF64(outer, zv, t);
    _mm256_storeu_pd(out_vals + i, r);
  }
  for (; i < n; ++i) {
    const uint32_t row = static_cast<uint32_t>(i);
    const double t = ArithApply(inner, OperandAt<double>(x, row),
                                OperandAt<double>(y, row));
    const double zv = OperandAt<double>(z, row);
    out_vals[i] =
        inner_on_left ? ArithApply(outer, t, zv) : ArithApply(outer, zv, t);
  }
  OrNullBytes3(x, y, z, n, out_nulls);
}

}  // namespace

const KernelTable* GetAvx2KernelTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.isa = Isa::kAvx2;
    t.filter_i64_col_const = FilterI64ColConst;
    t.filter_f64_col_const = FilterF64ColConst;
    t.filter_i64_col_col = FilterI64ColCol;
    t.filter_f64_col_col = FilterF64ColCol;
    t.eval_i64_col_const = EvalI64ColConst;
    t.eval_f64_col_const = EvalF64ColConst;
    t.eval_i64_col_col = EvalI64ColCol;
    t.eval_f64_col_col = EvalF64ColCol;
    t.fused_arith_i64 = FusedArithI64;
    t.fused_arith_f64 = FusedArithF64;
    return t;
  }();
  return &table;
}

}  // namespace vdb::plan::kernels

#else  // AVX2 not compiled in for this target

#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {
const KernelTable* GetAvx2KernelTable() { return nullptr; }
}  // namespace vdb::plan::kernels

#endif
