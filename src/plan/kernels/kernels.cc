// Runtime ISA dispatch for the kernel tables. The active table is
// resolved once, on first use, from CPUID plus the VDB_KERNELS
// environment variable: `scalar` forces the reference kernels, `native`
// (the default) picks the best ISA the host supports; `sse2` / `avx2`
// pin a specific tier (used by the conformance matrix). Unknown values
// fall back to `native`.

#include "plan/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {

namespace {

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      // SSE2 is part of the x86-64 baseline; the table is null elsewhere.
      return GetSse2KernelTable() != nullptr;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return GetAvx2KernelTable() != nullptr &&
             __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* CompiledTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return GetScalarKernelTable();
    case Isa::kSse2:
      return GetSse2KernelTable();
    case Isa::kAvx2:
      return GetAvx2KernelTable();
  }
  return nullptr;
}

Isa BestSupportedIsa() {
  if (CpuSupports(Isa::kAvx2)) return Isa::kAvx2;
  if (CpuSupports(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

Isa IsaFromEnvironment() {
  const char* env = std::getenv("VDB_KERNELS");
  if (env == nullptr || *env == '\0') return BestSupportedIsa();
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env, "sse2") == 0 && CpuSupports(Isa::kSse2)) {
    return Isa::kSse2;
  }
  if (std::strcmp(env, "avx2") == 0 && CpuSupports(Isa::kAvx2)) {
    return Isa::kAvx2;
  }
  return BestSupportedIsa();
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{
      TableFor(IsaFromEnvironment())};
  return slot;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable* TableFor(Isa isa) {
  if (!CpuSupports(isa)) return nullptr;
  return CompiledTable(isa);
}

const KernelTable& Active() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

Isa ActiveIsa() { return Active().isa; }

bool SetActiveIsa(Isa isa) {
  const KernelTable* table = TableFor(isa);
  if (table == nullptr) return false;
  ActiveSlot().store(table, std::memory_order_release);
  return true;
}

bool HasNulls(const uint8_t* nulls, size_t n) {
  if (nulls == nullptr) return false;
  return std::memchr(nulls, 1, n) != nullptr;
}

}  // namespace vdb::plan::kernels
