// Internal: per-ISA table constructors wired together by kernels.cc.
// Each returns a pointer to a static table, or nullptr when that ISA is
// not compiled in for this target architecture (runtime CPU support is
// checked separately by the dispatcher).

#ifndef VDB_PLAN_KERNELS_KERNELS_ISA_H_
#define VDB_PLAN_KERNELS_KERNELS_ISA_H_

#include "plan/kernels/kernels.h"

namespace vdb::plan::kernels {

const KernelTable* GetScalarKernelTable();
const KernelTable* GetSse2KernelTable();
const KernelTable* GetAvx2KernelTable();

}  // namespace vdb::plan::kernels

#endif  // VDB_PLAN_KERNELS_KERNELS_ISA_H_
