// SSE2 baseline kernels (always available on x86-64). Identity selection
// vectors take the 128-bit path; gathered (post-filter) selections fall
// back to the shared scalar bodies, which are byte-identical by
// construction. 64-bit signed compares are composed from 32-bit ops
// (overflow-corrected subtraction sign, Hacker's Delight §2-12); 64-bit
// multiplies from 32x32->64 partial products.

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "plan/kernels/kernels.h"
#include "plan/kernels/kernels_common.h"
#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {

namespace {

inline __m128i Not128(__m128i v) {
  return _mm_xor_si128(v, _mm_set1_epi32(-1));
}

/// Per-64-bit-lane mask of signed a < b.
inline __m128i Lt64(__m128i a, __m128i b) {
  const __m128i d = _mm_sub_epi64(a, b);
  const __m128i t = _mm_xor_si128(
      d, _mm_and_si128(_mm_xor_si128(a, b), _mm_xor_si128(d, a)));
  const __m128i sign = _mm_srai_epi32(t, 31);
  return _mm_shuffle_epi32(sign, _MM_SHUFFLE(3, 3, 1, 1));
}

/// Per-64-bit-lane mask of a == b.
inline __m128i Eq64(__m128i a, __m128i b) {
  const __m128i e = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(e, _mm_shuffle_epi32(e, _MM_SHUFFLE(2, 3, 0, 1)));
}

inline __m128i CmpVecI64(CmpOp op, __m128i a, __m128i b) {
  switch (op) {
    case CmpOp::kEq:
      return Eq64(a, b);
    case CmpOp::kNe:
      return Not128(Eq64(a, b));
    case CmpOp::kLt:
      return Lt64(a, b);
    case CmpOp::kLe:
      return Not128(Lt64(b, a));
    case CmpOp::kGt:
      return Lt64(b, a);
    default:
      return Not128(Lt64(a, b));
  }
}

/// IEEE-composed predicate mask; NaN compares "equal" to everything,
/// matching the scalar three-way compare (see kernels_common.h).
inline __m128d CmpVecF64(CmpOp op, __m128d a, __m128d b) {
  const __m128d ones = _mm_castsi128_pd(_mm_set1_epi32(-1));
  switch (op) {
    case CmpOp::kEq:
      return _mm_xor_pd(
          _mm_or_pd(_mm_cmplt_pd(a, b), _mm_cmpgt_pd(a, b)), ones);
    case CmpOp::kNe:
      return _mm_or_pd(_mm_cmplt_pd(a, b), _mm_cmpgt_pd(a, b));
    case CmpOp::kLt:
      return _mm_cmplt_pd(a, b);
    case CmpOp::kLe:
      return _mm_xor_pd(_mm_cmpgt_pd(a, b), ones);
    case CmpOp::kGt:
      return _mm_cmpgt_pd(a, b);
    default:
      return _mm_xor_pd(_mm_cmplt_pd(a, b), ones);
  }
}

/// 2-bit not-null mask for lanes i, i+1.
inline int NotNullMask2(const uint8_t* nulls, size_t i) {
  return (nulls[i] == 0 ? 1 : 0) | (nulls[i + 1] == 0 ? 2 : 0);
}

inline void EmitMask(int mask, size_t base, uint32_t* sel, size_t* kept) {
  while (mask != 0) {
    const int bit = __builtin_ctz(static_cast<unsigned>(mask));
    sel[(*kept)++] = static_cast<uint32_t>(base + static_cast<size_t>(bit));
    mask &= mask - 1;
  }
}

size_t FilterI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, int64_t constant) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
  }
  const __m128i c = _mm_set1_epi64x(constant);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    int mask = _mm_movemask_pd(_mm_castsi128_pd(CmpVecI64(op, v, c)));
    if (nulls != nullptr) mask &= NotNullMask2(nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if ((nulls == nullptr || nulls[i] == 0) &&
        CmpHolds(op, vals[i], constant)) {
      sel[kept++] = static_cast<uint32_t>(i);
    }
  }
  return kept;
}

size_t FilterF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                         uint32_t* sel, size_t n, double constant) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColConst(op, vals, nulls, sel, n, constant);
  }
  const __m128d c = _mm_set1_pd(constant);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(vals + i);
    int mask = _mm_movemask_pd(CmpVecF64(op, v, c));
    if (nulls != nullptr) mask &= NotNullMask2(nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if ((nulls == nullptr || nulls[i] == 0) &&
        CmpHolds(op, vals[i], constant)) {
      sel[kept++] = static_cast<uint32_t>(i);
    }
  }
  return kept;
}

size_t FilterI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                       const int64_t* b, const uint8_t* b_nulls,
                       uint32_t* sel, size_t n) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
  }
  size_t kept = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    int mask = _mm_movemask_pd(_mm_castsi128_pd(CmpVecI64(op, av, bv)));
    if (a_nulls != nullptr) mask &= NotNullMask2(a_nulls, i);
    if (b_nulls != nullptr) mask &= NotNullMask2(b_nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if (a_nulls != nullptr && a_nulls[i] != 0) continue;
    if (b_nulls != nullptr && b_nulls[i] != 0) continue;
    if (CmpHolds(op, a[i], b[i])) sel[kept++] = static_cast<uint32_t>(i);
  }
  return kept;
}

size_t FilterF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                       const double* b, const uint8_t* b_nulls, uint32_t* sel,
                       size_t n) {
  if (!SelIsIdentity(sel, n)) {
    return ScalarFilterColCol(op, a, a_nulls, b, b_nulls, sel, n);
  }
  size_t kept = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d av = _mm_loadu_pd(a + i);
    const __m128d bv = _mm_loadu_pd(b + i);
    int mask = _mm_movemask_pd(CmpVecF64(op, av, bv));
    if (a_nulls != nullptr) mask &= NotNullMask2(a_nulls, i);
    if (b_nulls != nullptr) mask &= NotNullMask2(b_nulls, i);
    EmitMask(mask, i, sel, &kept);
  }
  for (; i < n; ++i) {
    if (a_nulls != nullptr && a_nulls[i] != 0) continue;
    if (b_nulls != nullptr && b_nulls[i] != 0) continue;
    if (CmpHolds(op, a[i], b[i])) sel[kept++] = static_cast<uint32_t>(i);
  }
  return kept;
}

inline void StoreBoolPayload(__m128i mask, int64_t* out) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_and_si128(mask, _mm_set1_epi64x(1)));
}

inline void OrNullBytes(const uint8_t* a_nulls, const uint8_t* b_nulls,
                        size_t n, uint8_t* out) {
  if (a_nulls == nullptr && b_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
  } else if (a_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = b_nulls[i];
  } else if (b_nulls == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = a_nulls[i];
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = a_nulls[i] | b_nulls[i];
  }
}

void EvalI64ColConst(CmpOp op, const int64_t* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, int64_t constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals,
                       out_nulls);
    return;
  }
  const __m128i c = _mm_set1_epi64x(constant);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    StoreBoolPayload(CmpVecI64(op, v, c), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, vals[i], constant) ? 1 : 0;
  OrNullBytes(nulls, nullptr, n, out_nulls);
}

void EvalF64ColConst(CmpOp op, const double* vals, const uint8_t* nulls,
                     const uint32_t* sel, size_t n, double constant,
                     int64_t* out_vals, uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColConst(op, vals, nulls, sel, n, constant, out_vals,
                       out_nulls);
    return;
  }
  const __m128d c = _mm_set1_pd(constant);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(vals + i);
    StoreBoolPayload(_mm_castpd_si128(CmpVecF64(op, v, c)), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, vals[i], constant) ? 1 : 0;
  OrNullBytes(nulls, nullptr, n, out_nulls);
}

void EvalI64ColCol(CmpOp op, const int64_t* a, const uint8_t* a_nulls,
                   const int64_t* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
    return;
  }
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    StoreBoolPayload(CmpVecI64(op, av, bv), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, a[i], b[i]) ? 1 : 0;
  OrNullBytes(a_nulls, b_nulls, n, out_nulls);
}

void EvalF64ColCol(CmpOp op, const double* a, const uint8_t* a_nulls,
                   const double* b, const uint8_t* b_nulls,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarEvalColCol(op, a, a_nulls, b, b_nulls, sel, n, out_vals, out_nulls);
    return;
  }
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d av = _mm_loadu_pd(a + i);
    const __m128d bv = _mm_loadu_pd(b + i);
    StoreBoolPayload(_mm_castpd_si128(CmpVecF64(op, av, bv)), out_vals + i);
  }
  for (; i < n; ++i) out_vals[i] = CmpHolds(op, a[i], b[i]) ? 1 : 0;
  OrNullBytes(a_nulls, b_nulls, n, out_nulls);
}

/// Wrapping 64-bit lane multiply from 32x32->64 partial products.
inline __m128i Mul64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i hi1 = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
  const __m128i hi2 = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
  return _mm_add_epi64(lo,
                       _mm_slli_epi64(_mm_add_epi64(hi1, hi2), 32));
}

inline __m128i ArithVecI64(ArithOp op, __m128i a, __m128i b) {
  switch (op) {
    case ArithOp::kAdd:
      return _mm_add_epi64(a, b);
    case ArithOp::kSub:
      return _mm_sub_epi64(a, b);
    default:
      return Mul64(a, b);
  }
}

inline __m128d ArithVecF64(ArithOp op, __m128d a, __m128d b) {
  switch (op) {
    case ArithOp::kAdd:
      return _mm_add_pd(a, b);
    case ArithOp::kSub:
      return _mm_sub_pd(a, b);
    default:
      return _mm_mul_pd(a, b);
  }
}

inline void OrNullBytes3(const I64Operand& x, const I64Operand& y,
                         const I64Operand& z, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t v = x.nulls != nullptr ? x.nulls[i] : 0;
    v |= y.nulls != nullptr ? y.nulls[i] : 0;
    v |= z.nulls != nullptr ? z.nulls[i] : 0;
    out[i] = v;
  }
}

inline void OrNullBytes3(const F64Operand& x, const F64Operand& y,
                         const F64Operand& z, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t v = x.nulls != nullptr ? x.nulls[i] : 0;
    v |= y.nulls != nullptr ? y.nulls[i] : 0;
    v |= z.nulls != nullptr ? z.nulls[i] : 0;
    out[i] = v;
  }
}

void FusedArithI64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   I64Operand x, I64Operand y, I64Operand z,
                   const uint32_t* sel, size_t n, int64_t* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarFusedArith<int64_t>(inner, outer, inner_on_left, x, y, z, sel, n,
                              out_vals, out_nulls);
    return;
  }
  const __m128i xc = _mm_set1_epi64x(x.constant);
  const __m128i yc = _mm_set1_epi64x(y.constant);
  const __m128i zc = _mm_set1_epi64x(z.constant);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i xv =
        x.vals != nullptr
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(x.vals + i))
            : xc;
    const __m128i yv =
        y.vals != nullptr
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(y.vals + i))
            : yc;
    const __m128i zv =
        z.vals != nullptr
            ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(z.vals + i))
            : zc;
    const __m128i t = ArithVecI64(inner, xv, yv);
    const __m128i r = inner_on_left ? ArithVecI64(outer, t, zv)
                                    : ArithVecI64(outer, zv, t);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_vals + i), r);
  }
  for (; i < n; ++i) {
    const uint32_t row = static_cast<uint32_t>(i);
    const int64_t t =
        ArithApply(inner, OperandAt<int64_t>(x, row), OperandAt<int64_t>(y, row));
    const int64_t zv = OperandAt<int64_t>(z, row);
    out_vals[i] =
        inner_on_left ? ArithApply(outer, t, zv) : ArithApply(outer, zv, t);
  }
  OrNullBytes3(x, y, z, n, out_nulls);
}

void FusedArithF64(ArithOp inner, ArithOp outer, bool inner_on_left,
                   F64Operand x, F64Operand y, F64Operand z,
                   const uint32_t* sel, size_t n, double* out_vals,
                   uint8_t* out_nulls) {
  if (!SelIsIdentity(sel, n)) {
    ScalarFusedArith<double>(inner, outer, inner_on_left, x, y, z, sel, n,
                             out_vals, out_nulls);
    return;
  }
  const __m128d xc = _mm_set1_pd(x.constant);
  const __m128d yc = _mm_set1_pd(y.constant);
  const __m128d zc = _mm_set1_pd(z.constant);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xv = x.vals != nullptr ? _mm_loadu_pd(x.vals + i) : xc;
    const __m128d yv = y.vals != nullptr ? _mm_loadu_pd(y.vals + i) : yc;
    const __m128d zv = z.vals != nullptr ? _mm_loadu_pd(z.vals + i) : zc;
    const __m128d t = ArithVecF64(inner, xv, yv);
    const __m128d r = inner_on_left ? ArithVecF64(outer, t, zv)
                                    : ArithVecF64(outer, zv, t);
    _mm_storeu_pd(out_vals + i, r);
  }
  for (; i < n; ++i) {
    const uint32_t row = static_cast<uint32_t>(i);
    const double t =
        ArithApply(inner, OperandAt<double>(x, row), OperandAt<double>(y, row));
    const double zv = OperandAt<double>(z, row);
    out_vals[i] =
        inner_on_left ? ArithApply(outer, t, zv) : ArithApply(outer, zv, t);
  }
  OrNullBytes3(x, y, z, n, out_nulls);
}

}  // namespace

const KernelTable* GetSse2KernelTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.isa = Isa::kSse2;
    t.filter_i64_col_const = FilterI64ColConst;
    t.filter_f64_col_const = FilterF64ColConst;
    t.filter_i64_col_col = FilterI64ColCol;
    t.filter_f64_col_col = FilterF64ColCol;
    t.eval_i64_col_const = EvalI64ColConst;
    t.eval_f64_col_const = EvalF64ColConst;
    t.eval_i64_col_col = EvalI64ColCol;
    t.eval_f64_col_col = EvalF64ColCol;
    t.fused_arith_i64 = FusedArithI64;
    t.fused_arith_f64 = FusedArithF64;
    return t;
  }();
  return &table;
}

}  // namespace vdb::plan::kernels

#else  // !x86-64

#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {
const KernelTable* GetSse2KernelTable() { return nullptr; }
}  // namespace vdb::plan::kernels

#endif
