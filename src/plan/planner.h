// Translates bound SELECT ASTs into logical plans.

#ifndef VDB_PLAN_PLANNER_H_
#define VDB_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical.h"
#include "sql/ast.h"
#include "util/result.h"

namespace vdb::plan {

/// Translates a parsed SELECT statement into a logical plan:
///  - resolves column references against the catalog,
///  - types and constant-folds scalar expressions,
///  - rewrites [NOT] EXISTS correlated subqueries into semi/anti joins,
///  - plans derived tables (subqueries in FROM) recursively,
///  - splits grouped queries into Aggregate + Project (+ Having filter),
///  - models DISTINCT as grouping on all output columns.
///
/// The result still has WHERE predicates as Filter nodes directly above the
/// FROM tree; run PushDownPredicates (rewriter.h) before optimization.
class Planner {
 public:
  explicit Planner(catalog::Catalog* cat) : catalog_(cat) {}

  Result<LogicalNodePtr> Plan(const sql::SelectStatement& stmt);

 private:
  /// One visible column during binding: an output column plus the table
  /// alias that qualifies it.
  struct ScopeColumn {
    OutputColumn column;
    std::string qualifier;
  };
  struct Scope {
    std::vector<ScopeColumn> columns;
  };

  // --- FROM / WHERE ------------------------------------------------------
  Result<LogicalNodePtr> PlanFrom(const std::vector<sql::FromItem>& items,
                                  Scope* scope);
  Result<LogicalNodePtr> PlanFromWhere(const sql::SelectStatement& stmt,
                                       Scope* scope);
  Result<LogicalNodePtr> PlanTableRef(const sql::TableRef& ref,
                                      Scope* scope);
  // Rewrites one [NOT] EXISTS conjunct into a semi/anti join on `plan`.
  Result<LogicalNodePtr> PlanExists(LogicalNodePtr plan, const Scope& scope,
                                    const sql::SelectStatement& subquery,
                                    bool negated);
  // Rewrites `value [NOT] IN (SELECT ...)` into a semi/anti join.
  Result<LogicalNodePtr> PlanInSubquery(LogicalNodePtr plan,
                                        const Scope& scope,
                                        const sql::Expr& value,
                                        const sql::SelectStatement& subquery,
                                        bool negated);

  // --- SELECT list / aggregation -----------------------------------------
  Result<LogicalNodePtr> PlanSelectList(const sql::SelectStatement& stmt,
                                        LogicalNodePtr child,
                                        const Scope& scope);

  // --- expression binding -------------------------------------------------
  Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Scope& scope);
  Result<BoundExprPtr> BindColumnRef(const sql::ColumnRefExpr& ref,
                                     const Scope& scope);

  // Binding for post-aggregation expressions: group-by expressions and
  // aggregate calls are replaced by references to the Aggregate's outputs.
  struct AggBindingContext {
    const Scope* child_scope = nullptr;
    // Parallel vectors: source AST text -> aggregate/group output column.
    std::vector<std::string> group_texts;
    std::vector<OutputColumn> group_outputs;
    std::vector<std::string> agg_texts;
    std::vector<OutputColumn> agg_outputs;
  };
  Result<BoundExprPtr> BindPostAggExpr(const sql::Expr& expr,
                                       const AggBindingContext& context);

  // Collects aggregate function calls appearing in `expr` (which must not
  // nest them) into `out`, deduplicating by printed text.
  Status CollectAggregates(const sql::Expr& expr,
                           std::vector<const sql::FunctionCallExpr*>* out);

  int NextTableId() { return next_table_id_++; }

  catalog::Catalog* catalog_;
  int next_table_id_ = 0;

  /// Scalar subqueries encountered while binding the current WHERE clause:
  /// each is a planned single-row relation that PlanFromWhere cross-joins
  /// below the filter. Non-empty outside WHERE binding is an error.
  struct PendingScalarSubquery {
    LogicalNodePtr plan;
  };
  std::vector<PendingScalarSubquery> pending_scalar_subqueries_;
};

}  // namespace vdb::plan

#endif  // VDB_PLAN_PLANNER_H_
