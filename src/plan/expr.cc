#include "plan/expr.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace vdb::plan {

using catalog::TypeId;
using catalog::Value;

Layout MakeLayout(const std::vector<OutputColumn>& columns) {
  Layout layout;
  layout.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    layout[columns[i].id] = i;
  }
  return layout;
}

Status ColumnExpr::ResolveSlots(const Layout& layout) {
  auto it = layout.find(id_);
  if (it == layout.end()) {
    return Status::Internal("column '" + name_ +
                            "' not found in input layout");
  }
  slot_ = it->second;
  return Status::OK();
}

Value UnaryBoundExpr::Evaluate(const catalog::Tuple& row) const {
  const Value v = operand_->Evaluate(row);
  if (v.is_null()) return Value::Null(type());
  if (op_ == sql::UnaryOp::kNegate) {
    if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
    return Value::Int64(-v.AsInt64());
  }
  return Value::Bool(!v.AsBool());
}

std::string UnaryBoundExpr::ToString() const {
  return std::string(op_ == sql::UnaryOp::kNegate ? "-" : "NOT ") + "(" +
         operand_->ToString() + ")";
}

Value BinaryBoundExpr::Evaluate(const catalog::Tuple& row) const {
  using sql::BinaryOp;
  // AND/OR need SQL three-valued logic with short-circuiting.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    const Value lv = left_->Evaluate(row);
    const bool l_null = lv.is_null();
    const bool l_true = !l_null && lv.AsBool();
    if (op_ == BinaryOp::kAnd && !l_null && !l_true) {
      return Value::Bool(false);
    }
    if (op_ == BinaryOp::kOr && l_true) return Value::Bool(true);
    const Value rv = right_->Evaluate(row);
    const bool r_null = rv.is_null();
    const bool r_true = !r_null && rv.AsBool();
    if (op_ == BinaryOp::kAnd) {
      if (!r_null && !r_true) return Value::Bool(false);
      if (l_null || r_null) return Value::Null(TypeId::kBool);
      return Value::Bool(true);
    }
    if (r_true) return Value::Bool(true);
    if (l_null || r_null) return Value::Null(TypeId::kBool);
    return Value::Bool(false);
  }

  const Value lv = left_->Evaluate(row);
  const Value rv = right_->Evaluate(row);
  if (lv.is_null() || rv.is_null()) return Value::Null(type());
  switch (op_) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (type() == TypeId::kDouble) {
        const double a = lv.AsDouble();
        const double b = rv.AsDouble();
        switch (op_) {
          case BinaryOp::kAdd:
            return Value::Double(a + b);
          case BinaryOp::kSub:
            return Value::Double(a - b);
          case BinaryOp::kMul:
            return Value::Double(a * b);
          case BinaryOp::kDiv:
            return b == 0.0 ? Value::Null(TypeId::kDouble)
                            : Value::Double(a / b);
          default:
            return Value::Null(TypeId::kDouble);
        }
      }
      const int64_t a = lv.AsInt64();
      const int64_t b = rv.AsInt64();
      switch (op_) {
        case BinaryOp::kAdd:
          return type() == TypeId::kDate ? Value::Date(a + b)
                                         : Value::Int64(a + b);
        case BinaryOp::kSub:
          return type() == TypeId::kDate ? Value::Date(a - b)
                                         : Value::Int64(a - b);
        case BinaryOp::kMul:
          return Value::Int64(a * b);
        case BinaryOp::kDiv:
          return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a / b);
        case BinaryOp::kMod:
          return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a % b);
        default:
          return Value::Null(TypeId::kInt64);
      }
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      const int cmp = Value::Compare(lv, rv);
      switch (op_) {
        case BinaryOp::kEq:
          return Value::Bool(cmp == 0);
        case BinaryOp::kNe:
          return Value::Bool(cmp != 0);
        case BinaryOp::kLt:
          return Value::Bool(cmp < 0);
        case BinaryOp::kLe:
          return Value::Bool(cmp <= 0);
        case BinaryOp::kGt:
          return Value::Bool(cmp > 0);
        default:
          return Value::Bool(cmp >= 0);
      }
    }
    default:
      VDB_CHECK(false) << "unreachable";
      return Value::Null(type());
  }
}

std::string BinaryBoundExpr::ToString() const {
  return "(" + left_->ToString() + " " + sql::BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

Value LikeBoundExpr::Evaluate(const catalog::Tuple& row) const {
  const Value v = value_->Evaluate(row);
  if (v.is_null()) return Value::Null(TypeId::kBool);
  const bool match = LikeMatch(v.AsString(), pattern_);
  return Value::Bool(negated_ ? !match : match);
}

std::string LikeBoundExpr::ToString() const {
  return value_->ToString() + (negated_ ? " NOT" : "") + " LIKE '" +
         pattern_ + "'";
}

Value InListBoundExpr::Evaluate(const catalog::Tuple& row) const {
  const Value v = value_->Evaluate(row);
  if (v.is_null()) return Value::Null(TypeId::kBool);
  for (const Value& candidate : list_) {
    if (!candidate.is_null() && Value::Compare(v, candidate) == 0) {
      return Value::Bool(!negated_);
    }
  }
  return Value::Bool(negated_);
}

std::string InListBoundExpr::ToString() const {
  std::string result =
      value_->ToString() + (negated_ ? " NOT" : "") + " IN (";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) result += ", ";
    result += list_[i].ToString();
  }
  return result + ")";
}

Value CaseBoundExpr::Evaluate(const catalog::Tuple& row) const {
  for (const auto& [when, then] : branches_) {
    const Value cond = when->Evaluate(row);
    if (!cond.is_null() && cond.AsBool()) return then->Evaluate(row);
  }
  if (else_result_ != nullptr) return else_result_->Evaluate(row);
  return Value::Null(type());
}

Status CaseBoundExpr::ResolveSlots(const Layout& layout) {
  for (auto& [when, then] : branches_) {
    VDB_RETURN_NOT_OK(when->ResolveSlots(layout));
    VDB_RETURN_NOT_OK(then->ResolveSlots(layout));
  }
  if (else_result_ != nullptr) {
    VDB_RETURN_NOT_OK(else_result_->ResolveSlots(layout));
  }
  return Status::OK();
}

BoundExprPtr CaseBoundExpr::Clone() const {
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches;
  branches.reserve(branches_.size());
  for (const auto& [when, then] : branches_) {
    branches.emplace_back(when->Clone(), then->Clone());
  }
  return std::make_unique<CaseBoundExpr>(
      std::move(branches),
      else_result_ != nullptr ? else_result_->Clone() : nullptr, type());
}

void CaseBoundExpr::CollectColumns(std::vector<ColumnId>* out) const {
  for (const auto& [when, then] : branches_) {
    when->CollectColumns(out);
    then->CollectColumns(out);
  }
  if (else_result_ != nullptr) else_result_->CollectColumns(out);
}

int CaseBoundExpr::OpCount() const {
  int count = 0;
  for (const auto& [when, then] : branches_) {
    count += 1 + when->OpCount() + then->OpCount();
  }
  if (else_result_ != nullptr) count += else_result_->OpCount();
  return count;
}

std::string CaseBoundExpr::ToString() const {
  std::string result = "CASE";
  for (const auto& [when, then] : branches_) {
    result += " WHEN " + when->ToString() + " THEN " + then->ToString();
  }
  if (else_result_ != nullptr) {
    result += " ELSE " + else_result_->ToString();
  }
  return result + " END";
}

bool EvaluatesToTrue(const BoundExpr& expr, const catalog::Tuple& row) {
  const Value v = expr.Evaluate(row);
  return !v.is_null() && v.AsBool();
}

BoundExprPtr AndExprs(BoundExprPtr a, BoundExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return std::make_unique<BinaryBoundExpr>(sql::BinaryOp::kAnd, std::move(a),
                                           std::move(b), TypeId::kBool);
}

}  // namespace vdb::plan
