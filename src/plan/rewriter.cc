#include "plan/rewriter.h"

namespace vdb::plan {

namespace {

void SplitInto(const BoundExpr& expr, std::vector<BoundExprPtr>* out) {
  if (expr.kind() == BoundExprKind::kBinary) {
    const auto& binary = static_cast<const BinaryBoundExpr&>(expr);
    if (binary.op() == sql::BinaryOp::kAnd) {
      SplitInto(binary.left(), out);
      SplitInto(binary.right(), out);
      return;
    }
  }
  out->push_back(expr.Clone());
}

LogicalNodePtr WrapFilter(LogicalNodePtr node, BoundExprPtr condition) {
  if (node->op == LogicalOp::kFilter) {
    auto* filter = static_cast<LogicalFilter*>(node.get());
    filter->condition =
        AndExprs(std::move(filter->condition), std::move(condition));
    return node;
  }
  auto filter = std::make_unique<LogicalFilter>();
  filter->output = node->output;
  filter->condition = std::move(condition);
  filter->children.push_back(std::move(node));
  return filter;
}

// Places one WHERE-semantics conjunct as low as possible in the subtree.
LogicalNodePtr AddFilterLow(LogicalNodePtr node, BoundExprPtr expr) {
  if (node->op == LogicalOp::kFilter) {
    auto* filter = static_cast<LogicalFilter*>(node.get());
    filter->children[0] =
        AddFilterLow(std::move(filter->children[0]), std::move(expr));
    // Normalize Filter(Filter(x)) into one node.
    if (filter->children[0]->op == LogicalOp::kFilter) {
      auto* child = static_cast<LogicalFilter*>(filter->children[0].get());
      filter->condition = AndExprs(std::move(filter->condition),
                                   std::move(child->condition));
      LogicalNodePtr grandchild = std::move(child->children[0]);
      filter->children[0] = std::move(grandchild);
    }
    return node;
  }
  if (node->op == LogicalOp::kJoin) {
    auto* join = static_cast<LogicalJoin*>(node.get());
    const bool is_inner = join->join_type == LogicalJoinType::kInner ||
                          join->join_type == LogicalJoinType::kCross;
    // A WHERE conjunct over the preserved (left) side filters the same rows
    // above or below any of our join types, so it always pushes left. The
    // right side is only safe for inner/cross joins (outer joins pad it
    // with NULLs; semi/anti joins do not output it at all).
    if (LogicalNodeCovers(*join->children[0], *expr)) {
      join->children[0] =
          AddFilterLow(std::move(join->children[0]), std::move(expr));
      return node;
    }
    if (is_inner && LogicalNodeCovers(*join->children[1], *expr)) {
      join->children[1] =
          AddFilterLow(std::move(join->children[1]), std::move(expr));
      return node;
    }
    if (is_inner) {
      join->condition =
          AndExprs(std::move(join->condition), std::move(expr));
      join->join_type = LogicalJoinType::kInner;
      return node;
    }
    return WrapFilter(std::move(node), std::move(expr));
  }
  return WrapFilter(std::move(node), std::move(expr));
}

LogicalNodePtr Rewrite(LogicalNodePtr node) {
  if (node->op == LogicalOp::kFilter) {
    auto* filter = static_cast<LogicalFilter*>(node.get());
    std::vector<BoundExprPtr> conjuncts =
        SplitBoundConjuncts(*filter->condition);
    LogicalNodePtr base = Rewrite(std::move(filter->children[0]));
    for (BoundExprPtr& conjunct : conjuncts) {
      base = AddFilterLow(std::move(base), std::move(conjunct));
    }
    return base;
  }
  for (auto& child : node->children) {
    child = Rewrite(std::move(child));
  }
  if (node->op == LogicalOp::kJoin) {
    auto* join = static_cast<LogicalJoin*>(node.get());
    if (join->condition != nullptr) {
      const bool is_inner = join->join_type == LogicalJoinType::kInner ||
                            join->join_type == LogicalJoinType::kCross;
      std::vector<BoundExprPtr> conjuncts =
          SplitBoundConjuncts(*join->condition);
      join->condition = nullptr;
      for (BoundExprPtr& conjunct : conjuncts) {
        if (is_inner &&
            LogicalNodeCovers(*join->children[0], *conjunct)) {
          join->children[0] = AddFilterLow(std::move(join->children[0]),
                                           std::move(conjunct));
          continue;
        }
        // An ON conjunct over the null-producing/probe (right) side only
        // restricts which rows can match, so it pushes into the right
        // input for every join type.
        if (LogicalNodeCovers(*join->children[1], *conjunct)) {
          join->children[1] = AddFilterLow(std::move(join->children[1]),
                                           std::move(conjunct));
          continue;
        }
        join->condition =
            AndExprs(std::move(join->condition), std::move(conjunct));
      }
      if (join->condition == nullptr &&
          join->join_type == LogicalJoinType::kInner) {
        join->join_type = LogicalJoinType::kCross;
      }
    }
  }
  return node;
}

}  // namespace

std::vector<BoundExprPtr> SplitBoundConjuncts(const BoundExpr& expr) {
  std::vector<BoundExprPtr> out;
  SplitInto(expr, &out);
  return out;
}

LogicalNodePtr PushDownPredicates(LogicalNodePtr root) {
  return Rewrite(std::move(root));
}

}  // namespace vdb::plan
