// Logical-plan rewrites: constant folding, predicate pushdown, and
// subquery decorrelation.

#ifndef VDB_PLAN_REWRITER_H_
#define VDB_PLAN_REWRITER_H_

#include <vector>

#include "plan/logical.h"

namespace vdb::plan {

/// Splits a bound expression into its top-level AND conjuncts (clones).
std::vector<BoundExprPtr> SplitBoundConjuncts(const BoundExpr& expr);

/// True if every column referenced by `expr` is produced by `node`.
bool LogicalNodeCovers(const LogicalNode& node, const BoundExpr& expr);

/// Pushes filter predicates as close to the base tables as possible:
///  - WHERE-derived Filter conjuncts move below joins onto the side that
///    produces their columns (both sides for inner/cross joins; only the
///    preserved side below outer/semi/anti joins);
///  - single-sided ON conjuncts of outer/semi/anti joins move into the
///    null-producing side (semantics-preserving);
///  - conjuncts spanning both inputs of an inner join fold into the join
///    condition (upgrading cross joins to inner joins);
///  - adjacent Filters merge.
/// The optimizer relies on this pass: Filter-over-Get is what enables
/// index-path selection, and join conditions drive join ordering.
LogicalNodePtr PushDownPredicates(LogicalNodePtr root);

}  // namespace vdb::plan

#endif  // VDB_PLAN_REWRITER_H_
