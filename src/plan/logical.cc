#include "plan/logical.h"

namespace vdb::plan {

const char* LogicalJoinTypeName(LogicalJoinType type) {
  switch (type) {
    case LogicalJoinType::kInner:
      return "INNER";
    case LogicalJoinType::kCross:
      return "CROSS";
    case LogicalJoinType::kLeft:
      return "LEFT";
    case LogicalJoinType::kSemi:
      return "SEMI";
    case LogicalJoinType::kAnti:
      return "ANTI";
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

AggSpec AggSpec::Clone() const {
  AggSpec copy;
  copy.kind = kind;
  copy.arg = arg != nullptr ? arg->Clone() : nullptr;
  copy.distinct = distinct;
  copy.output_id = output_id;
  copy.output_type = output_type;
  copy.name = name;
  return copy;
}

std::string LogicalNode::ChildrenToString(int indent) const {
  std::string result;
  for (const auto& child : children) {
    result += child->ToString(indent + 2);
  }
  return result;
}

std::string LogicalGet::ToString(int indent) const {
  return Indent(indent) + "Get(" + alias + ")\n";
}

std::string LogicalFilter::ToString(int indent) const {
  return Indent(indent) + "Filter(" + condition->ToString() + ")\n" +
         ChildrenToString(indent);
}

std::string LogicalProject::ToString(int indent) const {
  std::string result = Indent(indent) + "Project(";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) result += ", ";
    result += exprs[i]->ToString();
  }
  return result + ")\n" + ChildrenToString(indent);
}

std::string LogicalJoin::ToString(int indent) const {
  return Indent(indent) + std::string(LogicalJoinTypeName(join_type)) +
         "Join(" + (condition != nullptr ? condition->ToString() : "true") +
         ")\n" + ChildrenToString(indent);
}

std::string LogicalAggregate::ToString(int indent) const {
  std::string result = Indent(indent) + "Aggregate(groups=[";
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (i > 0) result += ", ";
    result += group_exprs[i]->ToString();
  }
  result += "], aggs=[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) result += ", ";
    result += AggKindName(aggs[i].kind);
    if (aggs[i].arg != nullptr) result += "(" + aggs[i].arg->ToString() + ")";
  }
  return result + "])\n" + ChildrenToString(indent);
}

std::string LogicalSort::ToString(int indent) const {
  std::string result = Indent(indent) + "Sort(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) result += ", ";
    result += keys[i].expr->ToString();
    if (!keys[i].ascending) result += " DESC";
  }
  return result + ")\n" + ChildrenToString(indent);
}

std::string LogicalLimit::ToString(int indent) const {
  return Indent(indent) + "Limit(" + std::to_string(limit) + ")\n" +
         ChildrenToString(indent);
}

}  // namespace vdb::plan
