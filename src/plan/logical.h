// Logical plan operators and aggregate specs; trees produced by the
// planner and rewritten before optimization.

#ifndef VDB_PLAN_LOGICAL_H_
#define VDB_PLAN_LOGICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/expr.h"

namespace vdb::plan {

enum class LogicalOp {
  kGet,        // base table scan
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
};

enum class LogicalJoinType { kInner, kCross, kLeft, kSemi, kAnti };

const char* LogicalJoinTypeName(LogicalJoinType type);

/// SQL aggregate functions.
enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind kind);

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  BoundExprPtr arg;  // null for COUNT(*)
  bool distinct = false;
  ColumnId output_id;
  catalog::TypeId output_type = catalog::TypeId::kInt64;
  std::string name;

  AggSpec Clone() const;
};

/// Base class of logical plan operators. A logical plan is a tree whose
/// leaves are base-table Gets; every node declares its output columns.
struct LogicalNode {
  explicit LogicalNode(LogicalOp node_op) : op(node_op) {}
  virtual ~LogicalNode() = default;
  LogicalNode(const LogicalNode&) = delete;
  LogicalNode& operator=(const LogicalNode&) = delete;

  const LogicalOp op;
  std::vector<OutputColumn> output;

  /// Children, in order (0, 1, or 2).
  std::vector<std::unique_ptr<LogicalNode>> children;

  /// Pretty-prints the subtree with `indent` leading spaces.
  virtual std::string ToString(int indent = 0) const = 0;

 protected:
  std::string Indent(int indent) const { return std::string(indent, ' '); }
  std::string ChildrenToString(int indent) const;
};

using LogicalNodePtr = std::unique_ptr<LogicalNode>;

struct LogicalGet final : LogicalNode {
  LogicalGet() : LogicalNode(LogicalOp::kGet) {}
  std::string ToString(int indent) const override;

  catalog::TableInfo* table = nullptr;
  std::string alias;
  int table_id = -1;
};

struct LogicalFilter final : LogicalNode {
  LogicalFilter() : LogicalNode(LogicalOp::kFilter) {}
  std::string ToString(int indent) const override;

  BoundExprPtr condition;
};

struct LogicalProject final : LogicalNode {
  LogicalProject() : LogicalNode(LogicalOp::kProject) {}
  std::string ToString(int indent) const override;

  std::vector<BoundExprPtr> exprs;  // one per output column
};

struct LogicalJoin final : LogicalNode {
  LogicalJoin() : LogicalNode(LogicalOp::kJoin) {}
  std::string ToString(int indent) const override;

  LogicalJoinType join_type = LogicalJoinType::kInner;
  BoundExprPtr condition;  // null for cross join
};

struct LogicalAggregate final : LogicalNode {
  LogicalAggregate() : LogicalNode(LogicalOp::kAggregate) {}
  std::string ToString(int indent) const override;

  std::vector<BoundExprPtr> group_exprs;  // outputs [0, group) of `output`
  std::vector<AggSpec> aggs;              // outputs [group, end)
};

struct SortKey {
  BoundExprPtr expr;
  bool ascending = true;
};

struct LogicalSort final : LogicalNode {
  LogicalSort() : LogicalNode(LogicalOp::kSort) {}
  std::string ToString(int indent) const override;

  std::vector<SortKey> keys;
};

struct LogicalLimit final : LogicalNode {
  LogicalLimit() : LogicalNode(LogicalOp::kLimit) {}
  std::string ToString(int indent) const override;

  int64_t limit = 0;
};

}  // namespace vdb::plan

#endif  // VDB_PLAN_LOGICAL_H_
