// Typed bound expression trees: column references, literals, operators,
// and evaluation over tuples.

#ifndef VDB_PLAN_EXPR_H_
#define VDB_PLAN_EXPR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/batch.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "sql/ast.h"
#include "util/result.h"

namespace vdb::plan {

/// Identifies a column produced somewhere in a query plan: `table_id` is a
/// per-query unique id for each base-table instance or derived table, and
/// `column_index` is the column's position in that producer's schema.
struct ColumnId {
  int table_id = -1;
  int column_index = -1;

  friend bool operator==(const ColumnId& a, const ColumnId& b) {
    return a.table_id == b.table_id && a.column_index == b.column_index;
  }
};

struct ColumnIdHash {
  size_t operator()(const ColumnId& id) const {
    return std::hash<int>{}(id.table_id * 1024 + id.column_index);
  }
};

/// Maps ColumnIds to slot positions in a physical operator's input row.
using Layout = std::unordered_map<ColumnId, size_t, ColumnIdHash>;

/// One column of a plan node's output.
struct OutputColumn {
  ColumnId id;
  std::string name;
  catalog::TypeId type = catalog::TypeId::kInt64;
};

/// Builds the layout that maps each output column to its position.
Layout MakeLayout(const std::vector<OutputColumn>& columns);

enum class BoundExprKind {
  kConstant,
  kColumn,
  kUnary,
  kBinary,
  kLike,
  kInList,
  kIsNull,
  kCase,
};

/// A bound (resolved, typed) scalar expression. Evaluation uses SQL
/// three-valued logic: comparisons and boolean connectives involving NULL
/// produce NULL (represented as a null Bool).
class BoundExpr {
 public:
  explicit BoundExpr(BoundExprKind kind, catalog::TypeId type)
      : kind_(kind), type_(type) {}
  virtual ~BoundExpr() = default;
  BoundExpr(const BoundExpr&) = delete;
  BoundExpr& operator=(const BoundExpr&) = delete;

  BoundExprKind kind() const { return kind_; }
  catalog::TypeId type() const { return type_; }

  /// Evaluates against a row (after ResolveSlots has been called).
  virtual catalog::Value Evaluate(const catalog::Tuple& row) const = 0;

  /// Batch evaluation: computes this expression over every active row of
  /// `batch` (per `batch.sel`), writing the result for the i-th active
  /// row into `out` row i (dense layout). `out` is Reset by the callee;
  /// its type reflects the values actually produced, which for most nodes
  /// is `type()`. The base implementation falls back to row-at-a-time
  /// Evaluate; hot node kinds override with columnar kernels.
  virtual void EvaluateBatch(const catalog::Batch& batch,
                             catalog::ValueVector* out) const;

  /// Applies this expression as a SQL condition: keeps only the active
  /// rows for which it evaluates to non-null true, shrinking `batch->sel`
  /// in place (the batch-wise analogue of EvaluatesToTrue).
  virtual void FilterBatch(catalog::Batch* batch) const;

  /// Resolves column references to slot positions for the given layout.
  /// Must be called (on a clone) before Evaluate.
  virtual Status ResolveSlots(const Layout& layout) = 0;

  /// Deep copy.
  virtual std::unique_ptr<BoundExpr> Clone() const = 0;

  /// All column ids referenced by this expression (appended to `out`).
  virtual void CollectColumns(std::vector<ColumnId>* out) const = 0;

  /// Number of primitive operations per evaluation; drives the optimizer's
  /// cpu_operator_cost term (the paper's "SQL where clause item" count).
  virtual int OpCount() const = 0;

  virtual std::string ToString() const = 0;

 private:
  BoundExprKind kind_;
  catalog::TypeId type_;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

class ConstantExpr final : public BoundExpr {
 public:
  explicit ConstantExpr(catalog::Value value)
      : BoundExpr(BoundExprKind::kConstant, value.type()),
        value_(std::move(value)) {}

  catalog::Value Evaluate(const catalog::Tuple&) const override {
    return value_;
  }
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout&) override { return Status::OK(); }
  BoundExprPtr Clone() const override {
    return std::make_unique<ConstantExpr>(value_);
  }
  void CollectColumns(std::vector<ColumnId>*) const override {}
  int OpCount() const override { return 0; }
  std::string ToString() const override { return value_.ToString(); }

  const catalog::Value& value() const { return value_; }

 private:
  catalog::Value value_;
};

class ColumnExpr final : public BoundExpr {
 public:
  ColumnExpr(ColumnId id, std::string name, catalog::TypeId type)
      : BoundExpr(BoundExprKind::kColumn, type),
        id_(id),
        name_(std::move(name)) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override {
    return row[slot_];
  }
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout& layout) override;
  BoundExprPtr Clone() const override {
    return std::make_unique<ColumnExpr>(id_, name_, type());
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    out->push_back(id_);
  }
  int OpCount() const override { return 0; }
  std::string ToString() const override { return name_; }

  const ColumnId& id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Resolved input-row slot (valid after ResolveSlots).
  size_t slot() const { return slot_; }

 private:
  ColumnId id_;
  std::string name_;
  size_t slot_ = ~0ULL;
};

class UnaryBoundExpr final : public BoundExpr {
 public:
  UnaryBoundExpr(sql::UnaryOp op, BoundExprPtr operand,
                 catalog::TypeId type)
      : BoundExpr(BoundExprKind::kUnary, type),
        op_(op),
        operand_(std::move(operand)) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override;
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  Status ResolveSlots(const Layout& layout) override {
    return operand_->ResolveSlots(layout);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<UnaryBoundExpr>(op_, operand_->Clone(), type());
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    operand_->CollectColumns(out);
  }
  int OpCount() const override { return 1 + operand_->OpCount(); }
  std::string ToString() const override;

  sql::UnaryOp op() const { return op_; }
  const BoundExpr& operand() const { return *operand_; }

 private:
  sql::UnaryOp op_;
  BoundExprPtr operand_;
};

class BinaryBoundExpr final : public BoundExpr {
 public:
  BinaryBoundExpr(sql::BinaryOp op, BoundExprPtr left, BoundExprPtr right,
                  catalog::TypeId type)
      : BoundExpr(BoundExprKind::kBinary, type),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override;
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout& layout) override {
    VDB_RETURN_NOT_OK(left_->ResolveSlots(layout));
    return right_->ResolveSlots(layout);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<BinaryBoundExpr>(op_, left_->Clone(),
                                             right_->Clone(), type());
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  int OpCount() const override {
    return 1 + left_->OpCount() + right_->OpCount();
  }
  std::string ToString() const override;

  sql::BinaryOp op() const { return op_; }
  const BoundExpr& left() const { return *left_; }
  const BoundExpr& right() const { return *right_; }

 private:
  sql::BinaryOp op_;
  BoundExprPtr left_;
  BoundExprPtr right_;
};

class LikeBoundExpr final : public BoundExpr {
 public:
  LikeBoundExpr(BoundExprPtr value, std::string pattern, bool negated)
      : BoundExpr(BoundExprKind::kLike, catalog::TypeId::kBool),
        value_(std::move(value)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override;
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout& layout) override {
    return value_->ResolveSlots(layout);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<LikeBoundExpr>(value_->Clone(), pattern_,
                                           negated_);
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    value_->CollectColumns(out);
  }
  // LIKE is much more expensive than a comparison; weight it like
  // PostgreSQL's pattern-match costing (several ops per character window,
  // with backtracking for %...% patterns).
  int OpCount() const override {
    return 4 + 3 * static_cast<int>(pattern_.size()) + value_->OpCount();
  }
  std::string ToString() const override;

  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

 private:
  BoundExprPtr value_;
  std::string pattern_;
  bool negated_;
};

class InListBoundExpr final : public BoundExpr {
 public:
  InListBoundExpr(BoundExprPtr value, std::vector<catalog::Value> list,
                  bool negated)
      : BoundExpr(BoundExprKind::kInList, catalog::TypeId::kBool),
        value_(std::move(value)),
        list_(std::move(list)),
        negated_(negated) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override;
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout& layout) override {
    return value_->ResolveSlots(layout);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<InListBoundExpr>(value_->Clone(), list_,
                                             negated_);
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    value_->CollectColumns(out);
  }
  int OpCount() const override {
    return static_cast<int>(list_.size()) + value_->OpCount();
  }
  std::string ToString() const override;

  const std::vector<catalog::Value>& list() const { return list_; }
  bool negated() const { return negated_; }

 private:
  BoundExprPtr value_;
  std::vector<catalog::Value> list_;
  bool negated_;
};

class IsNullBoundExpr final : public BoundExpr {
 public:
  IsNullBoundExpr(BoundExprPtr value, bool negated)
      : BoundExpr(BoundExprKind::kIsNull, catalog::TypeId::kBool),
        value_(std::move(value)),
        negated_(negated) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override {
    const bool is_null = value_->Evaluate(row).is_null();
    return catalog::Value::Bool(negated_ ? !is_null : is_null);
  }
  void EvaluateBatch(const catalog::Batch& batch,
                     catalog::ValueVector* out) const override;
  void FilterBatch(catalog::Batch* batch) const override;
  Status ResolveSlots(const Layout& layout) override {
    return value_->ResolveSlots(layout);
  }
  BoundExprPtr Clone() const override {
    return std::make_unique<IsNullBoundExpr>(value_->Clone(), negated_);
  }
  void CollectColumns(std::vector<ColumnId>* out) const override {
    value_->CollectColumns(out);
  }
  int OpCount() const override { return 1 + value_->OpCount(); }
  std::string ToString() const override {
    return value_->ToString() + " IS " + (negated_ ? "NOT " : "") + "NULL";
  }

  bool negated() const { return negated_; }

 private:
  BoundExprPtr value_;
  bool negated_;
};

class CaseBoundExpr final : public BoundExpr {
 public:
  CaseBoundExpr(std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches,
                BoundExprPtr else_result, catalog::TypeId type)
      : BoundExpr(BoundExprKind::kCase, type),
        branches_(std::move(branches)),
        else_result_(std::move(else_result)) {}

  catalog::Value Evaluate(const catalog::Tuple& row) const override;
  Status ResolveSlots(const Layout& layout) override;
  BoundExprPtr Clone() const override;
  void CollectColumns(std::vector<ColumnId>* out) const override;
  int OpCount() const override;
  std::string ToString() const override;

 private:
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> branches_;
  BoundExprPtr else_result_;  // may be null
};

/// Evaluates `expr` as a SQL condition: true only if the result is a
/// non-null true boolean.
bool EvaluatesToTrue(const BoundExpr& expr, const catalog::Tuple& row);

/// Builds `a AND b` (either side may be null, returning the other).
BoundExprPtr AndExprs(BoundExprPtr a, BoundExprPtr b);

}  // namespace vdb::plan

#endif  // VDB_PLAN_EXPR_H_
