// Page-based B+-tree secondary index mapping int64 keys to packed
// RecordIds.

#ifndef VDB_STORAGE_BTREE_H_
#define VDB_STORAGE_BTREE_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace vdb::storage {

/// A page-based B+-tree mapping int64 keys to 64-bit values (packed
/// RecordIds). Duplicate keys are allowed — equal keys are stored adjacently
/// and returned in insertion order by range scans.
///
/// All page accesses go through the buffer pool as *random* reads, matching
/// how optimizers cost index traversals. Deletion removes leaf entries
/// without rebalancing (PostgreSQL-style lazy deletion).
class BPlusTree {
 public:
  BPlusTree(DiskManager* disk, BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts a (key, value) entry.
  Status Insert(int64_t key, uint64_t value);

  /// Removes one entry matching (key, value). NotFound if absent.
  Status Delete(int64_t key, uint64_t value);

  /// Collects the values of all entries with exactly `key`.
  Result<std::vector<uint64_t>> Lookup(int64_t key);

  /// Number of entries in the tree.
  uint64_t NumEntries() const { return num_entries_; }

  /// Number of pages the tree occupies (for optimizer costing).
  uint64_t NumPages() const { return num_pages_; }

  /// Tree height in levels (1 = just a root leaf).
  uint32_t Height() const { return height_; }

  /// Streams entries with key in [lo, hi] in key order.
  ///   for (auto it = tree.SeekGE(lo); it.Valid() && it.key() <= hi;
  ///        it.Next()) ...
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    void Next();
    int64_t key() const { return entries_[index_].first; }
    uint64_t value() const { return entries_[index_].second; }

   private:
    friend class BPlusTree;
    Iterator(BPlusTree* tree, PageId leaf, size_t start_index);
    void LoadLeaf(PageId leaf, size_t start_index);

    BPlusTree* tree_;
    PageId next_leaf_ = kInvalidPageId;
    std::vector<std::pair<int64_t, uint64_t>> entries_;
    size_t index_ = 0;
    bool valid_ = false;
  };

  /// Iterator positioned at the first entry with key >= `key`.
  Iterator SeekGE(int64_t key);

  /// Iterator over the whole tree in key order.
  Iterator Begin();

 private:
  friend class Iterator;

  // Descends from the root to the leaf that should contain `key`,
  // recording the path of internal page ids (for splits).
  Result<PageId> FindLeaf(int64_t key, std::vector<PageId>* path);

  // Splits a full leaf; returns the separator key and new right page id.
  Status InsertIntoLeaf(PageId leaf_id, int64_t key, uint64_t value,
                        std::vector<PageId>& path);

  // Inserts (key, right_child) into the parent chain, splitting as needed.
  Status InsertIntoParent(std::vector<PageId>& path, int64_t key,
                          PageId right_child);

  PageId NewLeaf();
  PageId NewInternal();

  DiskManager* disk_;
  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
  uint32_t height_ = 1;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_BTREE_H_
