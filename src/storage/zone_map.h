// Zone maps: per-page, per-column min/max/null statistics that let scans
// skip whole pages whose values cannot satisfy a sargable predicate
// (DESIGN.md §16). Statistics cover every row EVER inserted into a page —
// deletes widen nothing and recompute nothing — so the stored bounds are
// always a superset of the live values and a prune decision can never
// drop a visible row.

#ifndef VDB_STORAGE_ZONE_MAP_H_
#define VDB_STORAGE_ZONE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdb::storage {

/// One column value of one inserted row, reduced to the total-ordered
/// numeric key the catalog derives from it (Value::NumericKey). The key
/// order is monotone but not injective (e.g. long strings sharing an
/// 8-byte prefix collide), which is why only range containment — never
/// equality of keys — may justify a prune.
struct ZoneSample {
  double key = 0.0;
  bool is_null = false;
};

/// Folded statistics of one column over one page.
struct ZoneColumnStats {
  uint64_t null_count = 0;  // rows ever inserted with NULL in this column
  bool has_values = false;  // at least one non-NULL sample was folded
  double min = 0.0;         // valid only when has_values
  double max = 0.0;

  void Fold(const ZoneSample& sample);

  bool operator==(const ZoneColumnStats&) const = default;
};

/// Statistics of one heap page. A page is `tracked` only if every insert
/// that ever landed on it came with samples; a single schema-blind insert
/// (e.g. a direct HeapFile::Insert in a storage test) poisons the page,
/// which then never prunes.
struct ZoneEntry {
  bool tracked = true;
  uint64_t row_count = 0;  // rows ever inserted (deletes do not decrement)
  std::vector<ZoneColumnStats> columns;

  bool operator==(const ZoneEntry&) const = default;
};

/// One sargable conjunct lowered to the numeric-key domain.
struct ZonePredicate {
  enum class Kind : uint8_t {
    kLt,        // col <  key
    kLe,        // col <= key
    kGt,        // col >  key
    kGe,        // col >= key
    kEq,        // col =  key
    kIsNull,    // col IS NULL
    kIsNotNull, // col IS NOT NULL
    kInList,    // col IN (keys...)
  };

  Kind kind = Kind::kEq;
  size_t column = 0;     // column index within the table schema
  double key = 0.0;      // comparison kinds
  std::vector<double> keys;  // kInList
};

/// The conjuncts a physical scan may prune on. All predicates are
/// top-level AND members of the scan filter, so a page on which ANY of
/// them is false for every row can be skipped.
struct ScanPruneSpec {
  std::vector<ZonePredicate> predicates;

  bool empty() const { return predicates.empty(); }
};

/// True when `entry` proves no row of the page can pass `spec`.
/// Three-valued-logic rules (DESIGN.md §16):
///  - an untracked page never prunes;
///  - a comparison against a column with no non-NULL value ever inserted
///    prunes (the comparison is NULL for every row, and a top-level AND
///    conjunct that is NULL rejects the row);
///  - a NaN comparison key never prunes (NaN compares false both ways, so
///    min/max containment proves nothing); a NaN *sample* widened the
///    stored range to (-inf, +inf) at fold time;
///  - strict bound tests only (min > key, max < key): the numeric key is
///    monotone but possibly non-injective, so ties prove nothing.
bool ZonePageCanPrune(const ZoneEntry& entry, const ScanPruneSpec& spec);

/// Per-heap collection of zone entries, parallel to the heap's page list.
/// HeapFile appends an entry exactly when it appends a page, so
/// entries().size() == NumPages() always holds.
class ZoneMap {
 public:
  void AddPage() { entries_.emplace_back(); }

  /// Appends a restored entry during checkpoint load.
  void RestoreEntry(ZoneEntry entry) { entries_.push_back(std::move(entry)); }

  /// Folds one inserted row into the last page's entry. `samples` is one
  /// ZoneSample per schema column, or nullptr for a schema-blind insert
  /// (which marks the page untracked forever).
  void FoldInsert(const std::vector<ZoneSample>* samples);

  const std::vector<ZoneEntry>& entries() const { return entries_; }

 private:
  std::vector<ZoneEntry> entries_;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_ZONE_MAP_H_
