#include "storage/wal.h"

#include <unistd.h>

#include <array>
#include <cstring>
#include <vector>

namespace vdb::storage {

namespace {

constexpr uint32_t kWalPageMagic = 0x564C4157;  // "WALV"
constexpr uint64_t kWalPageSize = kPageSize;
constexpr uint64_t kWalPageHeader = 16;
constexpr uint64_t kWalPageBody = kWalPageSize - kWalPageHeader;
constexpr uint64_t kRecordHeader = 4 + 4 + 8 + 1;  // crc, len, lsn, type

// Offsets within a page header.
constexpr uint64_t kMagicOff = 0;
constexpr uint64_t kDataLenOff = 4;
constexpr uint64_t kFirstLsnOff = 8;

template <typename T>
void PutLe(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T GetLe(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

uint32_t RecordCrc(Lsn lsn, WalRecordType type, std::string_view payload) {
  uint32_t crc = Crc32c(&lsn, sizeof(lsn));
  const uint8_t t = static_cast<uint8_t>(type);
  crc = Crc32c(&t, sizeof(t), crc);
  return Crc32c(payload.data(), payload.size(), crc);
}

/// Maps a record-stream offset to the file offset of that stream byte.
uint64_t FileOffsetOfStreamByte(uint64_t stream_offset) {
  return (stream_offset / kWalPageBody) * kWalPageSize + kWalPageHeader +
         stream_offset % kWalPageBody;
}

struct ScanResult {
  WalReplayStats stats;
  /// Valid record-stream bytes (not file bytes).
  uint64_t stream_len = 0;
  /// LSN of the first valid record that *starts* on the partial tail page
  /// (0 when none does, or when the stream ends on a page boundary). Open
  /// needs it to rewrite the tail page without corrupting its stamp.
  Lsn tail_page_first_lsn = 0;
};

/// Core scan shared by Replay and Open: walks the paged file, reassembles
/// the record stream, validates CRCs, and calls `apply` (which may be
/// null) for records with lsn > redo_after. Stops at the first invalid
/// byte and records why.
Result<ScanResult> ScanLog(
    const std::string& path, Lsn redo_after,
    const std::function<Status(const WalRecord&)>* apply) {
  ScanResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    // No log yet: an empty WAL replays to nothing.
    return result;
  }
  // Reassemble the record stream page by page; remember, per stream
  // offset, which pages contributed (for first_lsn validation).
  std::string stream;
  std::vector<std::pair<uint64_t, Lsn>> page_first_lsns;  // stream off, lsn
  std::vector<char> page(kWalPageSize);
  uint64_t page_index = 0;
  while (true) {
    const size_t n = std::fread(page.data(), 1, kWalPageSize, file);
    if (n == 0) break;
    if (n < kWalPageHeader) {
      result.stats.clean = false;
      result.stats.stop_reason = "torn page header at end of log";
      break;
    }
    const uint32_t magic = GetLe<uint32_t>(page.data() + kMagicOff);
    if (magic != kWalPageMagic) {
      result.stats.clean = false;
      result.stats.stop_reason = "bad page magic";
      break;
    }
    const uint16_t data_len = GetLe<uint16_t>(page.data() + kDataLenOff);
    const Lsn first_lsn = GetLe<Lsn>(page.data() + kFirstLsnOff);
    if (data_len > kWalPageBody) {
      result.stats.clean = false;
      result.stats.stop_reason = "page data_len out of range";
      break;
    }
    // A short final page may hold fewer bytes than its header claims
    // (torn write): parse what is there, the CRC of the cut record fails.
    const uint64_t avail =
        std::min<uint64_t>(data_len, n > kWalPageHeader ? n - kWalPageHeader
                                                        : 0);
    page_first_lsns.emplace_back(page_index * kWalPageBody, first_lsn);
    stream.append(page.data() + kWalPageHeader, avail);
    if (avail < data_len || n < kWalPageSize) {
      if (avail < data_len) {
        result.stats.clean = false;
        result.stats.stop_reason = "torn tail page";
      }
      break;
    }
    ++page_index;
  }
  std::fclose(file);

  // Parse the stream record by record.
  uint64_t pos = 0;
  size_t next_page_check = 0;
  uint64_t last_start_page = ~0ULL;
  Lsn last_start_page_first_lsn = 0;
  while (true) {
    if (stream.size() - pos < kRecordHeader) {
      if (stream.size() - pos > 0) {
        result.stats.clean = false;
        result.stats.stop_reason = "truncated record header";
      }
      break;
    }
    const char* rec = stream.data() + pos;
    const uint32_t crc = GetLe<uint32_t>(rec);
    const uint32_t payload_len = GetLe<uint32_t>(rec + 4);
    const Lsn lsn = GetLe<Lsn>(rec + 8);
    const uint8_t type = GetLe<uint8_t>(rec + 16);
    if (stream.size() - pos - kRecordHeader < payload_len) {
      result.stats.clean = false;
      result.stats.stop_reason = "truncated record payload";
      break;
    }
    const std::string_view payload(rec + kRecordHeader, payload_len);
    if (RecordCrc(lsn, static_cast<WalRecordType>(type), payload) != crc) {
      result.stats.clean = false;
      result.stats.stop_reason = "record checksum mismatch";
      break;
    }
    // Cross-check page LSN stamps: the stamp of the page this record
    // begins on must equal this record's LSN if it is the first record
    // starting there; pages fully spanned by an earlier record carry 0.
    // The mismatch is tracked locally: stats.clean may already be false
    // from a torn tail page, which must not stop the parse — records that
    // made it to disk before the tear are still valid and replayable.
    const uint64_t start_page = pos / kWalPageBody;
    bool stamp_mismatch = false;
    while (next_page_check < page_first_lsns.size() &&
           page_first_lsns[next_page_check].first / kWalPageBody <
               start_page) {
      if (page_first_lsns[next_page_check].second != 0) {
        stamp_mismatch = true;
      }
      ++next_page_check;
    }
    if (next_page_check < page_first_lsns.size() &&
        page_first_lsns[next_page_check].first / kWalPageBody ==
            start_page) {
      if (page_first_lsns[next_page_check].second != lsn) {
        stamp_mismatch = true;
      }
      ++next_page_check;
    }
    if (stamp_mismatch) {
      result.stats.clean = false;
      result.stats.stop_reason = "page first_lsn stamp mismatch";
      break;
    }
    if (start_page != last_start_page) {
      last_start_page = start_page;
      last_start_page_first_lsn = lsn;
    }
    pos += kRecordHeader + payload_len;
    ++result.stats.records_seen;
    result.stats.last_lsn = lsn;
    result.stream_len = pos;
    if (apply != nullptr && *apply != nullptr && lsn > redo_after) {
      WalRecord record;
      record.lsn = lsn;
      record.type = static_cast<WalRecordType>(type);
      record.payload = payload;
      VDB_RETURN_NOT_OK((*apply)(record));
      ++result.stats.records_applied;
    }
  }
  result.stats.valid_bytes =
      result.stream_len == 0 ? 0 : FileOffsetOfStreamByte(result.stream_len -
                                                          1) +
                                       1;
  if (result.stream_len % kWalPageBody != 0 &&
      last_start_page == result.stream_len / kWalPageBody) {
    result.tail_page_first_lsn = last_start_page_first_lsn;
  }
  return result;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& table = Crc32cTable();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  VDB_ASSIGN_OR_RETURN(ScanResult scan, ScanLog(path, 0, nullptr));
  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
  wal->path_ = path;
  wal->file_ = std::fopen(path.c_str(), "r+b");
  if (wal->file_ == nullptr) {
    wal->file_ = std::fopen(path.c_str(), "w+b");
  }
  if (wal->file_ == nullptr) {
    return Status::IOError("cannot open WAL file: " + path);
  }
  wal->stream_len_ = scan.stream_len;
  wal->durable_stream_len_ = scan.stream_len;
  wal->next_lsn_ = scan.stats.last_lsn + 1;
  wal->flushed_lsn_ = scan.stats.last_lsn;
  wal->last_appended_lsn_ = scan.stats.last_lsn;
  // Reload the partial tail page's stream bytes so the next flush can
  // rewrite the page in full, and drop any torn bytes past the valid end
  // so stale pages can never be mistaken for fresh records later.
  const uint64_t tail_len = scan.stream_len % kWalPageBody;
  if (tail_len != 0) {
    const uint64_t tail_page = scan.stream_len / kWalPageBody;
    wal->tail_body_.resize(tail_len);
    const uint64_t tail_start =
        FileOffsetOfStreamByte(scan.stream_len - tail_len);
    if (std::fseek(wal->file_, static_cast<long>(tail_start), SEEK_SET) !=
            0 ||
        std::fread(wal->tail_body_.data(), 1, tail_len, wal->file_) !=
            tail_len) {
      return Status::IOError("cannot reload WAL tail page");
    }
    // Seed the tail page's stamp with the record that already starts on
    // it, so the next flush rewrites the page with the original first_lsn
    // rather than the next append's (which would fail stamp validation on
    // every later scan, losing the whole log).
    if (scan.tail_page_first_lsn != 0) {
      wal->page_first_lsn_.emplace(tail_page, scan.tail_page_first_lsn);
    }
    if (!scan.stats.clean) {
      // Torn tail: rewrite the page so its data_len matches the valid
      // stream. The page-aligned truncation below zero-fills the rest of
      // the page, and with the stale (larger) data_len a later scan would
      // read past the valid end — and could even "resurrect" a torn
      // record whose missing bytes happened to be zeros, making recovery
      // non-idempotent.
      std::string page;
      page.reserve(kWalPageSize);
      PutLe<uint32_t>(&page, kWalPageMagic);
      PutLe<uint16_t>(&page, static_cast<uint16_t>(tail_len));
      PutLe<uint16_t>(&page, 0);
      PutLe<uint64_t>(&page, scan.tail_page_first_lsn);
      page.append(wal->tail_body_);
      page.resize(kWalPageSize, '\0');
      if (std::fseek(wal->file_,
                     static_cast<long>(tail_page * kWalPageSize),
                     SEEK_SET) != 0 ||
          std::fwrite(page.data(), 1, kWalPageSize, wal->file_) !=
              kWalPageSize ||
          std::fflush(wal->file_) != 0 ||
          fsync(fileno(wal->file_)) != 0) {
        return Status::IOError("cannot rewrite torn WAL tail page");
      }
    }
  }
  const uint64_t pages =
      (scan.stream_len + kWalPageBody - 1) / kWalPageBody;
  if (ftruncate(fileno(wal->file_),
                static_cast<off_t>(pages * kWalPageSize)) != 0) {
    return Status::IOError("cannot truncate WAL to valid end");
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) {
    // Best-effort final flush; crashes simply lose the unflushed tail.
    (void)FlushLocked();
    std::fclose(file_);
  }
}

Result<WriteAheadLog::AppendInfo> WriteAheadLog::Append(
    WalRecordType type, std::string_view payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("WAL payload too large");
  }
  const Lsn lsn = next_lsn_++;
  const uint64_t start = stream_len_;
  PutLe<uint32_t>(&pending_, RecordCrc(lsn, type, payload));
  PutLe<uint32_t>(&pending_, static_cast<uint32_t>(payload.size()));
  PutLe<uint64_t>(&pending_, lsn);
  PutLe<uint8_t>(&pending_, static_cast<uint8_t>(type));
  pending_.append(payload.data(), payload.size());
  stream_len_ = start + kRecordHeader + payload.size();
  last_appended_lsn_ = lsn;
  page_first_lsn_.emplace(start / kWalPageBody, lsn);  // keeps first
  AppendInfo info;
  info.lsn = lsn;
  info.end_offset = FileOffsetOfStreamByte(stream_len_ - 1) + 1;
  return info;
}

Status WriteAheadLog::Flush() { return FlushLocked(); }

uint64_t WriteAheadLog::end_offset() const {
  return stream_len_ == 0 ? 0 : FileOffsetOfStreamByte(stream_len_ - 1) + 1;
}

Status WriteAheadLog::FlushLocked() {
  if (pending_.empty()) return Status::OK();
  const uint64_t first_page = durable_stream_len_ / kWalPageBody;
  const uint64_t last_page = (stream_len_ - 1) / kWalPageBody;
  // The stream bytes being written: the already-durable part of the tail
  // page (so it can be rewritten whole) plus everything pending.
  std::string data = tail_body_ + pending_;
  const uint64_t data_start = first_page * kWalPageBody;
  std::string page;
  page.reserve(kWalPageSize);
  for (uint64_t p = first_page; p <= last_page; ++p) {
    const uint64_t body_start = p * kWalPageBody;
    const uint64_t body_len = std::min(kWalPageBody, stream_len_ - body_start);
    page.clear();
    PutLe<uint32_t>(&page, kWalPageMagic);
    PutLe<uint16_t>(&page, static_cast<uint16_t>(body_len));
    PutLe<uint16_t>(&page, 0);
    const auto it = page_first_lsn_.find(p);
    PutLe<uint64_t>(&page, it != page_first_lsn_.end() ? it->second : 0);
    page.append(data, body_start - data_start, body_len);
    page.resize(kWalPageSize, '\0');
    if (std::fseek(file_, static_cast<long>(p * kWalPageSize), SEEK_SET) !=
            0 ||
        std::fwrite(page.data(), 1, kWalPageSize, file_) != kWalPageSize) {
      return Status::IOError("WAL write failed");
    }
  }
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IOError("WAL fsync failed");
  }
  durable_stream_len_ = stream_len_;
  const uint64_t tail_len = stream_len_ % kWalPageBody;
  tail_body_ = tail_len == 0 ? std::string()
                             : data.substr(data.size() - tail_len);
  pending_.clear();
  flushed_lsn_ = last_appended_lsn_;
  // Headers of fully-written pages are final; only the tail page's stamp
  // is still needed for its future rewrites.
  page_first_lsn_.erase(page_first_lsn_.begin(),
                        page_first_lsn_.lower_bound(last_page));
  return Status::OK();
}

Status WriteAheadLog::Reset(Lsn next_lsn) {
  pending_.clear();
  tail_body_.clear();
  page_first_lsn_.clear();
  stream_len_ = 0;
  durable_stream_len_ = 0;
  next_lsn_ = next_lsn;
  flushed_lsn_ = next_lsn == 0 ? 0 : next_lsn - 1;
  last_appended_lsn_ = flushed_lsn_;
  if (ftruncate(fileno(file_), 0) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IOError("WAL reset failed");
  }
  return Status::OK();
}

Result<WalReplayStats> WriteAheadLog::Replay(
    const std::string& path, Lsn redo_after,
    const std::function<Status(const WalRecord&)>& apply) {
  VDB_ASSIGN_OR_RETURN(ScanResult scan, ScanLog(path, redo_after, &apply));
  return scan.stats;
}

}  // namespace vdb::storage
