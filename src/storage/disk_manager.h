// The simulated disk: a growable in-host-memory page array whose
// transfers to and from the buffer pool are observable for I/O charging.

#ifndef VDB_STORAGE_DISK_MANAGER_H_
#define VDB_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/logging.h"

namespace vdb::storage {

/// The simulated disk: a growable array of pages held in host memory.
/// What matters is that every transfer between the disk and the buffer
/// pool is observable, so the executor can charge I/O time for it.
/// Durability is layered on separately — the real-file WriteAheadLog plus
/// checkpoint images (wal.h, DESIGN.md §14) can reconstruct this array's
/// contents after a crash; the simulated disk itself stays volatile.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  PageId AllocatePage() {
    pages_.push_back(std::make_unique<Page>());
    return pages_.size() - 1;
  }

  uint64_t NumPages() const { return pages_.size(); }

  /// Copies page contents from disk into `out`.
  void ReadPage(PageId page_id, Page* out) const {
    VDB_CHECK(page_id < pages_.size());
    *out = *pages_[page_id];
  }

  /// Copies page contents from `in` onto disk.
  void WritePage(PageId page_id, const Page& in) {
    VDB_CHECK(page_id < pages_.size());
    *pages_[page_id] = in;
  }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_DISK_MANAGER_H_
