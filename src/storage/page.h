// Fixed-size pages, PageIds, RecordIds, and the slotted-page record
// layout.

#ifndef VDB_STORAGE_PAGE_H_
#define VDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace vdb::storage {

/// Fixed database page size. Matches PostgreSQL's default.
inline constexpr uint64_t kPageSize = 8192;

/// Identifies a page on the (simulated) disk.
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ULL;

/// Identifies a record: the page that holds it plus its slot number.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator<(const RecordId& a, const RecordId& b) {
    if (a.page_id != b.page_id) return a.page_id < b.page_id;
    return a.slot < b.slot;
  }

  /// Packs into 64 bits for storage as a B+-tree value (48-bit page id).
  uint64_t Pack() const { return (page_id << 16) | slot; }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{packed >> 16, static_cast<uint16_t>(packed & 0xffff)};
  }
};

/// A page-sized buffer. Pages live in BufferPool frames; helpers here give
/// typed access to offsets within the raw bytes.
class Page {
 public:
  Page() : data_(kPageSize, 0) {}

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  template <typename T>
  T ReadAt(uint64_t offset) const {
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void WriteAt(uint64_t offset, T value) {
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  void Zero() { std::fill(data_.begin(), data_.end(), 0); }

 private:
  std::vector<char> data_;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_PAGE_H_
