#include "storage/zone_map.h"

#include <cmath>
#include <limits>

namespace vdb::storage {

void ZoneColumnStats::Fold(const ZoneSample& sample) {
  if (sample.is_null) {
    ++null_count;
    return;
  }
  double lo = sample.key;
  double hi = sample.key;
  if (std::isnan(sample.key)) {
    // NaN is unordered: the only safe bounds are ones that make every
    // later range test inconclusive.
    lo = -std::numeric_limits<double>::infinity();
    hi = std::numeric_limits<double>::infinity();
  }
  if (!has_values) {
    has_values = true;
    min = lo;
    max = hi;
    return;
  }
  if (lo < min) min = lo;
  if (hi > max) max = hi;
}

namespace {

// True when `pred` alone proves every row of the page fails.
bool PredicateExcludesPage(const ZoneEntry& entry,
                           const ZonePredicate& pred) {
  if (pred.column >= entry.columns.size()) return false;
  const ZoneColumnStats& col = entry.columns[pred.column];
  switch (pred.kind) {
    case ZonePredicate::Kind::kIsNull:
      return col.null_count == 0;
    case ZonePredicate::Kind::kIsNotNull:
      return col.null_count == entry.row_count;
    default:
      break;
  }
  // Comparison kinds. A column that never held a non-NULL value makes
  // every comparison NULL, which rejects every row of this AND conjunct.
  if (!col.has_values) return true;
  switch (pred.kind) {
    case ZonePredicate::Kind::kLt:
    case ZonePredicate::Kind::kLe:
      if (std::isnan(pred.key)) return false;
      return col.min > pred.key;
    case ZonePredicate::Kind::kGt:
    case ZonePredicate::Kind::kGe:
      if (std::isnan(pred.key)) return false;
      return col.max < pred.key;
    case ZonePredicate::Kind::kEq:
      if (std::isnan(pred.key)) return false;
      return pred.key < col.min || pred.key > col.max;
    case ZonePredicate::Kind::kInList: {
      if (pred.keys.empty()) return false;
      for (double key : pred.keys) {
        if (std::isnan(key)) return false;
        if (key >= col.min && key <= col.max) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool ZonePageCanPrune(const ZoneEntry& entry, const ScanPruneSpec& spec) {
  if (!entry.tracked) return false;
  if (spec.empty()) return false;
  if (entry.row_count == 0) return true;  // no row was ever inserted
  for (const ZonePredicate& pred : spec.predicates) {
    if (PredicateExcludesPage(entry, pred)) return true;
  }
  return false;
}

void ZoneMap::FoldInsert(const std::vector<ZoneSample>* samples) {
  ZoneEntry& entry = entries_.back();
  ++entry.row_count;
  if (samples == nullptr) {
    entry.tracked = false;
    entry.columns.clear();
    return;
  }
  if (!entry.tracked) return;
  if (entry.columns.empty()) {
    entry.columns.resize(samples->size());
  } else if (entry.columns.size() != samples->size()) {
    // A schema change mid-page would make the folded bounds meaningless.
    entry.tracked = false;
    entry.columns.clear();
    return;
  }
  for (size_t i = 0; i < samples->size(); ++i) {
    entry.columns[i].Fold((*samples)[i]);
  }
}

}  // namespace vdb::storage
