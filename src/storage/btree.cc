#include "storage/btree.h"

#include <algorithm>

#include "util/logging.h"

namespace vdb::storage {

namespace {

// Node layout constants. A node is one page:
//   @0  u16  is_leaf
//   @2  u16  num_keys
//   @8  u64  next_leaf (leaves only)
//   @16 i64  keys[capacity]
//   @16+8*capacity
//       u64  values[capacity]          (leaf)
//       u64  children[capacity + 1]    (internal)
constexpr uint64_t kIsLeafOff = 0;
constexpr uint64_t kNumKeysOff = 2;
constexpr uint64_t kNextLeafOff = 8;
constexpr uint64_t kKeysOff = 16;
constexpr size_t kLeafCapacity = 500;
constexpr size_t kInternalCapacity = 500;
constexpr uint64_t kLeafValuesOff = kKeysOff + 8 * kLeafCapacity;
constexpr uint64_t kChildrenOff = kKeysOff + 8 * kInternalCapacity;

static_assert(kLeafValuesOff + 8 * kLeafCapacity <= kPageSize);
static_assert(kChildrenOff + 8 * (kInternalCapacity + 1) <= kPageSize);

// In-memory image of a node; nodes are read into this, modified, and
// written back. Simpler and safer than in-place byte surgery, and the
// simulator charges I/O per page, not per byte.
struct NodeView {
  bool is_leaf = true;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;    // leaf: values; internal: children
  PageId next_leaf = kInvalidPageId;

  void Load(const Page& page) {
    is_leaf = page.ReadAt<uint16_t>(kIsLeafOff) != 0;
    const uint16_t n = page.ReadAt<uint16_t>(kNumKeysOff);
    keys.resize(n);
    for (uint16_t i = 0; i < n; ++i) {
      keys[i] = page.ReadAt<int64_t>(kKeysOff + 8ULL * i);
    }
    if (is_leaf) {
      next_leaf = page.ReadAt<uint64_t>(kNextLeafOff);
      values.resize(n);
      for (uint16_t i = 0; i < n; ++i) {
        values[i] = page.ReadAt<uint64_t>(kLeafValuesOff + 8ULL * i);
      }
    } else {
      values.resize(n + 1);
      for (uint16_t i = 0; i <= n; ++i) {
        values[i] = page.ReadAt<uint64_t>(kChildrenOff + 8ULL * i);
      }
    }
  }

  void Store(Page* page) const {
    page->WriteAt<uint16_t>(kIsLeafOff, is_leaf ? 1 : 0);
    page->WriteAt<uint16_t>(kNumKeysOff,
                            static_cast<uint16_t>(keys.size()));
    for (size_t i = 0; i < keys.size(); ++i) {
      page->WriteAt<int64_t>(kKeysOff + 8ULL * i, keys[i]);
    }
    if (is_leaf) {
      page->WriteAt<uint64_t>(kNextLeafOff, next_leaf);
      for (size_t i = 0; i < values.size(); ++i) {
        page->WriteAt<uint64_t>(kLeafValuesOff + 8ULL * i, values[i]);
      }
    } else {
      for (size_t i = 0; i < values.size(); ++i) {
        page->WriteAt<uint64_t>(kChildrenOff + 8ULL * i, values[i]);
      }
    }
  }
};

}  // namespace

BPlusTree::BPlusTree(DiskManager* disk, BufferPool* pool)
    : disk_(disk), pool_(pool) {
  root_ = NewLeaf();
}

PageId BPlusTree::NewLeaf() {
  const PageId id = disk_->AllocatePage();
  auto page = pool_->FetchPage(id, AccessPattern::kRandom);
  VDB_CHECK(page.ok()) << page.status();
  NodeView node;
  node.is_leaf = true;
  node.Store(*page);
  VDB_CHECK_OK(pool_->UnpinPage(id, /*dirty=*/true));
  ++num_pages_;
  return id;
}

PageId BPlusTree::NewInternal() {
  const PageId id = disk_->AllocatePage();
  auto page = pool_->FetchPage(id, AccessPattern::kRandom);
  VDB_CHECK(page.ok()) << page.status();
  NodeView node;
  node.is_leaf = false;
  node.values.push_back(kInvalidPageId);
  node.Store(*page);
  VDB_CHECK_OK(pool_->UnpinPage(id, /*dirty=*/true));
  ++num_pages_;
  return id;
}

Result<PageId> BPlusTree::FindLeaf(int64_t key, std::vector<PageId>* path) {
  PageId current = root_;
  for (;;) {
    VDB_ASSIGN_OR_RETURN(Page * page,
                         pool_->FetchPage(current, AccessPattern::kRandom));
    NodeView node;
    node.Load(*page);
    VDB_RETURN_NOT_OK(pool_->UnpinPage(current, /*dirty=*/false));
    if (node.is_leaf) return current;
    if (path != nullptr) path->push_back(current);
    // Insertion descend: equal keys go right of the separator.
    const size_t idx =
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    current = node.values[idx];
  }
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  std::vector<PageId> path;
  VDB_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key, &path));
  VDB_RETURN_NOT_OK(InsertIntoLeaf(leaf, key, value, path));
  ++num_entries_;
  return Status::OK();
}

Status BPlusTree::InsertIntoLeaf(PageId leaf_id, int64_t key, uint64_t value,
                                 std::vector<PageId>& path) {
  VDB_ASSIGN_OR_RETURN(Page * page,
                       pool_->FetchPage(leaf_id, AccessPattern::kRandom));
  NodeView node;
  node.Load(*page);
  const size_t pos =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  node.keys.insert(node.keys.begin() + pos, key);
  node.values.insert(node.values.begin() + pos, value);
  if (node.keys.size() <= kLeafCapacity) {
    node.Store(page);
    return pool_->UnpinPage(leaf_id, /*dirty=*/true);
  }
  // Split: right half moves to a new leaf.
  const size_t mid = node.keys.size() / 2;
  NodeView right;
  right.is_leaf = true;
  right.keys.assign(node.keys.begin() + mid, node.keys.end());
  right.values.assign(node.values.begin() + mid, node.values.end());
  right.next_leaf = node.next_leaf;
  node.keys.resize(mid);
  node.values.resize(mid);

  const PageId right_id = NewLeaf();
  node.next_leaf = right_id;
  node.Store(page);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(leaf_id, /*dirty=*/true));

  VDB_ASSIGN_OR_RETURN(Page * right_page,
                       pool_->FetchPage(right_id, AccessPattern::kRandom));
  right.Store(right_page);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(right_id, /*dirty=*/true));

  return InsertIntoParent(path, right.keys.front(), right_id);
}

Status BPlusTree::InsertIntoParent(std::vector<PageId>& path, int64_t key,
                                   PageId right_child) {
  if (path.empty()) {
    // Root split: make a new root above the two children.
    const PageId new_root = NewInternal();
    VDB_ASSIGN_OR_RETURN(Page * page,
                         pool_->FetchPage(new_root, AccessPattern::kRandom));
    NodeView node;
    node.is_leaf = false;
    node.keys = {key};
    node.values = {root_, right_child};
    node.Store(page);
    VDB_RETURN_NOT_OK(pool_->UnpinPage(new_root, /*dirty=*/true));
    root_ = new_root;
    ++height_;
    return Status::OK();
  }
  const PageId parent_id = path.back();
  path.pop_back();
  VDB_ASSIGN_OR_RETURN(Page * page,
                       pool_->FetchPage(parent_id, AccessPattern::kRandom));
  NodeView node;
  node.Load(*page);
  const size_t pos =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  node.keys.insert(node.keys.begin() + pos, key);
  node.values.insert(node.values.begin() + pos + 1, right_child);
  if (node.keys.size() <= kInternalCapacity) {
    node.Store(page);
    return pool_->UnpinPage(parent_id, /*dirty=*/true);
  }
  // Split internal node: middle key moves up.
  const size_t mid = node.keys.size() / 2;
  const int64_t up_key = node.keys[mid];
  NodeView right;
  right.is_leaf = false;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.values.assign(node.values.begin() + mid + 1, node.values.end());
  node.keys.resize(mid);
  node.values.resize(mid + 1);
  node.Store(page);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(parent_id, /*dirty=*/true));

  const PageId right_id = NewInternal();
  VDB_ASSIGN_OR_RETURN(Page * right_page,
                       pool_->FetchPage(right_id, AccessPattern::kRandom));
  right.Store(right_page);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(right_id, /*dirty=*/true));

  return InsertIntoParent(path, up_key, right_id);
}

Status BPlusTree::Delete(int64_t key, uint64_t value) {
  // Descend to the leftmost leaf that can contain `key` (search descend),
  // then walk the leaf chain; duplicates may span multiple leaves.
  PageId current = root_;
  for (;;) {
    VDB_ASSIGN_OR_RETURN(Page * page,
                         pool_->FetchPage(current, AccessPattern::kRandom));
    NodeView node;
    node.Load(*page);
    VDB_RETURN_NOT_OK(pool_->UnpinPage(current, /*dirty=*/false));
    if (node.is_leaf) break;
    const size_t idx =
        std::lower_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    current = node.values[idx];
  }
  while (current != kInvalidPageId) {
    VDB_ASSIGN_OR_RETURN(Page * page,
                         pool_->FetchPage(current, AccessPattern::kRandom));
    NodeView node;
    node.Load(*page);
    bool removed = false;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (node.keys[i] == key && node.values[i] == value) {
        node.keys.erase(node.keys.begin() + i);
        node.values.erase(node.values.begin() + i);
        node.Store(page);
        removed = true;
        break;
      }
    }
    const PageId next = node.next_leaf;
    const bool past =
        !removed && !node.keys.empty() && node.keys.front() > key;
    VDB_RETURN_NOT_OK(pool_->UnpinPage(current, removed));
    if (removed) {
      --num_entries_;
      return Status::OK();
    }
    if (past) break;
    current = next;
  }
  return Status::NotFound("key/value pair not in tree");
}

Result<std::vector<uint64_t>> BPlusTree::Lookup(int64_t key) {
  std::vector<uint64_t> result;
  for (Iterator it = SeekGE(key); it.Valid() && it.key() == key; it.Next()) {
    result.push_back(it.value());
  }
  return result;
}

BPlusTree::Iterator BPlusTree::SeekGE(int64_t key) {
  // Search descend: equal separators go left so we find the leftmost
  // occurrence of a duplicated key.
  PageId current = root_;
  for (;;) {
    auto page_result = pool_->FetchPage(current, AccessPattern::kRandom);
    VDB_CHECK(page_result.ok()) << page_result.status();
    NodeView node;
    node.Load(**page_result);
    VDB_CHECK_OK(pool_->UnpinPage(current, /*dirty=*/false));
    if (node.is_leaf) {
      const size_t idx =
          std::lower_bound(node.keys.begin(), node.keys.end(), key) -
          node.keys.begin();
      return Iterator(this, current, idx);
    }
    const size_t idx =
        std::lower_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    current = node.values[idx];
  }
}

BPlusTree::Iterator BPlusTree::Begin() {
  PageId current = root_;
  for (;;) {
    auto page_result = pool_->FetchPage(current, AccessPattern::kRandom);
    VDB_CHECK(page_result.ok()) << page_result.status();
    NodeView node;
    node.Load(**page_result);
    VDB_CHECK_OK(pool_->UnpinPage(current, /*dirty=*/false));
    if (node.is_leaf) return Iterator(this, current, 0);
    current = node.values.front();
  }
}

BPlusTree::Iterator::Iterator(BPlusTree* tree, PageId leaf,
                              size_t start_index)
    : tree_(tree) {
  LoadLeaf(leaf, start_index);
}

void BPlusTree::Iterator::LoadLeaf(PageId leaf, size_t start_index) {
  valid_ = false;
  entries_.clear();
  index_ = 0;
  while (leaf != kInvalidPageId) {
    auto page_result = tree_->pool_->FetchPage(leaf, AccessPattern::kRandom);
    VDB_CHECK(page_result.ok()) << page_result.status();
    NodeView node;
    node.Load(**page_result);
    VDB_CHECK_OK(tree_->pool_->UnpinPage(leaf, /*dirty=*/false));
    next_leaf_ = node.next_leaf;
    if (start_index < node.keys.size()) {
      for (size_t i = start_index; i < node.keys.size(); ++i) {
        entries_.emplace_back(node.keys[i], node.values[i]);
      }
      valid_ = true;
      return;
    }
    leaf = node.next_leaf;
    start_index = 0;
  }
  next_leaf_ = kInvalidPageId;
}

void BPlusTree::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  if (index_ >= entries_.size()) {
    LoadLeaf(next_leaf_, 0);
  }
}

}  // namespace vdb::storage
