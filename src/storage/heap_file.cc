#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>

namespace vdb::storage {

namespace {

constexpr uint64_t kNumSlotsOff = 0;
constexpr uint64_t kFreeOffsetOff = 2;
constexpr uint64_t kSlotsStart = 4;
constexpr uint64_t kSlotSize = 4;  // u16 offset + u16 length

uint16_t NumSlots(const Page& page) {
  return page.ReadAt<uint16_t>(kNumSlotsOff);
}
uint16_t FreeOffset(const Page& page) {
  return page.ReadAt<uint16_t>(kFreeOffsetOff);
}
void ReadSlot(const Page& page, uint16_t slot, uint16_t* offset,
              uint16_t* length) {
  *offset = page.ReadAt<uint16_t>(kSlotsStart + slot * kSlotSize);
  *length = page.ReadAt<uint16_t>(kSlotsStart + slot * kSlotSize + 2);
}
void WriteSlot(Page* page, uint16_t slot, uint16_t offset, uint16_t length) {
  page->WriteAt<uint16_t>(kSlotsStart + slot * kSlotSize, offset);
  page->WriteAt<uint16_t>(kSlotsStart + slot * kSlotSize + 2, length);
}

// Free bytes available for one more record (including its slot).
uint64_t FreeBytes(const Page& page) {
  const uint64_t slots_end = kSlotsStart + NumSlots(page) * kSlotSize;
  const uint64_t free_off = FreeOffset(page);
  return free_off > slots_end ? free_off - slots_end : 0;
}

void InitPage(Page* page) {
  page->Zero();
  page->WriteAt<uint16_t>(kNumSlotsOff, 0);
  page->WriteAt<uint16_t>(kFreeOffsetOff,
                          static_cast<uint16_t>(kPageSize));
}

}  // namespace

Result<RecordId> HeapFile::Insert(
    std::string_view record, const std::vector<ZoneSample>* zone_samples) {
  const uint64_t need = record.size() + kSlotSize;
  if (record.size() + kSlotsStart + kSlotSize > kPageSize) {
    return Status::InvalidArgument("record too large for a page");
  }
  Page* page = nullptr;
  PageId page_id = kInvalidPageId;
  bool dirty_new_page = false;
  if (!pages_.empty()) {
    page_id = pages_.back();
    VDB_ASSIGN_OR_RETURN(page,
                         pool_->FetchPage(page_id, AccessPattern::kRandom));
    if (FreeBytes(*page) < need) {
      VDB_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
      page = nullptr;
    }
  }
  if (page == nullptr) {
    page_id = disk_->AllocatePage();
    page_index_[page_id] = pages_.size();
    pages_.push_back(page_id);
    page_lsns_.push_back(0);
    zone_map_.AddPage();
    VDB_ASSIGN_OR_RETURN(page,
                         pool_->FetchPage(page_id, AccessPattern::kRandom));
    InitPage(page);
    dirty_new_page = true;
  }
  (void)dirty_new_page;
  const uint16_t num_slots = NumSlots(*page);
  const uint16_t new_offset =
      static_cast<uint16_t>(FreeOffset(*page) - record.size());
  std::memcpy(page->data() + new_offset, record.data(), record.size());
  WriteSlot(page, num_slots, new_offset,
            static_cast<uint16_t>(record.size()));
  page->WriteAt<uint16_t>(kNumSlotsOff, num_slots + 1);
  page->WriteAt<uint16_t>(kFreeOffsetOff, new_offset);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/true));
  ++num_records_;
  zone_map_.FoldInsert(zone_samples);
  return RecordId{page_id, num_slots};
}

Result<std::string> HeapFile::Get(RecordId rid, AccessPattern pattern) {
  VDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id, pattern));
  std::string result;
  Status status = Status::OK();
  if (rid.slot >= NumSlots(*page)) {
    status = Status::NotFound("record slot out of range");
  } else {
    uint16_t offset = 0;
    uint16_t length = 0;
    ReadSlot(*page, rid.slot, &offset, &length);
    if (offset == 0) {
      status = Status::NotFound("record deleted");
    } else {
      result.assign(page->data() + offset, length);
    }
  }
  VDB_RETURN_NOT_OK(pool_->UnpinPage(rid.page_id, /*dirty=*/false));
  if (!status.ok()) return status;
  return result;
}

Status HeapFile::Delete(RecordId rid) {
  VDB_ASSIGN_OR_RETURN(
      Page * page, pool_->FetchPage(rid.page_id, AccessPattern::kRandom));
  Status status = Status::OK();
  bool dirty = false;
  if (rid.slot >= NumSlots(*page)) {
    status = Status::NotFound("record slot out of range");
  } else {
    uint16_t offset = 0;
    uint16_t length = 0;
    ReadSlot(*page, rid.slot, &offset, &length);
    if (offset == 0) {
      status = Status::NotFound("record already deleted");
    } else {
      WriteSlot(page, rid.slot, 0, 0);
      dirty = true;
      --num_records_;
    }
  }
  VDB_RETURN_NOT_OK(pool_->UnpinPage(rid.page_id, dirty));
  return status;
}

Result<uint64_t> HeapFile::PageIndexOf(PageId page_id) const {
  const auto it = page_index_.find(page_id);
  if (it == page_index_.end()) {
    return Status::NotFound("page not in this heap");
  }
  return it->second;
}

Result<bool> HeapFile::ApplyRedoInsert(
    uint64_t page_index, uint16_t slot, std::string_view record, Lsn lsn,
    const std::vector<ZoneSample>* zone_samples) {
  if (page_index < pages_.size() && page_lsns_[page_index] >= lsn) {
    return false;  // ARIES redo test: the page already reflects this LSN
  }
  if (page_index > pages_.size()) {
    return Status::IOError("redo insert skips a heap page");
  }
  VDB_ASSIGN_OR_RETURN(RecordId rid, Insert(record, zone_samples));
  VDB_ASSIGN_OR_RETURN(uint64_t landed, PageIndexOf(rid.page_id));
  if (landed != page_index || rid.slot != slot) {
    return Status::IOError("redo insert landed at a different slot");
  }
  page_lsns_[landed] = lsn;
  return true;
}

Result<bool> HeapFile::ApplyRedoDelete(uint64_t page_index, uint16_t slot,
                                       Lsn lsn) {
  if (page_index >= pages_.size()) {
    return Status::IOError("redo delete targets a missing heap page");
  }
  if (page_lsns_[page_index] >= lsn) return false;
  VDB_RETURN_NOT_OK(Delete(RecordId{pages_[page_index], slot}));
  page_lsns_[page_index] = lsn;
  return true;
}

Status HeapFile::RestorePage(const Page& image, Lsn page_lsn,
                             const ZoneEntry* zone) {
  const PageId page_id = disk_->AllocatePage();
  disk_->WritePage(page_id, image);
  page_index_[page_id] = pages_.size();
  pages_.push_back(page_id);
  page_lsns_.push_back(page_lsn);
  if (zone != nullptr) {
    zone_map_.RestoreEntry(*zone);
  } else {
    ZoneEntry untracked;
    untracked.tracked = false;
    zone_map_.RestoreEntry(std::move(untracked));
  }
  const uint16_t num_slots = NumSlots(image);
  for (uint16_t slot = 0; slot < num_slots; ++slot) {
    uint16_t offset = 0;
    uint16_t length = 0;
    ReadSlot(image, slot, &offset, &length);
    if (offset != 0) ++num_records_;
  }
  return Status::OK();
}

namespace {

// Shared slot-directory walk for both scan variants: fills `out` with
// views of the live records of the page bytes at `data`.
void CollectLiveRecords(const char* data, PageId page_id,
                        std::vector<HeapFile::RecordView>* out) {
  uint16_t num_slots = 0;
  std::memcpy(&num_slots, data + kNumSlotsOff, sizeof(num_slots));
  out->reserve(num_slots);
  for (uint16_t slot = 0; slot < num_slots; ++slot) {
    uint16_t offset = 0;
    uint16_t length = 0;
    std::memcpy(&offset, data + kSlotsStart + slot * kSlotSize,
                sizeof(offset));
    std::memcpy(&length, data + kSlotsStart + slot * kSlotSize + 2,
                sizeof(length));
    if (offset == 0) continue;
    out->push_back(HeapFile::RecordView{
        RecordId{page_id, slot}, std::string_view(data + offset, length)});
  }
}

}  // namespace

std::vector<uint8_t> HeapFile::ComputePruneBitmap(
    const ScanPruneSpec& spec) const {
  std::vector<uint8_t> prune(pages_.size(), 0);
  if (spec.empty()) return prune;
  const std::vector<ZoneEntry>& entries = zone_map_.entries();
  for (size_t i = 0; i < entries.size() && i < prune.size(); ++i) {
    prune[i] = ZonePageCanPrune(entries[i], spec) ? 1 : 0;
  }
  return prune;
}

Result<bool> HeapFile::ReadPageForScan(
    size_t page_index, std::string* storage,
    std::vector<RecordView>* out) const {
  out->clear();
  if (page_index >= pages_.size()) return false;
  const PageId page_id = pages_[page_index];
  VDB_ASSIGN_OR_RETURN(
      Page * page, pool_->FetchPage(page_id, AccessPattern::kSequential));
  storage->assign(page->data(), kPageSize);
  VDB_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
  CollectLiveRecords(storage->data(), page_id, out);
  return true;
}

Result<bool> HeapFile::ReadPageForScanPinned(
    size_t page_index, ScanPagePin* pin,
    std::vector<RecordView>* out) const {
  out->clear();
  // Release the previous page before fetching: with a near-full pool the
  // old pin could otherwise block the eviction the fetch needs.
  pin->Release();
  if (page_index >= pages_.size()) return false;
  const PageId page_id = pages_[page_index];
  VDB_ASSIGN_OR_RETURN(
      Page * page, pool_->FetchPage(page_id, AccessPattern::kSequential));
  pin->pool_ = pool_;
  pin->page_id_ = page_id;
  CollectLiveRecords(page->data(), page_id, out);
  return true;
}

HeapFile::Iterator::Iterator(const HeapFile* heap) : heap_(heap) {
  LoadPage();
}

void HeapFile::Iterator::Next() {
  if (!valid_) return;
  ++index_;
  if (index_ >= records_.size()) {
    ++page_index_;
    LoadPage();
  }
}

void HeapFile::Iterator::LoadPage() {
  records_.clear();
  index_ = 0;
  valid_ = false;
  while (page_index_ < heap_->pages_.size()) {
    const PageId page_id = heap_->pages_[page_index_];
    auto page_result =
        heap_->pool_->FetchPage(page_id, AccessPattern::kSequential);
    VDB_CHECK(page_result.ok()) << page_result.status();
    Page* page = *page_result;
    const uint16_t num_slots = NumSlots(*page);
    for (uint16_t slot = 0; slot < num_slots; ++slot) {
      uint16_t offset = 0;
      uint16_t length = 0;
      ReadSlot(*page, slot, &offset, &length);
      if (offset == 0) continue;
      records_.emplace_back(RecordId{page_id, slot},
                            std::string(page->data() + offset, length));
    }
    VDB_CHECK_OK(heap_->pool_->UnpinPage(page_id, /*dirty=*/false));
    if (!records_.empty()) {
      valid_ = true;
      return;
    }
    ++page_index_;
  }
}

}  // namespace vdb::storage
