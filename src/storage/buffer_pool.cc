#include "storage/buffer_pool.h"

#include <algorithm>

namespace vdb::storage {

BufferPool::BufferPool(DiskManager* disk, uint64_t capacity_pages)
    : disk_(disk), capacity_(std::max<uint64_t>(1, capacity_pages)) {
  frames_.resize(capacity_);
  free_list_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_list_.push_back(i);
}

Result<Page*> BufferPool::FetchPage(PageId page_id, AccessPattern pattern) {
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    Frame& frame = frames_[it->second];
    frame.pin_count++;
    frame.referenced = true;
    stats_.hits++;
    return &frame.page;
  }
  // Miss: find a frame.
  size_t frame_index;
  if (!free_list_.empty()) {
    frame_index = free_list_.back();
    free_list_.pop_back();
  } else {
    VDB_ASSIGN_OR_RETURN(frame_index, EvictOne());
  }
  Frame& frame = frames_[frame_index];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.referenced = true;
  disk_->ReadPage(page_id, &frame.page);
  table_[page_id] = frame_index;
  if (pattern == AccessPattern::kSequential) {
    stats_.sequential_misses++;
  } else {
    stats_.random_misses++;
  }
  if (listener_ != nullptr) listener_->OnPageRead(pattern);
  return &frame.page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return Status::NotFound("UnpinPage: page not in pool");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count == 0) {
    return Status::Internal("UnpinPage: pin count already zero");
  }
  frame.pin_count--;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

void BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      FlushFrame(&frame);
    }
  }
}

Status BufferPool::EvictAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pin_count > 0) {
      return Status::ResourceExhausted("EvictAll: a page is pinned");
    }
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId) continue;
    if (frame.dirty) FlushFrame(&frame);
    table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    frame.referenced = false;
    free_list_.push_back(i);
  }
  return Status::OK();
}

Status BufferPool::Resize(uint64_t new_capacity_pages) {
  new_capacity_pages = std::max<uint64_t>(1, new_capacity_pages);
  if (new_capacity_pages == capacity_) return Status::OK();
  uint64_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.pin_count > 0) ++pinned;
  }
  if (pinned > new_capacity_pages) {
    return Status::ResourceExhausted("Resize: more pages pinned than fit");
  }
  // Rebuild the frame array, keeping as many cached pages as fit
  // (pinned pages first, then most-recently-referenced ones).
  std::vector<Frame> old_frames = std::move(frames_);
  frames_.clear();
  frames_.resize(new_capacity_pages);
  table_.clear();
  free_list_.clear();
  capacity_ = new_capacity_pages;
  clock_hand_ = 0;

  std::stable_sort(old_frames.begin(), old_frames.end(),
                   [](const Frame& a, const Frame& b) {
                     auto rank = [](const Frame& f) {
                       if (f.page_id == kInvalidPageId) return 2;
                       if (f.pin_count > 0) return 0;
                       return 1;
                     };
                     return rank(a) < rank(b);
                   });
  size_t next = 0;
  for (Frame& frame : old_frames) {
    if (frame.page_id == kInvalidPageId) continue;
    if (next < new_capacity_pages) {
      table_[frame.page_id] = next;
      frames_[next] = std::move(frame);
      ++next;
    } else {
      if (frame.dirty) FlushFrame(&frame);
    }
  }
  for (size_t i = new_capacity_pages; i-- > next;) free_list_.push_back(i);
  return Status::OK();
}

Result<size_t> BufferPool::EvictOne() {
  // CLOCK: sweep until we find an unpinned, unreferenced frame.
  const size_t n = frames_.size();
  for (size_t sweep = 0; sweep < 2 * n + 1; ++sweep) {
    Frame& frame = frames_[clock_hand_];
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.page_id == kInvalidPageId || frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) FlushFrame(&frame);
    table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    return index;
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

void BufferPool::FlushFrame(Frame* frame) {
  // Write-ahead rule: the log records behind this dirty page must be
  // durable before the page itself is written back.
  if (wal_ != nullptr && wal_->HasUnflushed()) {
    VDB_CHECK_OK(wal_->Flush());
  }
  disk_->WritePage(frame->page_id, frame->page);
  frame->dirty = false;
  stats_.page_writes++;
  if (listener_ != nullptr) listener_->OnPageWrite();
}

}  // namespace vdb::storage
