// Write-ahead log (DESIGN.md §14): 8 KiB pages carrying a continuous,
// CRC32C-checksummed, LSN-stamped record stream with a group-commit
// buffer; ScanLog detects torn writes and ends history at the first
// invalid byte.

#ifndef VDB_STORAGE_WAL_H_
#define VDB_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "storage/page.h"
#include "util/result.h"

namespace vdb::storage {

/// Log sequence number. LSN 0 is reserved ("before any record"); the first
/// record of a fresh log carries LSN 1, and LSNs increase by one per record.
using Lsn = uint64_t;

/// CRC32C (Castagnoli) over `len` bytes, seeded with `seed` so multi-part
/// checksums can be chained. Software table-driven implementation — the
/// same polynomial hardware SSE4.2 CRC32 instructions compute, so on-disk
/// checksums stay stable if an accelerated path is ever added.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

/// Redo record types (see DESIGN.md §14 for the payload formats; payloads
/// are encoded/decoded by catalog/wal_payloads.h — the WAL itself treats
/// them as opaque bytes).
enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kCreateIndex = 2,
  kInsert = 3,
  kDelete = 4,
};

/// One decoded log record handed to the replay callback.
struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::string_view payload;
};

/// Outcome of a replay pass over a log file.
struct WalReplayStats {
  uint64_t records_seen = 0;     // valid records scanned (incl. skipped)
  uint64_t records_applied = 0;  // records passed to the callback
  Lsn last_lsn = 0;              // LSN of the last valid record
  uint64_t valid_bytes = 0;      // file offset where the valid log ends
  bool clean = true;  // false: stopped at a torn or corrupt record
  std::string stop_reason;
};

/// A paged, checksummed write-ahead log (DESIGN.md §14).
///
/// Physical format: the file is a sequence of 8 KiB log pages, each with a
/// 16-byte header {u32 magic, u16 data_len, u16 reserved, u64 first_lsn}
/// where `first_lsn` stamps the first record that begins on the page and
/// `data_len` counts the record-stream bytes stored in the page body.
/// Records form a continuous byte stream chunked across page bodies
/// (records may span pages):
///   [u32 crc32c][u32 payload_len][u64 lsn][u8 type][payload bytes]
/// The CRC covers lsn, type, and payload. All integers little-endian.
///
/// Appends accumulate in a group-commit buffer; Flush() materializes full
/// pages, rewrites the partial tail page in place, and fsyncs — so one
/// fsync covers every record appended since the previous flush. Replay
/// validates magic, data_len, and per-record CRCs and treats the first
/// invalid byte as the end of the log (torn-write detection): a record cut
/// by a crash mid-write fails its CRC or runs past the readable stream and
/// is dropped along with everything after it.
///
/// Thread-compatibility: not thread-safe; callers serialize access (the
/// engine logs from the single mutating path through Catalog).
class WriteAheadLog {
 public:
  /// Opens (or creates) the log at `path`. An existing file is scanned
  /// exactly like Replay to find the end of the valid stream; appends
  /// continue from there and LSNs resume after the last valid record.
  /// Bytes past the valid end (from a torn write) are discarded.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  struct AppendInfo {
    Lsn lsn = 0;
    /// File offset one past the record's last byte once flushed: truncating
    /// the file anywhere >= end_offset keeps the record replayable.
    uint64_t end_offset = 0;
  };

  /// Buffers one record (group commit) and assigns it the next LSN. The
  /// record is not durable until Flush().
  Result<AppendInfo> Append(WalRecordType type, std::string_view payload);

  /// Writes buffered records to the file and fsyncs. No-op when nothing
  /// is pending.
  Status Flush();

  bool HasUnflushed() const { return !pending_.empty(); }

  /// Truncates the log to empty after a successful checkpoint. `next_lsn`
  /// seeds the LSN counter so post-checkpoint records sort after every
  /// record captured by the checkpoint image.
  Status Reset(Lsn next_lsn);

  /// LSN the next Append will receive.
  Lsn next_lsn() const { return next_lsn_; }
  /// File offset one past the last appended record's final byte (0 when
  /// the log is empty); equals the latest AppendInfo::end_offset. The
  /// crash-fuzz harness records this per operation to predict which prefix
  /// of operations survives truncation at a given byte.
  uint64_t end_offset() const;
  /// LSN of the last record made durable by Flush (0 = none).
  Lsn flushed_lsn() const { return flushed_lsn_; }
  const std::string& path() const { return path_; }

  /// Scans the log at `path` and invokes `apply` for every valid record
  /// with lsn > `redo_after`, in LSN order. Stops at the first torn or
  /// corrupt record (stats.clean == false) — everything before it is
  /// still applied, mirroring crash semantics. An `apply` error aborts
  /// the replay and is returned as-is.
  static Result<WalReplayStats> Replay(
      const std::string& path, Lsn redo_after,
      const std::function<Status(const WalRecord&)>& apply);

 private:
  WriteAheadLog() = default;

  Status FlushLocked();

  std::string path_;
  std::FILE* file_ = nullptr;
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;
  Lsn last_appended_lsn_ = 0;
  /// Total record-stream bytes, including buffered-but-unflushed ones.
  uint64_t stream_len_ = 0;
  /// Record-stream bytes durably written by previous flushes.
  uint64_t durable_stream_len_ = 0;
  /// Stream bytes of the current partial tail page (rewritten each flush).
  std::string tail_body_;
  /// Appended records not yet flushed (the group-commit buffer).
  std::string pending_;
  /// Page index -> LSN of the first record beginning on that page, for
  /// pages not fully written yet; consumed (and pruned) by Flush.
  std::map<uint64_t, Lsn> page_first_lsn_;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_WAL_H_
