// HeapFile: unordered variable-length records in slotted pages, the
// backing store for every table.

#ifndef VDB_STORAGE_HEAP_FILE_H_
#define VDB_STORAGE_HEAP_FILE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "storage/zone_map.h"
#include "util/result.h"

namespace vdb::storage {

/// An unordered collection of variable-length records in slotted pages.
///
/// Page layout:
///   [u16 num_slots][u16 free_space_offset][slot 0][slot 1]...    (from front)
///   ...record bytes packed towards the end of the page...        (from back)
/// Each slot is {u16 offset, u16 length}; a deleted record has offset 0.
class HeapFile {
 public:
  HeapFile(DiskManager* disk, BufferPool* pool)
      : disk_(disk), pool_(pool) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record. Fails with InvalidArgument if it cannot fit on an
  /// empty page. `zone_samples` — one entry per schema column, produced by
  /// the catalog — folds into the landing page's zone entry; a nullptr
  /// (schema-blind caller) marks that page untracked so it never prunes.
  Result<RecordId> Insert(std::string_view record,
                          const std::vector<ZoneSample>* zone_samples =
                              nullptr);

  /// Reads one record by id (a random page access unless the caller knows
  /// better). Returns NotFound for deleted or out-of-range ids.
  Result<std::string> Get(RecordId rid,
                          AccessPattern pattern = AccessPattern::kRandom);

  /// Marks a record deleted. Space is not reclaimed (append-mostly design,
  /// like PostgreSQL heap without vacuum).
  Status Delete(RecordId rid);

  uint64_t NumPages() const { return pages_.size(); }
  uint64_t NumRecords() const { return num_records_; }

  /// Sequentially scans all records. Usage:
  ///   for (auto it = heap.Begin(); it.Valid(); it.Next()) use(it.record());
  /// The iterator buffers one page of records at a time and issues
  /// sequential page reads through the buffer pool.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    void Next();
    const std::string& record() const { return records_[index_].second; }
    RecordId rid() const { return records_[index_].first; }

   private:
    friend class HeapFile;
    explicit Iterator(const HeapFile* heap);
    void LoadPage();

    const HeapFile* heap_;
    size_t page_index_ = 0;
    std::vector<std::pair<RecordId, std::string>> records_;
    size_t index_ = 0;
    bool valid_ = false;
  };

  Iterator Begin() const { return Iterator(this); }

  /// One live record of a page, viewed in place (no per-record copy).
  struct RecordView {
    RecordId rid;
    std::string_view data;
  };

  /// Reads the `page_index`-th page (a sequential access) and fills `out`
  /// with views of its live records, backed by `storage` (the raw page
  /// bytes, reused across calls — views stay valid until the next call).
  /// Returns false once `page_index` is past the last page. Used by the
  /// morsel coordinator, which needs self-contained page bytes to hand
  /// to workers.
  Result<bool> ReadPageForScan(size_t page_index, std::string* storage,
                               std::vector<RecordView>* out) const;

  /// Holds the buffer-pool pin backing a zero-copy page scan. Views from
  /// ReadPageForScanPinned stay valid until the next call with the same
  /// pin (which releases the previous page first) or Release(); the
  /// destructor releases too, so an abandoned scan cannot leak a pin.
  /// A scan holds at most one pinned page at a time.
  class ScanPagePin {
   public:
    ScanPagePin() = default;
    ~ScanPagePin() { Release(); }
    ScanPagePin(const ScanPagePin&) = delete;
    ScanPagePin& operator=(const ScanPagePin&) = delete;

    void Release() {
      if (pool_ != nullptr) {
        (void)pool_->UnpinPage(page_id_, /*dirty=*/false);
        pool_ = nullptr;
      }
    }

   private:
    friend class HeapFile;
    BufferPool* pool_ = nullptr;
    PageId page_id_ = kInvalidPageId;
  };

  /// Zero-copy variant of ReadPageForScan for the serial batch executor:
  /// record views point straight into the pinned frame (no page-sized
  /// copy per page). The pin keeps the frame from being evicted while
  /// the caller deserializes; page charges are identical to the copying
  /// variant (same FetchPage access pattern).
  Result<bool> ReadPageForScanPinned(size_t page_index, ScanPagePin* pin,
                                     std::vector<RecordView>* out) const;

  // --- Durability hooks (DESIGN.md §14) ---------------------------------
  //
  // WAL records address heap pages by their 0-based append position in
  // this heap ("page index"), not by global PageId: global ids depend on
  // the interleaving of allocations across tables and are reassigned when
  // a database is rebuilt during recovery, while page indexes are stable.
  // Each page carries a recovery LSN in a sidecar (persisted by the
  // checkpoint image, not in the 8 KiB page itself, so the on-page record
  // layout — and therefore page capacity — is unchanged); the ARIES redo
  // test "skip if page LSN >= record LSN" makes replay idempotent.

  /// Append position of `page_id` within this heap.
  Result<uint64_t> PageIndexOf(PageId page_id) const;

  /// Recovery LSN of the `page_index`-th page (0 = never logged).
  Lsn PageLsn(uint64_t page_index) const { return page_lsns_[page_index]; }

  /// Records that the mutation with `lsn` touched the page (called by the
  /// catalog after logging, and by the redo paths below).
  void StampPageLsn(uint64_t page_index, Lsn lsn) {
    page_lsns_[page_index] = lsn;
  }

  /// Redoes a logged insert that originally landed at (page_index, slot).
  /// Returns false (and does nothing) if the page's LSN already covers
  /// `lsn`; fails if the append lands anywhere else — that means the log
  /// and the recovered image diverge.
  Result<bool> ApplyRedoInsert(uint64_t page_index, uint16_t slot,
                               std::string_view record, Lsn lsn,
                               const std::vector<ZoneSample>* zone_samples =
                                   nullptr);

  /// Redoes a logged delete of (page_index, slot); same LSN skip rule.
  Result<bool> ApplyRedoDelete(uint64_t page_index, uint16_t slot, Lsn lsn);

  /// Appends a raw page image during checkpoint load, bypassing the
  /// buffer pool (recovery is not a measured workload). `page_lsn` seeds
  /// the sidecar; live records on the image are counted. `zone` restores
  /// the page's zone entry (nullptr — e.g. a version-1 checkpoint with no
  /// zone section — appends an untracked entry that never prunes).
  Status RestorePage(const Page& image, Lsn page_lsn,
                     const ZoneEntry* zone = nullptr);

  /// Pages in append order, for the checkpoint writer.
  const std::vector<PageId>& pages() const { return pages_; }

  /// Per-page zone statistics, parallel to pages().
  const ZoneMap& zone_map() const { return zone_map_; }

  /// Evaluates `spec` against every page's zone entry: out[i] is true when
  /// page i provably holds no qualifying row and can be skipped without a
  /// fetch. This is the single pruning decision point shared by the row
  /// executor, the serial batch scan, and the morsel coordinator, so all
  /// engines skip exactly the same pages.
  std::vector<uint8_t> ComputePruneBitmap(const ScanPruneSpec& spec) const;

 private:
  // Number of live (non-deleted) records on the given page; loads via pool.
  friend class Iterator;

  DiskManager* disk_;
  BufferPool* pool_;
  std::vector<PageId> pages_;
  /// Per-page recovery LSN, parallel to `pages_` (see StampPageLsn).
  std::vector<Lsn> page_lsns_;
  std::unordered_map<PageId, uint64_t> page_index_;
  /// Per-page column statistics, parallel to `pages_` (DESIGN.md §16).
  ZoneMap zone_map_;
  uint64_t num_records_ = 0;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_HEAP_FILE_H_
