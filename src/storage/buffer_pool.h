// BufferPool: clock-eviction page cache over the simulated disk,
// charging hits and misses to the execution context and enforcing
// WAL-first write-back of dirty pages (DESIGN.md §14).

#ifndef VDB_STORAGE_BUFFER_POOL_H_
#define VDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace vdb::storage {

/// How a page read was issued. Sequential reads (table scans) amortize disk
/// bandwidth; random reads (index probes) pay a seek. The distinction drives
/// both the simulated I/O time and the optimizer's seq/random page costs.
enum class AccessPattern { kSequential, kRandom };

/// Observer of physical I/O events. The executor installs one to convert
/// page transfers into simulated time on the owning virtual machine.
class IoListener {
 public:
  virtual ~IoListener() = default;
  virtual void OnPageRead(AccessPattern pattern) = 0;
  virtual void OnPageWrite() = 0;
};

/// Cumulative buffer pool counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t sequential_misses = 0;
  uint64_t random_misses = 0;
  uint64_t page_writes = 0;

  uint64_t Misses() const { return sequential_misses + random_misses; }
  double HitRate() const {
    const uint64_t total = hits + Misses();
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A fixed-capacity page cache with CLOCK replacement, in the mold of a
/// DBMS shared-buffers pool. The capacity is derived from the memory the
/// virtual machine grants the database, so changing the VM's memory share
/// changes hit rates — the mechanism behind memory sensitivity in the paper.
///
/// Eviction contract: pinned frames are never evicted (FetchPage fails
/// with ResourceExhausted when every frame is pinned); the CLOCK hand
/// gives each frame one second chance before reuse; and when a WAL is
/// attached (SetWal), no dirty page is written back — on eviction,
/// FlushAll, or Resize — before the log records covering its changes are
/// durable (write-ahead ordering, DESIGN.md §14).
class BufferPool {
 public:
  /// `capacity_pages` must be >= 1.
  BufferPool(DiskManager* disk, uint64_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint64_t capacity_pages() const { return capacity_; }

  /// Returns a pinned pointer to the page. Callers must UnpinPage() when
  /// done. Fails with ResourceExhausted if every frame is pinned.
  Result<Page*> FetchPage(PageId page_id, AccessPattern pattern);

  /// Releases one pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes back all dirty pages (counts as page writes).
  void FlushAll();

  /// Drops every unpinned page from the pool, flushing dirty ones first.
  /// Used to cold-start measurement runs. Fails if any page is pinned.
  Status EvictAll();

  /// Grows or shrinks the pool. Shrinking evicts unpinned pages; fails with
  /// ResourceExhausted if more pages are pinned than the new capacity.
  Status Resize(uint64_t new_capacity_pages);

  /// Installs (or clears, with nullptr) the physical-I/O observer.
  void SetIoListener(IoListener* listener) { listener_ = listener; }

  /// Attaches the database's write-ahead log (nullptr detaches). With a
  /// WAL attached the pool enforces write-ahead ordering: before any
  /// dirty page is written back (eviction, FlushAll, Resize), pending log
  /// records are flushed first, so no data page ever reaches the disk
  /// ahead of the log records that produced it. The check is coarse — it
  /// flushes the whole pending tail rather than tracking per-frame
  /// recovery LSNs — which is correct, just occasionally early.
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  uint64_t NumCachedPages() const { return table_.size(); }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    Page page;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
  };

  // Picks a victim frame via CLOCK; returns frame index or error if all
  // frames are pinned. Flushes the victim if dirty and removes its mapping.
  Result<size_t> EvictOne();

  void FlushFrame(Frame* frame);

  DiskManager* disk_;
  uint64_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::vector<size_t> free_list_;
  size_t clock_hand_ = 0;
  IoListener* listener_ = nullptr;
  WriteAheadLog* wal_ = nullptr;
  BufferPoolStats stats_;
};

}  // namespace vdb::storage

#endif  // VDB_STORAGE_BUFFER_POOL_H_
