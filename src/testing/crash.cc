#include "testing/crash.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "exec/database.h"
#include "exec/recovery.h"
#include "storage/zone_map.h"
#include "util/random.h"
#include "util/result.h"

namespace vdb::fuzz {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

// ---------------------------------------------------------------------------
// Workload operations. Every op is recorded with enough detail to replay it
// against a second database; the delete victim is the ordinal of a live
// record in heap-scan order, which is deterministic given the same op
// prefix, so the oracle resolves it to the same record the primary deleted.
// ---------------------------------------------------------------------------

struct CrashOp {
  enum class Kind : uint8_t {
    kCreateTable,
    kCreateIndex,
    kInsert,
    kDelete,
    kCheckpoint,
  };

  Kind kind = Kind::kInsert;
  std::string table;  // all but kCheckpoint
  std::string index;  // kCreateIndex
  Schema schema;      // kCreateTable
  size_t column = 0;  // kCreateIndex
  Tuple tuple;        // kInsert
  size_t victim = 0;  // kDelete
};

/// Where each op's WAL record landed: the number of checkpoints completed
/// when the op ran, and the WAL end offset after flushing it. Ops from
/// earlier checkpoint epochs live in the checkpoint image, not the WAL.
struct OpMarker {
  uint64_t checkpoint_count = 0;
  uint64_t end_offset = 0;
};

Value RandomValue(Random* rng, TypeId type, bool allow_null) {
  if (allow_null && rng->Bernoulli(0.1)) return Value::Null(type);
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case TypeId::kInt64:
      return Value::Int64(rng->UniformInt(-1000, 1000));
    case TypeId::kDouble:
      return Value::Double(rng->UniformDouble(-100.0, 100.0));
    case TypeId::kDate:
      return Value::Date(rng->UniformInt(0, 20000));
    case TypeId::kString: {
      std::string s;
      const uint64_t len = rng->Uniform(13);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->Uniform(26)));
      }
      return Value::String(std::move(s));
    }
  }
  return Value();
}

Status ApplyOp(exec::Database* db, const CrashOp& op) {
  catalog::Catalog* cat = db->catalog();
  switch (op.kind) {
    case CrashOp::Kind::kCreateTable:
      return cat->CreateTable(op.table, op.schema).status();
    case CrashOp::Kind::kCreateIndex: {
      VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                           cat->GetTable(op.table));
      return cat
          ->CreateIndex(op.index, op.table,
                        table->schema.column(op.column).name)
          .status();
    }
    case CrashOp::Kind::kInsert: {
      VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                           cat->GetTable(op.table));
      return cat->Insert(table, op.tuple);
    }
    case CrashOp::Kind::kDelete: {
      VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                           cat->GetTable(op.table));
      size_t ordinal = 0;
      for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
        if (ordinal++ == op.victim) return cat->Delete(table, it.rid());
      }
      return Status::InvalidArgument("delete victim past end of table");
    }
    case CrashOp::Kind::kCheckpoint:
      // The oracle never sees checkpoint ops (state no-ops); only the
      // durable primary executes them.
      return db->Checkpoint();
  }
  return Status::Internal("unreachable");
}

// ---------------------------------------------------------------------------
// State snapshots. Records are compared by their per-table page index,
// slot, and serialized bytes — global PageIds differ between a recovered
// database (checkpoint pages load table-by-table) and a replayed one
// (allocations interleave across tables), but per-table positions do not.
// Index *definitions* are compared; index contents are not, because normal
// execution leaves entries for deleted records behind while recovery
// rebuilds each index from live rows only (scans re-check the heap either
// way, so query results agree).
// ---------------------------------------------------------------------------

struct RecordSnap {
  uint64_t page = 0;
  uint16_t slot = 0;
  std::string bytes;
};

struct TableSnap {
  std::string name;
  std::vector<std::pair<std::string, TypeId>> columns;
  std::vector<RecordSnap> records;
  std::vector<std::pair<std::string, size_t>> indexes;
  /// Per-page zone-map entries. Recovery must rebuild exactly what normal
  /// execution maintained — whether a page's statistics came from the
  /// checkpoint image or from refolding replayed inserts.
  std::vector<storage::ZoneEntry> zones;
};

Result<std::vector<TableSnap>> Snapshot(catalog::Catalog* cat) {
  std::vector<TableSnap> out;
  for (catalog::TableInfo* table : cat->Tables()) {
    TableSnap snap;
    snap.name = table->name;
    for (const Column& column : table->schema.columns()) {
      snap.columns.emplace_back(column.name, column.type);
    }
    for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
      VDB_ASSIGN_OR_RETURN(uint64_t page,
                           table->heap->PageIndexOf(it.rid().page_id));
      snap.records.push_back(RecordSnap{page, it.rid().slot, it.record()});
    }
    for (const catalog::IndexInfo* index : table->indexes) {
      snap.indexes.emplace_back(index->name, index->column_index);
    }
    snap.zones = table->heap->zone_map().entries();
    out.push_back(std::move(snap));
  }
  return out;
}

/// Returns an empty string when equal, else a description of the first
/// divergence between two snapshots.
std::string DiffSnapshots(const std::vector<TableSnap>& expected,
                          const std::vector<TableSnap>& actual) {
  std::ostringstream diff;
  if (expected.size() != actual.size()) {
    diff << "table count: expected " << expected.size() << ", got "
         << actual.size();
    return diff.str();
  }
  for (size_t t = 0; t < expected.size(); ++t) {
    const TableSnap& want = expected[t];
    const TableSnap& got = actual[t];
    if (want.name != got.name) {
      diff << "table " << t << " name: expected '" << want.name
           << "', got '" << got.name << "'";
      return diff.str();
    }
    if (want.columns != got.columns) {
      diff << "table '" << want.name << "': schemas differ";
      return diff.str();
    }
    if (want.indexes != got.indexes) {
      diff << "table '" << want.name << "': index definitions differ ("
           << want.indexes.size() << " expected, " << got.indexes.size()
           << " recovered)";
      return diff.str();
    }
    if (want.records.size() != got.records.size()) {
      diff << "table '" << want.name << "': expected "
           << want.records.size() << " live records, got "
           << got.records.size();
      return diff.str();
    }
    for (size_t r = 0; r < want.records.size(); ++r) {
      const RecordSnap& a = want.records[r];
      const RecordSnap& b = got.records[r];
      if (a.page != b.page || a.slot != b.slot || a.bytes != b.bytes) {
        diff << "table '" << want.name << "' record " << r
             << ": expected page " << a.page << " slot " << a.slot << " ("
             << a.bytes.size() << " bytes), got page " << b.page
             << " slot " << b.slot << " (" << b.bytes.size() << " bytes)";
        return diff.str();
      }
    }
    if (want.zones != got.zones) {
      size_t first = 0;
      while (first < want.zones.size() && first < got.zones.size() &&
             want.zones[first] == got.zones[first]) {
        ++first;
      }
      diff << "table '" << want.name << "': zone maps differ ("
           << want.zones.size() << " vs " << got.zones.size()
           << " pages, first divergence at page " << first << ")";
      return diff.str();
    }
  }
  return "";
}

// --------------------------- file helpers ----------------------------------

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat failed: " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Copies the first `limit` bytes of `src` to `dst` (everything when the
/// file is shorter). This is the crash: bytes past the truncation point
/// never made it to disk.
Status CopyPrefix(const std::string& src, const std::string& dst,
                  uint64_t limit) {
  std::FILE* in = std::fopen(src.c_str(), "rb");
  if (in == nullptr) return Status::IOError("cannot open " + src);
  std::FILE* out = std::fopen(dst.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return Status::IOError("cannot create " + dst);
  }
  char buffer[1 << 16];
  uint64_t remaining = limit;
  while (remaining > 0) {
    const size_t want =
        remaining < sizeof(buffer) ? static_cast<size_t>(remaining)
                                   : sizeof(buffer);
    const size_t n = std::fread(buffer, 1, want, in);
    if (n == 0) break;
    if (std::fwrite(buffer, 1, n, out) != n) {
      std::fclose(in);
      std::fclose(out);
      return Status::IOError("short write to " + dst);
    }
    remaining -= n;
  }
  std::fclose(in);
  if (std::fclose(out) != 0) return Status::IOError("close failed: " + dst);
  return Status::OK();
}

/// Best-effort removal of a round's scratch tree (known layout only).
void RemoveTree(const std::string& root) {
  for (const char* sub : {"primary", "crashed"}) {
    const std::string dir = root + "/" + sub;
    ::remove(exec::WalPath(dir).c_str());
    ::remove(exec::CheckpointPath(dir).c_str());
    ::rmdir(dir.c_str());
  }
  ::rmdir(root.c_str());
}

// ------------------------------ one round ----------------------------------

Status RunCrashSeedImpl(uint64_t seed, const std::string& root,
                        CrashRunReport* report) {
  Random rng(seed);
  const std::string primary_dir = root + "/primary";
  const std::string crashed_dir = root + "/crashed";

  // Phase 1: run the randomized workload against a durable database,
  // flushing after every op and recording where its WAL record ends.
  std::vector<CrashOp> ops;
  std::vector<OpMarker> markers;
  uint64_t checkpoints = 0;
  {
    exec::Database primary;
    VDB_RETURN_NOT_OK(primary.EnableDurability(primary_dir).status());

    struct GenTable {
      std::string name;
      Schema schema;
      size_t live = 0;
    };
    std::vector<GenTable> tables;
    int indexes_created = 0;
    static constexpr TypeId kColumnTypes[] = {TypeId::kBool, TypeId::kInt64,
                                              TypeId::kDouble, TypeId::kDate,
                                              TypeId::kString};

    const int num_ops = static_cast<int>(rng.UniformInt(30, 120));
    for (int i = 0; i < num_ops; ++i) {
      CrashOp op;
      const double roll = rng.NextDouble();
      if (tables.empty() || (roll < 0.08 && tables.size() < 4)) {
        op.kind = CrashOp::Kind::kCreateTable;
        op.table = "t" + std::to_string(tables.size());
        // c0 is a never-null BIGINT so every table has an indexable column.
        std::vector<Column> columns;
        columns.emplace_back("c0", TypeId::kInt64);
        const int extra = static_cast<int>(rng.UniformInt(1, 4));
        for (int c = 1; c <= extra; ++c) {
          columns.emplace_back("c" + std::to_string(c),
                               kColumnTypes[rng.Uniform(5)]);
        }
        op.schema = Schema(columns);
        tables.push_back(GenTable{op.table, op.schema, 0});
      } else if (roll < 0.15) {
        op.kind = CrashOp::Kind::kCheckpoint;
      } else if (roll < 0.22 && indexes_created < 6) {
        const GenTable& table = tables[rng.Uniform(tables.size())];
        std::vector<size_t> indexable;
        for (size_t c = 0; c < table.schema.NumColumns(); ++c) {
          const TypeId type = table.schema.column(c).type;
          if (type == TypeId::kInt64 || type == TypeId::kDate) {
            indexable.push_back(c);
          }
        }
        op.kind = CrashOp::Kind::kCreateIndex;
        op.table = table.name;
        op.column = indexable[rng.Uniform(indexable.size())];
        op.index = "idx" + std::to_string(indexes_created++);
      } else {
        GenTable& table = tables[rng.Uniform(tables.size())];
        if (roll < 0.34 && table.live > 0) {
          op.kind = CrashOp::Kind::kDelete;
          op.table = table.name;
          op.victim = rng.Uniform(table.live);
          table.live--;
        } else {
          op.kind = CrashOp::Kind::kInsert;
          op.table = table.name;
          op.tuple.push_back(RandomValue(&rng, TypeId::kInt64, false));
          for (size_t c = 1; c < table.schema.NumColumns(); ++c) {
            op.tuple.push_back(
                RandomValue(&rng, table.schema.column(c).type, true));
          }
          table.live++;
        }
      }

      VDB_RETURN_NOT_OK(ApplyOp(&primary, op));
      if (op.kind == CrashOp::Kind::kCheckpoint) {
        checkpoints++;
      } else {
        VDB_RETURN_NOT_OK(primary.FlushWal());
      }
      ops.push_back(std::move(op));
      markers.push_back(OpMarker{checkpoints, primary.wal()->end_offset()});
    }
  }
  report->total_ops = ops.size();
  report->checkpoints = checkpoints;

  // Phase 2: crash. Copy the durable directory with the WAL cut at a
  // random byte offset. The checkpoint image is copied whole: it is
  // written atomically (tmp + fsync + rename), so a crash leaves either
  // the old image or the new one, never a torn one.
  VDB_ASSIGN_OR_RETURN(const uint64_t wal_bytes,
                       FileSize(exec::WalPath(primary_dir)));
  const uint64_t cut = rng.Uniform(wal_bytes + 1);
  report->wal_file_bytes = wal_bytes;
  report->truncate_at = cut;
  if (::mkdir(crashed_dir.c_str(), 0755) != 0) {
    return Status::IOError("cannot create " + crashed_dir);
  }
  VDB_RETURN_NOT_OK(CopyPrefix(exec::WalPath(primary_dir),
                               exec::WalPath(crashed_dir), cut));
  if (FileExists(exec::CheckpointPath(primary_dir))) {
    VDB_RETURN_NOT_OK(CopyPrefix(exec::CheckpointPath(primary_dir),
                                 exec::CheckpointPath(crashed_dir),
                                 ~0ULL));
  }

  // Phase 3: predict the surviving prefix and build the oracle. An op
  // survives if it predates the last checkpoint (its effects live in the
  // image) or its WAL record ends at or before the cut. End offsets are
  // monotone within the final epoch, so the surviving set is a prefix.
  exec::Database oracle;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == CrashOp::Kind::kCheckpoint) continue;
    const bool survives = markers[i].checkpoint_count < checkpoints ||
                          markers[i].end_offset <= cut;
    if (!survives) break;
    VDB_RETURN_NOT_OK(ApplyOp(&oracle, ops[i]));
    report->surviving_ops++;
  }
  VDB_ASSIGN_OR_RETURN(const std::vector<TableSnap> expected,
                       Snapshot(oracle.catalog()));

  // Phase 4: recover from the crashed copy and diff against the oracle.
  std::vector<TableSnap> recovered;
  {
    exec::Database database;
    VDB_RETURN_NOT_OK(database.EnableDurability(crashed_dir).status());
    VDB_ASSIGN_OR_RETURN(recovered, Snapshot(database.catalog()));
  }
  const std::string diff = DiffSnapshots(expected, recovered);
  if (!diff.empty()) {
    return Status::Internal("recovered state diverges from oracle: " + diff);
  }

  // Phase 5: recover again from the same directory (the first recovery
  // truncated the torn tail); the state must be identical.
  std::vector<TableSnap> recovered_again;
  {
    exec::Database database;
    VDB_RETURN_NOT_OK(database.EnableDurability(crashed_dir).status());
    VDB_ASSIGN_OR_RETURN(recovered_again, Snapshot(database.catalog()));
  }
  const std::string rediff = DiffSnapshots(recovered, recovered_again);
  if (!rediff.empty()) {
    return Status::Internal("double recovery not idempotent: " + rediff);
  }
  return Status::OK();
}

}  // namespace

CrashRunReport RunCrashSeed(uint64_t seed, const std::string& scratch_root) {
  CrashRunReport report;
  report.seed = seed;
  std::string root =
      scratch_root + "/vdb-crash-" + std::to_string(seed) + "-XXXXXX";
  if (::mkdtemp(root.data()) == nullptr) {
    report.failure = "mkdtemp failed under " + scratch_root;
    return report;
  }
  report.artifact_dir = root;
  const Status status = RunCrashSeedImpl(seed, root, &report);
  report.ok = status.ok();
  if (status.ok()) {
    RemoveTree(root);
    report.artifact_dir.clear();
  } else {
    report.failure = status.ToString();
  }
  return report;
}

}  // namespace vdb::fuzz
