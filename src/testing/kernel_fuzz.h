// Kernel differential fuzzing: random expression trees executed under
// every kernel ISA and both engines, with rows and simulated charges
// required to be bitwise identical (DESIGN.md §15).

#ifndef VDB_TESTING_KERNEL_FUZZ_H_
#define VDB_TESTING_KERNEL_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vdb::fuzz {

/// Counters accumulated over a kernel-fuzz campaign.
struct KernelFuzzStats {
  uint64_t queries = 0;
  uint64_t matched = 0;
  /// Engine rejected the statement (NotSupported) or every configuration
  /// agreed to fail with the same error code.
  uint64_t skipped = 0;

  std::string ToString() const;
};

/// Runs the kernel differential for one seed: materializes a random
/// schema plus a batch-boundary-crossing "kernel stress" table of
/// adversarial numeric columns, generates random expression trees (both
/// the generic SQL generator's and kernel-shaped templates — col/const
/// compares, col/col compares, fused arithmetic), and executes each
/// statement three ways: batch engine with the scalar kernel table
/// (VDB_KERNELS=scalar), batch engine with the best compiled SIMD table
/// (VDB_KERNELS=native), and the row engine. Rows must be bitwise
/// identical (doubles compared by bit pattern, ordering included) and the
/// simulated charges (elapsed / cpu / io seconds, physical reads) exactly
/// equal across all three. Returns one description per violation.
std::vector<std::string> RunKernelFuzzSeed(uint64_t seed,
                                           KernelFuzzStats* stats);

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_KERNEL_FUZZ_H_
