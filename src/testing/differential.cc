#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "testing/oracle.h"

namespace vdb::fuzz {

namespace {

using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

// ---------------------------------------------------------------------------
// Result comparison

/// Tolerant scalar equality: exact for everything except doubles, which
/// may differ by floating-point accumulation order between the engine's
/// plan and the oracle's nested loops.
bool ValuesMatch(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return std::fabs(x - y) <= 1e-9 + 1e-8 * std::max(std::fabs(x),
                                                      std::fabs(y));
  }
  if (a.type() != b.type()) return false;
  return Value::Compare(a, b) == 0;
}

/// Total order over values of one column, for canonicalizing row multisets
/// before pairwise comparison. NULLs sort first; doubles compare exactly.
int CanonicalCompare(const Value& a, const Value& b) {
  const bool a_null = a.is_null();
  const bool b_null = b.is_null();
  if (a_null || b_null) {
    return static_cast<int>(b_null) - static_cast<int>(a_null);
  }
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
  }
  return Value::Compare(a, b);
}

bool CanonicalRowLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const int cmp = CanonicalCompare(a[i], b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

/// NULLS LAST on ascending keys, as the engine sorts.
int SortCompare(const Value& a, const Value& b, bool ascending) {
  const bool a_null = a.is_null();
  const bool b_null = b.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = Value::Compare(a, b);
  return ascending ? cmp : -cmp;
}

std::string RowToString(const Tuple& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  return out + ")";
}

std::string DescribeRows(const std::vector<Tuple>& rows, size_t limit = 6) {
  std::string out;
  for (size_t i = 0; i < rows.size() && i < limit; ++i) {
    out += "    " + RowToString(rows[i]) + "\n";
  }
  if (rows.size() > limit) {
    out += "    ... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

/// Compares two result row sets as multisets (tolerant on doubles).
/// Returns an empty string on match, else a description.
std::string CompareRowSets(std::vector<Tuple> engine,
                           std::vector<Tuple> oracle) {
  if (engine.size() != oracle.size()) {
    return "row count differs: engine=" + std::to_string(engine.size()) +
           " oracle=" + std::to_string(oracle.size()) + "\n  engine:\n" +
           DescribeRows(engine) + "  oracle:\n" + DescribeRows(oracle);
  }
  std::sort(engine.begin(), engine.end(), CanonicalRowLess);
  std::sort(oracle.begin(), oracle.end(), CanonicalRowLess);
  for (size_t r = 0; r < engine.size(); ++r) {
    if (engine[r].size() != oracle[r].size()) {
      return "column count differs in row " + std::to_string(r) +
             ": engine=" + std::to_string(engine[r].size()) +
             " oracle=" + std::to_string(oracle[r].size());
    }
    for (size_t c = 0; c < engine[r].size(); ++c) {
      if (!ValuesMatch(engine[r][c], oracle[r][c])) {
        return "value differs (canonical row " + std::to_string(r) +
               ", column " + std::to_string(c) +
               "): engine=" + RowToString(engine[r]) +
               " oracle=" + RowToString(oracle[r]);
      }
    }
  }
  return "";
}

/// Compares the simulated charges of two cold-cache runs of one query.
/// `bitwise` demands exact equality — serial and morsel-parallel batch
/// runs replay the identical charge sequence, so any difference is a bug.
/// Otherwise doubles may differ by float rounding between the row engine's
/// per-row charges and the batch engine's per-batch lump sums, but
/// physical reads stay exact either way.
std::string CompareCharges(const exec::QueryResult& a,
                           const exec::QueryResult& b, bool bitwise) {
  if (a.physical_reads != b.physical_reads) {
    return "physical_reads differ: " + std::to_string(a.physical_reads) +
           " vs " + std::to_string(b.physical_reads);
  }
  const auto close = [bitwise](double x, double y) {
    if (bitwise) return x == y;
    return std::fabs(x - y) <=
           1e-12 + 1e-9 * std::max(std::fabs(x), std::fabs(y));
  };
  const auto describe = [](const char* name, double x, double y) {
    std::ostringstream out;
    out.precision(17);
    out << name << " differs: " << x << " vs " << y;
    return out.str();
  };
  if (!close(a.cpu_seconds, b.cpu_seconds)) {
    return describe("cpu_seconds", a.cpu_seconds, b.cpu_seconds);
  }
  if (!close(a.io_seconds, b.io_seconds)) {
    return describe("io_seconds", a.io_seconds, b.io_seconds);
  }
  if (!close(a.elapsed_seconds, b.elapsed_seconds)) {
    return describe("elapsed_seconds", a.elapsed_seconds, b.elapsed_seconds);
  }
  return "";
}

/// Ordered, bitwise row comparison for two executions of the SAME plan on
/// the same engine: no tolerance, doubles compared by bit pattern (so NaN
/// equals NaN and +0.0 differs from -0.0).
std::string CompareRowsBitwise(const std::vector<Tuple>& a,
                               const std::vector<Tuple>& b) {
  if (a.size() != b.size()) {
    return "row count differs: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  const auto bits = [](double v) {
    uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
  };
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) {
      return "column count differs in row " + std::to_string(r);
    }
    for (size_t c = 0; c < a[r].size(); ++c) {
      const Value& x = a[r][c];
      const Value& y = b[r][c];
      bool same = x.is_null() == y.is_null() && x.type() == y.type();
      if (same && !x.is_null()) {
        if (x.type() == TypeId::kDouble) {
          same = bits(x.AsDouble()) == bits(y.AsDouble());
        } else {
          same = Value::Compare(x, y) == 0;
        }
      }
      if (!same) {
        return "row " + std::to_string(r) + " differs: " + RowToString(a[r]) +
               " vs " + RowToString(b[r]);
      }
    }
  }
  return "";
}

/// Checks that `rows` are sorted on `sort_columns` (output-column index,
/// ascending), using the engine's own values. An ORDER BY result that is
/// the right multiset but misordered is still a bug.
std::string CheckSorted(const std::vector<Tuple>& rows,
                        const std::vector<std::pair<size_t, bool>>& keys) {
  for (size_t r = 1; r < rows.size(); ++r) {
    for (const auto& [slot, ascending] : keys) {
      if (slot >= rows[r].size()) return "";  // shrunk projection; skip
      const int cmp = SortCompare(rows[r - 1][slot], rows[r][slot],
                                  ascending);
      if (cmp < 0) break;
      if (cmp > 0) {
        return "engine rows violate ORDER BY between rows " +
               std::to_string(r - 1) + " and " + std::to_string(r) + ": " +
               RowToString(rows[r - 1]) + " then " + RowToString(rows[r]);
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// One query check

enum class Outcome { kMatch, kSkip, kAgreedError, kMismatch };

struct CheckResult {
  Outcome outcome = Outcome::kMatch;
  std::string detail;
};

CheckResult CheckQuery(exec::Database* db, const sim::VirtualMachine& vm,
                       const GeneratedQuery& query,
                       bool check_environment_invariance,
                       bool check_engine_equivalence,
                       bool check_zone_map_equivalence) {
  const std::string sql = query.Sql();
  Result<exec::QueryResult> engine = db->Execute(sql, vm);
  ReferenceEvaluator oracle(db->catalog());
  Result<RefResult> reference = oracle.Evaluate(*query.stmt);

  if (!engine.ok()) {
    if (engine.status().IsNotSupported()) {
      return {Outcome::kSkip, engine.status().message()};
    }
    if (!reference.ok()) {
      return {Outcome::kAgreedError,
              "engine: " + engine.status().message() +
                  " | oracle: " + reference.status().message()};
    }
    return {Outcome::kMismatch,
            "engine failed but oracle succeeded: " +
                engine.status().message()};
  }
  if (!reference.ok()) {
    return {Outcome::kMismatch,
            "oracle failed but engine succeeded: " +
                reference.status().message()};
  }

  if (engine->column_names.size() != reference->column_names.size()) {
    return {Outcome::kMismatch,
            "output arity differs: engine=" +
                std::to_string(engine->column_names.size()) +
                " oracle=" + std::to_string(reference->column_names.size())};
  }
  std::string diff = CompareRowSets(engine->rows, reference->rows);
  if (!diff.empty()) {
    return {Outcome::kMismatch, "engine vs oracle: " + diff};
  }
  if (!query.sort_columns.empty()) {
    diff = CheckSorted(engine->rows, query.sort_columns);
    if (!diff.empty()) return {Outcome::kMismatch, diff};
  }

  if (check_engine_equivalence) {
    // The row and batch engines must be indistinguishable: same rows, same
    // ordering, and — including under LIMIT — the same simulated charges.
    // Each run starts cold so buffer-pool state cannot explain a charge
    // difference.
    const exec::ExecMode original = db->exec_mode();
    const exec::QueryOptions saved_options = db->query_options();
    const auto run_cold = [&](exec::ExecMode mode, int threads) {
      db->set_exec_mode(mode);
      exec::QueryOptions options = saved_options;
      options.num_threads = threads;
      db->set_query_options(options);
      (void)db->DropCaches();
      Result<exec::QueryResult> result = db->Execute(sql, vm);
      db->set_query_options(saved_options);
      db->set_exec_mode(original);
      return result;
    };
    const auto check_against = [&](const Result<exec::QueryResult>& a,
                                   const exec::QueryResult& b,
                                   bool bitwise) -> std::string {
      if (!a.ok()) {
        if (a.status().IsNotSupported()) return "";
        return "other engine failed: " + a.status().message();
      }
      std::string d = CompareRowSets(a->rows, b.rows);
      if (d.empty() && !query.sort_columns.empty()) {
        d = CheckSorted(a->rows, query.sort_columns);
      }
      if (d.empty()) d = CompareCharges(*a, b, bitwise);
      return d;
    };

    Result<exec::QueryResult> batch = run_cold(exec::ExecMode::kBatch, 1);
    if (batch.ok()) {
      Result<exec::QueryResult> row = run_cold(exec::ExecMode::kRow, 1);
      diff = check_against(row, *batch, /*bitwise=*/false);
      if (!diff.empty()) {
        return {Outcome::kMismatch,
                "row vs batch engines disagree: " + diff};
      }
      // Serial vs morsel-parallel batch runs replay the exact same charge
      // sequence, so everything must match bitwise.
      Result<exec::QueryResult> parallel =
          run_cold(exec::ExecMode::kBatch, 4);
      diff = check_against(parallel, *batch, /*bitwise=*/true);
      if (!diff.empty()) {
        return {Outcome::kMismatch,
                "serial vs parallel batch engines disagree: " + diff};
      }
    } else if (!batch.status().IsNotSupported()) {
      return {Outcome::kMismatch,
              "batch engine failed on re-run: " + batch.status().message()};
    }
  }

  if (check_zone_map_equivalence) {
    // Zone-map pruning is pure I/O elision: a pruned page must be one with
    // no qualifying rows, so executing the SAME physical plan with pruning
    // flipped has to return bitwise-identical rows (doubles compared by bit
    // pattern). Re-executing one plan — rather than re-planning — sidesteps
    // skip-aware costing legitimately changing the plan shape.
    Result<optimizer::PhysicalNodePtr> plan = db->Prepare(sql);
    if (plan.ok()) {
      Result<exec::QueryResult> with = db->ExecutePlan(**plan, vm);
      const bool saved = db->zone_maps_enabled();
      db->set_zone_maps_enabled(!saved);
      Result<exec::QueryResult> without = db->ExecutePlan(**plan, vm);
      db->set_zone_maps_enabled(saved);
      if (with.ok() != without.ok()) {
        return {Outcome::kMismatch,
                "zone-map pruning changed query outcome: with=" +
                    (with.ok() ? std::string("ok")
                               : with.status().message()) +
                    " flipped=" +
                    (without.ok() ? std::string("ok")
                                  : without.status().message())};
      }
      if (with.ok()) {
        diff = CompareRowsBitwise(with->rows, without->rows);
        if (!diff.empty()) {
          return {Outcome::kMismatch,
                  "zone-map pruning changed rows: " + diff};
        }
      }
    }
  }

  if (check_environment_invariance) {
    // Row results must not depend on plan choice. Re-run under a starved
    // memory configuration and under skewed cost parameters; both push
    // the optimizer towards different plans over the same data.
    const std::vector<Tuple>& baseline = engine->rows;

    sim::VirtualMachine small("vm-small", sim::MachineSpec::Small(),
                              sim::HypervisorModel::Ideal(),
                              sim::ResourceShare(1.0, 0.25, 1.0));
    Status applied = db->ApplyVmConfig(small);
    if (applied.ok()) {
      Result<exec::QueryResult> rerun = db->Execute(sql, small);
      if (rerun.ok()) {
        diff = CompareRowSets(rerun->rows, baseline);
        if (diff.empty() && !query.sort_columns.empty()) {
          diff = CheckSorted(rerun->rows, query.sort_columns);
        }
      } else if (!rerun.status().IsNotSupported()) {
        diff = "re-run under small VM failed: " + rerun.status().message();
      }
    }
    // Restore the original configuration before the params mutation.
    (void)db->ApplyVmConfig(vm);
    if (!diff.empty()) {
      return {Outcome::kMismatch,
              "environment invariance (memory share): " + diff};
    }

    optimizer::OptimizerParams skewed;
    skewed.random_page_cost = skewed.seq_page_cost;  // favor index scans
    skewed.work_mem_bytes = 64 << 10;                // force spills
    skewed.effective_cache_size_pages = 16;
    db->SetOptimizerParams(skewed);
    Result<exec::QueryResult> rerun = db->Execute(sql, vm);
    if (rerun.ok()) {
      diff = CompareRowSets(rerun->rows, baseline);
      if (diff.empty() && !query.sort_columns.empty()) {
        diff = CheckSorted(rerun->rows, query.sort_columns);
      }
    } else if (!rerun.status().IsNotSupported()) {
      diff = "re-run under skewed params failed: " + rerun.status().message();
    }
    (void)db->ApplyVmConfig(vm);  // restores derived optimizer params
    if (!diff.empty()) {
      return {Outcome::kMismatch,
              "environment invariance (optimizer params): " + diff};
    }
  }

  return {Outcome::kMatch, ""};
}

// ---------------------------------------------------------------------------
// Shrinking

GeneratedQuery CloneQuery(const GeneratedQuery& query) {
  GeneratedQuery clone;
  clone.stmt = CloneSelect(*query.stmt);
  clone.sort_columns = query.sort_columns;
  return clone;
}

/// Enumerates one-step reductions of `query`, smallest-effect first.
std::vector<GeneratedQuery> ShrinkCandidates(const GeneratedQuery& query) {
  std::vector<GeneratedQuery> out;
  const sql::SelectStatement& stmt = *query.stmt;

  if (stmt.limit >= 0) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->limit = -1;
    out.push_back(std::move(c));
  }
  if (!stmt.order_by.empty()) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->order_by.clear();
    c.sort_columns.clear();
    out.push_back(std::move(c));
  }
  if (stmt.having != nullptr) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->having = nullptr;
    out.push_back(std::move(c));
  }
  if (stmt.distinct) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->distinct = false;
    out.push_back(std::move(c));
  }
  if (stmt.where != nullptr) {
    // Try dropping the predicate, then each side of a top-level AND/OR.
    GeneratedQuery c = CloneQuery(query);
    c.stmt->where = nullptr;
    out.push_back(std::move(c));
    if (stmt.where->type == sql::ExprType::kBinary) {
      const auto& binary = static_cast<const sql::BinaryExpr&>(*stmt.where);
      if (binary.op == sql::BinaryOp::kAnd ||
          binary.op == sql::BinaryOp::kOr) {
        for (const sql::Expr* side :
             {binary.left.get(), binary.right.get()}) {
          GeneratedQuery half = CloneQuery(query);
          half.stmt->where = CloneExpr(*side);
          out.push_back(std::move(half));
        }
      }
    }
    if (stmt.where->type == sql::ExprType::kUnary) {
      const auto& unary = static_cast<const sql::UnaryExpr&>(*stmt.where);
      if (unary.op == sql::UnaryOp::kNot) {
        GeneratedQuery c2 = CloneQuery(query);
        c2.stmt->where = CloneExpr(*unary.operand);
        out.push_back(std::move(c2));
      }
    }
  }
  if (stmt.from.size() > 1) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->from.pop_back();
    out.push_back(std::move(c));
  }
  for (size_t g = 0; g < stmt.group_by.size(); ++g) {
    GeneratedQuery c = CloneQuery(query);
    c.stmt->group_by.erase(c.stmt->group_by.begin() +
                           static_cast<ptrdiff_t>(g));
    out.push_back(std::move(c));
  }
  if (stmt.items.size() > 1) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      GeneratedQuery c = CloneQuery(query);
      c.stmt->items.erase(c.stmt->items.begin() + static_cast<ptrdiff_t>(i));
      // ORDER BY may reference the dropped item; drop ordering checks to
      // keep the reduction well-formed.
      c.stmt->order_by.clear();
      c.sort_columns.clear();
      out.push_back(std::move(c));
    }
  }
  return out;
}

/// Greedy minimization: repeatedly adopt any one-step reduction that still
/// mismatches, until none does or the budget runs out.
GeneratedQuery Shrink(exec::Database* db, const sim::VirtualMachine& vm,
                      GeneratedQuery query, bool environment_invariance,
                      bool engine_equivalence, bool zone_map_equivalence,
                      int budget) {
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (GeneratedQuery& candidate : ShrinkCandidates(query)) {
      if (--budget < 0) break;
      CheckResult check = CheckQuery(db, vm, candidate,
                                     environment_invariance,
                                     engine_equivalence,
                                     zone_map_equivalence);
      if (check.outcome == Outcome::kMismatch) {
        query = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return query;
}

}  // namespace

std::string FailureReport::ToString() const {
  std::ostringstream out;
  out << "differential failure (seed " << seed << ")\n"
      << "  schema: " << schema << "\n"
      << "  sql:    " << sql << "\n";
  if (original_sql != sql) {
    out << "  before shrinking: " << original_sql << "\n";
  }
  out << "  detail: " << detail << "\n"
      << "  repro:  " << repro << "\n";
  return out.str();
}

std::string CampaignStats::ToString() const {
  std::ostringstream out;
  out << queries << " queries: " << matched << " matched, " << skipped
      << " skipped (NotSupported), " << agreed_errors << " agreed errors";
  return out.str();
}

bool RunDifferentialSeed(uint64_t seed, const DifferentialOptions& options,
                         CampaignStats* stats, FailureReport* failure) {
  Random rng(seed);
  SchemaPlan schema = GenerateSchemaPlan(&rng, options.generator);

  exec::Database db;
  sim::VirtualMachine vm("vm-fuzz", sim::MachineSpec::Small(),
                         sim::HypervisorModel::Ideal(),
                         sim::ResourceShare(1.0, 1.0, 1.0));
  Status setup = db.ApplyVmConfig(vm);
  if (setup.ok()) setup = schema.Materialize(db.catalog());
  if (!setup.ok()) {
    failure->seed = seed;
    failure->schema = schema.ToString();
    failure->detail = "schema materialization failed: " + setup.message();
    failure->repro = "vdb_fuzz --seed " + std::to_string(seed);
    return true;
  }

  QueryGenerator generator(&schema, &rng, options.generator);
  for (int q = 0; q < options.queries_per_seed; ++q) {
    GeneratedQuery query = generator.Generate();
    ++stats->queries;
    CheckResult check =
        CheckQuery(&db, vm, query, options.check_environment_invariance,
                   options.check_engine_equivalence,
                   options.check_zone_map_equivalence);
    switch (check.outcome) {
      case Outcome::kMatch:
        ++stats->matched;
        continue;
      case Outcome::kSkip:
        ++stats->skipped;
        continue;
      case Outcome::kAgreedError:
        ++stats->agreed_errors;
        continue;
      case Outcome::kMismatch:
        break;
    }
    failure->seed = seed;
    failure->schema = schema.ToString();
    failure->original_sql = query.Sql();
    GeneratedQuery minimized =
        Shrink(&db, vm, std::move(query), options.check_environment_invariance,
               options.check_engine_equivalence,
               options.check_zone_map_equivalence, options.max_shrink_steps);
    CheckResult final_check =
        CheckQuery(&db, vm, minimized, options.check_environment_invariance,
                   options.check_engine_equivalence,
                   options.check_zone_map_equivalence);
    failure->sql = minimized.Sql();
    failure->detail = final_check.outcome == Outcome::kMismatch
                          ? final_check.detail
                          : check.detail;
    failure->repro = "vdb_fuzz --seed " + std::to_string(seed) +
                     " --queries " + std::to_string(options.queries_per_seed);
    return true;
  }
  return false;
}

}  // namespace vdb::fuzz
