// Metamorphic what-if invariants: probe-order invariance, side-effect
// freedom, monotonicity, interpolation consistency (DESIGN.md §11).

#ifndef VDB_TESTING_METAMORPHIC_H_
#define VDB_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vdb::fuzz {

/// Knobs for the metamorphic what-if checks.
struct MetamorphicOptions {
  /// Random probe allocations per invariant.
  int num_probes = 10;
  /// Discretization of the design problems handed to the searches.
  int grid_steps = 6;
};

/// Runs the metamorphic invariants of the virtualization layer for one
/// seed and returns a description of every violation (empty = all hold):
///
///  1. Probe-order invariance: Cost(W, R) is a pure function — evaluating
///     the same allocations in a different order, through a fresh cost
///     model, yields bit-identical values.
///  2. Side-effect freedom: the const what-if Prepare(sql, params) leaves
///     the database's own optimizer state untouched (the mutating
///     Prepare's estimate is unchanged afterwards).
///  3. Resource monotonicity: under a synthetic store whose parameters
///     improve monotonically with each share, Cost is non-increasing in
///     added CPU for a CPU-bound workload and in added IO for an IO-bound
///     workload, both on and off the calibration grid.
///  4. Store consistency: exact grid-point hits return the stored
///     parameters bit-identically, and midpoint lookups match the
///     hand-computed linear interpolation of the surrounding corners.
///  5. Search optimality: exhaustive search is never beaten by greedy or
///     dynamic programming on the same DesignProblem, and DP (exact for
///     the configurations tested) matches exhaustive.
std::vector<std::string> RunMetamorphicChecks(
    uint64_t seed, const MetamorphicOptions& options = {});

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_METAMORPHIC_H_
