// Crash-recovery fuzzing (DESIGN.md §11 ring 2b): randomized durable
// workloads truncated at random WAL offsets, recovered, and diffed
// against a predicted-survivor oracle.

#ifndef VDB_TESTING_CRASH_H_
#define VDB_TESTING_CRASH_H_

#include <cstdint>
#include <string>

namespace vdb::fuzz {

// Crash-point fault injection for the durability layer (DESIGN.md §14).
//
// One round builds a durable database under a randomized DDL/DML workload
// (CREATE TABLE / CREATE INDEX / insert / delete / checkpoint), flushing
// the WAL after every operation and recording the operation's WAL end
// offset. It then "crashes" the database by copying its durable directory
// with the WAL truncated at a uniformly random byte offset — which can cut
// a page header, a record header, or a record body — recovers a fresh
// database from the copy, and diffs every table (schema, live records in
// scan order with their page/slot positions, index definitions) against an
// oracle database that replays exactly the operations whose WAL records
// survive the truncation, as predicted from the recorded end offsets.
// Recovery then runs a second time from the same crashed directory and
// must produce the identical state (idempotence).

/// Outcome of one crash-recovery round.
struct CrashRunReport {
  uint64_t seed = 0;
  bool ok = false;
  /// Failure description; empty when ok.
  std::string failure;
  /// Scratch directory, kept for post-mortem on failure (removed on
  /// success). Holds primary/ (the pre-crash database) and crashed/ (the
  /// truncated copy recovery ran against).
  std::string artifact_dir;
  size_t total_ops = 0;
  size_t surviving_ops = 0;
  uint64_t checkpoints = 0;
  /// Size of the WAL file before truncation, and the crash offset chosen
  /// uniformly from [0, wal_file_bytes].
  uint64_t wal_file_bytes = 0;
  uint64_t truncate_at = 0;
};

/// Runs one crash-recovery round for `seed`, creating its scratch
/// directory under `scratch_root` (e.g. "/tmp"). All failures — workload
/// errors, recovery errors, state divergence — are reported through the
/// returned report, never thrown.
CrashRunReport RunCrashSeed(uint64_t seed, const std::string& scratch_root);

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_CRASH_H_
