#include "testing/kernel_fuzz.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datagen/synthetic.h"
#include "exec/database.h"
#include "plan/kernels/kernels.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "testing/generator.h"
#include "util/random.h"

namespace vdb::fuzz {

namespace {

using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
namespace kern = ::vdb::plan::kernels;

/// Restores the entry kernel table when a seed finishes (the campaign
/// driver and any embedding test must not observe a changed ISA).
class IsaGuard {
 public:
  IsaGuard() : entry_(kern::ActiveIsa()) {}
  ~IsaGuard() { kern::SetActiveIsa(entry_); }

 private:
  kern::Isa entry_;
};

kern::Isa BestCompiledIsa() {
  if (kern::TableFor(kern::Isa::kAvx2) != nullptr) return kern::Isa::kAvx2;
  if (kern::TableFor(kern::Isa::kSse2) != nullptr) return kern::Isa::kSse2;
  return kern::Isa::kScalar;
}

/// Bitwise value equality: NULLs match NULLs, doubles compare by bit
/// pattern (NaN payloads and signed zeros included), everything else by
/// exact comparison.
bool BitwiseValueEq(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.type() != b.type()) return false;
  if (a.type() == TypeId::kDouble) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  }
  return Value::Compare(a, b) == 0;
}

std::string RowToString(const Tuple& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  return out + ")";
}

/// Ordered, bitwise row comparison. Ordering matters: every configuration
/// runs the same plan shape, so even unordered queries must emit rows in
/// the same sequence.
bool RowsBitwiseEqual(const std::vector<Tuple>& a, const std::vector<Tuple>& b,
                      std::string* detail) {
  if (a.size() != b.size()) {
    *detail = "row count " + std::to_string(a.size()) + " vs " +
              std::to_string(b.size());
    return false;
  }
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) {
      *detail = "row " + std::to_string(r) + " width differs";
      return false;
    }
    for (size_t c = 0; c < a[r].size(); ++c) {
      if (!BitwiseValueEq(a[r][c], b[r][c])) {
        *detail = "row " + std::to_string(r) + ": " + RowToString(a[r]) +
                  " vs " + RowToString(b[r]);
        return false;
      }
    }
  }
  return true;
}

/// Simulated-charge comparison. The kernel layer promises bit-identical
/// floating-point charges across ISAs (`bitwise`); the row engine is held
/// to the differential harness's established tolerance, since the two
/// engines accumulate the same charges in different association orders.
bool ChargesEqual(const exec::QueryResult& a, const exec::QueryResult& b,
                  bool bitwise, std::string* detail) {
  const auto close = [bitwise](double x, double y) {
    if (bitwise) return std::memcmp(&x, &y, sizeof(double)) == 0;
    return std::fabs(x - y) <=
           1e-12 + 1e-9 * std::max(std::fabs(x), std::fabs(y));
  };
  std::ostringstream out;
  out.precision(17);
  if (!close(a.elapsed_seconds, b.elapsed_seconds)) {
    out << "elapsed " << a.elapsed_seconds << " vs " << b.elapsed_seconds;
  } else if (!close(a.cpu_seconds, b.cpu_seconds)) {
    out << "cpu " << a.cpu_seconds << " vs " << b.cpu_seconds;
  } else if (!close(a.io_seconds, b.io_seconds)) {
    out << "io " << a.io_seconds << " vs " << b.io_seconds;
  } else if (a.physical_reads != b.physical_reads) {
    out << "physical reads " << a.physical_reads << " vs "
        << b.physical_reads;
  } else {
    return true;
  }
  *detail = out.str();
  return false;
}

// ---------------------------------------------------------------------------
// Kernel-shaped query templates over the stress table.

constexpr const char* kStressTable = "kstress";

const char* PickCmp(Random* rng) {
  static constexpr const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
  return kOps[rng->Uniform(6)];
}

const char* PickArith(Random* rng) {
  static constexpr const char* kOps[] = {"+", "-", "*"};
  return kOps[rng->Uniform(3)];
}

std::string PickIntConst(Random* rng) {
  static constexpr const char* kConsts[] = {
      "-2", "-1", "0", "1", "2", "3", "7", "42", "1000000007",
      "-4000000000000000000", "4000000000000000000"};
  return kConsts[rng->Uniform(sizeof(kConsts) / sizeof(kConsts[0]))];
}

std::string PickDoubleConst(Random* rng) {
  static constexpr const char* kConsts[] = {
      "0.0", "-0.0", "0.5", "-1.5", "123456.75", "250000.125"};
  return kConsts[rng->Uniform(sizeof(kConsts) / sizeof(kConsts[0]))];
}

const char* PickIntCol(Random* rng) {
  // `b` spans +-4e18, so it only appears in comparisons (never
  // arithmetic, which must stay overflow-free for the row engine).
  static constexpr const char* kCols[] = {"k0", "a", "b"};
  return kCols[rng->Uniform(3)];
}

const char* PickSmallIntCol(Random* rng) {
  static constexpr const char* kCols[] = {"k0", "a"};
  return kCols[rng->Uniform(2)];
}

const char* PickDoubleCol(Random* rng) {
  static constexpr const char* kCols[] = {"x", "y"};
  return kCols[rng->Uniform(2)];
}

/// One random kernel-shaped statement: filter compares (col/const and
/// col/col, both channels), AND/OR trees (the compare *eval* kernels),
/// fused arithmetic projections (both operand orders, plus mixed-type
/// shapes that must fall back), and occasional LIMIT to cross the capped
/// charge path.
std::string GenerateTemplateQuery(Random* rng) {
  std::string sql;
  switch (rng->Uniform(8)) {
    case 0:
      sql = std::string("SELECT k0 FROM ") + kStressTable + " WHERE " +
            PickIntCol(rng) + " " + PickCmp(rng) + " " + PickIntConst(rng);
      break;
    case 1:
      sql = std::string("SELECT k0 FROM ") + kStressTable + " WHERE " +
            PickDoubleCol(rng) + " " + PickCmp(rng) + " " +
            PickDoubleConst(rng);
      break;
    case 2:
      sql = std::string("SELECT k0 FROM ") + kStressTable + " WHERE " +
            PickIntCol(rng) + " " + PickCmp(rng) + " " + PickIntCol(rng);
      break;
    case 3:
      sql = std::string("SELECT k0 FROM ") + kStressTable + " WHERE " +
            PickDoubleCol(rng) + " " + PickCmp(rng) + " " +
            PickDoubleCol(rng);
      break;
    case 4:
      // AND/OR forces the comparison *EvaluateBatch* kernels (the
      // conjunction evaluates both sides as boolean vectors).
      sql = std::string("SELECT k0 FROM ") + kStressTable + " WHERE " +
            PickIntCol(rng) + " " + PickCmp(rng) + " " + PickIntConst(rng) +
            (rng->Bernoulli(0.5) ? " AND " : " OR ") + PickDoubleCol(rng) +
            " " + PickCmp(rng) + " " + PickDoubleConst(rng);
      break;
    case 5:
      // Fused arithmetic, inner on the left: (x op y) op z.
      sql = std::string("SELECT k0, ") + PickSmallIntCol(rng) + " " +
            PickArith(rng) + " " + PickSmallIntCol(rng) + " " +
            PickArith(rng) + " " + PickIntConst(rng) + " FROM " +
            kStressTable;
      break;
    case 6:
      // Fused arithmetic, inner on the right: z op (x op y). The double
      // channel here also exercises the all-double fast path.
      sql = std::string("SELECT k0, ") + PickDoubleConst(rng) + " " +
            PickArith(rng) + " (" + PickDoubleCol(rng) + " " +
            PickArith(rng) + " " + PickDoubleCol(rng) + ") FROM " +
            kStressTable;
      break;
    default:
      // Mixed int/double arithmetic: eligible-looking but must fall back
      // (fused double channel requires all-double operands).
      sql = std::string("SELECT k0, ") + PickSmallIntCol(rng) + " " +
            PickArith(rng) + " " + PickDoubleCol(rng) + " " + PickArith(rng) +
            " " + PickDoubleConst(rng) + " FROM " + kStressTable;
      break;
  }
  if (rng->Bernoulli(0.3)) sql += " LIMIT " + std::to_string(rng->Uniform(200));
  return sql;
}

Result<exec::QueryResult> RunConfigured(exec::Database* db,
                                        const sim::VirtualMachine& vm,
                                        const std::string& sql,
                                        exec::ExecMode mode, kern::Isa isa) {
  db->set_exec_mode(mode);
  kern::SetActiveIsa(isa);
  // Every configuration starts cold, so buffer-pool state can never
  // explain (or mask) a charge difference.
  (void)db->DropCaches();
  return db->Execute(sql, vm);
}

/// Runs one statement under scalar kernels, native kernels, and the row
/// engine; appends a violation description on any divergence. Returns
/// true when the statement matched across all three configurations.
bool CheckStatement(exec::Database* db, const sim::VirtualMachine& vm,
                    const std::string& sql, uint64_t seed,
                    KernelFuzzStats* stats,
                    std::vector<std::string>* violations) {
  ++stats->queries;
  const kern::Isa native = BestCompiledIsa();
  const Result<exec::QueryResult> scalar =
      RunConfigured(db, vm, sql, exec::ExecMode::kBatch, kern::Isa::kScalar);
  const Result<exec::QueryResult> simd =
      RunConfigured(db, vm, sql, exec::ExecMode::kBatch, native);
  const Result<exec::QueryResult> row =
      RunConfigured(db, vm, sql, exec::ExecMode::kRow, native);
  db->set_exec_mode(exec::ExecMode::kBatch);

  auto report = [&](const std::string& axis, const std::string& detail) {
    std::ostringstream out;
    out << "kernel divergence (seed " << seed << ", " << axis << "): "
        << detail << "\n  sql: " << sql << "\n  repro:  vdb_fuzz --seed "
        << seed << " --mode kernels";
    violations->push_back(out.str());
  };

  if (!scalar.ok() || !simd.ok() || !row.ok()) {
    // Errors must agree everywhere (same code); a statement the dialect
    // rejects is a skip, not a kernel result.
    if (scalar.ok() != simd.ok() || scalar.ok() != row.ok()) {
      report("error agreement",
             std::string("scalar=") +
                 (scalar.ok() ? "rows" : scalar.status().ToString()) +
                 " native=" + (simd.ok() ? "rows" : simd.status().ToString()) +
                 " row-engine=" + (row.ok() ? "rows" : row.status().ToString()));
      return false;
    }
    if (scalar.status().code() != simd.status().code() ||
        scalar.status().code() != row.status().code()) {
      report("error code", scalar.status().ToString() + " vs " +
                               simd.status().ToString() + " vs " +
                               row.status().ToString());
      return false;
    }
    ++stats->skipped;
    return true;
  }

  std::string detail;
  if (!RowsBitwiseEqual(scalar->rows, simd->rows, &detail)) {
    report("scalar vs native rows", detail);
    return false;
  }
  if (!ChargesEqual(*scalar, *simd, /*bitwise=*/true, &detail)) {
    report("scalar vs native charges", detail);
    return false;
  }
  if (!RowsBitwiseEqual(scalar->rows, row->rows, &detail)) {
    report("batch vs row engine rows", detail);
    return false;
  }
  if (!ChargesEqual(*scalar, *row, /*bitwise=*/false, &detail)) {
    report("batch vs row engine charges", detail);
    return false;
  }
  ++stats->matched;
  return true;
}

}  // namespace

std::string KernelFuzzStats::ToString() const {
  std::ostringstream out;
  out << queries << " statements: " << matched << " matched, " << skipped
      << " skipped";
  return out.str();
}

std::vector<std::string> RunKernelFuzzSeed(uint64_t seed,
                                           KernelFuzzStats* stats) {
  std::vector<std::string> violations;
  IsaGuard isa_guard;
  Random rng(seed);

  exec::Database db;
  sim::VirtualMachine vm("vm-kernel-fuzz", sim::MachineSpec::Small(),
                         sim::HypervisorModel::Ideal(),
                         sim::ResourceShare(1.0, 1.0, 1.0));
  Status setup = db.ApplyVmConfig(vm);
  if (!setup.ok()) {
    violations.push_back("setup failed: " + setup.ToString());
    return violations;
  }

  // The stress table crosses several batch boundaries and carries the
  // adversarial ranges the kernels special-case: tiny dense domains,
  // near-overflow int64, mixed-sign doubles, and NULL-heavy columns.
  const uint64_t stress_rows = 1500 + rng.Uniform(1500);
  std::vector<datagen::ColumnSpec> stress;
  stress.push_back({"k0", TypeId::kInt64, datagen::Distribution::kSequential,
                    0, 0, 0.8, 0.0, 16});
  stress.push_back({"a", TypeId::kInt64, datagen::Distribution::kUniform, -3,
                    3, 0.8, 0.2, 16});
  stress.push_back({"b", TypeId::kInt64, datagen::Distribution::kUniform,
                    -4.0e18, 4.0e18, 0.8, 0.1, 16});
  stress.push_back({"x", TypeId::kDouble, datagen::Distribution::kUniformReal,
                    -1.0e6, 1.0e6, 0.8, 0.15, 16});
  stress.push_back({"y", TypeId::kDouble, datagen::Distribution::kUniformReal,
                    -1.0, 1.0, 0.8, 0.0, 16});
  setup = datagen::GenerateTable(db.catalog(), kStressTable, stress,
                                 stress_rows, seed ^ 0x6b65726eULL);
  if (!setup.ok()) {
    violations.push_back("stress table failed: " + setup.ToString());
    return violations;
  }

  // A small random schema for the generic generator: arbitrary expression
  // trees, joins, and aggregates on top of the shaped templates.
  GeneratorOptions options;
  options.max_from_items = 2;
  SchemaPlan schema = GenerateSchemaPlan(&rng, options);
  setup = schema.Materialize(db.catalog());
  if (!setup.ok()) {
    violations.push_back("schema materialization failed: " + setup.ToString());
    return violations;
  }

  for (int q = 0; q < 12; ++q) {
    CheckStatement(&db, vm, GenerateTemplateQuery(&rng), seed, stats,
                   &violations);
  }
  QueryGenerator generator(&schema, &rng, options);
  for (int q = 0; q < 5; ++q) {
    CheckStatement(&db, vm, generator.Generate().Sql(), seed, stats,
                   &violations);
  }
  return violations;
}

}  // namespace vdb::fuzz
