// Differential-testing campaign driver: random queries run through the
// engine and a naive reference oracle, with shrinking reproducers
// (DESIGN.md §11).

#ifndef VDB_TESTING_DIFFERENTIAL_H_
#define VDB_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

#include "testing/generator.h"

namespace vdb::fuzz {

/// Knobs for one differential-testing campaign.
struct DifferentialOptions {
  /// Queries generated and checked per seed.
  int queries_per_seed = 8;
  /// Schema/query generation tuning.
  GeneratorOptions generator;
  /// Also re-run each matching query under mutated environments (memory
  /// share, optimizer parameters) and require identical rows — plan choice
  /// must never change results.
  bool check_environment_invariance = true;
  /// Also re-run each query on the other execution engine (row vs batch,
  /// whichever the database is not currently using) and require identical
  /// rows and ordering — the two engines must be indistinguishable.
  bool check_engine_equivalence = true;
  /// Also re-execute each matched query's physical plan with zone-map
  /// pruning flipped and require bitwise-identical rows: a pruned page
  /// may only ever be one with no qualifying rows. Executing the SAME
  /// plan twice sidesteps skip-aware-costing plan flips.
  bool check_zone_map_equivalence = true;
  /// Shrinking budget: maximum number of candidate reductions tried when
  /// minimizing a failure.
  int max_shrink_steps = 300;
};

/// A minimized differential-testing failure, with everything needed to
/// reproduce it by hand.
struct FailureReport {
  uint64_t seed = 0;
  /// Schema synopsis (SchemaPlan::ToString) of the failing database.
  std::string schema;
  /// Minimized failing statement.
  std::string sql;
  /// The original (pre-shrink) statement.
  std::string original_sql;
  /// Human-readable description of the disagreement.
  std::string detail;
  /// Command line that reproduces the failure.
  std::string repro;

  std::string ToString() const;
};

/// Counters accumulated over a campaign.
struct CampaignStats {
  uint64_t queries = 0;
  uint64_t matched = 0;
  /// Engine returned NotSupported (dialect corner the planner rejects).
  uint64_t skipped = 0;
  /// Engine and oracle both failed (and agreed to fail).
  uint64_t agreed_errors = 0;

  std::string ToString() const;
};

/// Runs the differential check for one seed: builds the seed's schema and
/// data, generates `queries_per_seed` statements, executes each against
/// the engine and the reference oracle, and compares results. On
/// disagreement the failing query is shrunk and reported via `failure`
/// (return value true). Returns false if the whole seed matched.
///
/// Internal errors (I/O, schema materialization) surface as a throwing
/// FailureReport with the error in `detail`.
bool RunDifferentialSeed(uint64_t seed, const DifferentialOptions& options,
                         CampaignStats* stats, FailureReport* failure);

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_DIFFERENTIAL_H_
