// Random schema/data/query generation for the differential fuzzer.

#ifndef VDB_TESTING_GENERATOR_H_
#define VDB_TESTING_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "sql/ast.h"
#include "util/random.h"
#include "util/status.h"

namespace vdb::fuzz {

/// One generated table: name, column specs (datagen distributions), row
/// count, and the columns to index. Everything needed to rebuild the table
/// bit-identically from the plan alone.
struct TablePlan {
  std::string name;
  std::vector<datagen::ColumnSpec> columns;
  uint64_t num_rows = 0;
  uint64_t data_seed = 0;
  /// Indexable (BIGINT/DATE) column positions to build B+-trees over.
  std::vector<size_t> indexed_columns;
};

/// A generated schema: the tables of one differential-testing database.
/// Deterministic in the seed that produced it; `Materialize` rebuilds the
/// same catalog contents on every call.
struct SchemaPlan {
  std::vector<TablePlan> tables;

  /// Creates the tables, fills them, builds the indexes, and runs ANALYZE.
  Status Materialize(catalog::Catalog* cat) const;

  /// Human-readable synopsis ("t0(c0 bigint, ...) 87 rows [idx c0]").
  std::string ToString() const;
};

/// Tuning knobs for schema and query generation. The defaults keep the
/// reference oracle's nested-loop cost bounded (tables are small) while
/// still exercising joins, spills, and index plans.
struct GeneratorOptions {
  int min_tables = 1;
  int max_tables = 3;
  int min_columns = 2;  // in addition to the unique key column c0
  int max_columns = 5;
  uint64_t min_rows = 0;
  uint64_t max_rows = 120;
  /// Probability that an indexable column gets an index.
  double index_probability = 0.4;
  /// Maximum FROM items per query (joins).
  int max_from_items = 3;
  /// Maximum boolean connective depth in WHERE.
  int max_predicate_depth = 3;
};

/// A generated query: the AST plus the bookkeeping the differential
/// harness needs to compare ordered results. When `order_by` is emitted it
/// always covers every select item (so ties are identical rows and the
/// result multiset is unique even under LIMIT); `sort_columns` maps each
/// ORDER BY key to (select-item position, ascending).
struct GeneratedQuery {
  std::unique_ptr<sql::SelectStatement> stmt;
  std::vector<std::pair<size_t, bool>> sort_columns;

  std::string Sql() const { return stmt->ToString(); }
};

/// Deterministic random SQL generator over a SchemaPlan. Produces only
/// statements the engine's dialect accepts (type-checked against the
/// schema): filters (comparisons, BETWEEN, IN, LIKE, IS NULL, AND/OR/NOT),
/// multi-way joins (cross/inner/left), the five aggregates with GROUP
/// BY/HAVING, DISTINCT, ORDER BY/LIMIT, EXISTS / IN / scalar subqueries,
/// and derived tables.
class QueryGenerator {
 public:
  QueryGenerator(const SchemaPlan* schema, Random* rng,
                 GeneratorOptions options = {})
      : schema_(schema), rng_(rng), options_(options) {}

  GeneratedQuery Generate();

 private:
  struct ColumnInfo {
    std::string name;
    catalog::TypeId type = catalog::TypeId::kInt64;
    bool nullable = false;
    /// Approximate data range, for picking selective literals.
    double lo = 0;
    double hi = 1000;
  };
  /// One visible FROM binding: alias plus its columns.
  struct Binding {
    std::string alias;
    std::vector<ColumnInfo> columns;
  };
  using Scope = std::vector<Binding>;

  const TablePlan& RandomTable();
  static Binding BindTable(const TablePlan& table, std::string alias);

  /// Picks a random column of `type_class` from the scope; returns false
  /// if none exists. `type_class` is one of 'n' (numeric: int/double/
  /// date), 'i' (int64 only, no date), 's' (string), 'a' (any type).
  bool PickColumn(const Scope& scope, char type_class, std::string* alias,
                  ColumnInfo* column);

  struct TypedExpr {
    sql::ExprPtr expr;
    catalog::TypeId type = catalog::TypeId::kInt64;
  };

  sql::ExprPtr ColumnRef(const std::string& alias, const ColumnInfo& column);
  /// A literal near the column's data range (selective but non-trivial).
  sql::ExprPtr LiteralNear(const ColumnInfo& column);
  /// Numeric scalar of non-date type (int64/double), for arithmetic.
  /// Tracks the static type so it never emits MOD on double operands
  /// (rejected by the planner) and keeps int/double division explicit.
  TypedExpr NumericScalarTyped(const Scope& scope, int depth);
  sql::ExprPtr NumericScalar(const Scope& scope, int depth);
  sql::ExprPtr Comparison(const Scope& scope);
  sql::ExprPtr Predicate(const Scope& scope, int depth);
  /// A top-level WHERE conjunct that is an EXISTS / IN / scalar-subquery
  /// predicate (the planner de-correlates these only at top level).
  sql::ExprPtr SubqueryPredicate(const Scope& outer);
  std::unique_ptr<sql::SelectStatement> SimpleSubquery(const Scope& outer,
                                                       bool correlated,
                                                       bool scalar_agg);

  GeneratedQuery GenerateSelect();

  const SchemaPlan* schema_;
  Random* rng_;
  GeneratorOptions options_;
  int alias_counter_ = 0;
};

/// Generates a random schema plan (deterministic in `rng`'s state).
SchemaPlan GenerateSchemaPlan(Random* rng, const GeneratorOptions& options);

/// Deep copy of a parsed expression (the AST has no Clone; the generator
/// and the failure shrinker both need one).
sql::ExprPtr CloneExpr(const sql::Expr& expr);

/// Deep copy of a select statement.
std::unique_ptr<sql::SelectStatement> CloneSelect(
    const sql::SelectStatement& stmt);

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_GENERATOR_H_
