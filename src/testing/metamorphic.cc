#include "testing/metamorphic.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "calib/store.h"
#include "core/cost_model.h"
#include "core/problem.h"
#include "core/search.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "optimizer/params.h"
#include "sim/machine.h"
#include "sim/resources.h"
#include "sim/virtual_machine.h"
#include "util/random.h"

namespace vdb::fuzz {

namespace {

using optimizer::OptimizerParams;
using sim::ResourceKind;
using sim::ResourceShare;

/// Synthetic monotone calibration store: every per-unit time improves as
/// its resource's share grows (CPU costs scale with 1/cpu, IO costs with
/// 1/io) and the capacity parameters grow linearly with the memory share.
/// Under such a store, more resources can never make an estimate worse —
/// the metamorphic monotonicity oracle.
calib::CalibrationStore MakeMonotoneStore(const std::vector<double>& axis) {
  calib::CalibrationStore store;
  const OptimizerParams base;
  for (double cpu : axis) {
    for (double memory : axis) {
      for (double io : axis) {
        OptimizerParams params = base;
        const double cpu_penalty = 1.0 / cpu;
        const double io_penalty = 1.0 / io;
        params.cpu_tuple_cost = base.cpu_tuple_cost * cpu_penalty;
        params.cpu_index_tuple_cost =
            base.cpu_index_tuple_cost * cpu_penalty;
        params.cpu_operator_cost = base.cpu_operator_cost * cpu_penalty;
        params.seq_page_cost = base.seq_page_cost * io_penalty;
        params.random_page_cost = base.random_page_cost * io_penalty;
        params.effective_cache_size_pages = static_cast<uint64_t>(
            static_cast<double>(base.effective_cache_size_pages) * memory);
        params.work_mem_bytes = static_cast<uint64_t>(
            static_cast<double>(base.work_mem_bytes) * memory);
        store.Put(ResourceShare(cpu, memory, io), params);
      }
    }
  }
  return store;
}

/// Shared fixture: one database with a CPU-profile table and an
/// IO-profile table, a two-workload design problem over it, and the
/// synthetic monotone store.
struct MetamorphicEnv {
  exec::Database db;
  core::VirtualizationDesignProblem problem;
  calib::CalibrationStore store;
  std::vector<double> axis{0.2, 0.5, 0.8};

  Status Build() {
    using datagen::ColumnSpec;
    using datagen::Distribution;
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec group;
    group.name = "g";
    group.distribution = Distribution::kUniform;
    group.min_value = 0;
    group.max_value = 40;
    ColumnSpec metric;
    metric.name = "v";
    metric.type = catalog::TypeId::kDouble;
    metric.distribution = Distribution::kUniformReal;
    ColumnSpec pad;
    pad.name = "pad";
    pad.type = catalog::TypeId::kString;
    pad.distribution = Distribution::kRandomText;
    pad.string_length = 220;
    VDB_RETURN_NOT_OK(datagen::GenerateTable(db.catalog(), "mm_cpu",
                                             {key, group, metric}, 4000,
                                             91));
    VDB_RETURN_NOT_OK(
        datagen::GenerateTable(db.catalog(), "mm_io", {key, pad}, 2500, 92));
    VDB_RETURN_NOT_OK(db.catalog()->AnalyzeAll());

    problem.machine = sim::MachineSpec::Small();
    problem.workloads = {
        core::Workload("cpu-bound",
                       {"select g, count(*), sum(v) from mm_cpu group by g",
                        "select count(*) from mm_cpu where g < 20 and "
                        "v < 50.0"}),
        core::Workload("io-bound", {"select count(*) from mm_io",
                                    "select count(*) from mm_io where "
                                    "pad like '%the%'"}),
    };
    problem.databases = {&db, &db};
    store = MakeMonotoneStore(axis);
    return Status::OK();
  }
};

std::string Violation(const std::string& invariant,
                      const std::string& detail) {
  return invariant + ": " + detail;
}

// --- Invariant 1: probe-order invariance / determinism ---------------------

void CheckProbeOrderInvariance(MetamorphicEnv* env, Random* rng,
                               int num_probes,
                               std::vector<std::string>* violations) {
  std::vector<ResourceShare> probes;
  for (int i = 0; i < num_probes; ++i) {
    probes.emplace_back(rng->UniformDouble(0.2, 0.8),
                        rng->UniformDouble(0.2, 0.8),
                        rng->UniformDouble(0.2, 0.8));
  }
  const size_t workloads = env->problem.NumWorkloads();
  std::vector<std::vector<double>> forward(workloads);
  core::WorkloadCostModel model_a(&env->problem, &env->store);
  for (size_t w = 0; w < workloads; ++w) {
    for (const ResourceShare& share : probes) {
      auto cost = model_a.Cost(w, share);
      if (!cost.ok()) {
        violations->push_back(
            Violation("probe-order", "Cost failed: " +
                                         cost.status().message()));
        return;
      }
      forward[w].push_back(*cost);
    }
  }
  // Fresh model, reversed probe order, workloads interleaved the other
  // way: every value must be bit-identical.
  core::WorkloadCostModel model_b(&env->problem, &env->store);
  for (size_t i = probes.size(); i-- > 0;) {
    for (size_t w = workloads; w-- > 0;) {
      auto cost = model_b.Cost(w, probes[i]);
      if (!cost.ok()) {
        violations->push_back(
            Violation("probe-order", "reversed Cost failed: " +
                                         cost.status().message()));
        return;
      }
      if (*cost != forward[w][i]) {
        std::ostringstream out;
        out << "Cost(w" << w << ", {" << probes[i].cpu << ", "
            << probes[i].memory << ", " << probes[i].io
            << "}) depends on probe order: " << forward[w][i] << " vs "
            << *cost;
        violations->push_back(Violation("probe-order", out.str()));
        return;
      }
    }
  }
}

// --- Invariant 2: side-effect freedom of const what-if Prepare -------------

void CheckSideEffectFreedom(MetamorphicEnv* env, Random* rng,
                            std::vector<std::string>* violations) {
  const std::string sql = env->problem.workloads[0].statements[0];
  auto installed = env->store.Lookup(ResourceShare(0.5, 0.5, 0.5));
  if (!installed.ok()) {
    violations->push_back(Violation("side-effects", "store lookup failed"));
    return;
  }
  env->db.SetOptimizerParams(*installed);
  auto before = env->db.Prepare(sql);
  if (!before.ok()) {
    violations->push_back(
        Violation("side-effects", "Prepare failed: " +
                                      before.status().message()));
    return;
  }
  // A burst of what-if probes under very different parameters...
  for (int i = 0; i < 5; ++i) {
    ResourceShare probe(rng->UniformDouble(0.2, 0.8),
                        rng->UniformDouble(0.2, 0.8),
                        rng->UniformDouble(0.2, 0.8));
    auto params = env->store.Lookup(probe);
    if (!params.ok()) continue;
    auto whatif = env->db.Prepare(sql, *params);
    if (!whatif.ok()) {
      violations->push_back(
          Violation("side-effects", "what-if Prepare failed: " +
                                        whatif.status().message()));
      return;
    }
  }
  // ...must leave the installed state untouched.
  auto after = env->db.Prepare(sql);
  if (!after.ok()) {
    violations->push_back(
        Violation("side-effects", "re-Prepare failed: " +
                                      after.status().message()));
    return;
  }
  if ((*before)->total_cost_ms != (*after)->total_cost_ms) {
    std::ostringstream out;
    out << "what-if Prepare mutated optimizer state: estimate "
        << (*before)->total_cost_ms << " -> " << (*after)->total_cost_ms;
    violations->push_back(Violation("side-effects", out.str()));
  }
  // And the const overload under the installed params must agree with the
  // mutating path exactly.
  auto same = env->db.Prepare(sql, *installed);
  if (same.ok() &&
      (*same)->total_cost_ms != (*before)->total_cost_ms) {
    std::ostringstream out;
    out << "const and mutating Prepare disagree under identical params: "
        << (*same)->total_cost_ms << " vs " << (*before)->total_cost_ms;
    violations->push_back(Violation("side-effects", out.str()));
  }
}

// --- Invariant 3: resource monotonicity ------------------------------------

void CheckMonotonicity(MetamorphicEnv* env,
                       std::vector<std::string>* violations) {
  struct Sweep {
    size_t workload;
    ResourceKind resource;
    const char* label;
  };
  const Sweep sweeps[] = {
      {0, ResourceKind::kCpu, "cpu-bound workload vs CPU share"},
      {1, ResourceKind::kIo, "io-bound workload vs IO share"},
      {1, ResourceKind::kMemory, "io-bound workload vs memory share"},
  };
  // On- and off-grid points, strictly increasing.
  const double points[] = {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  core::WorkloadCostModel model(&env->problem, &env->store);
  for (const Sweep& sweep : sweeps) {
    double previous = -1.0;
    double previous_share = 0.0;
    for (double value : points) {
      ResourceShare share(0.5, 0.5, 0.5);
      share.Set(sweep.resource, value);
      auto cost = model.Cost(sweep.workload, share);
      if (!cost.ok()) {
        violations->push_back(
            Violation("monotonicity", std::string(sweep.label) +
                                          ": Cost failed: " +
                                          cost.status().message()));
        break;
      }
      // Capacity parameters are interpolated with integer rounding, so
      // allow a sliver of slack on top of exact non-increase.
      if (previous >= 0.0 && *cost > previous * (1.0 + 1e-9) + 1e-9) {
        std::ostringstream out;
        out << sweep.label << ": cost increased from " << previous << " at "
            << previous_share << " to " << *cost << " at " << value;
        violations->push_back(Violation("monotonicity", out.str()));
        break;
      }
      previous = *cost;
      previous_share = value;
    }
  }
}

// --- Invariant 4: store exact hits vs interpolation ------------------------

void CheckStoreConsistency(MetamorphicEnv* env,
                           std::vector<std::string>* violations) {
  const std::vector<double>& axis = env->axis;
  // Exact grid hits return the stored parameters bit-identically.
  for (double cpu : axis) {
    for (double memory : axis) {
      for (double io : axis) {
        ResourceShare share(cpu, memory, io);
        auto looked_up = env->store.Lookup(share);
        if (!looked_up.ok()) {
          violations->push_back(
              Violation("store", "grid-point lookup failed: " +
                                     looked_up.status().message()));
          return;
        }
        // Recompute the expected params independently of MakeMonotoneStore
        // (a shared helper would hide a Put/Lookup bug).
        OptimizerParams expected;
        const OptimizerParams base;
        expected.cpu_tuple_cost = base.cpu_tuple_cost / cpu;
        expected.cpu_index_tuple_cost = base.cpu_index_tuple_cost / cpu;
        expected.cpu_operator_cost = base.cpu_operator_cost / cpu;
        expected.seq_page_cost = base.seq_page_cost / io;
        expected.random_page_cost = base.random_page_cost / io;
        expected.effective_cache_size_pages = static_cast<uint64_t>(
            static_cast<double>(base.effective_cache_size_pages) * memory);
        expected.work_mem_bytes = static_cast<uint64_t>(
            static_cast<double>(base.work_mem_bytes) * memory);
        if (looked_up->CalibratedVector() != expected.CalibratedVector() ||
            looked_up->effective_cache_size_pages !=
                expected.effective_cache_size_pages ||
            looked_up->work_mem_bytes != expected.work_mem_bytes) {
          std::ostringstream out;
          out << "exact hit at (" << cpu << ", " << memory << ", " << io
              << ") does not return the stored parameters";
          violations->push_back(Violation("store", out.str()));
          return;
        }
      }
    }
  }
  // Midpoint lookups along each axis match hand-computed linear
  // interpolation of the two surrounding corners.
  for (size_t i = 0; i + 1 < axis.size(); ++i) {
    const double low = axis[i];
    const double high = axis[i + 1];
    const double mid = 0.5 * (low + high);
    for (int r = 0; r < sim::kNumResources; ++r) {
      const ResourceKind kind = static_cast<ResourceKind>(r);
      ResourceShare a(0.5, 0.5, 0.5);
      ResourceShare b = a;
      ResourceShare m = a;
      a.Set(kind, low);
      b.Set(kind, high);
      m.Set(kind, mid);
      auto pa = env->store.Lookup(a);
      auto pb = env->store.Lookup(b);
      auto pm = env->store.Lookup(m);
      if (!pa.ok() || !pb.ok() || !pm.ok()) {
        violations->push_back(Violation("store", "midpoint lookup failed"));
        return;
      }
      const auto va = pa->CalibratedVector();
      const auto vb = pb->CalibratedVector();
      const auto vm = pm->CalibratedVector();
      for (size_t k = 0; k < va.size(); ++k) {
        const double expected = 0.5 * (va[k] + vb[k]);
        if (std::fabs(vm[k] - expected) >
            1e-12 + 1e-9 * std::fabs(expected)) {
          std::ostringstream out;
          out << "midpoint interpolation off-axis " << r << " param " << k
              << ": got " << vm[k] << ", expected " << expected;
          violations->push_back(Violation("store", out.str()));
          return;
        }
      }
    }
  }
}

// --- Invariant 5: exhaustive search is the ground truth --------------------

void CheckSearchOptimality(MetamorphicEnv* env, int grid_steps,
                           std::vector<std::string>* violations) {
  struct Config {
    std::vector<ResourceKind> controlled;
    const char* label;
  };
  const Config configs[] = {
      {{ResourceKind::kCpu}, "cpu-only"},
      {{ResourceKind::kCpu, ResourceKind::kIo}, "cpu+io"},
  };
  for (const Config& config : configs) {
    core::VirtualizationDesignProblem problem = env->problem;
    problem.controlled = config.controlled;
    problem.grid_steps = grid_steps;
    core::WorkloadCostModel model(&problem, &env->store);
    auto exhaustive = core::SolveDesignProblem(
        problem, &model, core::SearchAlgorithm::kExhaustive);
    auto greedy =
        core::SolveDesignProblem(problem, &model,
                                 core::SearchAlgorithm::kGreedy);
    auto dp = core::SolveDesignProblem(
        problem, &model, core::SearchAlgorithm::kDynamicProgramming);
    if (!exhaustive.ok() || !greedy.ok() || !dp.ok()) {
      violations->push_back(
          Violation("search", std::string(config.label) +
                                  ": a search algorithm failed"));
      continue;
    }
    const double scale = 1e-9 * std::fabs(exhaustive->total_cost_ms) + 1e-9;
    if (exhaustive->total_cost_ms > greedy->total_cost_ms + scale) {
      std::ostringstream out;
      out << config.label << ": greedy (" << greedy->total_cost_ms
          << " ms) beat exhaustive (" << exhaustive->total_cost_ms
          << " ms)";
      violations->push_back(Violation("search", out.str()));
    }
    if (std::fabs(exhaustive->total_cost_ms - dp->total_cost_ms) > scale) {
      std::ostringstream out;
      out << config.label << ": DP (" << dp->total_cost_ms
          << " ms) disagrees with exhaustive ("
          << exhaustive->total_cost_ms << " ms)";
      violations->push_back(Violation("search", out.str()));
    }
  }
}

}  // namespace

std::vector<std::string> RunMetamorphicChecks(
    uint64_t seed, const MetamorphicOptions& options) {
  std::vector<std::string> violations;
  MetamorphicEnv env;
  Status built = env.Build();
  if (!built.ok()) {
    violations.push_back("environment setup failed: " + built.message());
    return violations;
  }
  Random rng(seed);
  CheckProbeOrderInvariance(&env, &rng, options.num_probes, &violations);
  CheckSideEffectFreedom(&env, &rng, &violations);
  CheckMonotonicity(&env, &violations);
  CheckStoreConsistency(&env, &violations);
  CheckSearchOptimality(&env, options.grid_steps, &violations);
  return violations;
}

}  // namespace vdb::fuzz
