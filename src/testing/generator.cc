#include "testing/generator.h"

#include <algorithm>
#include <array>
#include <utility>

namespace vdb::fuzz {

using catalog::TypeId;
using catalog::Value;
using sql::BinaryOp;
using sql::ExprPtr;
using sql::ExprType;

namespace {

// Mirrors the datagen word list so generated string literals and LIKE
// patterns sometimes match real rows.
constexpr std::array<const char*, 8> kProbeWords = {
    "furiously", "deposits", "accounts", "foxes",
    "ideas",     "final",    "regular",  "pinto"};

ExprPtr MakeInt(int64_t v) {
  return std::make_unique<sql::LiteralExpr>(Value::Int64(v));
}

ExprPtr MakeDouble(double v) {
  return std::make_unique<sql::LiteralExpr>(Value::Double(v));
}

ExprPtr MakeString(std::string v) {
  return std::make_unique<sql::LiteralExpr>(Value::String(std::move(v)));
}

BinaryOp RandomComparisonOp(Random* rng) {
  static constexpr std::array<BinaryOp, 6> kOps = {
      BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
      BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  return kOps[rng->Uniform(kOps.size())];
}

ExprPtr MakeCmp(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<sql::BinaryExpr>(op, std::move(left),
                                           std::move(right));
}

bool TypeInClass(TypeId type, char type_class) {
  switch (type_class) {
    case 'n':
      return type == TypeId::kInt64 || type == TypeId::kDouble ||
             type == TypeId::kDate;
    case 'i':
      return type == TypeId::kInt64;
    case 's':
      return type == TypeId::kString;
    default:
      return true;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Schema generation

SchemaPlan GenerateSchemaPlan(Random* rng, const GeneratorOptions& options) {
  SchemaPlan schema;
  const int num_tables =
      static_cast<int>(rng->UniformInt(options.min_tables,
                                       options.max_tables));
  for (int t = 0; t < num_tables; ++t) {
    TablePlan table;
    table.name = "t" + std::to_string(t);
    datagen::ColumnSpec key;
    key.name = "c0";
    key.type = TypeId::kInt64;
    key.distribution = datagen::Distribution::kSequential;
    key.min_value = 0;
    table.columns.push_back(key);

    const int extra = static_cast<int>(
        rng->UniformInt(options.min_columns, options.max_columns));
    for (int c = 1; c <= extra; ++c) {
      datagen::ColumnSpec spec;
      spec.name = "c" + std::to_string(c);
      switch (rng->Uniform(6)) {
        case 0: {  // low-cardinality int (join/group friendly)
          static constexpr std::array<int64_t, 4> kHi = {3, 10, 50, 1000};
          spec.type = TypeId::kInt64;
          spec.distribution = datagen::Distribution::kUniform;
          spec.min_value = 0;
          spec.max_value = static_cast<double>(kHi[rng->Uniform(kHi.size())]);
          break;
        }
        case 1:
          spec.type = TypeId::kInt64;
          spec.distribution = datagen::Distribution::kZipf;
          spec.min_value = 1;
          spec.max_value = 100;
          spec.zipf_theta = rng->UniformDouble(0.6, 1.1);
          break;
        case 2:
          spec.type = TypeId::kDouble;
          spec.distribution = datagen::Distribution::kUniformReal;
          spec.min_value = 0;
          spec.max_value = 100;
          break;
        case 3:
          spec.type = TypeId::kString;
          spec.distribution = datagen::Distribution::kRandomText;
          spec.string_length =
              static_cast<uint32_t>(rng->UniformInt(8, 16));
          break;
        case 4:
          spec.type = TypeId::kDate;
          spec.distribution = datagen::Distribution::kUniform;
          spec.min_value = 10000;
          spec.max_value = 10400;
          break;
        default:
          spec.type = TypeId::kInt64;
          spec.distribution = datagen::Distribution::kUniform;
          spec.min_value = -50;
          spec.max_value = 50;
          break;
      }
      static constexpr std::array<double, 4> kNullFractions = {0.0, 0.0, 0.1,
                                                               0.3};
      spec.null_fraction = kNullFractions[rng->Uniform(kNullFractions.size())];
      table.columns.push_back(spec);
    }

    table.num_rows = rng->UniformInt(
        static_cast<int64_t>(options.min_rows),
        static_cast<int64_t>(options.max_rows));
    table.data_seed = rng->NextUint64();
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const datagen::ColumnSpec& spec = table.columns[c];
      if (spec.type != TypeId::kInt64 && spec.type != TypeId::kDate) continue;
      if (spec.null_fraction > 0.0) continue;  // index keys must be non-null
      const double p =
          c == 0 ? options.index_probability : options.index_probability / 2;
      if (rng->Bernoulli(p)) table.indexed_columns.push_back(c);
    }
    schema.tables.push_back(std::move(table));
  }
  return schema;
}

Status SchemaPlan::Materialize(catalog::Catalog* cat) const {
  for (const TablePlan& table : tables) {
    VDB_RETURN_NOT_OK(datagen::GenerateTable(cat, table.name, table.columns,
                                             table.num_rows,
                                             table.data_seed));
    for (size_t c : table.indexed_columns) {
      VDB_RETURN_NOT_OK(
          cat->CreateIndex(table.name + "_idx_" + table.columns[c].name,
                           table.name, table.columns[c].name)
              .status());
    }
  }
  return cat->AnalyzeAll();
}

std::string SchemaPlan::ToString() const {
  std::string out;
  for (const TablePlan& table : tables) {
    if (!out.empty()) out += "; ";
    out += table.name + "(";
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out += ", ";
      out += table.columns[c].name;
      out += " ";
      out += catalog::TypeIdName(table.columns[c].type);
    }
    out += ") " + std::to_string(table.num_rows) + " rows";
    for (size_t c : table.indexed_columns) {
      out += " [idx " + table.columns[c].name + "]";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Expression cloning

ExprPtr CloneExpr(const sql::Expr& expr) {
  switch (expr.type) {
    case ExprType::kLiteral:
      return std::make_unique<sql::LiteralExpr>(
          static_cast<const sql::LiteralExpr&>(expr).value);
    case ExprType::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      return std::make_unique<sql::ColumnRefExpr>(ref.table, ref.column);
    }
    case ExprType::kStar:
      return std::make_unique<sql::StarExpr>();
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      return std::make_unique<sql::UnaryExpr>(unary.op,
                                              CloneExpr(*unary.operand));
    }
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      return std::make_unique<sql::BinaryExpr>(
          binary.op, CloneExpr(*binary.left), CloneExpr(*binary.right));
    }
    case ExprType::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) args.push_back(CloneExpr(*arg));
      return std::make_unique<sql::FunctionCallExpr>(
          call.name, std::move(args), call.star, call.distinct);
    }
    case ExprType::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      return std::make_unique<sql::BetweenExpr>(
          CloneExpr(*between.value), CloneExpr(*between.low),
          CloneExpr(*between.high), between.negated);
    }
    case ExprType::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      std::vector<ExprPtr> list;
      list.reserve(in.list.size());
      for (const ExprPtr& item : in.list) list.push_back(CloneExpr(*item));
      return std::make_unique<sql::InListExpr>(CloneExpr(*in.value),
                                               std::move(list), in.negated);
    }
    case ExprType::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      return std::make_unique<sql::InSubqueryExpr>(
          CloneExpr(*in.value), CloneSelect(*in.subquery), in.negated);
    }
    case ExprType::kScalarSubquery: {
      const auto& sub = static_cast<const sql::ScalarSubqueryExpr&>(expr);
      return std::make_unique<sql::ScalarSubqueryExpr>(
          CloneSelect(*sub.subquery));
    }
    case ExprType::kLike: {
      const auto& like = static_cast<const sql::LikeExpr&>(expr);
      return std::make_unique<sql::LikeExpr>(CloneExpr(*like.value),
                                             like.pattern, like.negated);
    }
    case ExprType::kIsNull: {
      const auto& is_null = static_cast<const sql::IsNullExpr&>(expr);
      return std::make_unique<sql::IsNullExpr>(CloneExpr(*is_null.value),
                                               is_null.negated);
    }
    case ExprType::kExists: {
      const auto& exists = static_cast<const sql::ExistsExpr&>(expr);
      return std::make_unique<sql::ExistsExpr>(CloneSelect(*exists.subquery),
                                               exists.negated);
    }
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      branches.reserve(case_expr.branches.size());
      for (const auto& [when, then] : case_expr.branches) {
        branches.emplace_back(CloneExpr(*when), CloneExpr(*then));
      }
      return std::make_unique<sql::CaseExpr>(
          std::move(branches), case_expr.else_result != nullptr
                                   ? CloneExpr(*case_expr.else_result)
                                   : nullptr);
    }
  }
  return nullptr;  // unreachable: all ExprType cases handled above
}

std::unique_ptr<sql::SelectStatement> CloneSelect(
    const sql::SelectStatement& stmt) {
  auto out = std::make_unique<sql::SelectStatement>();
  for (const sql::SelectItem& item : stmt.items) {
    sql::SelectItem copy;
    copy.expr = CloneExpr(*item.expr);
    copy.alias = item.alias;
    out->items.push_back(std::move(copy));
  }
  for (const sql::FromItem& item : stmt.from) {
    sql::FromItem copy;
    copy.table.kind = item.table.kind;
    copy.table.name = item.table.name;
    copy.table.alias = item.table.alias;
    copy.table.column_aliases = item.table.column_aliases;
    if (item.table.subquery != nullptr) {
      copy.table.subquery = CloneSelect(*item.table.subquery);
    }
    copy.join_type = item.join_type;
    if (item.join_condition != nullptr) {
      copy.join_condition = CloneExpr(*item.join_condition);
    }
    out->from.push_back(std::move(copy));
  }
  if (stmt.where != nullptr) out->where = CloneExpr(*stmt.where);
  for (const ExprPtr& group : stmt.group_by) {
    out->group_by.push_back(CloneExpr(*group));
  }
  if (stmt.having != nullptr) out->having = CloneExpr(*stmt.having);
  for (const sql::OrderByItem& item : stmt.order_by) {
    sql::OrderByItem copy;
    copy.expr = CloneExpr(*item.expr);
    copy.ascending = item.ascending;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = stmt.limit;
  out->distinct = stmt.distinct;
  return out;
}

// ---------------------------------------------------------------------------
// Query generation

const TablePlan& QueryGenerator::RandomTable() {
  return schema_->tables[rng_->Uniform(schema_->tables.size())];
}

QueryGenerator::Binding QueryGenerator::BindTable(const TablePlan& table,
                                                  std::string alias) {
  Binding binding;
  binding.alias = std::move(alias);
  for (const datagen::ColumnSpec& spec : table.columns) {
    ColumnInfo info;
    info.name = spec.name;
    info.type = spec.type;
    info.nullable = spec.null_fraction > 0.0;
    if (spec.distribution == datagen::Distribution::kSequential) {
      info.lo = spec.min_value;
      info.hi = spec.min_value + static_cast<double>(table.num_rows);
    } else {
      info.lo = spec.min_value;
      info.hi = spec.max_value;
    }
    binding.columns.push_back(std::move(info));
  }
  return binding;
}

bool QueryGenerator::PickColumn(const Scope& scope, char type_class,
                                std::string* alias, ColumnInfo* column) {
  std::vector<std::pair<size_t, size_t>> candidates;
  for (size_t b = 0; b < scope.size(); ++b) {
    for (size_t c = 0; c < scope[b].columns.size(); ++c) {
      if (TypeInClass(scope[b].columns[c].type, type_class)) {
        candidates.emplace_back(b, c);
      }
    }
  }
  if (candidates.empty()) return false;
  const auto [b, c] = candidates[rng_->Uniform(candidates.size())];
  *alias = scope[b].alias;
  *column = scope[b].columns[c];
  return true;
}

ExprPtr QueryGenerator::ColumnRef(const std::string& alias,
                                  const ColumnInfo& column) {
  return std::make_unique<sql::ColumnRefExpr>(alias, column.name);
}

ExprPtr QueryGenerator::LiteralNear(const ColumnInfo& column) {
  if (column.type == TypeId::kString) {
    return MakeString(kProbeWords[rng_->Uniform(kProbeWords.size())]);
  }
  const int64_t lo = static_cast<int64_t>(column.lo);
  const int64_t hi = static_cast<int64_t>(column.hi);
  // Occasionally out of range (empty/full scans are valid results too).
  const int64_t slack = std::max<int64_t>(1, (hi - lo) / 4);
  const int64_t v = rng_->UniformInt(lo - slack, hi + slack);
  if (column.type == TypeId::kDouble && rng_->Bernoulli(0.5)) {
    return MakeDouble(static_cast<double>(v) + 0.5);
  }
  // Date columns compare fine against integer day numbers; a bare date
  // literal would not round-trip through ToString -> parser.
  return MakeInt(v);
}

QueryGenerator::TypedExpr QueryGenerator::NumericScalarTyped(
    const Scope& scope, int depth) {
  const uint64_t pick = rng_->Uniform(depth > 0 ? 4 : 3);
  switch (pick) {
    case 0: {
      std::string alias;
      ColumnInfo column;
      // Non-date numeric column; dates only allow add/sub arithmetic, so
      // keep them out of generic scalars.
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (PickColumn(scope, 'n', &alias, &column) &&
            column.type != TypeId::kDate) {
          return {ColumnRef(alias, column), column.type};
        }
      }
      return {MakeInt(rng_->UniformInt(-100, 100)), TypeId::kInt64};
    }
    case 1:
      return {MakeInt(rng_->UniformInt(-100, 100)), TypeId::kInt64};
    case 2:
      return {MakeDouble(rng_->UniformDouble(-100, 100)), TypeId::kDouble};
    default: {
      TypedExpr left = NumericScalarTyped(scope, depth - 1);
      TypedExpr right = NumericScalarTyped(scope, 0);
      const bool any_double =
          left.type == TypeId::kDouble || right.type == TypeId::kDouble;
      // MOD is integer-only (the planner rejects it on doubles).
      static constexpr std::array<BinaryOp, 5> kOps = {
          BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
          BinaryOp::kMod};
      const BinaryOp op = kOps[rng_->Uniform(any_double ? 4 : 5)];
      return {std::make_unique<sql::BinaryExpr>(op, std::move(left.expr),
                                                std::move(right.expr)),
              any_double ? TypeId::kDouble : TypeId::kInt64};
    }
  }
}

ExprPtr QueryGenerator::NumericScalar(const Scope& scope, int depth) {
  return NumericScalarTyped(scope, depth).expr;
}

ExprPtr QueryGenerator::Comparison(const Scope& scope) {
  std::string alias;
  ColumnInfo column;
  switch (rng_->Uniform(6)) {
    case 0:  // string comparison / LIKE / IN-list of words
      if (PickColumn(scope, 's', &alias, &column)) {
        const uint64_t kind = rng_->Uniform(3);
        if (kind == 0) {
          return MakeCmp(RandomComparisonOp(rng_), ColumnRef(alias, column),
                         LiteralNear(column));
        }
        if (kind == 1) {
          std::string pattern =
              std::string(rng_->Bernoulli(0.5) ? "%" : "") +
              kProbeWords[rng_->Uniform(kProbeWords.size())] + "%";
          return std::make_unique<sql::LikeExpr>(ColumnRef(alias, column),
                                                 std::move(pattern),
                                                 rng_->Bernoulli(0.3));
        }
        std::vector<ExprPtr> list;
        const int n = static_cast<int>(rng_->UniformInt(1, 3));
        for (int i = 0; i < n; ++i) {
          list.push_back(
              MakeString(kProbeWords[rng_->Uniform(kProbeWords.size())]));
        }
        return std::make_unique<sql::InListExpr>(ColumnRef(alias, column),
                                                 std::move(list),
                                                 rng_->Bernoulli(0.3));
      }
      [[fallthrough]];
    case 1:  // column vs literal near its range
      if (PickColumn(scope, 'n', &alias, &column)) {
        return MakeCmp(RandomComparisonOp(rng_), ColumnRef(alias, column),
                       LiteralNear(column));
      }
      [[fallthrough]];
    case 2: {  // BETWEEN
      if (PickColumn(scope, 'n', &alias, &column)) {
        ExprPtr low = LiteralNear(column);
        ExprPtr high = LiteralNear(column);
        return std::make_unique<sql::BetweenExpr>(
            ColumnRef(alias, column), std::move(low), std::move(high),
            rng_->Bernoulli(0.2));
      }
      return MakeCmp(BinaryOp::kGt, MakeInt(1), MakeInt(0));
    }
    case 3:  // int IN-list
      if (PickColumn(scope, 'i', &alias, &column)) {
        std::vector<ExprPtr> list;
        const int n = static_cast<int>(rng_->UniformInt(1, 4));
        for (int i = 0; i < n; ++i) list.push_back(LiteralNear(column));
        return std::make_unique<sql::InListExpr>(ColumnRef(alias, column),
                                                 std::move(list),
                                                 rng_->Bernoulli(0.3));
      }
      [[fallthrough]];
    case 4:  // IS [NOT] NULL
      if (PickColumn(scope, 'a', &alias, &column)) {
        return std::make_unique<sql::IsNullExpr>(ColumnRef(alias, column),
                                                 rng_->Bernoulli(0.5));
      }
      [[fallthrough]];
    default:  // scalar vs scalar
      return MakeCmp(RandomComparisonOp(rng_), NumericScalar(scope, 1),
                     NumericScalar(scope, 1));
  }
}

ExprPtr QueryGenerator::Predicate(const Scope& scope, int depth) {
  if (depth <= 0) return Comparison(scope);
  switch (rng_->Uniform(10)) {
    case 0:
    case 1:
    case 2:
      return std::make_unique<sql::BinaryExpr>(BinaryOp::kAnd,
                                               Predicate(scope, depth - 1),
                                               Predicate(scope, depth - 1));
    case 3:
    case 4:
      return std::make_unique<sql::BinaryExpr>(BinaryOp::kOr,
                                               Predicate(scope, depth - 1),
                                               Predicate(scope, depth - 1));
    case 5:
      return std::make_unique<sql::UnaryExpr>(sql::UnaryOp::kNot,
                                              Predicate(scope, depth - 1));
    default:
      return Comparison(scope);
  }
}

std::unique_ptr<sql::SelectStatement> QueryGenerator::SimpleSubquery(
    const Scope& outer, bool correlated, bool scalar_agg) {
  const TablePlan& table = RandomTable();
  const std::string alias = "s" + std::to_string(alias_counter_++);
  Scope inner_scope;
  inner_scope.push_back(BindTable(table, alias));

  auto stmt = std::make_unique<sql::SelectStatement>();
  if (scalar_agg) {
    // A guaranteed-single-row subquery: one global aggregate.
    std::string agg_alias;
    ColumnInfo agg_column;
    sql::SelectItem item;
    if (PickColumn(inner_scope, 'n', &agg_alias, &agg_column) &&
        agg_column.type != TypeId::kDate && rng_->Bernoulli(0.7)) {
      static constexpr std::array<const char*, 4> kAggs = {"sum", "min",
                                                           "max", "avg"};
      std::vector<ExprPtr> args;
      args.push_back(ColumnRef(agg_alias, agg_column));
      item.expr = std::make_unique<sql::FunctionCallExpr>(
          kAggs[rng_->Uniform(kAggs.size())], std::move(args), false, false);
    } else {
      item.expr = std::make_unique<sql::FunctionCallExpr>(
          "count", std::vector<ExprPtr>(), true, false);
    }
    stmt->items.push_back(std::move(item));
  } else {
    std::string col_alias;
    ColumnInfo column;
    sql::SelectItem item;
    if (!PickColumn(inner_scope, 'i', &col_alias, &column)) {
      col_alias = alias;
      column = inner_scope[0].columns[0];
    }
    item.expr = ColumnRef(col_alias, column);
    stmt->items.push_back(std::move(item));
  }

  sql::FromItem from;
  from.table.kind = sql::TableRef::Kind::kBaseTable;
  from.table.name = table.name;
  from.table.alias = alias;
  stmt->from.push_back(std::move(from));

  ExprPtr where;
  if (rng_->Bernoulli(0.7)) where = Predicate(inner_scope, 1);
  if (correlated) {
    // One conjunct ties an inner column to an outer column; the planner
    // turns it into the semi/anti-join condition.
    std::string inner_alias;
    std::string outer_alias;
    ColumnInfo inner_column;
    ColumnInfo outer_column;
    if (PickColumn(inner_scope, 'i', &inner_alias, &inner_column) &&
        PickColumn(outer, 'i', &outer_alias, &outer_column)) {
      ExprPtr link = MakeCmp(
          rng_->Bernoulli(0.7) ? BinaryOp::kEq : RandomComparisonOp(rng_),
          ColumnRef(inner_alias, inner_column),
          ColumnRef(outer_alias, outer_column));
      where = where == nullptr
                  ? std::move(link)
                  : std::make_unique<sql::BinaryExpr>(
                        BinaryOp::kAnd, std::move(where), std::move(link));
    }
  }
  stmt->where = std::move(where);
  return stmt;
}

ExprPtr QueryGenerator::SubqueryPredicate(const Scope& outer) {
  switch (rng_->Uniform(3)) {
    case 0: {  // [NOT] EXISTS (...), possibly correlated
      auto sub = SimpleSubquery(outer, rng_->Bernoulli(0.6), false);
      return std::make_unique<sql::ExistsExpr>(std::move(sub),
                                               rng_->Bernoulli(0.3));
    }
    case 1: {  // value [NOT] IN (SELECT intcol ...), uncorrelated
      auto sub = SimpleSubquery(outer, false, false);
      std::string alias;
      ColumnInfo column;
      ExprPtr value = PickColumn(outer, 'i', &alias, &column)
                          ? ColumnRef(alias, column)
                          : MakeInt(rng_->UniformInt(0, 50));
      return std::make_unique<sql::InSubqueryExpr>(
          std::move(value), std::move(sub), rng_->Bernoulli(0.3));
    }
    default: {  // scalar cmp (SELECT agg ...)
      auto sub = SimpleSubquery(outer, false, true);
      return MakeCmp(RandomComparisonOp(rng_), NumericScalar(outer, 1),
                     std::make_unique<sql::ScalarSubqueryExpr>(
                         std::move(sub)));
    }
  }
}

GeneratedQuery QueryGenerator::Generate() { return GenerateSelect(); }

GeneratedQuery QueryGenerator::GenerateSelect() {
  GeneratedQuery query;
  auto stmt = std::make_unique<sql::SelectStatement>();
  Scope scope;

  // FROM: 1..max_from_items tables (base tables or one derived table).
  const int max_items = std::min<int>(options_.max_from_items, 3);
  const uint64_t roll = rng_->Uniform(100);
  const int num_from = roll < 50 ? 1 : (roll < 85 ? std::min(2, max_items)
                                                  : max_items);
  for (int i = 0; i < num_from; ++i) {
    sql::FromItem item;
    const std::string alias = "f" + std::to_string(alias_counter_++);
    if (i == 0 && rng_->Bernoulli(0.15)) {
      // Derived table: a simple projection+filter subquery whose output
      // columns get fresh aliases.
      const TablePlan& table = RandomTable();
      const std::string inner_alias = "d" + std::to_string(alias_counter_++);
      Scope inner_scope;
      inner_scope.push_back(BindTable(table, inner_alias));
      auto sub = std::make_unique<sql::SelectStatement>();
      Binding binding;
      binding.alias = alias;
      const size_t keep = 1 + rng_->Uniform(inner_scope[0].columns.size());
      for (size_t c = 0; c < keep; ++c) {
        const ColumnInfo& column = inner_scope[0].columns[c];
        sql::SelectItem sub_item;
        sub_item.expr = ColumnRef(inner_alias, column);
        sub->items.push_back(std::move(sub_item));
        item.table.column_aliases.push_back("v" + std::to_string(c));
        ColumnInfo renamed = column;
        renamed.name = item.table.column_aliases.back();
        binding.columns.push_back(std::move(renamed));
      }
      sql::FromItem sub_from;
      sub_from.table.kind = sql::TableRef::Kind::kBaseTable;
      sub_from.table.name = table.name;
      sub_from.table.alias = inner_alias;
      sub->from.push_back(std::move(sub_from));
      if (rng_->Bernoulli(0.6)) sub->where = Predicate(inner_scope, 1);
      item.table.kind = sql::TableRef::Kind::kSubquery;
      item.table.alias = alias;
      item.table.subquery = std::move(sub);
      scope.push_back(std::move(binding));
    } else {
      const TablePlan& table = RandomTable();
      item.table.kind = sql::TableRef::Kind::kBaseTable;
      item.table.name = table.name;
      item.table.alias = alias;
      scope.push_back(BindTable(table, alias));
    }
    if (i > 0) {
      const uint64_t join_roll = rng_->Uniform(100);
      if (join_roll < 25) {
        item.join_type = sql::JoinType::kCross;
      } else {
        item.join_type = join_roll < 70 ? sql::JoinType::kInner
                                        : sql::JoinType::kLeft;
        // Equi-join between an earlier int column and one of the new
        // table's int columns, plus an occasional extra conjunct.
        Scope left_scope(scope.begin(), scope.end() - 1);
        Scope right_scope(scope.end() - 1, scope.end());
        std::string left_alias;
        std::string right_alias;
        ColumnInfo left_column;
        ColumnInfo right_column;
        ExprPtr condition;
        if (PickColumn(left_scope, 'i', &left_alias, &left_column) &&
            PickColumn(right_scope, 'i', &right_alias, &right_column)) {
          condition = MakeCmp(BinaryOp::kEq,
                              ColumnRef(left_alias, left_column),
                              ColumnRef(right_alias, right_column));
        } else {
          condition = Predicate(scope, 1);
        }
        if (rng_->Bernoulli(0.3)) {
          condition = std::make_unique<sql::BinaryExpr>(
              BinaryOp::kAnd, std::move(condition), Comparison(scope));
        }
        item.join_condition = std::move(condition);
      }
    }
    stmt->from.push_back(std::move(item));
  }

  const bool aggregate = rng_->Bernoulli(0.35);
  if (aggregate) {
    // GROUP BY 0-2 columns; select list = group columns + aggregates.
    const int num_groups = static_cast<int>(rng_->UniformInt(0, 2));
    std::vector<std::pair<std::string, ColumnInfo>> group_cols;
    for (int g = 0; g < num_groups; ++g) {
      std::string alias;
      ColumnInfo column;
      if (!PickColumn(scope, 'a', &alias, &column)) break;
      bool duplicate = false;
      for (const auto& [a, c] : group_cols) {
        if (a == alias && c.name == column.name) duplicate = true;
      }
      if (duplicate) continue;
      group_cols.emplace_back(alias, column);
    }
    for (const auto& [alias, column] : group_cols) {
      stmt->group_by.push_back(ColumnRef(alias, column));
      sql::SelectItem item;
      item.expr = ColumnRef(alias, column);
      stmt->items.push_back(std::move(item));
    }
    const int num_aggs = static_cast<int>(rng_->UniformInt(1, 3));
    for (int a = 0; a < num_aggs; ++a) {
      sql::SelectItem item;
      std::string alias;
      ColumnInfo column;
      switch (rng_->Uniform(6)) {
        case 0:
          item.expr = std::make_unique<sql::FunctionCallExpr>(
              "count", std::vector<ExprPtr>(), true, false);
          break;
        case 1:
        case 2:
          if (PickColumn(scope, 'n', &alias, &column) &&
              column.type != TypeId::kDate) {
            std::vector<ExprPtr> args;
            args.push_back(ColumnRef(alias, column));
            item.expr = std::make_unique<sql::FunctionCallExpr>(
                rng_->Bernoulli(0.5) ? "sum" : "avg", std::move(args), false,
                false);
            break;
          }
          [[fallthrough]];
        case 3:
        case 4:
          if (PickColumn(scope, 'a', &alias, &column) &&
              column.type != TypeId::kBool) {
            std::vector<ExprPtr> args;
            args.push_back(ColumnRef(alias, column));
            item.expr = std::make_unique<sql::FunctionCallExpr>(
                rng_->Bernoulli(0.5) ? "min" : "max", std::move(args), false,
                false);
            break;
          }
          [[fallthrough]];
        default: {
          if (!PickColumn(scope, 'a', &alias, &column)) {
            item.expr = std::make_unique<sql::FunctionCallExpr>(
                "count", std::vector<ExprPtr>(), true, false);
            break;
          }
          std::vector<ExprPtr> args;
          args.push_back(ColumnRef(alias, column));
          item.expr = std::make_unique<sql::FunctionCallExpr>(
              "count", std::move(args), false, rng_->Bernoulli(0.3));
          break;
        }
      }
      stmt->items.push_back(std::move(item));
    }
    if (rng_->Bernoulli(0.4)) {
      // HAVING over an aggregate (COUNT(*) keeps it always well-typed).
      ExprPtr agg = std::make_unique<sql::FunctionCallExpr>(
          "count", std::vector<ExprPtr>(), true, false);
      stmt->having = MakeCmp(RandomComparisonOp(rng_), std::move(agg),
                             MakeInt(rng_->UniformInt(0, 10)));
    }
  } else {
    // Plain select list: columns, arithmetic, or CASE.
    if (num_from == 1 && rng_->Bernoulli(0.1)) {
      sql::SelectItem item;
      item.expr = std::make_unique<sql::StarExpr>();
      stmt->items.push_back(std::move(item));
      query.stmt = std::move(stmt);
      // SELECT * keeps no ORDER BY/LIMIT bookkeeping; compare unordered.
      if (rng_->Bernoulli(0.2)) query.stmt->distinct = true;
      if (rng_->Bernoulli(0.75)) {
        query.stmt->where = Predicate(scope, options_.max_predicate_depth);
      }
      return query;
    }
    const int num_items = static_cast<int>(rng_->UniformInt(1, 4));
    for (int i = 0; i < num_items; ++i) {
      sql::SelectItem item;
      const uint64_t pick = rng_->Uniform(10);
      std::string alias;
      ColumnInfo column;
      if (pick < 7 && PickColumn(scope, 'a', &alias, &column)) {
        item.expr = ColumnRef(alias, column);
      } else if (pick < 9) {
        item.expr = NumericScalar(scope, 2);
      } else {
        // CASE WHEN pred THEN int WHEN pred THEN int [ELSE int] END
        std::vector<std::pair<ExprPtr, ExprPtr>> branches;
        const int num_branches = static_cast<int>(rng_->UniformInt(1, 2));
        for (int b = 0; b < num_branches; ++b) {
          branches.emplace_back(Predicate(scope, 1),
                                MakeInt(rng_->UniformInt(0, 100)));
        }
        ExprPtr else_result =
            rng_->Bernoulli(0.7) ? MakeInt(rng_->UniformInt(0, 100))
                                 : nullptr;
        item.expr = std::make_unique<sql::CaseExpr>(std::move(branches),
                                                    std::move(else_result));
      }
      stmt->items.push_back(std::move(item));
    }
    stmt->distinct = rng_->Bernoulli(0.2);
  }

  // WHERE: a random predicate, plus (top-level conjunct only) an optional
  // subquery predicate — the planner de-correlates EXISTS/IN only there.
  ExprPtr where;
  if (rng_->Bernoulli(0.75)) {
    where = Predicate(scope, options_.max_predicate_depth);
  }
  if (!aggregate && rng_->Bernoulli(0.2)) {
    ExprPtr sub = SubqueryPredicate(scope);
    where = where == nullptr ? std::move(sub)
                             : std::make_unique<sql::BinaryExpr>(
                                   BinaryOp::kAnd, std::move(where),
                                   std::move(sub));
  }
  stmt->where = std::move(where);

  // ORDER BY covers every select item (so LIMIT output is a unique
  // multiset even with duplicate sort keys); random key order/direction.
  if (rng_->Bernoulli(aggregate ? 0.6 : 0.5)) {
    std::vector<size_t> perm(stmt->items.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng_->Uniform(i)]);
    }
    for (size_t i : perm) {
      sql::OrderByItem item;
      item.expr = CloneExpr(*stmt->items[i].expr);
      item.ascending = rng_->Bernoulli(0.7);
      query.sort_columns.emplace_back(i, item.ascending);
      stmt->order_by.push_back(std::move(item));
    }
    if (rng_->Bernoulli(0.4)) {
      stmt->limit = rng_->UniformInt(0, 30);
    }
  }

  query.stmt = std::move(stmt);
  return query;
}

}  // namespace vdb::fuzz
