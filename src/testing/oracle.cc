#include "testing/oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "storage/heap_file.h"
#include "util/string_util.h"

namespace vdb::fuzz {

namespace {

using catalog::TypeId;
using catalog::Tuple;
using catalog::Value;
using sql::BinaryOp;
using sql::ExprType;

// ---------------------------------------------------------------------------
// Type rules (mirroring plan/planner.cc so the oracle errors exactly where
// the binder errors).

Result<TypeId> ArithResultType(BinaryOp op, TypeId left, TypeId right) {
  if (left == TypeId::kString || right == TypeId::kString ||
      left == TypeId::kBool || right == TypeId::kBool) {
    return Status::InvalidArgument("arithmetic on non-numeric operand");
  }
  if (left == TypeId::kDouble || right == TypeId::kDouble) {
    if (op == BinaryOp::kMod) {
      return Status::InvalidArgument("MOD requires integer operands");
    }
    return TypeId::kDouble;
  }
  if (left == TypeId::kDate || right == TypeId::kDate) {
    if (op == BinaryOp::kAdd || op == BinaryOp::kSub) {
      return (left == TypeId::kDate && right == TypeId::kDate)
                 ? TypeId::kInt64
                 : TypeId::kDate;
    }
    return Status::InvalidArgument("invalid arithmetic on DATE");
  }
  return TypeId::kInt64;
}

Status CheckComparable(TypeId left, TypeId right) {
  if ((left == TypeId::kString) != (right == TypeId::kString)) {
    return Status::InvalidArgument(
        "cannot compare string with non-string value");
  }
  return Status::OK();
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

// SQL LIKE matcher, written independently from util/string_util's
// (recursive, obviously correct) so the oracle does not share the engine's
// matching code.
bool RefLikeMatch(std::string_view value, std::string_view pattern) {
  if (pattern.empty()) return value.empty();
  if (pattern[0] == '%') {
    for (size_t skip = 0; skip <= value.size(); ++skip) {
      if (RefLikeMatch(value.substr(skip), pattern.substr(1))) return true;
    }
    return false;
  }
  if (value.empty()) return false;
  if (pattern[0] != '_' && pattern[0] != value[0]) return false;
  return RefLikeMatch(value.substr(1), pattern.substr(1));
}

// Three-valued boolean helpers: Value is Bool or null-Bool.
Value Bool3(bool b) { return Value::Bool(b); }
Value Null3() { return Value::Null(TypeId::kBool); }
bool IsTrue(const Value& v) { return !v.is_null() && v.AsBool(); }

// Output column name for a select item (mirrors ColumnNameForItem).
std::string ItemName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->type == ExprType::kColumnRef) {
    return static_cast<const sql::ColumnRefExpr*>(item.expr.get())->column;
  }
  return item.expr->ToString();
}

// ---------------------------------------------------------------------------
// Aggregate bookkeeping

enum class RefAggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

struct RefAggCall {
  const sql::FunctionCallExpr* call = nullptr;
  RefAggKind kind = RefAggKind::kCountStar;
  bool distinct = false;
  TypeId output_type = TypeId::kInt64;
  std::string text;
};

// Mirrors the executor's AggState: SUM/AVG accumulate in double; DISTINCT
// dedups on "<type>:<ToString>"; MIN/MAX use Value::Compare.
struct RefAggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_double = false;
  Value min_value;
  Value max_value;
  bool has_min_max = false;
  std::set<std::string> distinct_seen;

  void Update(const RefAggCall& call, const Value& v) {
    if (call.kind == RefAggKind::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (call.distinct) {
      std::string key = std::to_string(static_cast<int>(v.type())) + ":" +
                        v.ToString();
      if (!distinct_seen.insert(std::move(key)).second) return;
    }
    ++count;
    switch (call.kind) {
      case RefAggKind::kSum:
      case RefAggKind::kAvg:
        sum += v.AsDouble();
        sum_is_double = sum_is_double || v.type() == TypeId::kDouble;
        break;
      case RefAggKind::kMin:
      case RefAggKind::kMax:
        if (!has_min_max || Value::Compare(v, min_value) < 0) min_value = v;
        if (!has_min_max || Value::Compare(v, max_value) > 0) max_value = v;
        has_min_max = true;
        break;
      default:
        break;
    }
  }

  Value Finalize(const RefAggCall& call) const {
    switch (call.kind) {
      case RefAggKind::kCountStar:
      case RefAggKind::kCount:
        return Value::Int64(count);
      case RefAggKind::kSum:
        if (count == 0) return Value::Null(call.output_type);
        if (call.output_type == TypeId::kDouble || sum_is_double) {
          return Value::Double(sum);
        }
        return Value::Int64(static_cast<int64_t>(sum));
      case RefAggKind::kAvg:
        if (count == 0) return Value::Null(TypeId::kDouble);
        return Value::Double(sum / static_cast<double>(count));
      case RefAggKind::kMin:
        return has_min_max ? min_value : Value::Null(call.output_type);
      case RefAggKind::kMax:
        return has_min_max ? max_value : Value::Null(call.output_type);
    }
    return Value::Null(call.output_type);
  }
};

// ---------------------------------------------------------------------------
// Evaluator

/// One FROM binding with resolved column names/types and a slot offset
/// into the concatenated row.
struct Frame {
  std::string alias;
  std::vector<std::string> names;
  std::vector<TypeId> types;
  size_t offset = 0;
};

/// Environment for resolution and evaluation. `row` is null while only
/// type checking. `parent` links an EXISTS subquery to its outer row.
struct Env {
  const Env* parent = nullptr;
  const std::vector<Frame>* frames = nullptr;
  const Tuple* row = nullptr;
};

struct ResolvedColumn {
  const Env* env = nullptr;
  size_t slot = 0;
  TypeId type = TypeId::kInt64;
};

class Evaluator {
 public:
  explicit Evaluator(catalog::Catalog* cat) : catalog_(cat) {}

  Result<RefResult> EvaluateSelect(const sql::SelectStatement& stmt,
                                   const Env* outer);

 private:
  // --- resolution ---------------------------------------------------------
  Result<ResolvedColumn> Resolve(const sql::ColumnRefExpr& ref,
                                 const Env& env) const;

  // --- static type checking (mirrors the binder) --------------------------
  Result<TypeId> TypeCheck(const sql::Expr& expr, const Env& env);
  Status TypeCheckStatement(const sql::SelectStatement& stmt,
                            const Env& env);

  // --- aggregate collection (mirrors Planner::CollectAggregates) ----------
  Status CollectAggregates(const sql::Expr& expr,
                           std::vector<const sql::FunctionCallExpr*>* out);

  // --- evaluation ---------------------------------------------------------
  Result<Value> Eval(const sql::Expr& expr, const Env& env);
  Result<Value> EvalBinary(const sql::BinaryExpr& expr, const Env& env);
  Result<bool> EvalExists(const sql::ExistsExpr& exists, const Env& env);
  Result<Value> EvalScalarSubquery(const sql::SelectStatement& sub);
  Result<Value> EvalInSubquery(const sql::InSubqueryExpr& in,
                               const Env& env);
  /// Post-aggregation evaluation: group-by expressions and aggregate calls
  /// resolve by text against the group's values (mirrors BindPostAggExpr).
  Result<Value> EvalPostAgg(const sql::Expr& expr,
                            const std::vector<std::string>& group_texts,
                            const Tuple& group_values,
                            const std::vector<RefAggCall>& agg_calls,
                            const Tuple& agg_values);

  /// Materializes one FROM source (base table or derived subquery).
  Status MaterializeSource(const sql::TableRef& ref, Frame* frame,
                           std::vector<Tuple>* rows);

  catalog::Catalog* catalog_;
  std::map<const sql::SelectStatement*, Value> scalar_cache_;
};

Result<ResolvedColumn> Evaluator::Resolve(const sql::ColumnRefExpr& ref,
                                          const Env& env) const {
  for (const Env* e = &env; e != nullptr; e = e->parent) {
    const ResolvedColumn* found = nullptr;
    ResolvedColumn candidate;
    bool ambiguous = false;
    for (const Frame& frame : *e->frames) {
      if (!ref.table.empty() && !EqualsIgnoreCase(frame.alias, ref.table)) {
        continue;
      }
      for (size_t c = 0; c < frame.names.size(); ++c) {
        if (!EqualsIgnoreCase(frame.names[c], ref.column)) continue;
        if (found != nullptr) ambiguous = true;
        candidate.env = e;
        candidate.slot = frame.offset + c;
        candidate.type = frame.types[c];
        found = &candidate;
      }
    }
    if (ambiguous) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     ref.ToString());
    }
    if (found != nullptr) return candidate;
  }
  return Status::NotFound("column not found: " + ref.ToString());
}

Result<TypeId> Evaluator::TypeCheck(const sql::Expr& expr, const Env& env) {
  switch (expr.type) {
    case ExprType::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value.type();
    case ExprType::kColumnRef: {
      VDB_ASSIGN_OR_RETURN(
          ResolvedColumn column,
          Resolve(static_cast<const sql::ColumnRefExpr&>(expr), env));
      return column.type;
    }
    case ExprType::kStar:
      return Status::InvalidArgument("'*' is not valid here");
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId operand, TypeCheck(*unary.operand, env));
      if (unary.op == sql::UnaryOp::kNot) {
        if (operand != TypeId::kBool) {
          return Status::InvalidArgument("NOT requires a boolean operand");
        }
        return TypeId::kBool;
      }
      if (operand == TypeId::kString || operand == TypeId::kBool) {
        return Status::InvalidArgument("unary minus on non-numeric");
      }
      return operand;
    }
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId left, TypeCheck(*binary.left, env));
      VDB_ASSIGN_OR_RETURN(TypeId right, TypeCheck(*binary.right, env));
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        if (left != TypeId::kBool || right != TypeId::kBool) {
          return Status::InvalidArgument("AND/OR require boolean operands");
        }
        return TypeId::kBool;
      }
      if (IsComparisonOp(binary.op)) {
        VDB_RETURN_NOT_OK(CheckComparable(left, right));
        return TypeId::kBool;
      }
      return ArithResultType(binary.op, left, right);
    }
    case ExprType::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      if (!IsAggregateName(call.name)) {
        return Status::NotSupported("unknown function: " + call.name);
      }
      if (call.star) return TypeId::kInt64;
      if (call.args.size() != 1) {
        return Status::InvalidArgument("aggregate " + call.name +
                                       " takes exactly one argument");
      }
      VDB_ASSIGN_OR_RETURN(TypeId arg, TypeCheck(*call.args[0], env));
      if ((call.name == "sum" || call.name == "avg") &&
          (arg == TypeId::kString || arg == TypeId::kBool)) {
        return Status::InvalidArgument("sum/avg require a numeric argument");
      }
      if (call.name == "count") return TypeId::kInt64;
      if (call.name == "avg") return TypeId::kDouble;
      return arg;
    }
    case ExprType::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId value, TypeCheck(*between.value, env));
      VDB_ASSIGN_OR_RETURN(TypeId low, TypeCheck(*between.low, env));
      VDB_ASSIGN_OR_RETURN(TypeId high, TypeCheck(*between.high, env));
      VDB_RETURN_NOT_OK(CheckComparable(value, low));
      VDB_RETURN_NOT_OK(CheckComparable(value, high));
      return TypeId::kBool;
    }
    case ExprType::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId value, TypeCheck(*in.value, env));
      for (const sql::ExprPtr& item : in.list) {
        if (item->type != ExprType::kLiteral) {
          return Status::NotSupported("IN list elements must be constants");
        }
        VDB_ASSIGN_OR_RETURN(TypeId element, TypeCheck(*item, env));
        VDB_RETURN_NOT_OK(CheckComparable(value, element));
      }
      return TypeId::kBool;
    }
    case ExprType::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId value, TypeCheck(*in.value, env));
      // The subquery is planned standalone (uncorrelated).
      Env empty;
      std::vector<Frame> no_frames;
      empty.frames = &no_frames;
      VDB_ASSIGN_OR_RETURN(RefResult sub,
                           EvaluateSelect(*in.subquery, nullptr));
      if (sub.column_types.size() != 1) {
        return Status::InvalidArgument(
            "IN subquery must produce exactly one column, got " +
            std::to_string(sub.column_types.size()));
      }
      VDB_RETURN_NOT_OK(CheckComparable(value, sub.column_types[0]));
      return TypeId::kBool;
    }
    case ExprType::kScalarSubquery: {
      const auto& scalar = static_cast<const sql::ScalarSubqueryExpr&>(expr);
      const sql::SelectStatement& sub = *scalar.subquery;
      bool has_aggregate = false;
      for (const sql::SelectItem& item : sub.items) {
        if (item.expr->type == ExprType::kStar) continue;
        std::vector<const sql::FunctionCallExpr*> found;
        VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &found));
        has_aggregate = has_aggregate || !found.empty();
      }
      if (!has_aggregate || !sub.group_by.empty()) {
        return Status::NotSupported(
            "scalar subqueries must be single-row global aggregates");
      }
      VDB_ASSIGN_OR_RETURN(Value v, EvalScalarSubquery(sub));
      return v.type();
    }
    case ExprType::kLike: {
      const auto& like = static_cast<const sql::LikeExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(TypeId value, TypeCheck(*like.value, env));
      if (value != TypeId::kString) {
        return Status::InvalidArgument("LIKE requires a string operand");
      }
      return TypeId::kBool;
    }
    case ExprType::kIsNull:
      VDB_RETURN_NOT_OK(
          TypeCheck(*static_cast<const sql::IsNullExpr&>(expr).value, env)
              .status());
      return TypeId::kBool;
    case ExprType::kExists: {
      const auto& exists = static_cast<const sql::ExistsExpr&>(expr);
      const sql::SelectStatement& sub = *exists.subquery;
      if (!sub.group_by.empty() || sub.having != nullptr ||
          sub.from.empty()) {
        return Status::NotSupported(
            "EXISTS subqueries with grouping are not supported");
      }
      if (sub.limit >= 0) {
        return Status::NotSupported(
            "LIMIT in EXISTS subqueries is not supported");
      }
      // FROM binds without outer scope; WHERE sees outer (correlation).
      std::vector<Frame> frames;
      size_t offset = 0;
      for (const sql::FromItem& item : sub.from) {
        Frame frame;
        std::vector<Tuple> ignored;
        VDB_RETURN_NOT_OK(MaterializeSource(item.table, &frame, &ignored));
        frame.offset = offset;
        offset += frame.names.size();
        if (item.join_condition != nullptr) {
          Env join_env;
          join_env.frames = &frames;
          // join conditions bind against inner scope only
          std::vector<Frame> so_far = frames;
          so_far.push_back(frame);
          Env inner_env;
          inner_env.frames = &so_far;
          VDB_ASSIGN_OR_RETURN(TypeId cond,
                               TypeCheck(*item.join_condition, inner_env));
          if (cond != TypeId::kBool) {
            return Status::InvalidArgument("join condition must be boolean");
          }
        }
        frames.push_back(std::move(frame));
      }
      if (sub.where != nullptr) {
        Env combined;
        combined.parent = &env;
        combined.frames = &frames;
        VDB_ASSIGN_OR_RETURN(TypeId where, TypeCheck(*sub.where, combined));
        if (where != TypeId::kBool) {
          return Status::InvalidArgument("WHERE predicate must be boolean");
        }
      }
      return TypeId::kBool;
    }
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      TypeId result_type = TypeId::kInt64;
      bool type_set = false;
      for (const auto& [when, then] : case_expr.branches) {
        VDB_ASSIGN_OR_RETURN(TypeId when_type, TypeCheck(*when, env));
        if (when_type != TypeId::kBool) {
          return Status::InvalidArgument("CASE WHEN must be boolean");
        }
        VDB_ASSIGN_OR_RETURN(TypeId then_type, TypeCheck(*then, env));
        if (!type_set) {
          result_type = then_type;
          type_set = true;
        } else if (then_type == TypeId::kDouble &&
                   result_type == TypeId::kInt64) {
          result_type = TypeId::kDouble;
        } else if (then_type == TypeId::kInt64 &&
                   result_type == TypeId::kDouble) {
          // keep double
        } else if (then_type != result_type) {
          return Status::InvalidArgument(
              "CASE branches have incompatible types");
        }
      }
      if (case_expr.else_result != nullptr) {
        VDB_ASSIGN_OR_RETURN(TypeId else_type,
                             TypeCheck(*case_expr.else_result, env));
        if (else_type == TypeId::kDouble && result_type == TypeId::kInt64) {
          result_type = TypeId::kDouble;
        }
      }
      return result_type;
    }
  }
  return Status::Internal("unhandled expression type");
}

Status Evaluator::CollectAggregates(
    const sql::Expr& expr,
    std::vector<const sql::FunctionCallExpr*>* out) {
  switch (expr.type) {
    case ExprType::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      if (!IsAggregateName(call.name)) {
        return Status::NotSupported("unknown function: " + call.name);
      }
      for (const sql::ExprPtr& arg : call.args) {
        std::vector<const sql::FunctionCallExpr*> nested;
        VDB_RETURN_NOT_OK(CollectAggregates(*arg, &nested));
        if (!nested.empty()) {
          return Status::InvalidArgument("aggregates cannot be nested");
        }
      }
      for (const sql::FunctionCallExpr* existing : *out) {
        if (existing->ToString() == call.ToString()) return Status::OK();
      }
      out->push_back(&call);
      return Status::OK();
    }
    case ExprType::kUnary:
      return CollectAggregates(
          *static_cast<const sql::UnaryExpr&>(expr).operand, out);
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*binary.left, out));
      return CollectAggregates(*binary.right, out);
    }
    case ExprType::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*between.value, out));
      VDB_RETURN_NOT_OK(CollectAggregates(*between.low, out));
      return CollectAggregates(*between.high, out);
    }
    case ExprType::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      VDB_RETURN_NOT_OK(CollectAggregates(*in.value, out));
      for (const sql::ExprPtr& item : in.list) {
        VDB_RETURN_NOT_OK(CollectAggregates(*item, out));
      }
      return Status::OK();
    }
    case ExprType::kInSubquery:
      return CollectAggregates(
          *static_cast<const sql::InSubqueryExpr&>(expr).value, out);
    case ExprType::kLike:
      return CollectAggregates(
          *static_cast<const sql::LikeExpr&>(expr).value, out);
    case ExprType::kIsNull:
      return CollectAggregates(
          *static_cast<const sql::IsNullExpr&>(expr).value, out);
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [when, then] : case_expr.branches) {
        VDB_RETURN_NOT_OK(CollectAggregates(*when, out));
        VDB_RETURN_NOT_OK(CollectAggregates(*then, out));
      }
      if (case_expr.else_result != nullptr) {
        return CollectAggregates(*case_expr.else_result, out);
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Result<Value> Evaluator::EvalBinary(const sql::BinaryExpr& expr,
                                    const Env& env) {
  // AND/OR: three-valued logic with short-circuiting (safe because every
  // operand was type-checked up front).
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    VDB_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left, env));
    const bool l_null = lv.is_null();
    const bool l_true = !l_null && lv.AsBool();
    if (expr.op == BinaryOp::kAnd && !l_null && !l_true) return Bool3(false);
    if (expr.op == BinaryOp::kOr && l_true) return Bool3(true);
    VDB_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right, env));
    const bool r_null = rv.is_null();
    const bool r_true = !r_null && rv.AsBool();
    if (expr.op == BinaryOp::kAnd) {
      if (!r_null && !r_true) return Bool3(false);
      if (l_null || r_null) return Null3();
      return Bool3(true);
    }
    if (r_true) return Bool3(true);
    if (l_null || r_null) return Null3();
    return Bool3(false);
  }

  VDB_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left, env));
  VDB_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right, env));
  if (IsComparisonOp(expr.op)) {
    if (lv.is_null() || rv.is_null()) return Null3();
    const int cmp = Value::Compare(lv, rv);
    switch (expr.op) {
      case BinaryOp::kEq:
        return Bool3(cmp == 0);
      case BinaryOp::kNe:
        return Bool3(cmp != 0);
      case BinaryOp::kLt:
        return Bool3(cmp < 0);
      case BinaryOp::kLe:
        return Bool3(cmp <= 0);
      case BinaryOp::kGt:
        return Bool3(cmp > 0);
      default:
        return Bool3(cmp >= 0);
    }
  }

  // Arithmetic: result type from the operands' static types (null values
  // still carry their type tags).
  VDB_ASSIGN_OR_RETURN(TypeId type,
                       ArithResultType(expr.op, lv.type(), rv.type()));
  if (lv.is_null() || rv.is_null()) return Value::Null(type);
  if (type == TypeId::kDouble) {
    const double a = lv.AsDouble();
    const double b = rv.AsDouble();
    switch (expr.op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        return b == 0.0 ? Value::Null(TypeId::kDouble)
                        : Value::Double(a / b);
      default:
        return Status::Internal("unexpected double arithmetic op");
    }
  }
  const int64_t a = lv.AsInt64();
  const int64_t b = rv.AsInt64();
  switch (expr.op) {
    case BinaryOp::kAdd:
      return type == TypeId::kDate ? Value::Date(a + b) : Value::Int64(a + b);
    case BinaryOp::kSub:
      return type == TypeId::kDate ? Value::Date(a - b) : Value::Int64(a - b);
    case BinaryOp::kMul:
      return Value::Int64(a * b);
    case BinaryOp::kDiv:
      return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a / b);
    case BinaryOp::kMod:
      return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a % b);
    default:
      return Status::Internal("unexpected integer arithmetic op");
  }
}

Result<bool> Evaluator::EvalExists(const sql::ExistsExpr& exists,
                                   const Env& env) {
  const sql::SelectStatement& sub = *exists.subquery;
  // Materialize the subquery's FROM (uncorrelated), then test its WHERE
  // with the outer row visible. TypeCheck already rejected grouped/LIMIT
  // forms.
  std::vector<Frame> frames;
  std::vector<Tuple> rows;
  for (size_t i = 0; i < sub.from.size(); ++i) {
    Frame frame;
    std::vector<Tuple> source_rows;
    VDB_RETURN_NOT_OK(
        MaterializeSource(sub.from[i].table, &frame, &source_rows));
    frame.offset = i == 0 ? 0 : frames.back().offset +
                                    frames.back().names.size();
    if (i == 0) {
      rows = std::move(source_rows);
    } else {
      std::vector<Frame> joined = frames;
      joined.push_back(frame);
      std::vector<Tuple> next;
      for (const Tuple& left : rows) {
        bool matched = false;
        for (const Tuple& right : source_rows) {
          Tuple combined = left;
          combined.insert(combined.end(), right.begin(), right.end());
          if (sub.from[i].join_condition != nullptr) {
            Env join_env;
            join_env.frames = &joined;
            join_env.row = &combined;
            VDB_ASSIGN_OR_RETURN(
                Value v, Eval(*sub.from[i].join_condition, join_env));
            if (!IsTrue(v)) continue;
          }
          matched = true;
          next.push_back(std::move(combined));
        }
        if (sub.from[i].join_type == sql::JoinType::kLeft && !matched) {
          Tuple combined = left;
          for (TypeId type : frame.types) {
            combined.push_back(Value::Null(type));
          }
          next.push_back(std::move(combined));
        }
      }
      rows = std::move(next);
    }
    frames.push_back(std::move(frame));
  }
  for (const Tuple& row : rows) {
    if (sub.where == nullptr) return true;
    Env sub_env;
    sub_env.parent = &env;
    sub_env.frames = &frames;
    sub_env.row = &row;
    VDB_ASSIGN_OR_RETURN(Value v, Eval(*sub.where, sub_env));
    if (IsTrue(v)) return true;
  }
  return false;
}

Result<Value> Evaluator::EvalScalarSubquery(const sql::SelectStatement& sub) {
  auto it = scalar_cache_.find(&sub);
  if (it != scalar_cache_.end()) return it->second;
  VDB_ASSIGN_OR_RETURN(RefResult result, EvaluateSelect(sub, nullptr));
  if (result.column_types.size() != 1) {
    return Status::InvalidArgument(
        "scalar subquery must produce exactly one column");
  }
  if (result.rows.size() != 1) {
    return Status::Internal("scalar subquery did not yield one row");
  }
  Value v = result.rows[0][0];
  scalar_cache_.emplace(&sub, v);
  return v;
}

Result<Value> Evaluator::EvalInSubquery(const sql::InSubqueryExpr& in,
                                        const Env& env) {
  VDB_ASSIGN_OR_RETURN(Value outer, Eval(*in.value, env));
  VDB_ASSIGN_OR_RETURN(RefResult sub, EvaluateSelect(*in.subquery, nullptr));
  if (sub.column_types.size() != 1) {
    return Status::InvalidArgument(
        "IN subquery must produce exactly one column, got " +
        std::to_string(sub.column_types.size()));
  }
  // The engine plans [NOT] IN as a semi/anti join on outer = inner, i.e.
  // (NOT) EXISTS semantics: NULLs (either side) never match.
  bool matched = false;
  if (!outer.is_null()) {
    for (const Tuple& row : sub.rows) {
      if (!row[0].is_null() && Value::Compare(outer, row[0]) == 0) {
        matched = true;
        break;
      }
    }
  }
  return Bool3(in.negated ? !matched : matched);
}

Result<Value> Evaluator::Eval(const sql::Expr& expr, const Env& env) {
  switch (expr.type) {
    case ExprType::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value;
    case ExprType::kColumnRef: {
      VDB_ASSIGN_OR_RETURN(
          ResolvedColumn column,
          Resolve(static_cast<const sql::ColumnRefExpr&>(expr), env));
      return (*column.env->row)[column.slot];
    }
    case ExprType::kStar:
      return Status::InvalidArgument("'*' is not valid here");
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*unary.operand, env));
      if (v.is_null()) return v;
      if (unary.op == sql::UnaryOp::kNot) return Bool3(!v.AsBool());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return v.type() == TypeId::kDate ? Value::Date(-v.AsInt64())
                                       : Value::Int64(-v.AsInt64());
    }
    case ExprType::kBinary:
      return EvalBinary(static_cast<const sql::BinaryExpr&>(expr), env);
    case ExprType::kFunctionCall:
      return Status::InvalidArgument(
          "aggregate call outside aggregation context");
    case ExprType::kBetween: {
      // value [NOT] BETWEEN lo AND hi == (value >= lo) AND (value <= hi),
      // negated: (value < lo) OR (value > hi); NULL propagates 3VL.
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*between.value, env));
      VDB_ASSIGN_OR_RETURN(Value lo, Eval(*between.low, env));
      VDB_ASSIGN_OR_RETURN(Value hi, Eval(*between.high, env));
      Value ge = (v.is_null() || lo.is_null())
                     ? Null3()
                     : Bool3(between.negated
                                 ? Value::Compare(v, lo) < 0
                                 : Value::Compare(v, lo) >= 0);
      Value le = (v.is_null() || hi.is_null())
                     ? Null3()
                     : Bool3(between.negated
                                 ? Value::Compare(v, hi) > 0
                                 : Value::Compare(v, hi) <= 0);
      if (between.negated) {  // OR
        if (IsTrue(ge) || IsTrue(le)) return Bool3(true);
        if (ge.is_null() || le.is_null()) return Null3();
        return Bool3(false);
      }
      if ((!ge.is_null() && !ge.AsBool()) || (!le.is_null() && !le.AsBool()))
        return Bool3(false);
      if (ge.is_null() || le.is_null()) return Null3();
      return Bool3(true);
    }
    case ExprType::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*in.value, env));
      if (v.is_null()) return Null3();
      for (const sql::ExprPtr& item : in.list) {
        VDB_ASSIGN_OR_RETURN(Value candidate, Eval(*item, env));
        if (!candidate.is_null() && Value::Compare(v, candidate) == 0) {
          return Bool3(!in.negated);
        }
      }
      return Bool3(in.negated);
    }
    case ExprType::kInSubquery:
      return EvalInSubquery(static_cast<const sql::InSubqueryExpr&>(expr),
                            env);
    case ExprType::kScalarSubquery:
      return EvalScalarSubquery(
          *static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery);
    case ExprType::kLike: {
      const auto& like = static_cast<const sql::LikeExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*like.value, env));
      if (v.is_null()) return Null3();
      const bool match = RefLikeMatch(v.AsString(), like.pattern);
      return Bool3(like.negated ? !match : match);
    }
    case ExprType::kIsNull: {
      const auto& is_null = static_cast<const sql::IsNullExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*is_null.value, env));
      return Bool3(is_null.negated ? !v.is_null() : v.is_null());
    }
    case ExprType::kExists: {
      const auto& exists = static_cast<const sql::ExistsExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(bool found, EvalExists(exists, env));
      return Bool3(exists.negated ? !found : found);
    }
    case ExprType::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [when, then] : case_expr.branches) {
        VDB_ASSIGN_OR_RETURN(Value cond, Eval(*when, env));
        if (IsTrue(cond)) return Eval(*then, env);
      }
      if (case_expr.else_result != nullptr) {
        return Eval(*case_expr.else_result, env);
      }
      VDB_ASSIGN_OR_RETURN(TypeId type, TypeCheck(expr, env));
      return Value::Null(type);
    }
  }
  return Status::Internal("unhandled expression type");
}

Result<Value> Evaluator::EvalPostAgg(
    const sql::Expr& expr, const std::vector<std::string>& group_texts,
    const Tuple& group_values, const std::vector<RefAggCall>& agg_calls,
    const Tuple& agg_values) {
  const std::string text = expr.ToString();
  for (size_t g = 0; g < group_texts.size(); ++g) {
    if (group_texts[g] == text) return group_values[g];
  }
  for (size_t a = 0; a < agg_calls.size(); ++a) {
    if (agg_calls[a].text == text) return agg_values[a];
  }
  switch (expr.type) {
    case ExprType::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value;
    case ExprType::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value v,
                           EvalPostAgg(*unary.operand, group_texts,
                                       group_values, agg_calls, agg_values));
      if (v.is_null()) return v;
      if (unary.op == sql::UnaryOp::kNot) return Bool3(!v.AsBool());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return Value::Int64(-v.AsInt64());
    }
    case ExprType::kBinary: {
      const auto& binary = static_cast<const sql::BinaryExpr&>(expr);
      VDB_ASSIGN_OR_RETURN(Value lv,
                           EvalPostAgg(*binary.left, group_texts,
                                       group_values, agg_calls, agg_values));
      VDB_ASSIGN_OR_RETURN(Value rv,
                           EvalPostAgg(*binary.right, group_texts,
                                       group_values, agg_calls, agg_values));
      if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
        const bool l_null = lv.is_null();
        const bool r_null = rv.is_null();
        const bool l_true = !l_null && lv.AsBool();
        const bool r_true = !r_null && rv.AsBool();
        if (binary.op == BinaryOp::kAnd) {
          if ((!l_null && !l_true) || (!r_null && !r_true)) {
            return Bool3(false);
          }
          if (l_null || r_null) return Null3();
          return Bool3(true);
        }
        if (l_true || r_true) return Bool3(true);
        if (l_null || r_null) return Null3();
        return Bool3(false);
      }
      if (IsComparisonOp(binary.op)) {
        if (lv.is_null() || rv.is_null()) return Null3();
        const int cmp = Value::Compare(lv, rv);
        switch (binary.op) {
          case BinaryOp::kEq:
            return Bool3(cmp == 0);
          case BinaryOp::kNe:
            return Bool3(cmp != 0);
          case BinaryOp::kLt:
            return Bool3(cmp < 0);
          case BinaryOp::kLe:
            return Bool3(cmp <= 0);
          case BinaryOp::kGt:
            return Bool3(cmp > 0);
          default:
            return Bool3(cmp >= 0);
        }
      }
      VDB_ASSIGN_OR_RETURN(TypeId type,
                           ArithResultType(binary.op, lv.type(), rv.type()));
      if (lv.is_null() || rv.is_null()) return Value::Null(type);
      if (type == TypeId::kDouble) {
        const double a = lv.AsDouble();
        const double b = rv.AsDouble();
        switch (binary.op) {
          case BinaryOp::kAdd:
            return Value::Double(a + b);
          case BinaryOp::kSub:
            return Value::Double(a - b);
          case BinaryOp::kMul:
            return Value::Double(a * b);
          default:
            return b == 0.0 ? Value::Null(TypeId::kDouble)
                            : Value::Double(a / b);
        }
      }
      const int64_t a = lv.AsInt64();
      const int64_t b = rv.AsInt64();
      switch (binary.op) {
        case BinaryOp::kAdd:
          return Value::Int64(a + b);
        case BinaryOp::kSub:
          return Value::Int64(a - b);
        case BinaryOp::kMul:
          return Value::Int64(a * b);
        case BinaryOp::kDiv:
          return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a / b);
        default:
          return b == 0 ? Value::Null(TypeId::kInt64) : Value::Int64(a % b);
      }
    }
    default:
      return Status::InvalidArgument(
          "expression references a column outside GROUP BY: " + text);
  }
}

Status Evaluator::MaterializeSource(const sql::TableRef& ref, Frame* frame,
                                    std::vector<Tuple>* rows) {
  if (ref.kind == sql::TableRef::Kind::kBaseTable) {
    VDB_ASSIGN_OR_RETURN(catalog::TableInfo * table,
                         catalog_->GetTable(ref.name));
    frame->alias = ref.alias.empty() ? ref.name : ref.alias;
    for (const catalog::Column& column : table->schema.columns()) {
      frame->names.push_back(column.name);
      frame->types.push_back(column.type);
    }
    for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
      VDB_ASSIGN_OR_RETURN(
          Tuple tuple,
          catalog::DeserializeTuple(it.record(), table->schema));
      rows->push_back(std::move(tuple));
    }
    return Status::OK();
  }
  // Derived table: evaluated standalone (no correlation), column aliases
  // renaming its outputs.
  VDB_ASSIGN_OR_RETURN(RefResult sub, EvaluateSelect(*ref.subquery, nullptr));
  if (!ref.column_aliases.empty() &&
      ref.column_aliases.size() != sub.column_names.size()) {
    return Status::InvalidArgument(
        "derived table '" + ref.alias + "' has " +
        std::to_string(sub.column_names.size()) + " columns but " +
        std::to_string(ref.column_aliases.size()) + " aliases");
  }
  frame->alias = ref.alias;
  frame->names = ref.column_aliases.empty() ? sub.column_names
                                            : ref.column_aliases;
  frame->types = sub.column_types;
  *rows = std::move(sub.rows);
  return Status::OK();
}

// NULLS LAST on ascending keys, mirroring the executor's CompareForSort.
int RefCompareForSort(const Value& a, const Value& b, bool ascending) {
  const bool a_null = a.is_null();
  const bool b_null = b.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return ascending ? 1 : -1;
  if (b_null) return ascending ? -1 : 1;
  const int cmp = Value::Compare(a, b);
  return ascending ? cmp : -cmp;
}

// Equality for DISTINCT / GROUP BY keys: NULLs compare equal.
bool KeysEqual(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool a_null = a[i].is_null();
    const bool b_null = b[i].is_null();
    if (a_null != b_null) return false;
    if (a_null) continue;
    if (Value::Compare(a[i], b[i]) != 0) return false;
  }
  return true;
}

Result<RefResult> Evaluator::EvaluateSelect(const sql::SelectStatement& stmt,
                                            const Env* outer) {
  if (stmt.from.empty()) {
    return Status::NotSupported("SELECT without FROM is not supported");
  }

  // ---- FROM: nested-loop joins over fully materialized sources ----------
  std::vector<Frame> frames;
  std::vector<Tuple> rows;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const sql::FromItem& item = stmt.from[i];
    Frame frame;
    std::vector<Tuple> source_rows;
    VDB_RETURN_NOT_OK(MaterializeSource(item.table, &frame, &source_rows));
    frame.offset =
        frames.empty() ? 0 : frames.back().offset + frames.back().names.size();
    if (i == 0) {
      rows = std::move(source_rows);
      frames.push_back(std::move(frame));
      continue;
    }
    std::vector<Frame> joined = frames;
    joined.push_back(frame);
    if (item.join_condition != nullptr) {
      Env check_env;
      check_env.frames = &joined;
      VDB_ASSIGN_OR_RETURN(TypeId cond_type,
                           TypeCheck(*item.join_condition, check_env));
      if (cond_type != TypeId::kBool) {
        return Status::InvalidArgument("join condition must be boolean");
      }
    }
    std::vector<Tuple> next;
    for (const Tuple& left : rows) {
      bool matched = false;
      for (const Tuple& right : source_rows) {
        Tuple combined = left;
        combined.insert(combined.end(), right.begin(), right.end());
        if (item.join_condition != nullptr) {
          Env join_env;
          join_env.frames = &joined;
          join_env.row = &combined;
          VDB_ASSIGN_OR_RETURN(Value v,
                               Eval(*item.join_condition, join_env));
          if (!IsTrue(v)) continue;
        }
        matched = true;
        next.push_back(std::move(combined));
      }
      if (item.join_type == sql::JoinType::kLeft && !matched) {
        Tuple combined = left;
        for (TypeId type : frame.types) combined.push_back(Value::Null(type));
        next.push_back(std::move(combined));
      }
    }
    rows = std::move(next);
    frames.push_back(std::move(frame));
  }

  Env base_env;
  base_env.parent = outer;
  base_env.frames = &frames;

  // ---- Static checks before touching rows --------------------------------
  std::vector<const sql::FunctionCallExpr*> agg_asts;
  bool select_star = false;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->type == ExprType::kStar) {
      select_star = true;
      continue;
    }
    VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &agg_asts));
  }
  if (stmt.having != nullptr) {
    VDB_RETURN_NOT_OK(CollectAggregates(*stmt.having, &agg_asts));
  }
  for (const sql::OrderByItem& item : stmt.order_by) {
    VDB_RETURN_NOT_OK(CollectAggregates(*item.expr, &agg_asts));
  }
  const bool grouped = !stmt.group_by.empty() || !agg_asts.empty();
  if (grouped && select_star) {
    return Status::InvalidArgument(
        "SELECT * cannot be combined with aggregation");
  }
  if (stmt.having != nullptr && !grouped) {
    return Status::InvalidArgument("HAVING requires aggregation");
  }
  if (stmt.where != nullptr) {
    VDB_ASSIGN_OR_RETURN(TypeId where_type, TypeCheck(*stmt.where, base_env));
    if (where_type != TypeId::kBool) {
      return Status::InvalidArgument("WHERE predicate must be boolean: " +
                                     stmt.where->ToString());
    }
  }

  // ---- WHERE -------------------------------------------------------------
  if (stmt.where != nullptr) {
    std::vector<Tuple> kept;
    for (Tuple& row : rows) {
      Env env = base_env;
      env.row = &row;
      VDB_ASSIGN_OR_RETURN(Value v, Eval(*stmt.where, env));
      if (IsTrue(v)) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  RefResult result;

  // ---- Aggregation / projection ------------------------------------------
  std::vector<Tuple> projected;
  // Sort keys for the ungrouped path, evaluated against the base row
  // (mirrors the engine's sort-below-project plan shape).
  std::vector<std::vector<Value>> base_sort_keys;
  bool sorted_on_base = false;

  if (grouped) {
    // Describe each distinct aggregate call (dedup by text, as the
    // planner does).
    std::vector<RefAggCall> agg_calls;
    for (const sql::FunctionCallExpr* call : agg_asts) {
      RefAggCall described;
      described.call = call;
      described.text = call->ToString();
      described.distinct = call->distinct;
      if (call->name == "count") {
        described.kind = call->star ? RefAggKind::kCountStar
                                    : RefAggKind::kCount;
        described.output_type = TypeId::kInt64;
      } else {
        if (call->name == "sum") described.kind = RefAggKind::kSum;
        if (call->name == "avg") described.kind = RefAggKind::kAvg;
        if (call->name == "min") described.kind = RefAggKind::kMin;
        if (call->name == "max") described.kind = RefAggKind::kMax;
        VDB_ASSIGN_OR_RETURN(TypeId arg_type,
                             TypeCheck(*call->args[0], base_env));
        described.output_type =
            call->name == "avg" ? TypeId::kDouble : arg_type;
      }
      agg_calls.push_back(described);
    }
    std::vector<std::string> group_texts;
    for (const sql::ExprPtr& group : stmt.group_by) {
      VDB_RETURN_NOT_OK(TypeCheck(*group, base_env).status());
      group_texts.push_back(group->ToString());
    }

    // Accumulate per group, first-seen order.
    struct Group {
      Tuple key;
      std::vector<RefAggState> states;
    };
    std::vector<Group> groups;
    for (const Tuple& row : rows) {
      Env env = base_env;
      env.row = &row;
      Tuple key;
      for (const sql::ExprPtr& group : stmt.group_by) {
        VDB_ASSIGN_OR_RETURN(Value v, Eval(*group, env));
        key.push_back(std::move(v));
      }
      Group* target = nullptr;
      for (Group& group : groups) {
        if (KeysEqual(group.key, key)) {
          target = &group;
          break;
        }
      }
      if (target == nullptr) {
        groups.push_back(Group{std::move(key),
                               std::vector<RefAggState>(agg_calls.size())});
        target = &groups.back();
      }
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        Value v;
        if (!agg_calls[a].call->star) {
          VDB_ASSIGN_OR_RETURN(v, Eval(*agg_calls[a].call->args[0], env));
        }
        target->states[a].Update(agg_calls[a], v);
      }
    }
    if (groups.empty() && stmt.group_by.empty()) {
      // Global aggregate over zero rows: one row of initial values.
      groups.push_back(Group{{}, std::vector<RefAggState>(agg_calls.size())});
    }

    for (const Group& group : groups) {
      Tuple agg_values;
      for (size_t a = 0; a < agg_calls.size(); ++a) {
        agg_values.push_back(group.states[a].Finalize(agg_calls[a]));
      }
      if (stmt.having != nullptr) {
        VDB_ASSIGN_OR_RETURN(
            Value keep, EvalPostAgg(*stmt.having, group_texts, group.key,
                                    agg_calls, agg_values));
        if (!IsTrue(keep)) continue;
      }
      Tuple out;
      for (const sql::SelectItem& item : stmt.items) {
        VDB_ASSIGN_OR_RETURN(
            Value v, EvalPostAgg(*item.expr, group_texts, group.key,
                                 agg_calls, agg_values));
        out.push_back(std::move(v));
      }
      projected.push_back(std::move(out));
    }

    for (const sql::SelectItem& item : stmt.items) {
      result.column_names.push_back(ItemName(item));
      const std::string text = item.expr->ToString();
      TypeId type = TypeId::kInt64;
      bool resolved = false;
      for (size_t g = 0; g < group_texts.size() && !resolved; ++g) {
        if (group_texts[g] == text) {
          VDB_ASSIGN_OR_RETURN(type, TypeCheck(*stmt.group_by[g], base_env));
          resolved = true;
        }
      }
      for (const RefAggCall& call : agg_calls) {
        if (!resolved && call.text == text) {
          type = call.output_type;
          resolved = true;
        }
      }
      if (!resolved) {
        VDB_ASSIGN_OR_RETURN(type, TypeCheck(*item.expr, base_env));
      }
      result.column_types.push_back(type);
    }
  } else {
    // Plain projection; sort keys are computed against the base rows when
    // the engine would sort below the project (no DISTINCT).
    std::vector<const sql::Expr*> item_exprs;
    for (const sql::SelectItem& item : stmt.items) {
      if (item.expr->type == ExprType::kStar) {
        for (const Frame& frame : frames) {
          for (size_t c = 0; c < frame.names.size(); ++c) {
            result.column_names.push_back(frame.names[c]);
            result.column_types.push_back(frame.types[c]);
            item_exprs.push_back(nullptr);  // direct slot copy
          }
        }
        continue;
      }
      VDB_ASSIGN_OR_RETURN(TypeId type, TypeCheck(*item.expr, base_env));
      result.column_names.push_back(ItemName(item));
      result.column_types.push_back(type);
      item_exprs.push_back(item.expr.get());
    }

    sorted_on_base = !stmt.order_by.empty() && !stmt.distinct;
    if (sorted_on_base) {
      for (const sql::OrderByItem& item : stmt.order_by) {
        if (!TypeCheck(*item.expr, base_env).ok()) {
          sorted_on_base = false;  // engine falls back to text matching
          break;
        }
      }
    }

    for (const Tuple& row : rows) {
      Env env = base_env;
      env.row = &row;
      Tuple out;
      size_t slot = 0;
      for (const sql::SelectItem& item : stmt.items) {
        if (item.expr->type == ExprType::kStar) {
          for (const Value& v : row) out.push_back(v);
          slot += row.size();
          continue;
        }
        VDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, env));
        out.push_back(std::move(v));
        ++slot;
      }
      if (sorted_on_base) {
        std::vector<Value> keys;
        for (const sql::OrderByItem& item : stmt.order_by) {
          VDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, env));
          keys.push_back(std::move(v));
        }
        base_sort_keys.push_back(std::move(keys));
      }
      projected.push_back(std::move(out));
    }
  }

  // ---- DISTINCT (before ORDER BY, as in the engine) ----------------------
  if (stmt.distinct) {
    std::vector<Tuple> unique;
    for (Tuple& row : projected) {
      bool seen = false;
      for (const Tuple& existing : unique) {
        if (KeysEqual(existing, row)) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(row));
    }
    projected = std::move(unique);
  }

  // ---- ORDER BY ----------------------------------------------------------
  if (!stmt.order_by.empty()) {
    if (sorted_on_base) {
      std::vector<size_t> order(projected.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                           const int cmp = RefCompareForSort(
                               base_sort_keys[a][k], base_sort_keys[b][k],
                               stmt.order_by[k].ascending);
                           if (cmp != 0) return cmp < 0;
                         }
                         return false;
                       });
      std::vector<Tuple> sorted;
      sorted.reserve(projected.size());
      for (size_t i : order) sorted.push_back(std::move(projected[i]));
      projected = std::move(sorted);
    } else {
      // Match ORDER BY expressions against output names, then item texts
      // (mirrors the grouped/DISTINCT planner path).
      std::vector<std::string> item_texts;
      for (const sql::SelectItem& item : stmt.items) {
        item_texts.push_back(item.expr->type == ExprType::kStar
                                 ? "*"
                                 : item.expr->ToString());
      }
      std::vector<std::pair<size_t, bool>> keys;
      for (const sql::OrderByItem& item : stmt.order_by) {
        const std::string text = item.expr->ToString();
        int match = -1;
        for (size_t i = 0; i < result.column_names.size(); ++i) {
          if (EqualsIgnoreCase(result.column_names[i], text)) {
            match = static_cast<int>(i);
            break;
          }
        }
        if (match < 0) {
          for (size_t i = 0; i < item_texts.size(); ++i) {
            if (item_texts[i] == text) {
              match = static_cast<int>(i);
              break;
            }
          }
        }
        if (match < 0) {
          return Status::NotSupported(
              "ORDER BY expression must name a select-list column: " + text);
        }
        keys.emplace_back(static_cast<size_t>(match), item.ascending);
      }
      std::stable_sort(projected.begin(), projected.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         for (const auto& [slot, ascending] : keys) {
                           const int cmp = RefCompareForSort(a[slot], b[slot],
                                                             ascending);
                           if (cmp != 0) return cmp < 0;
                         }
                         return false;
                       });
    }
  }

  // ---- LIMIT -------------------------------------------------------------
  if (stmt.limit >= 0 &&
      projected.size() > static_cast<size_t>(stmt.limit)) {
    projected.resize(static_cast<size_t>(stmt.limit));
  }

  result.rows = std::move(projected);
  return result;
}

}  // namespace

Result<RefResult> ReferenceEvaluator::Evaluate(
    const sql::SelectStatement& stmt) {
  Evaluator evaluator(catalog_);
  return evaluator.EvaluateSelect(stmt, nullptr);
}

}  // namespace vdb::fuzz
