// The naive reference SQL evaluator the differential fuzzer compares
// against; shares no code with the planner or executors.

#ifndef VDB_TESTING_ORACLE_H_
#define VDB_TESTING_ORACLE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "util/result.h"

namespace vdb::fuzz {

/// Result of the reference evaluator: projected rows plus per-column
/// names/types (the latter needed when the result feeds a derived table).
struct RefResult {
  std::vector<std::string> column_names;
  std::vector<catalog::TypeId> column_types;
  std::vector<catalog::Tuple> rows;
};

/// A naive row-at-a-time interpreter for the engine's SQL dialect, written
/// for obvious correctness: full materialization, nested-loop joins, no
/// optimizer, no indexes, no buffer pool. It mirrors the engine's
/// documented semantics — three-valued logic, NULLS LAST ordering,
/// NULL-safe grouping, IN/NOT IN with (NOT) EXISTS semantics, division by
/// zero yielding NULL, double-accumulated SUM — so its results are
/// comparable with exec::Database::Execute over the same catalog.
///
/// Expressions are type-checked eagerly (mirroring the binder's rules)
/// before any row is touched, so the oracle errors exactly where the
/// engine's planner errors instead of silently succeeding on empty inputs
/// or short-circuited operands.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(catalog::Catalog* cat) : catalog_(cat) {}

  Result<RefResult> Evaluate(const sql::SelectStatement& stmt);

 private:
  catalog::Catalog* catalog_;
};

}  // namespace vdb::fuzz

#endif  // VDB_TESTING_ORACLE_H_
