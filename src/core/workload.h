// Workload: a named sequence of SQL statements with a service-level
// importance weight (the paper's W_i).

#ifndef VDB_CORE_WORKLOAD_H_
#define VDB_CORE_WORKLOAD_H_

#include <string>
#include <vector>

namespace vdb::core {

/// A database workload: a named sequence of SQL statements run against one
/// database instance (the paper's W_i). Repeated statements model
/// multiplicity (e.g. "3 copies of Q4").
struct Workload {
  std::string name;
  std::vector<std::string> statements;

  /// Service-level weight (paper Section 7's "different service-level
  /// objectives" extension): the design objective minimizes
  /// sum_i weight_i * Cost(W_i, R_i), so a workload with weight 2 counts
  /// double — the search shifts resources toward it.
  double importance = 1.0;

  Workload() = default;
  Workload(std::string workload_name, std::vector<std::string> sql)
      : name(std::move(workload_name)), statements(std::move(sql)) {}

  /// A workload consisting of `copies` repetitions of one statement.
  static Workload Repeated(std::string name, const std::string& sql,
                           int copies) {
    Workload workload;
    workload.name = std::move(name);
    workload.statements.assign(copies, sql);
    return workload;
  }
};

}  // namespace vdb::core

#endif  // VDB_CORE_WORKLOAD_H_
