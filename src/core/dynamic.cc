#include "core/dynamic.h"

namespace vdb::core {

Result<DynamicComparison> CompareStaticVsDynamic(
    VirtualizationDesignProblem base,
    const std::vector<std::vector<Workload>>& phases,
    const calib::CalibrationStore& store, SearchAlgorithm algorithm) {
  if (phases.empty()) {
    return Status::InvalidArgument("no phases");
  }
  for (const auto& phase : phases) {
    if (phase.size() != base.databases.size()) {
      return Status::InvalidArgument(
          "every phase must assign one workload per VM");
    }
  }
  Advisor advisor(&store);
  DynamicComparison comparison;

  // Static: design once for phase 0, keep for all phases.
  base.workloads = phases[0];
  VDB_ASSIGN_OR_RETURN(comparison.static_design,
                       advisor.Recommend(base, algorithm));

  for (const auto& phase : phases) {
    base.workloads = phase;
    // Static design measured on this phase's workloads.
    VDB_ASSIGN_OR_RETURN(
        MeasuredOutcome static_outcome,
        Advisor::Measure(base, comparison.static_design.allocations));
    comparison.static_phase_seconds.push_back(static_outcome.total_seconds);
    comparison.static_total_seconds += static_outcome.total_seconds;

    // Dynamic: re-design for this phase, then measure.
    VDB_ASSIGN_OR_RETURN(DesignSolution design,
                         advisor.Recommend(base, algorithm));
    VDB_ASSIGN_OR_RETURN(MeasuredOutcome dynamic_outcome,
                         Advisor::Measure(base, design.allocations));
    comparison.dynamic_designs.push_back(std::move(design));
    comparison.dynamic_phase_seconds.push_back(
        dynamic_outcome.total_seconds);
    comparison.dynamic_total_seconds += dynamic_outcome.total_seconds;
  }
  return comparison;
}

}  // namespace vdb::core
