#include "core/problem.h"

#include <cstdio>

namespace vdb::core {

Status VirtualizationDesignProblem::Validate() const {
  if (workloads.empty()) {
    return Status::InvalidArgument("no workloads");
  }
  if (databases.size() != workloads.size()) {
    return Status::InvalidArgument(
        "need one database instance per workload");
  }
  for (exec::Database* db : databases) {
    if (db == nullptr) {
      return Status::InvalidArgument("null database instance");
    }
  }
  if (controlled.empty()) {
    return Status::InvalidArgument("no controlled resources");
  }
  if (grid_steps < static_cast<int>(workloads.size())) {
    return Status::InvalidArgument(
        "grid_steps must be >= number of workloads (each VM needs at "
        "least one unit)");
  }
  return Status::OK();
}

std::string DesignSolution::ToString() const {
  std::string result = algorithm + ": total estimated cost = ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms", total_cost_ms);
  result += buf;
  for (size_t i = 0; i < allocations.size(); ++i) {
    result += "\n  W" + std::to_string(i + 1) + " -> " +
              allocations[i].ToString();
  }
  return result;
}

DesignSolution EqualSplitSolution(
    const VirtualizationDesignProblem& problem) {
  DesignSolution solution;
  solution.algorithm = "equal-split";
  const int n = static_cast<int>(problem.NumWorkloads());
  solution.allocations.assign(
      problem.NumWorkloads(),
      sim::ResourceShare::EqualSplit(n == 0 ? 1 : n));
  return solution;
}

}  // namespace vdb::core
