#ifndef VDB_CORE_COST_MODEL_H_
#define VDB_CORE_COST_MODEL_H_

#include <unordered_map>

#include "calib/store.h"
#include "core/problem.h"
#include "core/workload.h"
#include "exec/database.h"
#include "sim/resources.h"
#include "util/result.h"

namespace vdb::core {

/// The paper's Cost(W_i, R_i): the summed optimizer-estimated execution
/// times of the workload's statements, with the optimizer switched into
/// virtualization-aware what-if mode by loading the calibrated P(R_i) from
/// the calibration store. Each statement is re-optimized per allocation,
/// so plan changes induced by the allocation are captured.
///
/// Evaluations are memoized per (workload, quantized allocation); the
/// combinatorial searches re-visit allocations heavily.
class WorkloadCostModel {
 public:
  WorkloadCostModel(const VirtualizationDesignProblem* problem,
                    const calib::CalibrationStore* store)
      : problem_(problem), store_(store) {}

  WorkloadCostModel(const WorkloadCostModel&) = delete;
  WorkloadCostModel& operator=(const WorkloadCostModel&) = delete;

  /// Estimated cost (ms) of workload `index` under allocation `share`.
  Result<double> Cost(size_t index, const sim::ResourceShare& share);

  /// Total cost of a full design.
  Result<double> TotalCost(const std::vector<sim::ResourceShare>& shares);

  uint64_t evaluations() const { return evaluations_; }
  uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Key {
    size_t index;
    int64_t cpu_milli;
    int64_t mem_milli;
    int64_t io_milli;
    bool operator==(const Key& other) const {
      return index == other.index && cpu_milli == other.cpu_milli &&
             mem_milli == other.mem_milli && io_milli == other.io_milli;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      size_t h = key.index;
      h = h * 1000003 + static_cast<size_t>(key.cpu_milli);
      h = h * 1000003 + static_cast<size_t>(key.mem_milli);
      h = h * 1000003 + static_cast<size_t>(key.io_milli);
      return h;
    }
  };

  const VirtualizationDesignProblem* problem_;
  const calib::CalibrationStore* store_;
  std::unordered_map<Key, double, KeyHash> cache_;
  uint64_t evaluations_ = 0;
  uint64_t cache_hits_ = 0;
};

}  // namespace vdb::core

#endif  // VDB_CORE_COST_MODEL_H_
