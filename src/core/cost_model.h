// WorkloadCostModel — the paper's Cost(W_i, R_i): summed what-if
// optimizer estimates under P(R_i), memoized per allocation.

#ifndef VDB_CORE_COST_MODEL_H_
#define VDB_CORE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "calib/store.h"
#include "core/problem.h"
#include "core/workload.h"
#include "exec/database.h"
#include "sim/resources.h"
#include "util/result.h"

namespace vdb::core {

/// The paper's Cost(W_i, R_i): the summed optimizer-estimated execution
/// times of the workload's statements, with the optimizer switched into
/// virtualization-aware what-if mode by loading the calibrated P(R_i) from
/// the calibration store. Each statement is re-optimized per allocation,
/// so plan changes induced by the allocation are captured. Allocations
/// need not coincide with calibration grid points: the store answers
/// off-grid lookups by trilinear interpolation (clamping outside the grid
/// hull — see calib/store.h), so the searches may probe any share the
/// problem's grid generates.
///
/// Evaluations are memoized per (workload, quantized allocation); the
/// combinatorial searches re-visit allocations heavily. Shares are
/// quantized at 1e-9 resolution, far below any allocation grid we search
/// (distinct designs with grid_steps up to ~10^8 never collide).
///
/// Thread-safe: Cost never mutates the underlying Database (it uses the
/// side-effect-free what-if Prepare), the memo cache is mutex-guarded, and
/// the counters are atomic, so the parallel searches may call Cost
/// concurrently from a thread pool. Two threads that miss on the same key
/// simultaneously may both evaluate it (the result is identical and the
/// second insert is a no-op), so `evaluations()` can exceed the number of
/// distinct keys under concurrency; it is exact in serial use.
class WorkloadCostModel {
 public:
  WorkloadCostModel(const VirtualizationDesignProblem* problem,
                    const calib::CalibrationStore* store)
      : problem_(problem), store_(store) {}

  WorkloadCostModel(const WorkloadCostModel&) = delete;
  WorkloadCostModel& operator=(const WorkloadCostModel&) = delete;

  /// Estimated cost (ms) of workload `index` under allocation `share`.
  Result<double> Cost(size_t index, const sim::ResourceShare& share);

  /// Total cost of a full design.
  Result<double> TotalCost(const std::vector<sim::ResourceShare>& shares);

  /// Cache misses: full what-if optimizations performed.
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Total Cost() invocations (hits + misses) — the searches' call volume.
  uint64_t calls() const { return evaluations() + cache_hits(); }

 private:
  struct Key {
    size_t index;
    int64_t cpu_nano;
    int64_t mem_nano;
    int64_t io_nano;
    bool operator==(const Key& other) const {
      return index == other.index && cpu_nano == other.cpu_nano &&
             mem_nano == other.mem_nano && io_nano == other.io_nano;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      size_t h = key.index;
      h = h * 1000003 + static_cast<size_t>(key.cpu_nano);
      h = h * 1000003 + static_cast<size_t>(key.mem_nano);
      h = h * 1000003 + static_cast<size_t>(key.io_nano);
      return h;
    }
  };

  const VirtualizationDesignProblem* problem_;
  const calib::CalibrationStore* store_;
  std::mutex cache_mu_;
  std::unordered_map<Key, double, KeyHash> cache_;
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> cache_hits_{0};
};

}  // namespace vdb::core

#endif  // VDB_CORE_COST_MODEL_H_
