#include "core/search.h"
#include <functional>

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace vdb::core {

namespace {

// Units held by every workload for every controlled resource:
// units[i][r] with sum_i units[i][r] == grid_steps.
using UnitMatrix = std::vector<std::vector<int>>;

UnitMatrix EqualUnits(const VirtualizationDesignProblem& problem) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  UnitMatrix units(n, std::vector<int>(m, 0));
  for (int r = 0; r < m; ++r) {
    int remaining = problem.grid_steps;
    for (int i = 0; i < n; ++i) {
      const int give = remaining / (n - i);
      units[i][r] = give;
      remaining -= give;
    }
  }
  return units;
}

Result<double> TotalOf(const VirtualizationDesignProblem& problem,
                       WorkloadCostModel* cost, const UnitMatrix& units) {
  double total = 0.0;
  for (size_t i = 0; i < problem.NumWorkloads(); ++i) {
    VDB_ASSIGN_OR_RETURN(double c,
                         cost->Cost(i, ShareFromUnits(problem, units[i])));
    total += c;
  }
  return total;
}

DesignSolution SolutionFromUnits(const VirtualizationDesignProblem& problem,
                                 const UnitMatrix& units, double total,
                                 const char* algorithm) {
  DesignSolution solution;
  solution.algorithm = algorithm;
  solution.total_cost_ms = total;
  for (size_t i = 0; i < problem.NumWorkloads(); ++i) {
    solution.allocations.push_back(ShareFromUnits(problem, units[i]));
  }
  return solution;
}

// Number of compositions of `total` units into `parts` positive parts.
double NumCompositions(int total, int parts) {
  // C(total - 1, parts - 1)
  double result = 1.0;
  for (int k = 1; k <= parts - 1; ++k) {
    result *= static_cast<double>(total - parts + k) / k;
  }
  return result;
}

Result<DesignSolution> SolveExhaustive(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  const double designs =
      std::pow(NumCompositions(problem.grid_steps, n), m);
  if (designs > 2e6) {
    return Status::InvalidArgument(
        "exhaustive search space too large (" +
        std::to_string(static_cast<uint64_t>(designs)) +
        " designs); use greedy or dynamic programming");
  }

  UnitMatrix units(n, std::vector<int>(m, 1));
  UnitMatrix best_units;
  double best_total = -1.0;
  Status failure = Status::OK();

  // Recursive enumeration over (workload, resource) unit choices.
  std::vector<int> remaining(m, problem.grid_steps);
  std::function<void(int, int)> enumerate = [&](int i, int r) {
    if (!failure.ok()) return;
    if (i == n) {
      auto total = TotalOf(problem, cost, units);
      if (!total.ok()) {
        failure = total.status();
        return;
      }
      if (best_total < 0 || *total < best_total) {
        best_total = *total;
        best_units = units;
      }
      return;
    }
    if (r == m) {
      enumerate(i + 1, 0);
      return;
    }
    const int workloads_after = n - i - 1;
    if (i == n - 1) {
      // Last workload takes whatever remains.
      units[i][r] = remaining[r];
      remaining[r] = 0;
      enumerate(i, r + 1);
      remaining[r] = units[i][r];
      units[i][r] = 1;
      return;
    }
    for (int take = 1; take <= remaining[r] - workloads_after; ++take) {
      units[i][r] = take;
      remaining[r] -= take;
      enumerate(i, r + 1);
      remaining[r] += take;
      units[i][r] = 1;
    }
  };
  enumerate(0, 0);
  VDB_RETURN_NOT_OK(failure);
  if (best_total < 0) {
    return Status::Internal("exhaustive search found no design");
  }
  return SolutionFromUnits(problem, best_units, best_total, "exhaustive");
}

Result<DesignSolution> SolveGreedy(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  UnitMatrix units = EqualUnits(problem);
  VDB_ASSIGN_OR_RETURN(double current, TotalOf(problem, cost, units));

  for (;;) {
    double best_delta = -1e-9;  // require strict improvement
    int best_r = -1;
    int best_from = -1;
    int best_to = -1;
    for (int r = 0; r < m; ++r) {
      for (int from = 0; from < n; ++from) {
        if (units[from][r] <= 1) continue;
        for (int to = 0; to < n; ++to) {
          if (to == from) continue;
          // Cost delta of moving one unit of resource r: only the two
          // touched workloads change.
          VDB_ASSIGN_OR_RETURN(
              double from_before,
              cost->Cost(from, ShareFromUnits(problem, units[from])));
          VDB_ASSIGN_OR_RETURN(
              double to_before,
              cost->Cost(to, ShareFromUnits(problem, units[to])));
          std::vector<int> from_units = units[from];
          std::vector<int> to_units = units[to];
          from_units[r] -= 1;
          to_units[r] += 1;
          VDB_ASSIGN_OR_RETURN(
              double from_after,
              cost->Cost(from, ShareFromUnits(problem, from_units)));
          VDB_ASSIGN_OR_RETURN(
              double to_after,
              cost->Cost(to, ShareFromUnits(problem, to_units)));
          const double delta =
              (from_after + to_after) - (from_before + to_before);
          if (delta < best_delta) {
            best_delta = delta;
            best_r = r;
            best_from = from;
            best_to = to;
          }
        }
      }
    }
    if (best_r < 0) break;
    units[best_from][best_r] -= 1;
    units[best_to][best_r] += 1;
    current += best_delta;
  }
  VDB_ASSIGN_OR_RETURN(current, TotalOf(problem, cost, units));
  return SolutionFromUnits(problem, units, current, "greedy");
}

Result<DesignSolution> SolveDp(const VirtualizationDesignProblem& problem,
                               WorkloadCostModel* cost) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  if (m > 2) {
    return Status::NotSupported(
        "dynamic programming supports at most two controlled resources "
        "(state space grows as steps^m); use greedy for three");
  }
  const int steps = problem.grid_steps;
  // State: (workload i, remaining units u0, u1). For m == 1, u1 is fixed 0.
  const int dim1 = steps + 1;
  const int dim2 = m == 2 ? steps + 1 : 1;
  struct Cell {
    double cost = -1.0;
    int take0 = 0;
    int take1 = 0;
  };
  // memo[i][u0][u1]
  std::vector<std::vector<std::vector<Cell>>> memo(
      n, std::vector<std::vector<Cell>>(dim1, std::vector<Cell>(dim2)));

  std::function<Result<double>(int, int, int)> dp =
      [&](int i, int u0, int u1) -> Result<double> {
    Cell& cell = memo[i][u0][m == 2 ? u1 : 0];
    if (cell.cost >= 0) return cell.cost;
    const int after = n - i - 1;
    if (after == 0) {
      std::vector<int> units = {u0};
      if (m == 2) units.push_back(u1);
      VDB_ASSIGN_OR_RETURN(double c,
                           cost->Cost(i, ShareFromUnits(problem, units)));
      cell.cost = c;
      cell.take0 = u0;
      cell.take1 = u1;
      return c;
    }
    double best = -1.0;
    int best0 = 0;
    int best1 = 0;
    for (int a0 = 1; a0 <= u0 - after; ++a0) {
      const int hi1 = m == 2 ? u1 - after : 1;
      for (int a1 = (m == 2 ? 1 : 0); a1 <= (m == 2 ? hi1 : 0); ++a1) {
        std::vector<int> units = {a0};
        if (m == 2) units.push_back(a1);
        VDB_ASSIGN_OR_RETURN(double own,
                             cost->Cost(i, ShareFromUnits(problem, units)));
        VDB_ASSIGN_OR_RETURN(double rest,
                             dp(i + 1, u0 - a0, m == 2 ? u1 - a1 : 0));
        const double total = own + rest;
        if (best < 0 || total < best) {
          best = total;
          best0 = a0;
          best1 = a1;
        }
      }
    }
    cell.cost = best;
    cell.take0 = best0;
    cell.take1 = best1;
    return best;
  };

  VDB_ASSIGN_OR_RETURN(double total, dp(0, steps, m == 2 ? steps : 0));
  // Reconstruct.
  UnitMatrix units(n, std::vector<int>(m, 0));
  int u0 = steps;
  int u1 = m == 2 ? steps : 0;
  for (int i = 0; i < n; ++i) {
    const Cell& cell = memo[i][u0][m == 2 ? u1 : 0];
    units[i][0] = cell.take0;
    if (m == 2) units[i][1] = cell.take1;
    u0 -= cell.take0;
    u1 -= cell.take1;
  }
  return SolutionFromUnits(problem, units, total, "dynamic-programming");
}

}  // namespace

const char* SearchAlgorithmName(SearchAlgorithm algorithm) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      return "exhaustive";
    case SearchAlgorithm::kGreedy:
      return "greedy";
    case SearchAlgorithm::kDynamicProgramming:
      return "dynamic-programming";
  }
  return "?";
}

sim::ResourceShare ShareFromUnits(
    const VirtualizationDesignProblem& problem,
    const std::vector<int>& units) {
  const int n = static_cast<int>(problem.NumWorkloads());
  sim::ResourceShare share = sim::ResourceShare::EqualSplit(n);
  for (size_t r = 0; r < problem.controlled.size(); ++r) {
    share.Set(problem.controlled[r],
              static_cast<double>(units[r]) /
                  static_cast<double>(problem.grid_steps));
  }
  return share;
}

Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm) {
  VDB_RETURN_NOT_OK(problem.Validate());
  const uint64_t evals_before = cost->evaluations();
  Result<DesignSolution> solution = Status::Internal("unreachable");
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      solution = SolveExhaustive(problem, cost);
      break;
    case SearchAlgorithm::kGreedy:
      solution = SolveGreedy(problem, cost);
      break;
    case SearchAlgorithm::kDynamicProgramming:
      solution = SolveDp(problem, cost);
      break;
  }
  if (solution.ok()) {
    solution->evaluations = cost->evaluations() - evals_before;
  }
  return solution;
}

}  // namespace vdb::core
