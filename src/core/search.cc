#include "core/search.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace vdb::core {

namespace {

// Search-layer instrumentation (DESIGN.md §9). "Moves evaluated" counts
// candidate designs scored: full designs for exhaustive, (r, from, to)
// transfers for greedy, and recurrence cells for DP. Hot loops accumulate
// locally and publish once per batch, so a disabled registry costs one
// relaxed load per batch rather than per candidate.
struct SearchMetrics {
  obs::Counter* solves;
  obs::Counter* iterations;
  obs::Counter* moves_evaluated;
  obs::Counter* cost_jobs;
  obs::Histogram* wall_time[3];  // indexed by SearchAlgorithm

  static const SearchMetrics& Get() {
    static const SearchMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return SearchMetrics{
          registry.GetCounter("search.solves"),
          registry.GetCounter("search.iterations"),
          registry.GetCounter("search.moves_evaluated"),
          registry.GetCounter("search.cost_jobs"),
          {registry.GetHistogram("search.exhaustive.wall_time"),
           registry.GetHistogram("search.greedy.wall_time"),
           registry.GetHistogram("search.dp.wall_time")}};
    }();
    return metrics;
  }
};

// Units held by every workload for every controlled resource:
// units[i][r] with sum_i units[i][r] == grid_steps.
using UnitMatrix = std::vector<std::vector<int>>;

UnitMatrix EqualUnits(const VirtualizationDesignProblem& problem) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  UnitMatrix units(n, std::vector<int>(m, 0));
  for (int r = 0; r < m; ++r) {
    int remaining = problem.grid_steps;
    for (int i = 0; i < n; ++i) {
      const int give = remaining / (n - i);
      units[i][r] = give;
      remaining -= give;
    }
  }
  return units;
}

Result<double> TotalOf(const VirtualizationDesignProblem& problem,
                       WorkloadCostModel* cost, const UnitMatrix& units) {
  double total = 0.0;
  for (size_t i = 0; i < problem.NumWorkloads(); ++i) {
    VDB_ASSIGN_OR_RETURN(double c,
                         cost->Cost(i, ShareFromUnits(problem, units[i])));
    total += c;
  }
  return total;
}

DesignSolution SolutionFromUnits(const VirtualizationDesignProblem& problem,
                                 const UnitMatrix& units, double total,
                                 const char* algorithm) {
  DesignSolution solution;
  solution.algorithm = algorithm;
  solution.total_cost_ms = total;
  for (size_t i = 0; i < problem.NumWorkloads(); ++i) {
    solution.allocations.push_back(ShareFromUnits(problem, units[i]));
  }
  return solution;
}

// Number of compositions of `total` units into `parts` positive parts.
double NumCompositions(int total, int parts) {
  // C(total - 1, parts - 1)
  double result = 1.0;
  for (int k = 1; k <= parts - 1; ++k) {
    result *= static_cast<double>(total - parts + k) / k;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Cost fan-out

// One Cost(workload, share) evaluation to perform.
struct CostJob {
  size_t workload;
  sim::ResourceShare share;
};

// Evaluates jobs[k] into (*out)[k], serially when `pool` is null and on the
// pool otherwise. The cost model memoizes and is thread-safe, so the values
// are identical either way. Returns the first failure in job order.
Status EvaluateCosts(WorkloadCostModel* cost, const std::vector<CostJob>& jobs,
                     std::vector<double>* out, util::ThreadPool* pool) {
  SearchMetrics::Get().cost_jobs->Add(jobs.size());
  out->assign(jobs.size(), 0.0);
  if (pool == nullptr) {
    for (size_t k = 0; k < jobs.size(); ++k) {
      VDB_ASSIGN_OR_RETURN((*out)[k],
                           cost->Cost(jobs[k].workload, jobs[k].share));
    }
    return Status::OK();
  }
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(jobs.size());
  for (const CostJob& job : jobs) {
    futures.push_back(pool->Submit(
        [cost, job]() { return cost->Cost(job.workload, job.share); }));
  }
  Status failure = Status::OK();
  for (size_t k = 0; k < futures.size(); ++k) {
    Result<double> result = futures[k].get();
    if (!result.ok()) {
      if (failure.ok()) failure = result.status();
      continue;
    }
    (*out)[k] = *result;
  }
  return failure;
}

// ---------------------------------------------------------------------------
// Exhaustive search

// Recursive enumeration over (workload, resource) unit choices, tracking the
// first-encountered minimum (strict '<', matching the historical serial
// order, so ties always resolve to the lexicographically earliest design).
struct ExhaustiveEnumerator {
  const VirtualizationDesignProblem* problem;
  WorkloadCostModel* cost;
  int n;
  int m;
  UnitMatrix units;
  std::vector<int> remaining;
  UnitMatrix best_units;
  double best_total = -1.0;
  uint64_t designs_scored = 0;
  Status failure = Status::OK();

  ExhaustiveEnumerator(const VirtualizationDesignProblem& p,
                       WorkloadCostModel* c)
      : problem(&p),
        cost(c),
        n(static_cast<int>(p.NumWorkloads())),
        m(static_cast<int>(p.controlled.size())),
        units(n, std::vector<int>(m, 1)),
        remaining(m, p.grid_steps) {}

  void Enumerate(int i, int r) {
    if (!failure.ok()) return;
    if (i == n) {
      ++designs_scored;
      auto total = TotalOf(*problem, cost, units);
      if (!total.ok()) {
        failure = total.status();
        return;
      }
      if (best_total < 0 || *total < best_total) {
        best_total = *total;
        best_units = units;
      }
      return;
    }
    if (r == m) {
      Enumerate(i + 1, 0);
      return;
    }
    const int workloads_after = n - i - 1;
    if (i == n - 1) {
      // Last workload takes whatever remains.
      units[i][r] = remaining[r];
      remaining[r] = 0;
      Enumerate(i, r + 1);
      remaining[r] = units[i][r];
      units[i][r] = 1;
      return;
    }
    for (int take = 1; take <= remaining[r] - workloads_after; ++take) {
      units[i][r] = take;
      remaining[r] -= take;
      Enumerate(i, r + 1);
      remaining[r] += take;
      units[i][r] = 1;
    }
  }
};

Result<DesignSolution> SolveExhaustive(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    util::ThreadPool* pool) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  const double designs =
      std::pow(NumCompositions(problem.grid_steps, n), m);
  if (designs > 2e6) {
    return Status::InvalidArgument(
        "exhaustive search space too large (" +
        std::to_string(static_cast<uint64_t>(designs)) +
        " designs); use greedy or dynamic programming");
  }

  if (pool == nullptr || n < 2) {
    ExhaustiveEnumerator enumerator(problem, cost);
    enumerator.Enumerate(0, 0);
    SearchMetrics::Get().moves_evaluated->Add(enumerator.designs_scored);
    VDB_RETURN_NOT_OK(enumerator.failure);
    if (enumerator.best_total < 0) {
      return Status::Internal("exhaustive search found no design");
    }
    return SolutionFromUnits(problem, enumerator.best_units,
                             enumerator.best_total, "exhaustive");
  }

  // Partition the enumeration over the first workload's units of the first
  // controlled resource — exactly the outermost loop of the serial
  // recursion — and merge the per-partition minima in ascending `take`
  // order, reproducing the serial first-encountered tie-breaking.
  struct PartitionBest {
    Status status = Status::OK();
    UnitMatrix units;
    double total = -1.0;
    uint64_t designs_scored = 0;
  };
  std::vector<std::future<PartitionBest>> futures;
  const int max_take = problem.grid_steps - (n - 1);
  for (int take = 1; take <= max_take; ++take) {
    futures.push_back(pool->Submit([&problem, cost, take]() {
      ExhaustiveEnumerator enumerator(problem, cost);
      enumerator.units[0][0] = take;
      enumerator.remaining[0] -= take;
      enumerator.Enumerate(0, 1);
      PartitionBest best;
      best.status = enumerator.failure;
      best.units = std::move(enumerator.best_units);
      best.total = enumerator.best_total;
      best.designs_scored = enumerator.designs_scored;
      return best;
    }));
  }
  UnitMatrix best_units;
  double best_total = -1.0;
  uint64_t designs_scored = 0;
  Status failure = Status::OK();
  for (std::future<PartitionBest>& future : futures) {
    PartitionBest partition = future.get();
    designs_scored += partition.designs_scored;
    if (!partition.status.ok()) {
      if (failure.ok()) failure = partition.status;
      continue;
    }
    if (partition.total >= 0 &&
        (best_total < 0 || partition.total < best_total)) {
      best_total = partition.total;
      best_units = std::move(partition.units);
    }
  }
  (void)m;
  SearchMetrics::Get().moves_evaluated->Add(designs_scored);
  VDB_RETURN_NOT_OK(failure);
  if (best_total < 0) {
    return Status::Internal("exhaustive search found no design");
  }
  return SolutionFromUnits(problem, best_units, best_total, "exhaustive");
}

// ---------------------------------------------------------------------------
// Greedy search

Result<DesignSolution> SolveGreedy(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    util::ThreadPool* pool) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  UnitMatrix units = EqualUnits(problem);
  VDB_ASSIGN_OR_RETURN(double current, TotalOf(problem, cost, units));

  uint64_t iterations = 0;
  for (;;) {
    // Batch the iteration's cost-model work: per-workload baselines plus,
    // for every controlled resource, the cost of each workload giving up
    // or receiving one unit. O(n·m) Cost calls; every (r, from, to) move
    // delta below is pure arithmetic over these tables.
    std::vector<CostJob> jobs;
    jobs.reserve(static_cast<size_t>(n) * (1 + 2 * m));
    for (int i = 0; i < n; ++i) {
      jobs.push_back({static_cast<size_t>(i), ShareFromUnits(problem, units[i])});
    }
    // give_at[r][i] / recv_at[r][i]: index into `jobs`, or -1 when workload
    // i cannot give a unit of r (it only holds one) or r has no giver.
    std::vector<std::vector<int>> give_at(m, std::vector<int>(n, -1));
    std::vector<std::vector<int>> recv_at(m, std::vector<int>(n, -1));
    for (int r = 0; r < m; ++r) {
      bool any_giver = false;
      for (int from = 0; from < n; ++from) {
        if (units[from][r] <= 1) continue;
        any_giver = true;
        std::vector<int> moved = units[from];
        moved[r] -= 1;
        give_at[r][from] = static_cast<int>(jobs.size());
        jobs.push_back(
            {static_cast<size_t>(from), ShareFromUnits(problem, moved)});
      }
      if (!any_giver) continue;
      for (int to = 0; to < n; ++to) {
        std::vector<int> moved = units[to];
        moved[r] += 1;
        recv_at[r][to] = static_cast<int>(jobs.size());
        jobs.push_back(
            {static_cast<size_t>(to), ShareFromUnits(problem, moved)});
      }
    }
    std::vector<double> costs;
    VDB_RETURN_NOT_OK(EvaluateCosts(cost, jobs, &costs, pool));

    // Deterministic reduction in the serial (r, from, to) candidate order:
    // strict '<' keeps the earliest best move on ties.
    double best_delta = -1e-9;  // require strict improvement
    int best_r = -1;
    int best_from = -1;
    int best_to = -1;
    uint64_t moves_scored = 0;
    for (int r = 0; r < m; ++r) {
      for (int from = 0; from < n; ++from) {
        if (give_at[r][from] < 0) continue;
        for (int to = 0; to < n; ++to) {
          if (to == from) continue;
          ++moves_scored;
          // Cost delta of moving one unit of resource r: only the two
          // touched workloads change.
          const double delta =
              (costs[give_at[r][from]] + costs[recv_at[r][to]]) -
              (costs[from] + costs[to]);
          if (delta < best_delta) {
            best_delta = delta;
            best_r = r;
            best_from = from;
            best_to = to;
          }
        }
      }
    }
    SearchMetrics::Get().moves_evaluated->Add(moves_scored);
    if (best_r < 0) break;
    units[best_from][best_r] -= 1;
    units[best_to][best_r] += 1;
    current += best_delta;
    ++iterations;
  }
  SearchMetrics::Get().iterations->Add(iterations);
  VDB_ASSIGN_OR_RETURN(current, TotalOf(problem, cost, units));
  DesignSolution solution = SolutionFromUnits(problem, units, current, "greedy");
  solution.iterations = iterations;
  return solution;
}

// ---------------------------------------------------------------------------
// Dynamic programming

Result<DesignSolution> SolveDp(const VirtualizationDesignProblem& problem,
                               WorkloadCostModel* cost,
                               util::ThreadPool* pool) {
  const int n = static_cast<int>(problem.NumWorkloads());
  const int m = static_cast<int>(problem.controlled.size());
  if (m > 2) {
    return Status::NotSupported(
        "dynamic programming supports at most two controlled resources "
        "(state space grows as steps^m); use greedy for three");
  }
  const int steps = problem.grid_steps;

  if (pool != nullptr) {
    // Parallel leaf pre-evaluation: the recurrence only ever evaluates
    // Cost(i, a) for per-resource unit counts a in [1, steps - n + 1]
    // (each of the other n-1 workloads keeps at least one unit), and it
    // reaches every such cell. Warming the memo cache with exactly that
    // set in parallel leaves the serial recursion below cache-hit only,
    // so the result — and the evaluation count — match the serial run.
    const int max_units = steps - n + 1;
    std::vector<CostJob> jobs;
    for (int i = 0; i < n; ++i) {
      for (int a0 = 1; a0 <= max_units; ++a0) {
        if (m == 2) {
          for (int a1 = 1; a1 <= max_units; ++a1) {
            jobs.push_back({static_cast<size_t>(i),
                            ShareFromUnits(problem, {a0, a1})});
          }
        } else {
          jobs.push_back(
              {static_cast<size_t>(i), ShareFromUnits(problem, {a0})});
        }
      }
    }
    std::vector<double> warm;
    VDB_RETURN_NOT_OK(EvaluateCosts(cost, jobs, &warm, pool));
  }

  // State: (workload i, remaining units u0, u1). For m == 1, u1 is fixed 0.
  const int dim1 = steps + 1;
  const int dim2 = m == 2 ? steps + 1 : 1;
  struct Cell {
    double cost = -1.0;
    int take0 = 0;
    int take1 = 0;
  };
  // memo[i][u0][u1]
  std::vector<std::vector<std::vector<Cell>>> memo(
      n, std::vector<std::vector<Cell>>(dim1, std::vector<Cell>(dim2)));

  uint64_t cells_evaluated = 0;
  std::function<Result<double>(int, int, int)> dp =
      [&](int i, int u0, int u1) -> Result<double> {
    Cell& cell = memo[i][u0][m == 2 ? u1 : 0];
    if (cell.cost >= 0) return cell.cost;
    ++cells_evaluated;
    const int after = n - i - 1;
    if (after == 0) {
      std::vector<int> units = {u0};
      if (m == 2) units.push_back(u1);
      VDB_ASSIGN_OR_RETURN(double c,
                           cost->Cost(i, ShareFromUnits(problem, units)));
      cell.cost = c;
      cell.take0 = u0;
      cell.take1 = u1;
      return c;
    }
    double best = -1.0;
    int best0 = 0;
    int best1 = 0;
    for (int a0 = 1; a0 <= u0 - after; ++a0) {
      const int hi1 = m == 2 ? u1 - after : 1;
      for (int a1 = (m == 2 ? 1 : 0); a1 <= (m == 2 ? hi1 : 0); ++a1) {
        std::vector<int> units = {a0};
        if (m == 2) units.push_back(a1);
        VDB_ASSIGN_OR_RETURN(double own,
                             cost->Cost(i, ShareFromUnits(problem, units)));
        VDB_ASSIGN_OR_RETURN(double rest,
                             dp(i + 1, u0 - a0, m == 2 ? u1 - a1 : 0));
        const double total = own + rest;
        if (best < 0 || total < best) {
          best = total;
          best0 = a0;
          best1 = a1;
        }
      }
    }
    cell.cost = best;
    cell.take0 = best0;
    cell.take1 = best1;
    return best;
  };

  Result<double> dp_total = dp(0, steps, m == 2 ? steps : 0);
  SearchMetrics::Get().moves_evaluated->Add(cells_evaluated);
  VDB_RETURN_NOT_OK(dp_total.status());
  const double total = *dp_total;
  // Reconstruct.
  UnitMatrix units(n, std::vector<int>(m, 0));
  int u0 = steps;
  int u1 = m == 2 ? steps : 0;
  for (int i = 0; i < n; ++i) {
    const Cell& cell = memo[i][u0][m == 2 ? u1 : 0];
    units[i][0] = cell.take0;
    if (m == 2) units[i][1] = cell.take1;
    u0 -= cell.take0;
    u1 -= cell.take1;
  }
  return SolutionFromUnits(problem, units, total, "dynamic-programming");
}

}  // namespace

const char* SearchAlgorithmName(SearchAlgorithm algorithm) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      return "exhaustive";
    case SearchAlgorithm::kGreedy:
      return "greedy";
    case SearchAlgorithm::kDynamicProgramming:
      return "dynamic-programming";
  }
  return "?";
}

sim::ResourceShare ShareFromUnits(
    const VirtualizationDesignProblem& problem,
    const std::vector<int>& units) {
  const int n = static_cast<int>(problem.NumWorkloads());
  sim::ResourceShare share = sim::ResourceShare::EqualSplit(n);
  for (size_t r = 0; r < problem.controlled.size(); ++r) {
    share.Set(problem.controlled[r],
              static_cast<double>(units[r]) /
                  static_cast<double>(problem.grid_steps));
  }
  return share;
}

Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm, const SearchOptions& options) {
  VDB_RETURN_NOT_OK(problem.Validate());
  const int num_threads = options.num_threads == 0
                              ? util::ThreadPool::HardwareConcurrency()
                              : options.num_threads;
  std::unique_ptr<util::ThreadPool> pool;
  if (num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }
  const SearchMetrics& metrics = SearchMetrics::Get();
  metrics.solves->Add();
  obs::ScopedTimer wall_timer(
      metrics.wall_time[static_cast<int>(algorithm)]);
  const uint64_t evals_before = cost->evaluations();
  Result<DesignSolution> solution = Status::Internal("unreachable");
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      solution = SolveExhaustive(problem, cost, pool.get());
      break;
    case SearchAlgorithm::kGreedy:
      solution = SolveGreedy(problem, cost, pool.get());
      break;
    case SearchAlgorithm::kDynamicProgramming:
      solution = SolveDp(problem, cost, pool.get());
      break;
  }
  if (solution.ok()) {
    solution->evaluations = cost->evaluations() - evals_before;
  }
  return solution;
}

Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm) {
  return SolveDesignProblem(problem, cost, algorithm, SearchOptions{});
}

}  // namespace vdb::core
