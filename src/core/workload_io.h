// Loads workloads from .sql files: ';'-separated statements with `--`
// line comments.

#ifndef VDB_CORE_WORKLOAD_IO_H_
#define VDB_CORE_WORKLOAD_IO_H_

#include <string>

#include "core/workload.h"
#include "util/result.h"

namespace vdb::core {

/// Parses a workload from SQL text: statements separated by ';', with
/// `--` line comments. Statement boundaries respect string literals
/// (a ';' inside '...' does not split). Empty statements are skipped.
Result<Workload> ParseWorkloadText(const std::string& name,
                                   const std::string& text);

/// Loads a workload from a .sql file.
Result<Workload> LoadWorkloadFile(const std::string& path);

}  // namespace vdb::core

#endif  // VDB_CORE_WORKLOAD_IO_H_
