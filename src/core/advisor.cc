#include "core/advisor.h"

#include <algorithm>

#include "core/cost_model.h"
#include "sim/vmm.h"

namespace vdb::core {

Result<DesignSolution> Advisor::Recommend(
    const VirtualizationDesignProblem& problem, SearchAlgorithm algorithm,
    const SearchOptions& options) {
  WorkloadCostModel cost(&problem, store_);
  return SolveDesignProblem(problem, &cost, algorithm, options);
}

Result<MeasuredOutcome> Advisor::Measure(
    const VirtualizationDesignProblem& problem,
    const std::vector<sim::ResourceShare>& allocations,
    const MeasureOptions& options) {
  VDB_RETURN_NOT_OK(problem.Validate());
  if (allocations.size() != problem.NumWorkloads()) {
    return Status::InvalidArgument("allocation count mismatch");
  }
  // The VMM validates global feasibility of the share matrix.
  sim::VirtualMachineMonitor vmm(problem.machine, problem.hypervisor);
  std::vector<sim::VirtualMachine*> vms;
  for (size_t i = 0; i < allocations.size(); ++i) {
    VDB_ASSIGN_OR_RETURN(
        sim::VirtualMachine * vm,
        vmm.CreateVm("vm-" + std::to_string(i), allocations[i]));
    vms.push_back(vm);
  }
  MeasuredOutcome outcome;
  for (size_t i = 0; i < allocations.size(); ++i) {
    exec::Database* db = problem.databases[i];
    VDB_RETURN_NOT_OK(db->ApplyVmConfig(*vms[i]));
    if (options.cold_start) VDB_RETURN_NOT_OK(db->DropCaches());
    double seconds = 0.0;
    bool first = true;
    for (const std::string& sql : problem.workloads[i].statements) {
      if (!first && options.cold_per_statement) {
        VDB_RETURN_NOT_OK(db->DropCaches());
      }
      first = false;
      VDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                           db->Execute(sql, *vms[i]));
      seconds += result.elapsed_seconds;
    }
    outcome.workload_seconds.push_back(seconds);
    outcome.total_seconds += seconds;
    outcome.max_seconds = std::max(outcome.max_seconds, seconds);
  }
  return outcome;
}

}  // namespace vdb::core
