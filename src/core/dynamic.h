// Dynamic re-design (paper Section 7): re-run the design search per
// workload phase and compare against the static deployment-time design.

#ifndef VDB_CORE_DYNAMIC_H_
#define VDB_CORE_DYNAMIC_H_

#include <vector>

#include "core/advisor.h"
#include "core/problem.h"
#include "util/result.h"

namespace vdb::core {

/// The dynamic extension the paper lists as the key next step (Section 7):
/// workloads change over time, and the virtual machines can be
/// reconfigured on the fly. Each phase is a full assignment of workloads
/// to the N VMs.
struct DynamicComparison {
  /// Design chosen once from phase 0 and kept (static design problem).
  DesignSolution static_design;
  /// Design re-solved at the start of every phase.
  std::vector<DesignSolution> dynamic_designs;
  std::vector<double> static_phase_seconds;
  std::vector<double> dynamic_phase_seconds;
  double static_total_seconds = 0.0;
  double dynamic_total_seconds = 0.0;
};

/// Evaluates static deployment-time design against per-phase re-design on
/// a phased workload sequence. `base` supplies the machine, databases,
/// controlled resources, and grid; `phases[p]` supplies the workloads of
/// phase p (all phases must have base.NumWorkloads() workloads).
Result<DynamicComparison> CompareStaticVsDynamic(
    VirtualizationDesignProblem base,
    const std::vector<std::vector<Workload>>& phases,
    const calib::CalibrationStore& store,
    SearchAlgorithm algorithm = SearchAlgorithm::kDynamicProgramming);

}  // namespace vdb::core

#endif  // VDB_CORE_DYNAMIC_H_
