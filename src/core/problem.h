// VirtualizationDesignProblem (paper Section 3): N workloads on one
// machine; choose the share matrix R minimizing total estimated cost.

#ifndef VDB_CORE_PROBLEM_H_
#define VDB_CORE_PROBLEM_H_

#include <string>
#include <vector>

#include "core/workload.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/resources.h"
#include "util/status.h"

namespace vdb::core {

/// The virtualization design problem (paper Section 3): N workloads, each
/// in its own VM on one physical machine; choose the share matrix R to
/// minimize the summed workload cost subject to sum_i r_ij <= 1.
struct VirtualizationDesignProblem {
  sim::MachineSpec machine;
  sim::HypervisorModel hypervisor = sim::HypervisorModel::XenLike();

  /// The N workloads and the database instance each one runs against.
  /// `databases[i]` must outlive the problem and contain workload i's
  /// tables (instances may be shared when workloads use the same schema).
  std::vector<Workload> workloads;
  std::vector<exec::Database*> databases;

  /// Which physical resources the search controls. Resources not listed
  /// are fixed at an equal 1/N split (the paper's CPU-only experiment
  /// fixes memory at 50/50, for example).
  std::vector<sim::ResourceKind> controlled = {sim::ResourceKind::kCpu};

  /// Discretization: each controlled resource is divided into this many
  /// units; every workload gets at least one unit of each.
  int grid_steps = 20;

  size_t NumWorkloads() const { return workloads.size(); }

  Status Validate() const;
};

/// One candidate/recommended design: a share vector per workload.
struct DesignSolution {
  std::vector<sim::ResourceShare> allocations;
  /// Estimated total cost (sum over workloads) in milliseconds.
  double total_cost_ms = 0.0;
  /// Number of Cost(W, R) evaluations the search performed.
  uint64_t evaluations = 0;
  /// Improvement rounds taken by iterative searches (greedy unit moves);
  /// 0 for single-pass algorithms.
  uint64_t iterations = 0;
  std::string algorithm;

  std::string ToString() const;
};

/// The equal-split baseline design.
DesignSolution EqualSplitSolution(const VirtualizationDesignProblem& problem);

}  // namespace vdb::core

#endif  // VDB_CORE_PROBLEM_H_
