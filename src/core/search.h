#ifndef VDB_CORE_SEARCH_H_
#define VDB_CORE_SEARCH_H_

#include <vector>

#include "core/cost_model.h"
#include "core/problem.h"
#include "util/result.h"

namespace vdb::core {

/// Combinatorial search strategies for the virtualization design problem
/// (the paper suggests "any standard combinatorial search algorithm such
/// as greedy search or dynamic programming"; we provide both plus an
/// exhaustive baseline for ground truth on small instances).
enum class SearchAlgorithm {
  kExhaustive,
  kGreedy,
  kDynamicProgramming,
};

const char* SearchAlgorithmName(SearchAlgorithm algorithm);

/// Builds the full share vector for workload `index` given its units of
/// each controlled resource; uncontrolled resources get an equal split.
sim::ResourceShare ShareFromUnits(const VirtualizationDesignProblem& problem,
                                  const std::vector<int>& units);

/// Solves `argmin_R sum_i Cost(W_i, R_i)` over the discretized allocation
/// grid, subject to every workload receiving at least one unit of each
/// controlled resource and the units of each resource summing to
/// `grid_steps`.
///
/// - kExhaustive enumerates all splits (fails with InvalidArgument if the
///   space exceeds ~2M designs).
/// - kGreedy starts from the equal split and repeatedly applies the best
///   single-unit transfer between two workloads until no move improves.
/// - kDynamicProgramming exploits the separability of the objective and is
///   exact for one or two controlled resources.
Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm);

}  // namespace vdb::core

#endif  // VDB_CORE_SEARCH_H_
