// Search strategies over discretized allocations: exhaustive, greedy,
// and dynamic programming, with serial and thread-pooled cost fan-out.

#ifndef VDB_CORE_SEARCH_H_
#define VDB_CORE_SEARCH_H_

#include <vector>

#include "core/cost_model.h"
#include "core/problem.h"
#include "util/result.h"

namespace vdb::core {

/// Combinatorial search strategies for the virtualization design problem
/// (the paper suggests "any standard combinatorial search algorithm such
/// as greedy search or dynamic programming"; we provide both plus an
/// exhaustive baseline for ground truth on small instances).
enum class SearchAlgorithm {
  kExhaustive,
  kGreedy,
  kDynamicProgramming,
};

const char* SearchAlgorithmName(SearchAlgorithm algorithm);

/// Tuning knobs for the search layer.
struct SearchOptions {
  /// Worker threads used to fan out Cost(W, R) evaluations. 1 (the
  /// default) runs fully serially; 0 means one thread per hardware
  /// thread. Any value returns bit-identical allocations and
  /// total_cost_ms — parallelism only changes wall-clock time (the
  /// candidate order and tie-breaking of the serial search are preserved
  /// by a deterministic reduction).
  int num_threads = 1;
};

/// Builds the full share vector for workload `index` given its units of
/// each controlled resource; uncontrolled resources get an equal split.
sim::ResourceShare ShareFromUnits(const VirtualizationDesignProblem& problem,
                                  const std::vector<int>& units);

/// Solves `argmin_R sum_i Cost(W_i, R_i)` over the discretized allocation
/// grid, subject to every workload receiving at least one unit of each
/// controlled resource and the units of each resource summing to
/// `grid_steps`.
///
/// - kExhaustive enumerates all splits (fails with InvalidArgument if the
///   space exceeds ~2M designs). Parallelized by partitioning the
///   enumeration over the first workload's unit choices.
/// - kGreedy starts from the equal split and repeatedly applies the best
///   single-unit transfer between two workloads until no move improves.
///   Each iteration costs O(n·m) cost-model calls: the per-workload
///   baseline costs and the give/receive costs per (resource, workload)
///   are computed once (in parallel) and every (r, from, to) move delta
///   is derived arithmetically.
/// - kDynamicProgramming exploits the separability of the objective and is
///   exact for one or two controlled resources. Parallelized by a leaf
///   pre-evaluation pass that warms the cost-model cache with every
///   (workload, allocation) cell the DP recurrence can touch.
Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm, const SearchOptions& options);

Result<DesignSolution> SolveDesignProblem(
    const VirtualizationDesignProblem& problem, WorkloadCostModel* cost,
    SearchAlgorithm algorithm);

}  // namespace vdb::core

#endif  // VDB_CORE_SEARCH_H_
