#include "core/cost_model.h"

#include <cmath>

namespace vdb::core {

Result<double> WorkloadCostModel::Cost(size_t index,
                                       const sim::ResourceShare& share) {
  if (index >= problem_->workloads.size()) {
    return Status::InvalidArgument("workload index out of range");
  }
  const Key key{index, std::llround(share.cpu * 1000.0),
                std::llround(share.memory * 1000.0),
                std::llround(share.io * 1000.0)};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++evaluations_;
  VDB_ASSIGN_OR_RETURN(optimizer::OptimizerParams params,
                       store_->Lookup(share));
  exec::Database* db = problem_->databases[index];
  db->SetOptimizerParams(params);
  double total_ms = 0.0;
  for (const std::string& sql : problem_->workloads[index].statements) {
    VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan, db->Prepare(sql));
    total_ms += plan->total_cost_ms;
  }
  // Service-level weight (paper Section 7 extension).
  total_ms *= problem_->workloads[index].importance;
  cache_[key] = total_ms;
  return total_ms;
}

Result<double> WorkloadCostModel::TotalCost(
    const std::vector<sim::ResourceShare>& shares) {
  if (shares.size() != problem_->workloads.size()) {
    return Status::InvalidArgument("allocation count mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < shares.size(); ++i) {
    VDB_ASSIGN_OR_RETURN(double cost, Cost(i, shares[i]));
    total += cost;
  }
  return total;
}

}  // namespace vdb::core
