#include "core/cost_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace vdb::core {

namespace {

// Process-wide instrumentation (DESIGN.md §9). The pointers are resolved
// once; every operation below is a no-op while metrics are disabled.
struct CostModelMetrics {
  obs::Counter* calls;
  obs::Counter* cache_hits;
  obs::Counter* probes;
  obs::Histogram* probe_latency;

  static const CostModelMetrics& Get() {
    static const CostModelMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return CostModelMetrics{
          registry.GetCounter("cost_model.calls"),
          registry.GetCounter("cost_model.cache_hits"),
          registry.GetCounter("cost_model.probes"),
          registry.GetHistogram("cost_model.probe_latency")};
    }();
    return metrics;
  }
};

}  // namespace

Result<double> WorkloadCostModel::Cost(size_t index,
                                       const sim::ResourceShare& share) {
  if (index >= problem_->workloads.size()) {
    return Status::InvalidArgument("workload index out of range");
  }
  const CostModelMetrics& metrics = CostModelMetrics::Get();
  metrics.calls->Add();
  const Key key{index, std::llround(share.cpu * 1e9),
                std::llround(share.memory * 1e9),
                std::llround(share.io * 1e9)};
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.cache_hits->Add();
      return it->second;
    }
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  metrics.probes->Add();
  obs::ScopedTimer probe_timer(metrics.probe_latency);
  VDB_ASSIGN_OR_RETURN(optimizer::OptimizerParams params,
                       store_->Lookup(share));
  const exec::Database* db = problem_->databases[index];
  double total_ms = 0.0;
  for (const std::string& sql : problem_->workloads[index].statements) {
    // Side-effect-free what-if preparation: the database's own optimizer
    // parameters are never touched, so concurrent Cost calls are safe and
    // later Prepare calls outside the cost model see unchanged state.
    VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan,
                         db->Prepare(sql, params));
    total_ms += plan->total_cost_ms;
  }
  // Service-level weight (paper Section 7 extension).
  total_ms *= problem_->workloads[index].importance;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.emplace(key, total_ms);
  }
  return total_ms;
}

Result<double> WorkloadCostModel::TotalCost(
    const std::vector<sim::ResourceShare>& shares) {
  if (shares.size() != problem_->workloads.size()) {
    return Status::InvalidArgument("allocation count mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < shares.size(); ++i) {
    VDB_ASSIGN_OR_RETURN(double cost, Cost(i, shares[i]));
    total += cost;
  }
  return total;
}

}  // namespace vdb::core
