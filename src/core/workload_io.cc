#include "core/workload_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace vdb::core {

Result<Workload> ParseWorkloadText(const std::string& name,
                                   const std::string& text) {
  Workload workload;
  workload.name = name;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (!in_string && c == '-' && i + 1 < text.size() &&
        text[i + 1] == '-') {
      // Line comment: skip to end of line.
      while (i < text.size() && text[i] != '\n') ++i;
      current.push_back(' ');
      continue;
    }
    if (c == '\'') {
      // Toggle string state; '' escapes stay inside the literal.
      if (in_string && i + 1 < text.size() && text[i + 1] == '\'') {
        current += "''";
        ++i;
        continue;
      }
      in_string = !in_string;
      current.push_back(c);
      continue;
    }
    if (!in_string && c == ';') {
      const std::string statement(Trim(current));
      if (!statement.empty()) workload.statements.push_back(statement);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (in_string) {
    return Status::InvalidArgument("unterminated string literal in workload");
  }
  const std::string last(Trim(current));
  if (!last.empty()) workload.statements.push_back(last);
  if (workload.statements.empty()) {
    return Status::InvalidArgument("workload contains no statements");
  }
  return workload;
}

Result<Workload> LoadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open workload file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  // Name the workload after the file (basename without extension).
  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return ParseWorkloadText(name, text.str());
}

}  // namespace vdb::core
