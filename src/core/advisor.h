// The Advisor facade: calibrate (or load) P(R), search for a recommended
// allocation, and validate it by measured execution inside the VMs.

#ifndef VDB_CORE_ADVISOR_H_
#define VDB_CORE_ADVISOR_H_

#include <vector>

#include "calib/store.h"
#include "core/problem.h"
#include "core/search.h"
#include "util/result.h"

namespace vdb::core {

/// Actual (simulated) outcome of running a design: per-workload and total
/// execution times measured inside the VMs.
struct MeasuredOutcome {
  std::vector<double> workload_seconds;
  double total_seconds = 0.0;
  double max_seconds = 0.0;  // makespan across VMs (they run concurrently)
};

/// End-to-end facade for the paper's framework (Figure 2): combine the
/// calibrated what-if cost model with a combinatorial search to recommend
/// a resource allocation, and measure any design by actually running the
/// workloads in VMs with those shares.
class Advisor {
 public:
  explicit Advisor(const calib::CalibrationStore* store) : store_(store) {}

  Advisor(const Advisor&) = delete;
  Advisor& operator=(const Advisor&) = delete;

  /// Recommends a design for the problem using `algorithm`. `options`
  /// controls the search-layer fan-out (e.g. worker threads); any setting
  /// yields the same recommendation.
  Result<DesignSolution> Recommend(
      const VirtualizationDesignProblem& problem,
      SearchAlgorithm algorithm = SearchAlgorithm::kDynamicProgramming,
      const SearchOptions& options = SearchOptions{});

  struct MeasureOptions {
    /// Drop the page cache before each workload.
    bool cold_start = true;
    /// Also drop it between a workload's statements. This models the
    /// paper's setting where the database exceeds the VM's memory, so
    /// repeated queries never run from cache.
    bool cold_per_statement = false;
  };

  /// Runs every workload inside a VM configured with its allocated share
  /// and reports measured times. Each VM's time is independent given the
  /// shares (the VMM guarantees the shares are feasible), so the VMs
  /// conceptually run concurrently; `total_seconds` is the paper's summed
  /// execution time, `max_seconds` the makespan.
  static Result<MeasuredOutcome> Measure(
      const VirtualizationDesignProblem& problem,
      const std::vector<sim::ResourceShare>& allocations,
      const MeasureOptions& options);
  static Result<MeasuredOutcome> Measure(
      const VirtualizationDesignProblem& problem,
      const std::vector<sim::ResourceShare>& allocations) {
    return Measure(problem, allocations, MeasureOptions{});
  }

 private:
  const calib::CalibrationStore* store_;
};

}  // namespace vdb::core

#endif  // VDB_CORE_ADVISOR_H_
