// CalibrationStore: calibrated optimizer parameters P(R) over an
// allocation grid, with multilinear interpolation for off-grid lookups
// and save/load.

#ifndef VDB_CALIB_STORE_H_
#define VDB_CALIB_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/params.h"
#include "sim/resources.h"
#include "util/result.h"

namespace vdb::calib {

/// Stores calibrated optimizer parameters P(R) for a grid of resource
/// allocations R, and answers lookups for arbitrary allocations by
/// trilinear interpolation over the (cpu, memory, io) axes.
///
/// As the paper observes, P depends only on the machine and R — not on the
/// database or workload — so one store serves every virtualization design
/// problem on that machine. The store can be persisted to a text file.
///
/// Thread-safety: Lookup and the other const members are safe to call
/// concurrently (the parallel design search does); Put and LoadFromFile
/// must not race with anything. The object is movable, so
/// Result<CalibrationStore> round-trips work.
class CalibrationStore {
 public:
  CalibrationStore() = default;

  /// Adds (or replaces) the parameters calibrated at `share`. Shares are
  /// fractions in (0, 1]; parameter entries are per-unit times in
  /// milliseconds (see optimizer::OptimizerParams).
  void Put(const sim::ResourceShare& share,
           const optimizer::OptimizerParams& params);

  /// Returns P for `share`. Grid points hit an exact fast path (hash
  /// probe, epsilon-scan fallback); off-grid allocations are trilinearly
  /// interpolated from the surrounding cell's corners. Allocations outside
  /// the grid's bounding box are clamped to it, and an incomplete
  /// surrounding cell (a failed grid point, or a non-rectangular store)
  /// degrades to the nearest stored point — both log a once-per-process
  /// warning and bump the calib.store.* counters. Fails with NotFound only
  /// when the store is empty.
  Result<optimizer::OptimizerParams> Lookup(
      const sim::ResourceShare& share) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The stored grid points.
  std::vector<sim::ResourceShare> Points() const;

  /// Text (one line per entry) persistence. SaveToFile reports IOError on
  /// unwritable paths; LoadFromFile rejects partial or trailing-garbage
  /// records with the offending line number rather than truncating.
  Status SaveToFile(const std::string& path) const;
  static Result<CalibrationStore> LoadFromFile(const std::string& path);

 private:
  struct Entry {
    sim::ResourceShare share;
    optimizer::OptimizerParams params;
  };

  /// Shares quantized to 1e-9 (the exact-match tolerance) for hashing.
  struct QuantizedShare {
    int64_t cpu = 0;
    int64_t memory = 0;
    int64_t io = 0;
    bool operator==(const QuantizedShare&) const = default;
  };
  struct QuantizedShareHash {
    size_t operator()(const QuantizedShare& q) const;
  };

  const Entry* FindExact(const sim::ResourceShare& share) const;
  const Entry* FindNearest(const sim::ResourceShare& share) const;

  /// Inserts `value` into the sorted `axis` unless an epsilon-equal value
  /// is already present.
  static void InsertAxisValue(std::vector<double>* axis, double value);

  std::vector<Entry> entries_;
  /// Exact-match index: quantized share -> entries_ position. A hash miss
  /// still falls back to an epsilon scan, so quantization-boundary shares
  /// keep the historical tolerance semantics.
  std::unordered_map<QuantizedShare, size_t, QuantizedShareHash> index_;
  /// Distinct per-resource grid coordinates, sorted ascending; maintained
  /// by Put so Lookup does not rebuild them.
  std::vector<double> cpu_axis_;
  std::vector<double> mem_axis_;
  std::vector<double> io_axis_;
};

}  // namespace vdb::calib

#endif  // VDB_CALIB_STORE_H_
