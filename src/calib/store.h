#ifndef VDB_CALIB_STORE_H_
#define VDB_CALIB_STORE_H_

#include <string>
#include <vector>

#include "optimizer/params.h"
#include "sim/resources.h"
#include "util/result.h"

namespace vdb::calib {

/// Stores calibrated optimizer parameters P(R) for a grid of resource
/// allocations R, and answers lookups for arbitrary allocations by
/// trilinear interpolation over the (cpu, memory, io) axes.
///
/// As the paper observes, P depends only on the machine and R — not on the
/// database or workload — so one store serves every virtualization design
/// problem on that machine. The store can be persisted to a text file.
class CalibrationStore {
 public:
  CalibrationStore() = default;

  /// Adds (or replaces) the parameters calibrated at `share`.
  void Put(const sim::ResourceShare& share,
           const optimizer::OptimizerParams& params);

  /// Returns P for `share`: exact if it is a stored grid point, otherwise
  /// interpolated (clamped to the grid's bounding box; falls back to the
  /// nearest stored point if the surrounding cell is incomplete).
  /// Fails if the store is empty.
  Result<optimizer::OptimizerParams> Lookup(
      const sim::ResourceShare& share) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The stored grid points.
  std::vector<sim::ResourceShare> Points() const;

  /// Text (one line per entry) persistence.
  Status SaveToFile(const std::string& path) const;
  static Result<CalibrationStore> LoadFromFile(const std::string& path);

 private:
  struct Entry {
    sim::ResourceShare share;
    optimizer::OptimizerParams params;
  };

  const Entry* FindExact(const sim::ResourceShare& share) const;
  const Entry* FindNearest(const sim::ResourceShare& share) const;

  std::vector<Entry> entries_;
};

}  // namespace vdb::calib

#endif  // VDB_CALIB_STORE_H_
