#include "calib/calibration.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/linalg.h"

namespace vdb::calib {

namespace {

// Calibration instrumentation (DESIGN.md §9). The NNLS solver publishes
// its own iteration counts under linalg.nnls_*.
struct CalibMetrics {
  obs::Counter* runs;
  obs::Counter* queries_executed;
  obs::Histogram* run_latency;
  obs::Gauge* residual_rms_ms;

  static const CalibMetrics& Get() {
    static const CalibMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return CalibMetrics{registry.GetCounter("calib.runs"),
                          registry.GetCounter("calib.queries_executed"),
                          registry.GetHistogram("calib.run_latency"),
                          registry.GetGauge("calib.residual_rms_ms")};
    }();
    return metrics;
  }
};

std::string Key(uint64_t rows, double fraction) {
  return std::to_string(
      static_cast<int64_t>(static_cast<double>(rows - 1) * fraction));
}

std::string Range(uint64_t rows, double fraction, int span) {
  const int64_t lo =
      static_cast<int64_t>(static_cast<double>(rows - 1) * fraction);
  return std::to_string(lo) + " and " + std::to_string(lo + span - 1);
}

}  // namespace

std::vector<CalibrationQuery> CalibrationSuite(uint64_t indexed_rows) {
  const uint64_t rows = std::max<uint64_t>(indexed_rows, 100);
  return {
      // Cold sequential scans of two sizes: identify seq_page_cost.
      {"count_small_cold", "select count(*) from cal_small", false},
      {"count_large_cold", "select count(*) from cal_large", false},
      {"filter_large_cold",
       "select count(*) from cal_large where b < 250", false},
      // Warm scans: pure CPU — identify cpu_tuple_cost/cpu_operator_cost
      // (the paper's `select max(r.a)` technique).
      {"count_small_warm", "select count(*) from cal_small", true},
      {"max_a_warm", "select max(a) from cal_small", true},
      {"filter1_warm", "select count(*) from cal_small where b < 500",
       true},
      {"filter3_warm",
       "select count(*) from cal_small where b < 500 and c < 5000 and d < "
       "0.5",
       true},
      {"count_large_warm", "select count(*) from cal_large", true},
      {"filter_large_warm",
       "select count(*) from cal_large where b < 250 and c < 2500", true},
      // Cold index point lookups: identify random_page_cost.
      {"index_point_cold",
       "select c from cal_indexed where a = " + Key(rows, 0.05), false},
      {"index_point2_cold",
       "select c from cal_indexed where a = " + Key(rows, 0.21), false},
      {"index_range_cold",
       "select c from cal_indexed where a between " + Range(rows, 0.5, 3),
       false},
      // Warm index scans: identify cpu_index_tuple_cost.
      {"index_point_warm",
       "select c from cal_indexed where a = " + Key(rows, 0.62), true},
      {"index_range_warm",
       "select c from cal_indexed where a between " + Range(rows, 0.1, 5),
       true},
      {"index_range2_warm",
       "select c from cal_indexed where a between " + Range(rows, 0.35, 10),
       true},
  };
}

Result<CalibrationResult> Calibrator::Calibrate(
    const sim::VirtualMachine& vm) {
  const CalibMetrics& metrics = CalibMetrics::Get();
  metrics.runs->Add();
  obs::ScopedTimer run_timer(metrics.run_latency);
  VDB_RETURN_NOT_OK(db_->ApplyVmConfig(vm));
  // Seed parameters pin the plan choices for the suite: the paper designs
  // the synthetic queries "so that the optimizer chooses specific plans".
  // A near-1:1 random:sequential ratio makes the selective index queries
  // actually use their indexes regardless of the calibration table sizes;
  // the seed values otherwise don't matter — only the chosen plans' work
  // vectors enter the equations.
  optimizer::OptimizerParams seed;
  seed.seq_page_cost = 1.0;
  seed.random_page_cost = 1.1;
  seed.cpu_tuple_cost = 0.005;
  seed.cpu_index_tuple_cost = 0.0025;
  seed.cpu_operator_cost = 0.0012;
  seed.effective_cache_size_pages = db_->config().buffer_pool_pages;
  seed.work_mem_bytes = db_->config().work_mem_bytes;
  db_->SetOptimizerParams(seed);

  if (suite_.empty()) {
    VDB_ASSIGN_OR_RETURN(catalog::TableInfo * indexed,
                         db_->catalog()->GetTable("cal_indexed"));
    suite_ = CalibrationSuite(indexed->heap->NumRecords());
  }
  const size_t n = suite_.size();
  if (n < optimizer::OptimizerParams::kNumCalibrated) {
    return Status::InvalidArgument("calibration suite too small");
  }
  Matrix a(n, optimizer::OptimizerParams::kNumCalibrated);
  std::vector<double> b(n);

  for (size_t q = 0; q < n; ++q) {
    const CalibrationQuery& query = suite_[q];
    VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan,
                         db_->Prepare(query.sql));
    optimizer::WorkVector work = plan->TotalWork();
    if (query.warm_cache) {
      // Warm the cache with one unmeasured run, and model the measured run
      // as I/O-free. (If the database exceeds the VM's memory, the warm
      // run still misses and the CPU parameters honestly absorb it.)
      VDB_RETURN_NOT_OK(db_->ExecutePlan(*plan, vm).status());
      work.seq_pages = 0;
      work.random_pages = 0;
    } else {
      VDB_RETURN_NOT_OK(db_->DropCaches());
    }
    VDB_ASSIGN_OR_RETURN(exec::QueryResult result,
                         db_->ExecutePlan(*plan, vm));
    metrics.queries_executed->Add();
    const auto row = work.AsArray();
    for (int c = 0; c < optimizer::OptimizerParams::kNumCalibrated; ++c) {
      a.At(q, c) = row[c];
    }
    b[q] = result.elapsed_seconds * 1000.0;
  }

  VDB_ASSIGN_OR_RETURN(std::vector<double> solution,
                       NonNegativeLeastSquares(a, b));
  CalibrationResult result;
  std::array<double, optimizer::OptimizerParams::kNumCalibrated> vec;
  for (int i = 0; i < optimizer::OptimizerParams::kNumCalibrated; ++i) {
    vec[i] = solution[i];
  }
  result.params.SetCalibratedVector(vec);
  result.params.effective_cache_size_pages =
      db_->config().buffer_pool_pages;
  result.params.work_mem_bytes = db_->config().work_mem_bytes;
  result.residual_rms_ms = ResidualRms(a, solution, b);
  metrics.residual_rms_ms->Set(result.residual_rms_ms);
  result.num_queries = static_cast<int>(n);
  result.measured_ms = b;
  result.fitted_ms = a.TimesVector(solution);
  return result;
}

}  // namespace vdb::calib
