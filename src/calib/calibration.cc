#include "calib/calibration.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/linalg.h"
#include "util/logging.h"
#include "util/random.h"

namespace vdb::calib {

namespace {

// Calibration instrumentation (DESIGN.md §9/§10). The NNLS solver
// publishes its own iteration counts under linalg.nnls_*.
struct CalibMetrics {
  obs::Counter* runs;
  obs::Counter* queries_executed;
  obs::Counter* retries;
  obs::Counter* rejected_samples;
  obs::Counter* failed_queries;
  obs::Counter* flagged_fits;
  obs::Histogram* run_latency;
  obs::Gauge* residual_rms_ms;

  static const CalibMetrics& Get() {
    static const CalibMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return CalibMetrics{registry.GetCounter("calib.runs"),
                          registry.GetCounter("calib.queries_executed"),
                          registry.GetCounter("calib.retries"),
                          registry.GetCounter("calib.rejected_samples"),
                          registry.GetCounter("calib.failed_queries"),
                          registry.GetCounter("calib.flagged_fits"),
                          registry.GetHistogram("calib.run_latency"),
                          registry.GetGauge("calib.residual_rms_ms")};
    }();
    return metrics;
  }
};

std::string Key(uint64_t rows, double fraction) {
  return std::to_string(
      static_cast<int64_t>(static_cast<double>(rows - 1) * fraction));
}

std::string Range(uint64_t rows, double fraction, int span) {
  const int64_t lo =
      static_cast<int64_t>(static_cast<double>(rows - 1) * fraction);
  return std::to_string(lo) + " and " + std::to_string(lo + span - 1);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

// One execution with transient-failure retry. The exponential backoff is
// *simulated*: it is accrued into stats->backoff_ms (with deterministic
// ±10% jitter) rather than slept on the host, so tests stay fast and the
// policy stays measurable.
Result<exec::QueryResult> RunWithRetry(exec::Database* db,
                                       const optimizer::PhysicalNode& plan,
                                       const sim::VirtualMachine& vm,
                                       const CalibrationOptions& options,
                                       Random* jitter,
                                       CalibrationRunStats* stats) {
  double backoff_ms = options.backoff_initial_ms;
  Status last = Status::Internal("calibration run never attempted");
  for (int attempt = 0;; ++attempt) {
    Result<exec::QueryResult> run = db->ExecutePlan(plan, vm);
    if (run.ok()) return run;
    last = run.status();
    if (attempt >= options.max_retries) break;
    stats->retries += 1;
    CalibMetrics::Get().retries->Add();
    stats->backoff_ms += backoff_ms * (0.9 + 0.2 * jitter->NextDouble());
    backoff_ms *= options.backoff_multiplier;
  }
  return last;
}

// Robust aggregation (DESIGN.md §10): MAD outlier rejection centered on
// the median, then the mean of the survivors (the mean is the more
// statistically efficient location estimate once the heavy tail has been
// clipped). Requires >= 3 samples to reject; with fewer there is no
// robust scale estimate.
// Pins the probe suite's plan choices by disabling zone-map skipping for
// the duration of a calibration run. The suite's tables are deliberately
// clustered, so with skipping on the "index" probes would plan as skip
// scans and never touch a random page — leaving random_page_cost (and
// cpu_index_tuple_cost) unidentifiable. The fitted parameters feed the
// skip-aware cost model at plan time regardless.
class ZoneMapsOffGuard {
 public:
  explicit ZoneMapsOffGuard(exec::Database* db)
      : db_(db), was_enabled_(db->zone_maps_enabled()) {
    db_->set_zone_maps_enabled(false);
  }
  ~ZoneMapsOffGuard() { db_->set_zone_maps_enabled(was_enabled_); }

  ZoneMapsOffGuard(const ZoneMapsOffGuard&) = delete;
  ZoneMapsOffGuard& operator=(const ZoneMapsOffGuard&) = delete;

 private:
  exec::Database* db_;
  bool was_enabled_;
};

double AggregateSamples(const std::vector<double>& samples,
                        const CalibrationOptions& options, int* rejected) {
  *rejected = 0;
  std::vector<double> kept = samples;
  if (samples.size() >= 3) {
    const double median = Median(samples);
    std::vector<double> deviations;
    deviations.reserve(samples.size());
    for (double v : samples) deviations.push_back(std::fabs(v - median));
    const double robust_sigma = 1.4826 * Median(deviations);
    // When the majority of samples agree exactly (the deterministic
    // simulator's common case), sigma is 0 and anything off the median —
    // i.e. every injected spike — is rejected; the epsilon absorbs
    // floating-point wiggle only.
    const double cutoff =
        std::max(options.outlier_mad_cutoff * robust_sigma,
                 1e-9 * std::max(std::fabs(median), 1.0));
    kept.clear();
    for (double v : samples) {
      if (std::fabs(v - median) <= cutoff) kept.push_back(v);
    }
    *rejected = static_cast<int>(samples.size() - kept.size());
  }
  double sum = 0.0;
  for (double v : kept) sum += v;
  return sum / static_cast<double>(kept.size());
}

}  // namespace

std::vector<CalibrationQuery> CalibrationSuite(uint64_t indexed_rows) {
  const uint64_t rows = std::max<uint64_t>(indexed_rows, 100);
  return {
      // Cold sequential scans of two sizes: identify seq_page_cost.
      {"count_small_cold", "select count(*) from cal_small", false},
      {"count_large_cold", "select count(*) from cal_large", false},
      {"filter_large_cold",
       "select count(*) from cal_large where b < 250", false},
      // Warm scans: pure CPU — identify cpu_tuple_cost/cpu_operator_cost
      // (the paper's `select max(r.a)` technique).
      {"count_small_warm", "select count(*) from cal_small", true},
      {"max_a_warm", "select max(a) from cal_small", true},
      {"filter1_warm", "select count(*) from cal_small where b < 500",
       true},
      {"filter3_warm",
       "select count(*) from cal_small where b < 500 and c < 5000 and d < "
       "0.5",
       true},
      {"count_large_warm", "select count(*) from cal_large", true},
      {"filter_large_warm",
       "select count(*) from cal_large where b < 250 and c < 2500", true},
      // Cold index point lookups: identify random_page_cost.
      {"index_point_cold",
       "select c from cal_indexed where a = " + Key(rows, 0.05), false},
      {"index_point2_cold",
       "select c from cal_indexed where a = " + Key(rows, 0.21), false},
      {"index_range_cold",
       "select c from cal_indexed where a between " + Range(rows, 0.5, 3),
       false},
      // Warm index scans: identify cpu_index_tuple_cost.
      {"index_point_warm",
       "select c from cal_indexed where a = " + Key(rows, 0.62), true},
      {"index_range_warm",
       "select c from cal_indexed where a between " + Range(rows, 0.1, 5),
       true},
      {"index_range2_warm",
       "select c from cal_indexed where a between " + Range(rows, 0.35, 10),
       true},
  };
}

Result<CalibrationResult> Calibrator::Calibrate(
    const sim::VirtualMachine& vm, const CalibrationOptions& options) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("CalibrationOptions.repeats must be >= 1");
  }
  if (options.max_retries < 0 || options.huber_iterations < 0) {
    return Status::InvalidArgument(
        "CalibrationOptions retry/huber counts must be >= 0");
  }
  const CalibMetrics& metrics = CalibMetrics::Get();
  metrics.runs->Add();
  obs::ScopedTimer run_timer(metrics.run_latency);
  ZoneMapsOffGuard zone_guard(db_);
  VDB_RETURN_NOT_OK(db_->ApplyVmConfig(vm));
  // Seed parameters pin the plan choices for the suite: the paper designs
  // the synthetic queries "so that the optimizer chooses specific plans".
  // A near-1:1 random:sequential ratio makes the selective index queries
  // actually use their indexes regardless of the calibration table sizes;
  // the seed values otherwise don't matter — only the chosen plans' work
  // vectors enter the equations.
  optimizer::OptimizerParams seed;
  seed.seq_page_cost = 1.0;
  seed.random_page_cost = 1.1;
  seed.cpu_tuple_cost = 0.005;
  seed.cpu_index_tuple_cost = 0.0025;
  seed.cpu_operator_cost = 0.0012;
  seed.effective_cache_size_pages = db_->config().buffer_pool_pages;
  seed.work_mem_bytes = db_->config().work_mem_bytes;
  db_->SetOptimizerParams(seed);

  if (suite_.empty()) {
    VDB_ASSIGN_OR_RETURN(catalog::TableInfo * indexed,
                         db_->catalog()->GetTable("cal_indexed"));
    suite_ = CalibrationSuite(indexed->heap->NumRecords());
  }
  const size_t n = suite_.size();
  if (n < optimizer::OptimizerParams::kNumCalibrated) {
    return Status::InvalidArgument("calibration suite too small");
  }

  Random jitter(options.seed);
  CalibrationResult result;
  std::vector<std::array<double, optimizer::OptimizerParams::kNumCalibrated>>
      rows;
  std::vector<double> b;
  rows.reserve(n);
  b.reserve(n);

  for (size_t q = 0; q < n; ++q) {
    const CalibrationQuery& query = suite_[q];
    // Planning failures are real bugs (bad suite / missing tables), never
    // transient — they abort the run.
    VDB_ASSIGN_OR_RETURN(optimizer::PhysicalNodePtr plan,
                         db_->Prepare(query.sql));
    optimizer::WorkVector work = plan->TotalWork();
    if (query.warm_cache) {
      // Warm the cache with one unmeasured run, and model the measured run
      // as I/O-free. (If the database exceeds the VM's memory, the warm
      // run still misses and the CPU parameters honestly absorb it.)
      Result<exec::QueryResult> warm =
          RunWithRetry(db_, *plan, vm, options, &jitter, &result.stats);
      if (!warm.ok()) {
        result.stats.failed_queries += 1;
        metrics.failed_queries->Add();
        result.warnings.push_back("query '" + query.name +
                                  "' dropped (warm-up failed): " +
                                  warm.status().ToString());
        continue;
      }
      work.seq_pages = 0;
      work.random_pages = 0;
    }

    std::vector<double> samples;
    samples.reserve(options.repeats);
    for (int k = 0; k < options.repeats; ++k) {
      if (!query.warm_cache) VDB_RETURN_NOT_OK(db_->DropCaches());
      Result<exec::QueryResult> run =
          RunWithRetry(db_, *plan, vm, options, &jitter, &result.stats);
      if (!run.ok()) {
        result.warnings.push_back("query '" + query.name + "' sample " +
                                  std::to_string(k + 1) + " abandoned: " +
                                  run.status().ToString());
        continue;
      }
      metrics.queries_executed->Add();
      result.stats.measurements += 1;
      samples.push_back(run->elapsed_seconds * 1000.0);
      if (options.early_stop_rel_spread > 0.0 && samples.size() >= 2) {
        const auto [mn, mx] =
            std::minmax_element(samples.begin(), samples.end());
        const double scale = std::max(Median(samples), 1e-12);
        if ((*mx - *mn) / scale < options.early_stop_rel_spread) break;
      }
    }
    if (samples.empty()) {
      result.stats.failed_queries += 1;
      metrics.failed_queries->Add();
      result.warnings.push_back("query '" + query.name +
                                "' dropped: no sample survived " +
                                std::to_string(options.max_retries) +
                                " retries per attempt");
      continue;
    }

    int rejected = 0;
    const double value = AggregateSamples(samples, options, &rejected);
    if (rejected > 0) {
      result.stats.rejected_samples += rejected;
      metrics.rejected_samples->Add(static_cast<uint64_t>(rejected));
      result.warnings.push_back("query '" + query.name + "': rejected " +
                                std::to_string(rejected) + " of " +
                                std::to_string(samples.size()) +
                                " samples as outliers");
    }
    rows.push_back(work.AsArray());
    b.push_back(value);
  }

  if (rows.size() <
      static_cast<size_t>(optimizer::OptimizerParams::kNumCalibrated)) {
    return Status::InvalidArgument(
        "too few successful calibration queries (" +
        std::to_string(rows.size()) + " of " + std::to_string(n) +
        "; need >= " +
        std::to_string(optimizer::OptimizerParams::kNumCalibrated) + ")");
  }

  Matrix a(rows.size(), optimizer::OptimizerParams::kNumCalibrated);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < optimizer::OptimizerParams::kNumCalibrated; ++c) {
      a.At(r, c) = rows[r][c];
    }
  }

  // The fitted system: identical to (a, b) for absolute weighting; scaled
  // per-equation by 1/measured for relative weighting, which matches the
  // multiplicative noise model and stops the largest queries from
  // monopolizing the (collinear) CPU parameter split.
  Matrix af = a;
  std::vector<double> bf = b;
  if (options.weighting == CalibrationOptions::FitWeighting::kRelative) {
    for (size_t r = 0; r < bf.size(); ++r) {
      const double scale = 1.0 / std::max(b[r], 1e-9);
      for (size_t c = 0; c < af.cols(); ++c) af.At(r, c) *= scale;
      bf[r] = b[r] * scale;
    }
  }

  VDB_ASSIGN_OR_RETURN(std::vector<double> solution,
                       NonNegativeLeastSquares(af, bf));

  // IRLS/Huber robust refit: bound the influence of equations the initial
  // fit explains badly (surviving spikes, contaminated grid points).
  // Residuals are taken in the fitted (possibly relative) scale.
  for (int iter = 0; iter < options.huber_iterations; ++iter) {
    const std::vector<double> fitted = af.TimesVector(solution);
    std::vector<double> abs_residuals(bf.size());
    for (size_t i = 0; i < bf.size(); ++i) {
      abs_residuals[i] = std::fabs(fitted[i] - bf[i]);
    }
    const double sigma = 1.4826 * Median(abs_residuals);
    if (sigma < 1e-9) break;  // effectively exact fit — weights all 1
    const double cutoff = options.huber_cutoff_sigma * sigma;
    Matrix aw(af.rows(), af.cols());
    std::vector<double> bw(bf.size());
    for (size_t i = 0; i < bf.size(); ++i) {
      const double weight =
          abs_residuals[i] <= cutoff ? 1.0 : cutoff / abs_residuals[i];
      const double sw = std::sqrt(weight);
      for (size_t c = 0; c < af.cols(); ++c) aw.At(i, c) = sw * af.At(i, c);
      bw[i] = sw * bf[i];
    }
    Result<std::vector<double>> refit = NonNegativeLeastSquares(aw, bw);
    if (!refit.ok()) {
      result.warnings.push_back("Huber refit pass " +
                                std::to_string(iter + 1) + " failed: " +
                                refit.status().ToString());
      break;
    }
    solution = std::move(*refit);
  }

  std::array<double, optimizer::OptimizerParams::kNumCalibrated> vec;
  for (int i = 0; i < optimizer::OptimizerParams::kNumCalibrated; ++i) {
    vec[i] = solution[i];
  }
  result.params.SetCalibratedVector(vec);
  result.params.effective_cache_size_pages =
      db_->config().buffer_pool_pages;
  result.params.work_mem_bytes = db_->config().work_mem_bytes;
  result.residual_rms_ms = ResidualRms(a, solution, b);
  metrics.residual_rms_ms->Set(result.residual_rms_ms);
  result.num_queries = static_cast<int>(rows.size());
  result.measured_ms = b;
  result.fitted_ms = a.TimesVector(solution);
  if (result.residual_rms_ms > options.residual_budget_ms) {
    result.accepted = false;
    metrics.flagged_fits->Add();
    result.warnings.push_back(
        "fit residual " + std::to_string(result.residual_rms_ms) +
        " ms exceeds budget " + std::to_string(options.residual_budget_ms) +
        " ms");
    VDB_LOG(Warning) << "calibration at " << vm.share().ToString()
                     << " flagged: " << result.warnings.back();
  }
  return result;
}

}  // namespace vdb::calib
