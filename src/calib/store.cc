#include "calib/store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace vdb::calib {

namespace {

constexpr double kShareEpsilon = 1e-9;

bool SameShare(const sim::ResourceShare& a, const sim::ResourceShare& b) {
  return std::fabs(a.cpu - b.cpu) < kShareEpsilon &&
         std::fabs(a.memory - b.memory) < kShareEpsilon &&
         std::fabs(a.io - b.io) < kShareEpsilon;
}

// Bracketing values of `v` within the sorted axis; both equal when v is at
// or beyond an endpoint.
void Bracket(const std::vector<double>& axis, double v, double* lo,
             double* hi) {
  if (v <= axis.front()) {
    *lo = *hi = axis.front();
    return;
  }
  if (v >= axis.back()) {
    *lo = *hi = axis.back();
    return;
  }
  auto it = std::lower_bound(axis.begin(), axis.end(), v);
  if (std::fabs(*it - v) < kShareEpsilon) {
    *lo = *hi = *it;
    return;
  }
  *hi = *it;
  *lo = *(it - 1);
}

}  // namespace

void CalibrationStore::Put(const sim::ResourceShare& share,
                           const optimizer::OptimizerParams& params) {
  for (Entry& entry : entries_) {
    if (SameShare(entry.share, share)) {
      entry.params = params;
      return;
    }
  }
  entries_.push_back(Entry{share, params});
}

const CalibrationStore::Entry* CalibrationStore::FindExact(
    const sim::ResourceShare& share) const {
  for (const Entry& entry : entries_) {
    if (SameShare(entry.share, share)) return &entry;
  }
  return nullptr;
}

const CalibrationStore::Entry* CalibrationStore::FindNearest(
    const sim::ResourceShare& share) const {
  const Entry* best = nullptr;
  double best_distance = 0.0;
  for (const Entry& entry : entries_) {
    const double dc = entry.share.cpu - share.cpu;
    const double dm = entry.share.memory - share.memory;
    const double di = entry.share.io - share.io;
    const double distance = dc * dc + dm * dm + di * di;
    if (best == nullptr || distance < best_distance) {
      best = &entry;
      best_distance = distance;
    }
  }
  return best;
}

std::vector<sim::ResourceShare> CalibrationStore::Points() const {
  std::vector<sim::ResourceShare> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.share);
  return out;
}

Result<optimizer::OptimizerParams> CalibrationStore::Lookup(
    const sim::ResourceShare& share) const {
  if (entries_.empty()) {
    return Status::NotFound("calibration store is empty");
  }
  if (const Entry* exact = FindExact(share)) return exact->params;

  // Build the grid axes present in the store.
  std::set<double> cpu_set;
  std::set<double> mem_set;
  std::set<double> io_set;
  for (const Entry& entry : entries_) {
    cpu_set.insert(entry.share.cpu);
    mem_set.insert(entry.share.memory);
    io_set.insert(entry.share.io);
  }
  const std::vector<double> cpu_axis(cpu_set.begin(), cpu_set.end());
  const std::vector<double> mem_axis(mem_set.begin(), mem_set.end());
  const std::vector<double> io_axis(io_set.begin(), io_set.end());

  double c0;
  double c1;
  double m0;
  double m1;
  double i0;
  double i1;
  Bracket(cpu_axis, share.cpu, &c0, &c1);
  Bracket(mem_axis, share.memory, &m0, &m1);
  Bracket(io_axis, share.io, &i0, &i1);

  auto weight = [](double lo, double hi, double v) {
    return hi > lo ? (v - lo) / (hi - lo) : 0.0;
  };
  const double wc = weight(c0, c1, std::clamp(share.cpu, c0, c1));
  const double wm = weight(m0, m1, std::clamp(share.memory, m0, m1));
  const double wi = weight(i0, i1, std::clamp(share.io, i0, i1));

  std::array<double, optimizer::OptimizerParams::kNumCalibrated>
      accumulated{};
  double cache_pages = 0.0;
  double work_mem = 0.0;
  for (int dc = 0; dc < 2; ++dc) {
    for (int dm = 0; dm < 2; ++dm) {
      for (int di = 0; di < 2; ++di) {
        const double w = (dc ? wc : 1.0 - wc) * (dm ? wm : 1.0 - wm) *
                         (di ? wi : 1.0 - wi);
        if (w <= 0.0) continue;
        const sim::ResourceShare corner(dc ? c1 : c0, dm ? m1 : m0,
                                        di ? i1 : i0);
        const Entry* entry = FindExact(corner);
        if (entry == nullptr) {
          // Incomplete grid cell: fall back to the nearest stored point.
          return FindNearest(share)->params;
        }
        const auto vec = entry->params.CalibratedVector();
        for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated;
             ++k) {
          accumulated[k] += w * vec[k];
        }
        cache_pages +=
            w * static_cast<double>(entry->params.effective_cache_size_pages);
        work_mem += w * static_cast<double>(entry->params.work_mem_bytes);
      }
    }
  }
  optimizer::OptimizerParams params;
  params.SetCalibratedVector(accumulated);
  params.effective_cache_size_pages =
      static_cast<uint64_t>(std::llround(cache_pages));
  params.work_mem_bytes = static_cast<uint64_t>(std::llround(work_mem));
  return params;
}

Status CalibrationStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out.precision(17);
  for (const Entry& entry : entries_) {
    const auto vec = entry.params.CalibratedVector();
    out << entry.share.cpu << ' ' << entry.share.memory << ' '
        << entry.share.io;
    for (double v : vec) out << ' ' << v;
    out << ' ' << entry.params.effective_cache_size_pages << ' '
        << entry.params.work_mem_bytes << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::IOError("write to '" + path + "' failed");
}

Result<CalibrationStore> CalibrationStore::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  CalibrationStore store;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    sim::ResourceShare share;
    std::array<double, optimizer::OptimizerParams::kNumCalibrated> vec;
    uint64_t cache_pages = 0;
    uint64_t work_mem = 0;
    if (!(fields >> share.cpu >> share.memory >> share.io >> vec[0] >>
          vec[1] >> vec[2] >> vec[3] >> vec[4] >> cache_pages >> work_mem)) {
      // Blank lines are tolerated; a partial or unparseable record is a
      // hard error — silently stopping here would truncate the grid and
      // skew every interpolated lookup.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      return Status::IOError("malformed calibration record at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    std::string trailing;
    if (fields >> trailing) {
      return Status::IOError("trailing garbage at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    optimizer::OptimizerParams params;
    params.SetCalibratedVector(vec);
    params.effective_cache_size_pages = cache_pages;
    params.work_mem_bytes = work_mem;
    store.Put(share, params);
  }
  return store;
}

}  // namespace vdb::calib
