#include "calib/store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace vdb::calib {

namespace {

constexpr double kShareEpsilon = 1e-9;

// Lookup-path instrumentation (DESIGN.md §10): how often callers hit grid
// points exactly vs. rely on interpolation or its degraded fallbacks.
struct StoreMetrics {
  obs::Counter* exact_hits;
  obs::Counter* interpolated;
  obs::Counter* clamped;
  obs::Counter* nearest_fallback;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return StoreMetrics{
          registry.GetCounter("calib.store.exact_hits"),
          registry.GetCounter("calib.store.interpolated"),
          registry.GetCounter("calib.store.clamped"),
          registry.GetCounter("calib.store.nearest_fallback")};
    }();
    return metrics;
  }
};

// Warn-once flags live at namespace scope (not in the store) so the store
// stays trivially movable; "once" therefore means once per process, which
// is the right rate for a log line that only flags a systematic condition.
std::atomic<bool> g_warned_clamped{false};
std::atomic<bool> g_warned_nearest{false};

void WarnOnce(std::atomic<bool>* flag, const std::string& message) {
  if (!flag->exchange(true, std::memory_order_relaxed)) {
    VDB_LOG(Warning) << message;
  }
}

bool SameShare(const sim::ResourceShare& a, const sim::ResourceShare& b) {
  return std::fabs(a.cpu - b.cpu) < kShareEpsilon &&
         std::fabs(a.memory - b.memory) < kShareEpsilon &&
         std::fabs(a.io - b.io) < kShareEpsilon;
}

int64_t QuantizeComponent(double v) {
  return static_cast<int64_t>(std::llround(v / kShareEpsilon));
}

// Bracketing values of `v` within the sorted axis; both equal when v is at
// or beyond an endpoint.
void Bracket(const std::vector<double>& axis, double v, double* lo,
             double* hi) {
  if (v <= axis.front()) {
    *lo = *hi = axis.front();
    return;
  }
  if (v >= axis.back()) {
    *lo = *hi = axis.back();
    return;
  }
  auto it = std::lower_bound(axis.begin(), axis.end(), v);
  if (std::fabs(*it - v) < kShareEpsilon) {
    *lo = *hi = *it;
    return;
  }
  *hi = *it;
  *lo = *(it - 1);
}

}  // namespace

size_t CalibrationStore::QuantizedShareHash::operator()(
    const QuantizedShare& q) const {
  size_t h = std::hash<int64_t>{}(q.cpu);
  h ^= std::hash<int64_t>{}(q.memory) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= std::hash<int64_t>{}(q.io) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h;
}

void CalibrationStore::InsertAxisValue(std::vector<double>* axis,
                                       double value) {
  auto it = std::lower_bound(axis->begin(), axis->end(),
                             value - kShareEpsilon);
  if (it != axis->end() && std::fabs(*it - value) < kShareEpsilon) return;
  axis->insert(it, value);
}

void CalibrationStore::Put(const sim::ResourceShare& share,
                           const optimizer::OptimizerParams& params) {
  const QuantizedShare key{QuantizeComponent(share.cpu),
                           QuantizeComponent(share.memory),
                           QuantizeComponent(share.io)};
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (SameShare(entries_[i].share, share)) {
      entries_[i].params = params;
      index_[key] = i;
      return;
    }
  }
  entries_.push_back(Entry{share, params});
  index_[key] = entries_.size() - 1;
  InsertAxisValue(&cpu_axis_, share.cpu);
  InsertAxisValue(&mem_axis_, share.memory);
  InsertAxisValue(&io_axis_, share.io);
}

const CalibrationStore::Entry* CalibrationStore::FindExact(
    const sim::ResourceShare& share) const {
  const QuantizedShare key{QuantizeComponent(share.cpu),
                           QuantizeComponent(share.memory),
                           QuantizeComponent(share.io)};
  auto it = index_.find(key);
  if (it != index_.end()) return &entries_[it->second];
  // Quantization buckets and the epsilon tolerance disagree right at
  // bucket boundaries; the scan preserves the epsilon semantics there.
  for (const Entry& entry : entries_) {
    if (SameShare(entry.share, share)) return &entry;
  }
  return nullptr;
}

const CalibrationStore::Entry* CalibrationStore::FindNearest(
    const sim::ResourceShare& share) const {
  const Entry* best = nullptr;
  double best_distance = 0.0;
  for (const Entry& entry : entries_) {
    const double dc = entry.share.cpu - share.cpu;
    const double dm = entry.share.memory - share.memory;
    const double di = entry.share.io - share.io;
    const double distance = dc * dc + dm * dm + di * di;
    if (best == nullptr || distance < best_distance) {
      best = &entry;
      best_distance = distance;
    }
  }
  return best;
}

std::vector<sim::ResourceShare> CalibrationStore::Points() const {
  std::vector<sim::ResourceShare> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.share);
  return out;
}

Result<optimizer::OptimizerParams> CalibrationStore::Lookup(
    const sim::ResourceShare& share) const {
  if (entries_.empty()) {
    return Status::NotFound("calibration store is empty");
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  if (const Entry* exact = FindExact(share)) {
    metrics.exact_hits->Add();
    return exact->params;
  }

  const bool outside_hull =
      share.cpu < cpu_axis_.front() - kShareEpsilon ||
      share.cpu > cpu_axis_.back() + kShareEpsilon ||
      share.memory < mem_axis_.front() - kShareEpsilon ||
      share.memory > mem_axis_.back() + kShareEpsilon ||
      share.io < io_axis_.front() - kShareEpsilon ||
      share.io > io_axis_.back() + kShareEpsilon;

  double c0;
  double c1;
  double m0;
  double m1;
  double i0;
  double i1;
  Bracket(cpu_axis_, share.cpu, &c0, &c1);
  Bracket(mem_axis_, share.memory, &m0, &m1);
  Bracket(io_axis_, share.io, &i0, &i1);

  auto weight = [](double lo, double hi, double v) {
    return hi > lo ? (v - lo) / (hi - lo) : 0.0;
  };
  const double wc = weight(c0, c1, std::clamp(share.cpu, c0, c1));
  const double wm = weight(m0, m1, std::clamp(share.memory, m0, m1));
  const double wi = weight(i0, i1, std::clamp(share.io, i0, i1));

  std::array<double, optimizer::OptimizerParams::kNumCalibrated>
      accumulated{};
  double cache_pages = 0.0;
  double work_mem = 0.0;
  for (int dc = 0; dc < 2; ++dc) {
    for (int dm = 0; dm < 2; ++dm) {
      for (int di = 0; di < 2; ++di) {
        const double w = (dc ? wc : 1.0 - wc) * (dm ? wm : 1.0 - wm) *
                         (di ? wi : 1.0 - wi);
        if (w <= 0.0) continue;
        const sim::ResourceShare corner(dc ? c1 : c0, dm ? m1 : m0,
                                        di ? i1 : i0);
        const Entry* entry = FindExact(corner);
        if (entry == nullptr) {
          // Incomplete grid cell (e.g. a failed calibration point left a
          // hole): degrade to the nearest stored point.
          metrics.nearest_fallback->Add();
          WarnOnce(&g_warned_nearest,
                   "calibration store: incomplete grid cell at " +
                       share.ToString() +
                       "; falling back to nearest stored point (warning "
                       "logged once)");
          return FindNearest(share)->params;
        }
        const auto vec = entry->params.CalibratedVector();
        for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated;
             ++k) {
          accumulated[k] += w * vec[k];
        }
        cache_pages +=
            w * static_cast<double>(entry->params.effective_cache_size_pages);
        work_mem += w * static_cast<double>(entry->params.work_mem_bytes);
      }
    }
  }
  metrics.interpolated->Add();
  if (outside_hull) {
    metrics.clamped->Add();
    WarnOnce(&g_warned_clamped,
             "calibration store: allocation " + share.ToString() +
                 " is outside the calibrated grid; clamping to the grid "
                 "hull (warning logged once)");
  }
  optimizer::OptimizerParams params;
  params.SetCalibratedVector(accumulated);
  params.effective_cache_size_pages =
      static_cast<uint64_t>(std::llround(cache_pages));
  params.work_mem_bytes = static_cast<uint64_t>(std::llround(work_mem));
  return params;
}

Status CalibrationStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out.precision(17);
  for (const Entry& entry : entries_) {
    const auto vec = entry.params.CalibratedVector();
    out << entry.share.cpu << ' ' << entry.share.memory << ' '
        << entry.share.io;
    for (double v : vec) out << ' ' << v;
    out << ' ' << entry.params.effective_cache_size_pages << ' '
        << entry.params.work_mem_bytes << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::IOError("write to '" + path + "' failed");
}

Result<CalibrationStore> CalibrationStore::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  CalibrationStore store;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    sim::ResourceShare share;
    std::array<double, optimizer::OptimizerParams::kNumCalibrated> vec;
    uint64_t cache_pages = 0;
    uint64_t work_mem = 0;
    if (!(fields >> share.cpu >> share.memory >> share.io >> vec[0] >>
          vec[1] >> vec[2] >> vec[3] >> vec[4] >> cache_pages >> work_mem)) {
      // Blank lines are tolerated; a partial or unparseable record is a
      // hard error — silently stopping here would truncate the grid and
      // skew every interpolated lookup.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      return Status::IOError("malformed calibration record at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    std::string trailing;
    if (fields >> trailing) {
      return Status::IOError("trailing garbage at line " +
                             std::to_string(line_number) + " of '" + path +
                             "'");
    }
    optimizer::OptimizerParams params;
    params.SetCalibratedVector(vec);
    params.effective_cache_size_pages = cache_pages;
    params.work_mem_bytes = work_mem;
    store.Put(share, params);
  }
  return store;
}

}  // namespace vdb::calib
