// Calibration query suite (paper Section 5): synthetic queries with
// analytically known work vectors, and the least-squares fit of the
// optimizer parameters P from their measured execution times.

#ifndef VDB_CALIB_CALIBRATION_H_
#define VDB_CALIB_CALIBRATION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exec/database.h"
#include "optimizer/params.h"
#include "sim/virtual_machine.h"
#include "util/result.h"

namespace vdb::calib {

/// One synthetic calibration query (paper Section 5). Queries are designed
/// so that the optimizer's work vector for their (forced) plan is accurate,
/// turning each measured execution time into one linear equation in the
/// unknown parameters P.
///
/// `warm_cache` queries are run once unmeasured to populate the buffer
/// pool, then measured; their equations zero out the page-cost terms so
/// they cleanly identify the CPU parameters (and, when the database no
/// longer fits in the VM's memory allocation, honestly absorb the residual
/// misses — the effect behind the paper's Figure 3 memory sensitivity).
struct CalibrationQuery {
  std::string name;
  std::string sql;
  bool warm_cache = false;
};

/// The standard suite over the tables created by
/// datagen::GenerateCalibrationDb (cal_small, cal_large, cal_indexed).
/// `indexed_rows` is cal_indexed's row count (its `a` column is sequential
/// 0..rows-1); lookup keys are placed relative to it so every index query
/// touches real entries.
std::vector<CalibrationQuery> CalibrationSuite(uint64_t indexed_rows);

/// Knobs for the robust measurement and fitting pipeline (DESIGN.md §10).
/// The defaults reproduce classic single-shot calibration: one measured
/// run per query, no retries, a plain non-negative least-squares fit, and
/// an unlimited residual budget. All times are milliseconds.
struct CalibrationOptions {
  /// Measured runs per query; the aggregate is the median of the runs
  /// that survive outlier rejection. Must be >= 1.
  int repeats = 1;

  /// Extra attempts per run when an execution fails (e.g. an injected
  /// transient fault): a run is retried up to `max_retries` times with
  /// exponential backoff before the sample is abandoned. 0 disables.
  int max_retries = 0;

  /// First retry waits this long (simulated — accrued in
  /// CalibrationRunStats::backoff_ms, never slept on the host), doubling
  /// by `backoff_multiplier` per subsequent retry, with ±10% jitter.
  double backoff_initial_ms = 10.0;
  double backoff_multiplier = 2.0;

  /// A sample is rejected as an outlier when its distance to the median
  /// exceeds `outlier_mad_cutoff` robust standard deviations
  /// (1.4826 * MAD). Applied only when a query has >= 3 samples.
  double outlier_mad_cutoff = 3.5;

  /// Stop repeating a query early once >= 2 samples agree within this
  /// relative spread ((max-min)/median). The simulator is deterministic,
  /// so noise-free runs converge after 2 samples and the robust path
  /// costs far less than `repeats`x single-shot. Set to 0 to always take
  /// all `repeats` samples.
  double early_stop_rel_spread = 1e-3;

  /// IRLS refinement passes on top of the initial NNLS solve: each pass
  /// re-solves with Huber weights (unit weight within
  /// `huber_cutoff_sigma` robust standard deviations of residual, then
  /// decaying as 1/|r|), bounding the influence of any single bad
  /// equation. 0 keeps the plain NNLS solution.
  int huber_iterations = 0;
  double huber_cutoff_sigma = 1.345;

  /// How equations are weighted in the least-squares objective.
  /// `kAbsolute` minimizes residuals in milliseconds, so the largest
  /// queries dominate; `kRelative` scales every equation by its measured
  /// time, which matches the multiplicative noise model and spreads the
  /// identification of collinear CPU parameters across all equations
  /// (markedly lower parameter variance under noise).
  enum class FitWeighting { kAbsolute, kRelative };
  FitWeighting weighting = FitWeighting::kAbsolute;

  /// Fits whose RMS residual (ms) exceeds this budget are still returned
  /// but marked `accepted = false` with a warning — the caller (e.g. the
  /// grid) decides whether to keep, re-run, or drop the point.
  double residual_budget_ms = std::numeric_limits<double>::infinity();

  /// Seeds the deterministic backoff jitter stream.
  uint64_t seed = 42;

  /// The preset used by benches and the robustness tests: median-of-5
  /// measurement with retries, a Huber refit, and relative weighting.
  static CalibrationOptions Robust() {
    CalibrationOptions options;
    options.repeats = 5;
    options.max_retries = 3;
    options.huber_iterations = 3;
    options.weighting = FitWeighting::kRelative;
    return options;
  }
};

/// Counters describing what the robust measurement layer did during one
/// calibration run. All zero on the classic single-shot path.
struct CalibrationRunStats {
  /// Successful measured executions (excludes warm-up runs and failures).
  int measurements = 0;
  /// Re-executions performed after transient failures.
  int retries = 0;
  /// Samples discarded by MAD outlier rejection.
  int rejected_samples = 0;
  /// Queries dropped entirely (no sample survived retry exhaustion).
  int failed_queries = 0;
  /// Total simulated backoff delay accrued across retries (ms).
  double backoff_ms = 0.0;
};

/// Output of one calibration run at a fixed resource allocation.
/// `params` entries are per-unit times in milliseconds (see
/// optimizer::OptimizerParams).
struct CalibrationResult {
  optimizer::OptimizerParams params;
  /// Root-mean-square residual of the least-squares fit (milliseconds),
  /// over the equations actually used.
  double residual_rms_ms = 0.0;
  /// Number of equations (successfully measured queries) used.
  int num_queries = 0;
  /// Per-used-query aggregated measured times (ms), for diagnostics.
  std::vector<double> measured_ms;
  /// Per-used-query model-predicted times under the fitted params (ms).
  std::vector<double> fitted_ms;
  /// False when the fit exceeded CalibrationOptions::residual_budget_ms;
  /// the parameters are still populated (best available fit).
  bool accepted = true;
  /// What the robust measurement layer observed (retries, rejections, …).
  CalibrationRunStats stats;
  /// Human-readable notes about degraded measurements (dropped queries,
  /// rejected samples, budget violations). Empty on a clean run.
  std::vector<std::string> warnings;
};

/// Runs the calibration process of paper Section 5 against a database that
/// contains the calibration tables: configure the instance for the VM's
/// allocation, execute the suite, and solve the resulting linear system
/// for the five time parameters of P (non-negative least squares, with an
/// optional Huber/IRLS robust refit). The capacity parameters of P
/// (effective cache size, work_mem) are set directly from the VM-derived
/// instance configuration.
///
/// Thread-safety: a Calibrator mutates its Database (VM reconfiguration,
/// cache drops, plan-pinning optimizer params) and must not run
/// concurrently with any other use of that Database.
///
/// Error behavior: Calibrate fails when the database lacks the
/// calibration tables, a suite query cannot be planned, or — after
/// per-query retries and drops — fewer than
/// OptimizerParams::kNumCalibrated equations remain
/// (InvalidArgument). Individual execution failures are retried
/// (CalibrationOptions::max_retries) and then degrade to a dropped
/// equation plus a warning, not an error.
class Calibrator {
 public:
  explicit Calibrator(exec::Database* db) : db_(db) {}

  Calibrator(const Calibrator&) = delete;
  Calibrator& operator=(const Calibrator&) = delete;

  /// Calibrates P for the given VM (i.e. for its resource allocation R)
  /// using the classic single-shot defaults.
  Result<CalibrationResult> Calibrate(const sim::VirtualMachine& vm) {
    return Calibrate(vm, CalibrationOptions{});
  }

  /// Calibrates P with the full robust pipeline: repeat-and-reject
  /// measurement, retry with backoff, Huber refit, residual acceptance.
  Result<CalibrationResult> Calibrate(const sim::VirtualMachine& vm,
                                      const CalibrationOptions& options);

  /// Uses a custom suite instead of the default (which is built from the
  /// calibration tables' sizes on first use).
  void set_suite(std::vector<CalibrationQuery> suite) {
    suite_ = std::move(suite);
  }
  const std::vector<CalibrationQuery>& suite() const { return suite_; }

 private:
  exec::Database* db_;
  std::vector<CalibrationQuery> suite_;
};

}  // namespace vdb::calib

#endif  // VDB_CALIB_CALIBRATION_H_
