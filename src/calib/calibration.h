#ifndef VDB_CALIB_CALIBRATION_H_
#define VDB_CALIB_CALIBRATION_H_

#include <string>
#include <vector>

#include "exec/database.h"
#include "optimizer/params.h"
#include "sim/virtual_machine.h"
#include "util/result.h"

namespace vdb::calib {

/// One synthetic calibration query (paper Section 5). Queries are designed
/// so that the optimizer's work vector for their (forced) plan is accurate,
/// turning each measured execution time into one linear equation in the
/// unknown parameters P.
///
/// `warm_cache` queries are run once unmeasured to populate the buffer
/// pool, then measured; their equations zero out the page-cost terms so
/// they cleanly identify the CPU parameters (and, when the database no
/// longer fits in the VM's memory allocation, honestly absorb the residual
/// misses — the effect behind the paper's Figure 3 memory sensitivity).
struct CalibrationQuery {
  std::string name;
  std::string sql;
  bool warm_cache = false;
};

/// The standard suite over the tables created by
/// datagen::GenerateCalibrationDb (cal_small, cal_large, cal_indexed).
/// `indexed_rows` is cal_indexed's row count (its `a` column is sequential
/// 0..rows-1); lookup keys are placed relative to it so every index query
/// touches real entries.
std::vector<CalibrationQuery> CalibrationSuite(uint64_t indexed_rows);

/// Output of one calibration run at a fixed resource allocation.
struct CalibrationResult {
  optimizer::OptimizerParams params;
  /// Root-mean-square residual of the least-squares fit (milliseconds).
  double residual_rms_ms = 0.0;
  /// Number of equations (queries) used.
  int num_queries = 0;
  /// Per-query measured times (ms), for diagnostics.
  std::vector<double> measured_ms;
  /// Per-query model-predicted times under the fitted params (ms).
  std::vector<double> fitted_ms;
};

/// Runs the calibration process of paper Section 5 against a database that
/// contains the calibration tables: configure the instance for the VM's
/// allocation, execute the suite, and solve the resulting linear system
/// for the five time parameters of P (non-negative least squares). The
/// capacity parameters of P (effective cache size, work_mem) are set
/// directly from the VM-derived instance configuration.
class Calibrator {
 public:
  explicit Calibrator(exec::Database* db) : db_(db) {}

  Calibrator(const Calibrator&) = delete;
  Calibrator& operator=(const Calibrator&) = delete;

  /// Calibrates P for the given VM (i.e. for its resource allocation R).
  Result<CalibrationResult> Calibrate(const sim::VirtualMachine& vm);

  /// Uses a custom suite instead of the default (which is built from the
  /// calibration tables' sizes on first use).
  void set_suite(std::vector<CalibrationQuery> suite) {
    suite_ = std::move(suite);
  }
  const std::vector<CalibrationQuery>& suite() const { return suite_; }

 private:
  exec::Database* db_;
  std::vector<CalibrationQuery> suite_;
};

}  // namespace vdb::calib

#endif  // VDB_CALIB_CALIBRATION_H_
