#ifndef VDB_CALIB_GRID_H_
#define VDB_CALIB_GRID_H_

#include <functional>
#include <vector>

#include "calib/calibration.h"
#include "calib/store.h"
#include "sim/machine.h"

namespace vdb::calib {

/// The set of resource allocations to calibrate. The cross product of the
/// three axes is calibrated; the paper uses {25%, 50%, 75%} per axis.
struct CalibrationGridSpec {
  std::vector<double> cpu_shares = {0.25, 0.50, 0.75};
  std::vector<double> memory_shares = {0.25, 0.50, 0.75};
  std::vector<double> io_shares = {0.50};
};

/// Called after each grid point with the allocation and its fit.
using CalibrationProgress = std::function<void(
    const sim::ResourceShare&, const CalibrationResult&)>;

/// Calibrates P(R) for every allocation in `spec`'s grid. This is the
/// paper's offline, per-machine process: `db` must already contain the
/// calibration database; each point configures a VM on `machine` with that
/// allocation, runs the suite, and records the fitted parameters.
Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationProgress& progress = nullptr);

}  // namespace vdb::calib

#endif  // VDB_CALIB_GRID_H_
