// Grids of resource allocations to calibrate: the cross product of the
// CPU/memory/IO axes (the paper uses {25%, 50%, 75%} per axis).

#ifndef VDB_CALIB_GRID_H_
#define VDB_CALIB_GRID_H_

#include <functional>
#include <string>
#include <vector>

#include "calib/calibration.h"
#include "calib/store.h"
#include "sim/machine.h"

namespace vdb::calib {

/// The set of resource allocations to calibrate. The cross product of the
/// three axes is calibrated; the paper uses {25%, 50%, 75%} per axis.
struct CalibrationGridSpec {
  std::vector<double> cpu_shares = {0.25, 0.50, 0.75};
  std::vector<double> memory_shares = {0.25, 0.50, 0.75};
  std::vector<double> io_shares = {0.50};
};

/// Called after each *successful* grid point with the allocation and its
/// fit (including flagged fits — check CalibrationResult::accepted).
using CalibrationProgress = std::function<void(
    const sim::ResourceShare&, const CalibrationResult&)>;

/// Per-point outcome of a grid calibration.
struct GridPointReport {
  sim::ResourceShare share;
  /// Calibration produced parameters (they are in the store).
  bool ok = false;
  /// False when the fit exceeded the residual budget (still stored, so
  /// interpolation has no hole, but the caller should re-run the point).
  bool accepted = true;
  double residual_rms_ms = 0.0;
  CalibrationRunStats stats;
  /// Status message when `ok` is false.
  std::string error;
};

/// Outcome of a whole grid run: per-point detail plus tallies. A failed
/// point leaves a hole in the store; interpolation near it degrades to the
/// nearest calibrated neighbors.
struct CalibrationGridReport {
  std::vector<GridPointReport> points;
  int succeeded = 0;
  /// Points that produced no parameters at all.
  int failed = 0;
  /// Points fitted but over the residual budget (subset of succeeded).
  int flagged = 0;

  /// One-line human-readable summary ("9 points: 8 ok, 1 failed, ...").
  std::string Summary() const;
};

/// Calibrates P(R) for every allocation in `spec`'s grid. This is the
/// paper's offline, per-machine process: `db` must already contain the
/// calibration database; each point configures a VM on `machine` with that
/// allocation, runs the suite, and records the fitted parameters.
///
/// A point whose calibration fails is recorded in `report` (if given) and
/// skipped — the grid keeps going. The call errors only when *zero* points
/// succeed (nothing to store) or on invalid input (empty axis, malformed
/// share). Thread-safety: mutates `db`; one grid run per Database at a
/// time.
Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationOptions& options,
    const CalibrationProgress& progress = nullptr,
    CalibrationGridReport* report = nullptr);

/// Single-shot-measurement grid (CalibrationOptions defaults).
Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationProgress& progress = nullptr);

}  // namespace vdb::calib

#endif  // VDB_CALIB_GRID_H_
