#include "calib/grid.h"

#include "sim/virtual_machine.h"

namespace vdb::calib {

Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationProgress& progress) {
  if (spec.cpu_shares.empty() || spec.memory_shares.empty() ||
      spec.io_shares.empty()) {
    return Status::InvalidArgument("calibration grid axis is empty");
  }
  CalibrationStore store;
  Calibrator calibrator(db);
  for (double cpu : spec.cpu_shares) {
    for (double memory : spec.memory_shares) {
      for (double io : spec.io_shares) {
        const sim::ResourceShare share(cpu, memory, io);
        VDB_RETURN_NOT_OK(share.Validate());
        sim::VirtualMachine vm("calibration-vm", machine, hypervisor,
                               share);
        VDB_ASSIGN_OR_RETURN(CalibrationResult result,
                             calibrator.Calibrate(vm));
        store.Put(share, result.params);
        if (progress) progress(share, result);
      }
    }
  }
  return store;
}

}  // namespace vdb::calib
