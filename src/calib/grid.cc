#include "calib/grid.h"

#include "obs/metrics.h"
#include "sim/virtual_machine.h"
#include "util/logging.h"

namespace vdb::calib {

std::string CalibrationGridReport::Summary() const {
  std::string summary = std::to_string(points.size()) + " points: " +
                        std::to_string(succeeded) + " ok, " +
                        std::to_string(failed) + " failed, " +
                        std::to_string(flagged) + " over residual budget";
  return summary;
}

Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationOptions& options, const CalibrationProgress& progress,
    CalibrationGridReport* report) {
  if (spec.cpu_shares.empty() || spec.memory_shares.empty() ||
      spec.io_shares.empty()) {
    return Status::InvalidArgument("calibration grid axis is empty");
  }
  obs::Counter* failed_points =
      obs::MetricsRegistry::Global().GetCounter("calib.grid.failed_points");
  CalibrationStore store;
  Calibrator calibrator(db);
  CalibrationGridReport local_report;
  CalibrationGridReport* out = report != nullptr ? report : &local_report;
  out->points.clear();
  out->succeeded = out->failed = out->flagged = 0;
  for (double cpu : spec.cpu_shares) {
    for (double memory : spec.memory_shares) {
      for (double io : spec.io_shares) {
        const sim::ResourceShare share(cpu, memory, io);
        VDB_RETURN_NOT_OK(share.Validate());
        sim::VirtualMachine vm("calibration-vm", machine, hypervisor,
                               share);
        GridPointReport point;
        point.share = share;
        Result<CalibrationResult> result =
            calibrator.Calibrate(vm, options);
        if (!result.ok()) {
          // A dead grid point is a degraded grid, not a dead grid: record
          // it, leave a hole, keep calibrating the rest.
          point.ok = false;
          point.error = result.status().ToString();
          out->failed += 1;
          failed_points->Add();
          VDB_LOG(Warning) << "calibration grid point " << share.ToString()
                           << " failed: " << point.error;
        } else {
          point.ok = true;
          point.accepted = result->accepted;
          point.residual_rms_ms = result->residual_rms_ms;
          point.stats = result->stats;
          out->succeeded += 1;
          if (!result->accepted) out->flagged += 1;
          store.Put(share, result->params);
          if (progress) progress(share, *result);
        }
        out->points.push_back(std::move(point));
      }
    }
  }
  if (out->succeeded == 0) {
    return Status::Internal("every calibration grid point failed (" +
                            out->points.front().error + ", ...)");
  }
  return store;
}

Result<CalibrationStore> CalibrateGrid(
    exec::Database* db, const sim::MachineSpec& machine,
    const sim::HypervisorModel& hypervisor, const CalibrationGridSpec& spec,
    const CalibrationProgress& progress) {
  return CalibrateGrid(db, machine, hypervisor, spec, CalibrationOptions{},
                       progress, nullptr);
}

}  // namespace vdb::calib
