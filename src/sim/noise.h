// Measurement-noise and transient-fault injection model for calibration
// robustness testing (DESIGN.md §10).

#ifndef VDB_SIM_NOISE_H_
#define VDB_SIM_NOISE_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "util/random.h"
#include "util/status.h"

namespace vdb::sim {

/// Configuration of the measurement-noise / fault-injection model.
///
/// All noise is *relative* (multiplicative), so one spec works across
/// queries whose true times span orders of magnitude. Every field defaults
/// to "off"; a default-constructed NoiseModel is a deterministic no-op.
struct NoiseOptions {
  /// Relative standard deviation of Gaussian noise applied to the CPU
  /// portion of a measurement (0.10 = sigma of 10% of the true value).
  double cpu_sigma = 0.0;

  /// Relative standard deviation of Gaussian noise applied to the I/O
  /// portion of a measurement.
  double io_sigma = 0.0;

  /// Probability (in [0, 1]) that a measurement is a heavy-tail spike:
  /// the whole measurement is multiplied by a factor drawn uniformly
  /// from [spike_min_factor, spike_max_factor]. Models a neighbor VM
  /// stealing the machine mid-run.
  double spike_probability = 0.0;
  double spike_min_factor = 2.0;
  double spike_max_factor = 8.0;

  /// Probability (in [0, 1]) that a query execution fails transiently
  /// before producing a measurement (ResourceExhausted). Models VM
  /// scheduling hiccups / connection drops during calibration.
  double transient_failure_probability = 0.0;

  /// Seed for the deterministic noise stream: the same options produce
  /// the same sequence of perturbations and faults run after run.
  uint64_t seed = 42;
};

/// Deterministic, seedable noise and fault injection for simulated query
/// timing. Installed on an exec::Database (set_noise_model) it perturbs
/// every executed query's measured elapsed time and occasionally fails an
/// execution, so the robustness of the calibration pipeline (repeats,
/// outlier rejection, retries — DESIGN.md §10) is testable without real
/// measurement variance.
///
/// Units: perturbation operates on seconds (any consistent unit works —
/// the noise is multiplicative). Error behavior: MaybeInjectFault is the
/// only failing operation and returns ResourceExhausted for injected
/// transient faults. Thread-safety: all methods are safe to call
/// concurrently (the generator is mutex-guarded); the draw order — and
/// therefore the exact noise stream — is deterministic only when queries
/// execute in a deterministic order, as the single-threaded calibration
/// path does.
class NoiseModel {
 public:
  NoiseModel() : NoiseModel(NoiseOptions{}) {}
  explicit NoiseModel(const NoiseOptions& options)
      : options_(options), rng_(options.seed) {}

  NoiseModel(const NoiseModel&) = delete;
  NoiseModel& operator=(const NoiseModel&) = delete;

  const NoiseOptions& options() const { return options_; }

  /// Decides whether the execution about to start fails transiently.
  /// Returns OK to proceed, or ResourceExhausted (mentioning `context`)
  /// for an injected fault. Consumes one Bernoulli draw per call, plus
  /// any pending InjectFailures burst first.
  Status MaybeInjectFault(const std::string& context);

  /// Returns a perturbed total for a measurement composed of
  /// `cpu_seconds` CPU time and `io_seconds` I/O time: each component
  /// gets its own Gaussian factor (clamped to stay non-negative), and
  /// with spike_probability the sum is additionally multiplied by a
  /// heavy-tail factor. Never returns a negative value.
  double PerturbSeconds(double cpu_seconds, double io_seconds);

  /// Deterministic fault burst for tests: the next `n` MaybeInjectFault
  /// calls fail unconditionally (before any probabilistic draw).
  void InjectFailures(int n);

  /// Lifetime counters (also published as obs counters
  /// `sim.noise.faults_injected` / `spikes_injected` / `perturbations`).
  uint64_t faults_injected() const;
  uint64_t spikes_injected() const;
  uint64_t perturbations() const;

  /// Restarts the deterministic noise stream from `seed` and clears any
  /// pending InjectFailures burst (counters are not reset).
  void Reseed(uint64_t seed);

 private:
  NoiseOptions options_;
  mutable std::mutex mu_;
  Random rng_;
  int forced_failures_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t spikes_injected_ = 0;
  uint64_t perturbations_ = 0;
};

}  // namespace vdb::sim

#endif  // VDB_SIM_NOISE_H_
