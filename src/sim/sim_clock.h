// SimClock: deterministic simulated time, advanced only by computed
// durations.

#ifndef VDB_SIM_SIM_CLOCK_H_
#define VDB_SIM_SIM_CLOCK_H_

namespace vdb::sim {

/// A simulated clock. The executor advances it by computed durations; it
/// never reads wall-clock time, so "measured" execution times are exactly
/// reproducible.
class SimClock {
 public:
  SimClock() = default;

  double NowSeconds() const { return now_seconds_; }

  /// Advances the clock. Negative durations are ignored (defensive).
  void Advance(double seconds) {
    if (seconds > 0.0) now_seconds_ += seconds;
  }

  void Reset() { now_seconds_ = 0.0; }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace vdb::sim

#endif  // VDB_SIM_SIM_CLOCK_H_
