// VirtualMachine: the physical machine seen through a resource share,
// including hypervisor overhead.

#ifndef VDB_SIM_VIRTUAL_MACHINE_H_
#define VDB_SIM_VIRTUAL_MACHINE_H_

#include <cstdint>
#include <string>

#include "sim/machine.h"
#include "sim/resources.h"

namespace vdb::sim {

/// A virtual machine: the physical machine seen through a resource share.
///
/// The VM translates its share of each physical resource into the effective
/// rates the database system running inside it experiences. These rates are
/// what the executor uses to convert work (CPU operations, page I/Os) into
/// simulated time, playing the role of Xen in the paper's testbed.
class VirtualMachine {
 public:
  VirtualMachine(std::string name, const MachineSpec& machine,
                 const HypervisorModel& hypervisor, ResourceShare share)
      : name_(std::move(name)),
        machine_(machine),
        hypervisor_(hypervisor),
        share_(share) {}

  const std::string& name() const { return name_; }
  const MachineSpec& machine() const { return machine_; }
  const HypervisorModel& hypervisor() const { return hypervisor_; }
  const ResourceShare& share() const { return share_; }

  /// Updates the VM's resource share (the VMM validates feasibility before
  /// calling this; see VirtualMachineMonitor::SetShare).
  void set_share(ResourceShare share) { share_ = share; }

  /// Effective CPU rate (work units / second) inside this VM:
  /// `cpu_share * physical_rate * (1 - overhead(cpu_share))` where the
  /// overhead grows as the share shrinks (hypervisor scheduling tax).
  double EffectiveCpuOpsPerSec() const;

  /// The CPU virtualization overhead fraction at the current share.
  double CpuOverheadFraction() const;

  /// Memory visible inside the VM, in bytes.
  uint64_t MemoryBytes() const;

  /// Seconds to sequentially read one page of `page_size` bytes at this
  /// VM's I/O share.
  double SeqReadSecondsPerPage(uint64_t page_size) const;

  /// Seconds for one random page read at this VM's I/O share.
  double RandomReadSeconds() const;

  /// Seconds to write one page of `page_size` bytes.
  double WriteSecondsPerPage(uint64_t page_size) const;

  /// CPU work units the hypervisor charges the VM for each page I/O.
  double IoCpuOpsPerPage() const { return hypervisor_.io_cpu_ops_per_page; }

 private:
  std::string name_;
  MachineSpec machine_;
  HypervisorModel hypervisor_;
  ResourceShare share_;
};

}  // namespace vdb::sim

#endif  // VDB_SIM_VIRTUAL_MACHINE_H_
