#include "sim/virtual_machine.h"

#include <algorithm>

namespace vdb::sim {

double VirtualMachine::CpuOverheadFraction() const {
  const double overhead = hypervisor_.cpu_base_overhead +
                          hypervisor_.cpu_share_overhead_slope *
                              (1.0 - share_.cpu);
  return std::clamp(overhead, 0.0, 0.95);
}

double VirtualMachine::EffectiveCpuOpsPerSec() const {
  return machine_.cpu_ops_per_sec * share_.cpu *
         (1.0 - CpuOverheadFraction());
}

uint64_t VirtualMachine::MemoryBytes() const {
  return static_cast<uint64_t>(static_cast<double>(machine_.memory_bytes) *
                               share_.memory);
}

double VirtualMachine::SeqReadSecondsPerPage(uint64_t page_size) const {
  const double bandwidth = machine_.disk_seq_bytes_per_sec * share_.io *
                           (1.0 - hypervisor_.io_base_overhead);
  return static_cast<double>(page_size) / bandwidth;
}

double VirtualMachine::RandomReadSeconds() const {
  const double iops = machine_.disk_random_iops * share_.io *
                      (1.0 - hypervisor_.io_base_overhead);
  return 1.0 / iops;
}

double VirtualMachine::WriteSecondsPerPage(uint64_t page_size) const {
  const double bandwidth = machine_.disk_write_bytes_per_sec * share_.io *
                           (1.0 - hypervisor_.io_base_overhead);
  return static_cast<double>(page_size) / bandwidth;
}

}  // namespace vdb::sim
