#include "sim/vmm.h"

#include <algorithm>

namespace vdb::sim {

namespace {
// Tolerate floating-point drift when shares are produced by repeated
// arithmetic (e.g. 3 * (1/3)).
constexpr double kShareEpsilon = 1e-9;
}  // namespace

Result<VirtualMachine*> VirtualMachineMonitor::CreateVm(
    const std::string& name, ResourceShare share) {
  VDB_RETURN_NOT_OK(share.Validate());
  for (const auto& vm : vms_) {
    if (vm->name() == name) {
      return Status::AlreadyExists("VM '" + name + "' already exists");
    }
  }
  VDB_RETURN_NOT_OK(CheckCapacity(share, /*exclude=*/nullptr));
  vms_.push_back(std::make_unique<VirtualMachine>(name, machine_,
                                                  hypervisor_, share));
  return vms_.back().get();
}

Result<VirtualMachine*> VirtualMachineMonitor::GetVm(
    const std::string& name) const {
  for (const auto& vm : vms_) {
    if (vm->name() == name) return vm.get();
  }
  return Status::NotFound("VM '" + name + "' not found");
}

Status VirtualMachineMonitor::SetShare(const std::string& name,
                                       ResourceShare share) {
  VDB_RETURN_NOT_OK(share.Validate());
  VDB_ASSIGN_OR_RETURN(VirtualMachine * vm, GetVm(name));
  VDB_RETURN_NOT_OK(CheckCapacity(share, vm));
  vm->set_share(share);
  return Status::OK();
}

Status VirtualMachineMonitor::DestroyVm(const std::string& name) {
  for (auto it = vms_.begin(); it != vms_.end(); ++it) {
    if ((*it)->name() == name) {
      vms_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("VM '" + name + "' not found");
}

double VirtualMachineMonitor::AllocatedShare(ResourceKind kind) const {
  double total = 0.0;
  for (const auto& vm : vms_) total += vm->share().Get(kind);
  return total;
}

std::vector<VirtualMachine*> VirtualMachineMonitor::Vms() const {
  std::vector<VirtualMachine*> result;
  result.reserve(vms_.size());
  for (const auto& vm : vms_) result.push_back(vm.get());
  return result;
}

Status VirtualMachineMonitor::CheckCapacity(
    const ResourceShare& share, const VirtualMachine* exclude) const {
  for (int i = 0; i < kNumResources; ++i) {
    const ResourceKind kind = static_cast<ResourceKind>(i);
    double total = share.Get(kind);
    for (const auto& vm : vms_) {
      if (vm.get() == exclude) continue;
      total += vm->share().Get(kind);
    }
    if (total > 1.0 + kShareEpsilon) {
      return Status::ResourceExhausted(
          std::string("allocating ") + std::to_string(share.Get(kind)) +
          " of " + ResourceKindName(kind) + " would oversubscribe (total " +
          std::to_string(total) + " > 1)");
    }
  }
  return Status::OK();
}

}  // namespace vdb::sim
