// The m = 3 controllable resources (CPU, memory, IO) and per-VM share
// vectors.

#ifndef VDB_SIM_RESOURCES_H_
#define VDB_SIM_RESOURCES_H_

#include <array>
#include <cstddef>
#include <string>

#include "util/status.h"

namespace vdb::sim {

/// The physical resources whose shares the virtualization layer controls.
/// These are the paper's `m = 3` controllable resources.
enum class ResourceKind : int { kCpu = 0, kMemory = 1, kIo = 2 };

inline constexpr int kNumResources = 3;

const char* ResourceKindName(ResourceKind kind);

/// The share of each physical resource allocated to one virtual machine:
/// the paper's vector R_i = [r_i1, ..., r_im], each component in [0, 1].
struct ResourceShare {
  double cpu = 1.0;
  double memory = 1.0;
  double io = 1.0;

  constexpr ResourceShare() = default;
  constexpr ResourceShare(double cpu_share, double memory_share,
                          double io_share)
      : cpu(cpu_share), memory(memory_share), io(io_share) {}

  /// Equal 1/n split of every resource.
  static ResourceShare EqualSplit(int n) {
    const double f = 1.0 / static_cast<double>(n);
    return ResourceShare(f, f, f);
  }

  double Get(ResourceKind kind) const {
    switch (kind) {
      case ResourceKind::kCpu:
        return cpu;
      case ResourceKind::kMemory:
        return memory;
      case ResourceKind::kIo:
        return io;
    }
    return 0.0;
  }

  void Set(ResourceKind kind, double value) {
    switch (kind) {
      case ResourceKind::kCpu:
        cpu = value;
        return;
      case ResourceKind::kMemory:
        memory = value;
        return;
      case ResourceKind::kIo:
        io = value;
        return;
    }
  }

  /// OK iff every component lies in (0, 1].
  Status Validate() const;

  std::string ToString() const;

  friend bool operator==(const ResourceShare& a, const ResourceShare& b) {
    return a.cpu == b.cpu && a.memory == b.memory && a.io == b.io;
  }
};

}  // namespace vdb::sim

#endif  // VDB_SIM_RESOURCES_H_
