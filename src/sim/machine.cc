#include "sim/machine.h"

namespace vdb::sim {

MachineSpec MachineSpec::PaperTestbed() {
  MachineSpec spec;
  spec.name = "xeon-2x2.8GHz-4GB";
  spec.cpu_ops_per_sec = 2.0e9;
  spec.memory_bytes = 4ULL << 30;
  spec.disk_seq_bytes_per_sec = 60.0 * (1 << 20);
  spec.disk_random_iops = 130.0;
  spec.disk_write_bytes_per_sec = 45.0 * (1 << 20);
  return spec;
}

MachineSpec MachineSpec::Small() {
  MachineSpec spec;
  spec.name = "small-test-machine";
  spec.cpu_ops_per_sec = 1.0e8;
  spec.memory_bytes = 64ULL << 20;  // 64 MiB
  spec.disk_seq_bytes_per_sec = 10.0 * (1 << 20);
  spec.disk_random_iops = 100.0;
  spec.disk_write_bytes_per_sec = 8.0 * (1 << 20);
  return spec;
}

HypervisorModel HypervisorModel::Ideal() {
  HypervisorModel model;
  model.cpu_base_overhead = 0.0;
  model.cpu_share_overhead_slope = 0.0;
  model.io_cpu_ops_per_page = 0.0;
  model.io_base_overhead = 0.0;
  return model;
}

}  // namespace vdb::sim
