#include "sim/noise.h"

#include <algorithm>

#include "obs/metrics.h"

namespace vdb::sim {

namespace {

// Fault/noise instrumentation (DESIGN.md §9/§10). Resolved once; no-ops
// while the global registry is disabled.
struct NoiseMetrics {
  obs::Counter* faults_injected;
  obs::Counter* spikes_injected;
  obs::Counter* perturbations;

  static const NoiseMetrics& Get() {
    static const NoiseMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return NoiseMetrics{
          registry.GetCounter("sim.noise.faults_injected"),
          registry.GetCounter("sim.noise.spikes_injected"),
          registry.GetCounter("sim.noise.perturbations")};
    }();
    return metrics;
  }
};

}  // namespace

Status NoiseModel::MaybeInjectFault(const std::string& context) {
  std::lock_guard<std::mutex> lock(mu_);
  bool fail = false;
  if (forced_failures_ > 0) {
    --forced_failures_;
    fail = true;
  } else if (options_.transient_failure_probability > 0.0 &&
             rng_.Bernoulli(options_.transient_failure_probability)) {
    fail = true;
  }
  if (!fail) return Status::OK();
  ++faults_injected_;
  NoiseMetrics::Get().faults_injected->Add();
  return Status::ResourceExhausted("injected transient fault during " +
                                   context);
}

double NoiseModel::PerturbSeconds(double cpu_seconds, double io_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++perturbations_;
  NoiseMetrics::Get().perturbations->Add();
  // Multiplicative Gaussian factors, clamped so a deep-left-tail draw can
  // never produce a negative "measured" time.
  const double cpu_factor = std::max(
      0.0, 1.0 + options_.cpu_sigma * rng_.NextGaussian());
  const double io_factor =
      std::max(0.0, 1.0 + options_.io_sigma * rng_.NextGaussian());
  double total = cpu_seconds * cpu_factor + io_seconds * io_factor;
  if (options_.spike_probability > 0.0 &&
      rng_.Bernoulli(options_.spike_probability)) {
    total *= rng_.UniformDouble(options_.spike_min_factor,
                                options_.spike_max_factor);
    ++spikes_injected_;
    NoiseMetrics::Get().spikes_injected->Add();
  }
  return std::max(0.0, total);
}

void NoiseModel::InjectFailures(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  forced_failures_ = std::max(0, n);
}

uint64_t NoiseModel::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

uint64_t NoiseModel::spikes_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spikes_injected_;
}

uint64_t NoiseModel::perturbations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return perturbations_;
}

void NoiseModel::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
  forced_failures_ = 0;
}

}  // namespace vdb::sim
