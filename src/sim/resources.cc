#include "sim/resources.h"

#include <cstdio>

namespace vdb::sim {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kIo:
      return "io";
  }
  return "?";
}

Status ResourceShare::Validate() const {
  for (int i = 0; i < kNumResources; ++i) {
    const ResourceKind kind = static_cast<ResourceKind>(i);
    const double v = Get(kind);
    if (!(v > 0.0) || v > 1.0) {
      return Status::InvalidArgument(
          std::string("resource share for ") + ResourceKindName(kind) +
          " must be in (0, 1], got " + std::to_string(v));
    }
  }
  return Status::OK();
}

std::string ResourceShare::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{cpu=%.2f, mem=%.2f, io=%.2f}", cpu,
                memory, io);
  return buf;
}

}  // namespace vdb::sim
