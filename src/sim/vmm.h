// VirtualMachineMonitor: creates VMs and validates that handed-out
// shares never oversubscribe the machine.

#ifndef VDB_SIM_VMM_H_
#define VDB_SIM_VMM_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/resources.h"
#include "sim/virtual_machine.h"
#include "util/result.h"
#include "util/status.h"

namespace vdb::sim {

/// The virtual machine monitor: owns the physical machine and the virtual
/// machines created on it, and enforces that the shares handed out for each
/// resource never exceed the whole machine (the paper's constraint
/// `sum_i r_ij <= 1` for every resource j).
///
/// Not thread-safe: create/destroy/reshare from one thread at a time.
/// Returned VirtualMachine pointers are owned by the monitor.
class VirtualMachineMonitor {
 public:
  explicit VirtualMachineMonitor(
      MachineSpec machine,
      HypervisorModel hypervisor = HypervisorModel::XenLike())
      : machine_(std::move(machine)), hypervisor_(hypervisor) {}

  VirtualMachineMonitor(const VirtualMachineMonitor&) = delete;
  VirtualMachineMonitor& operator=(const VirtualMachineMonitor&) = delete;

  const MachineSpec& machine() const { return machine_; }
  const HypervisorModel& hypervisor() const { return hypervisor_; }

  /// Creates a VM with the given share. Fails with InvalidArgument if the
  /// share is malformed, AlreadyExists on a duplicate name, and
  /// ResourceExhausted if granting it would oversubscribe any resource.
  /// The returned pointer stays valid until DestroyVm or VMM destruction.
  Result<VirtualMachine*> CreateVm(const std::string& name,
                                   ResourceShare share);

  /// Looks up a VM by name.
  Result<VirtualMachine*> GetVm(const std::string& name) const;

  /// Changes a VM's share at run time (Xen-style dynamic reconfiguration).
  /// Fails if the new total for any resource would exceed the machine.
  Status SetShare(const std::string& name, ResourceShare share);

  /// Destroys a VM, returning its shares to the free pool.
  Status DestroyVm(const std::string& name);

  /// Sum of allocated shares for `kind` across all VMs.
  double AllocatedShare(ResourceKind kind) const;

  /// Remaining unallocated share for `kind`.
  double FreeShare(ResourceKind kind) const {
    return 1.0 - AllocatedShare(kind);
  }

  size_t NumVms() const { return vms_.size(); }

  /// All live VMs, in creation order.
  std::vector<VirtualMachine*> Vms() const;

 private:
  // Validates that replacing `exclude`'s share (or adding a new VM when
  // exclude == nullptr) with `share` keeps every resource within capacity.
  Status CheckCapacity(const ResourceShare& share,
                       const VirtualMachine* exclude) const;

  MachineSpec machine_;
  HypervisorModel hypervisor_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
};

}  // namespace vdb::sim

#endif  // VDB_SIM_VMM_H_
