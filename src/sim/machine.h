// MachineSpec: the physical machine (CPU rate, memory, disk model) whose
// resources the VMM divides among virtual machines.

#ifndef VDB_SIM_MACHINE_H_
#define VDB_SIM_MACHINE_H_

#include <cstdint>
#include <string>

namespace vdb::sim {

/// Description of the physical machine whose resources the virtual machine
/// monitor divides among virtual machines.
///
/// CPU capacity is expressed in abstract *work units* per second; the
/// executor charges work units for tuple processing, predicate evaluation,
/// hashing, etc., and the optimizer's calibrated parameters absorb the unit.
struct MachineSpec {
  std::string name = "default";

  /// Aggregate CPU capacity of the machine (work units / second).
  double cpu_ops_per_sec = 2.0e9;

  /// Physical memory in bytes.
  uint64_t memory_bytes = 4ULL << 30;  // 4 GiB

  /// Sequential disk read bandwidth (bytes / second).
  double disk_seq_bytes_per_sec = 60.0 * (1 << 20);  // 60 MiB/s

  /// Random-read operations per second the disk sustains.
  double disk_random_iops = 130.0;

  /// Sequential disk write bandwidth (bytes / second).
  double disk_write_bytes_per_sec = 45.0 * (1 << 20);

  /// Returns a spec mirroring the paper's testbed: two 2.8 GHz Xeons with
  /// 4 GB of memory and a 2007-era SCSI disk.
  static MachineSpec PaperTestbed();

  /// A small machine useful for fast unit tests.
  static MachineSpec Small();
};

/// Parameters of the hypervisor (virtualization layer) performance model.
///
/// The model captures the two first-order effects the paper's calibration is
/// designed to detect:
///  - CPU virtualization overhead that *grows as the CPU share shrinks*
///    (more frequent scheduling of a small time slice means relatively more
///    hypervisor context switching), so a VM with share `c` gets effective
///    rate `c * (1 - base - slope * (1 - c))` of the physical CPU.
///  - A per-page-I/O CPU tax: every disk page that crosses the hypervisor's
///    I/O path costs CPU work inside the VM's allocation.
struct HypervisorModel {
  /// CPU fraction lost to virtualization even at full allocation.
  double cpu_base_overhead = 0.04;

  /// Additional CPU overhead proportional to (1 - cpu_share).
  double cpu_share_overhead_slope = 0.10;

  /// CPU work units charged per disk page I/O performed by the VM.
  double io_cpu_ops_per_page = 20000.0;

  /// Fraction of disk throughput lost to hypervisor I/O virtualization.
  double io_base_overhead = 0.05;

  /// A hypervisor with no overheads; isolates experiments from the model.
  static HypervisorModel Ideal();

  /// Default Xen-like overheads (the values above).
  static HypervisorModel XenLike() { return HypervisorModel(); }
};

}  // namespace vdb::sim

#endif  // VDB_SIM_MACHINE_H_
