#include "datagen/synthetic.h"

#include <array>

namespace vdb::datagen {

namespace {
// Word list for generated comments, in the spirit of dbgen's grammar.
constexpr std::array<const char*, 24> kWords = {
    "furiously",  "quickly",  "carefully", "blithely", "slyly",
    "deposits",   "requests", "accounts",  "packages", "instructions",
    "theodolites", "pinto",   "beans",     "foxes",    "ideas",
    "platelets",  "sleep",    "nag",       "haggle",   "wake",
    "along",      "above",    "final",     "regular"};
}  // namespace

std::string RandomText(uint32_t length, Random* rng) {
  std::string out;
  out.reserve(length + 12);
  while (out.size() < length) {
    if (!out.empty()) out.push_back(' ');
    out += kWords[rng->Uniform(kWords.size())];
  }
  return out;
}

catalog::Value GenerateValue(const ColumnSpec& spec, uint64_t row,
                             Random* rng) {
  using catalog::TypeId;
  using catalog::Value;
  if (spec.null_fraction > 0.0 && rng->Bernoulli(spec.null_fraction)) {
    return Value::Null(spec.type);
  }
  switch (spec.distribution) {
    case Distribution::kSequential: {
      const int64_t v = static_cast<int64_t>(spec.min_value) +
                        static_cast<int64_t>(row);
      return spec.type == TypeId::kDate ? Value::Date(v) : Value::Int64(v);
    }
    case Distribution::kUniform: {
      const int64_t v =
          rng->UniformInt(static_cast<int64_t>(spec.min_value),
                          static_cast<int64_t>(spec.max_value));
      if (spec.type == TypeId::kDate) return Value::Date(v);
      if (spec.type == TypeId::kDouble) {
        return Value::Double(static_cast<double>(v));
      }
      return Value::Int64(v);
    }
    case Distribution::kZipf: {
      const uint64_t domain = static_cast<uint64_t>(
          spec.max_value - spec.min_value + 1);
      const uint64_t rank = rng->Zipf(domain, spec.zipf_theta);
      const int64_t v =
          static_cast<int64_t>(spec.min_value) + static_cast<int64_t>(rank) -
          1;
      return spec.type == TypeId::kDate ? Value::Date(v) : Value::Int64(v);
    }
    case Distribution::kUniformReal:
      return Value::Double(
          rng->UniformDouble(spec.min_value, spec.max_value));
    case Distribution::kRandomText:
      return Value::String(RandomText(spec.string_length, rng));
  }
  return Value::Null(spec.type);
}

Status GenerateTable(catalog::Catalog* cat, const std::string& name,
                     const std::vector<ColumnSpec>& specs, uint64_t num_rows,
                     uint64_t seed) {
  std::vector<catalog::Column> columns;
  columns.reserve(specs.size());
  for (const ColumnSpec& spec : specs) {
    columns.emplace_back(spec.name, spec.type);
  }
  VDB_ASSIGN_OR_RETURN(
      catalog::TableInfo * table,
      cat->CreateTable(name, catalog::Schema(std::move(columns))));
  Random rng(seed);
  catalog::Tuple tuple(specs.size());
  for (uint64_t row = 0; row < num_rows; ++row) {
    for (size_t c = 0; c < specs.size(); ++c) {
      tuple[c] = GenerateValue(specs[c], row, &rng);
    }
    VDB_RETURN_NOT_OK(cat->Insert(table, tuple));
  }
  return Status::OK();
}

}  // namespace vdb::datagen
