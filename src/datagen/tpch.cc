#include "datagen/tpch.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "datagen/synthetic.h"
#include "util/random.h"

namespace vdb::datagen {

namespace {

using catalog::Column;
using catalog::Schema;
using catalog::TableInfo;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

constexpr std::array<const char*, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

constexpr std::array<const char*, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

// dbgen's nation->region mapping.
constexpr std::array<int, 25> kNationRegion = {0, 1, 1, 1, 4, 0, 3, 3, 2,
                                               2, 4, 4, 2, 4, 0, 0, 0, 1,
                                               2, 3, 4, 2, 3, 3, 1};

constexpr std::array<const char*, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};

constexpr std::array<const char*, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

constexpr std::array<const char*, 7> kShipModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};

constexpr std::array<const char*, 4> kInstructions = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};

constexpr std::array<const char*, 6> kTypes = {
    "STANDARD ANODIZED TIN", "SMALL BRUSHED COPPER", "MEDIUM PLATED STEEL",
    "ECONOMY POLISHED NICKEL", "PROMO BURNISHED BRASS", "LARGE PLATED TIN"};

// Q13's predicate is `o_comment not like '%special%requests%'`.
// dbgen makes ~1.2% of comments match; we inject the phrase with the same
// probability so the anti-join fraction is realistic.
std::string OrderComment(uint32_t chars, Random* rng) {
  std::string text = RandomText(chars, rng);
  if (rng->Bernoulli(0.012)) {
    text += " special handling of requests";
  }
  return text;
}

}  // namespace

int64_t TpchStartDate() { return catalog::DateFromYmd(1992, 1, 1); }
int64_t TpchEndDate() { return catalog::DateFromYmd(1998, 8, 2); }

Status GenerateTpch(catalog::Catalog* cat, const TpchConfig& config) {
  const double sf = config.scale_factor;
  Random rng(config.seed);

  const int64_t num_suppliers =
      std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  const int64_t num_customers =
      std::max<int64_t>(30, static_cast<int64_t>(150000 * sf));
  const int64_t num_parts =
      std::max<int64_t>(20, static_cast<int64_t>(200000 * sf));
  const int64_t num_orders = num_customers * 10;

  // ---- region ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * region,
      cat->CreateTable("region",
                       Schema({Column("r_regionkey", TypeId::kInt64),
                               Column("r_name", TypeId::kString),
                               Column("r_comment", TypeId::kString)})));
  for (int64_t r = 0; r < static_cast<int64_t>(kRegions.size()); ++r) {
    VDB_RETURN_NOT_OK(cat->Insert(
        region, Tuple{Value::Int64(r), Value::String(kRegions[r]),
                      Value::String(RandomText(30, &rng))}));
  }

  // ---- nation ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * nation,
      cat->CreateTable("nation",
                       Schema({Column("n_nationkey", TypeId::kInt64),
                               Column("n_name", TypeId::kString),
                               Column("n_regionkey", TypeId::kInt64),
                               Column("n_comment", TypeId::kString)})));
  for (int64_t n = 0; n < static_cast<int64_t>(kNations.size()); ++n) {
    VDB_RETURN_NOT_OK(cat->Insert(
        nation, Tuple{Value::Int64(n), Value::String(kNations[n]),
                      Value::Int64(kNationRegion[n]),
                      Value::String(RandomText(30, &rng))}));
  }

  // ---- supplier ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * supplier,
      cat->CreateTable("supplier",
                       Schema({Column("s_suppkey", TypeId::kInt64),
                               Column("s_name", TypeId::kString),
                               Column("s_nationkey", TypeId::kInt64),
                               Column("s_acctbal", TypeId::kDouble)})));
  for (int64_t s = 1; s <= num_suppliers; ++s) {
    VDB_RETURN_NOT_OK(cat->Insert(
        supplier,
        Tuple{Value::Int64(s),
              Value::String("Supplier#" + std::to_string(s)),
              Value::Int64(rng.UniformInt(0, 24)),
              Value::Double(rng.UniformDouble(-999.99, 9999.99))}));
  }

  // ---- customer ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * customer,
      cat->CreateTable("customer",
                       Schema({Column("c_custkey", TypeId::kInt64),
                               Column("c_name", TypeId::kString),
                               Column("c_nationkey", TypeId::kInt64),
                               Column("c_mktsegment", TypeId::kString),
                               Column("c_acctbal", TypeId::kDouble),
                               Column("c_comment", TypeId::kString)})));
  for (int64_t c = 1; c <= num_customers; ++c) {
    VDB_RETURN_NOT_OK(cat->Insert(
        customer,
        Tuple{Value::Int64(c),
              Value::String("Customer#" + std::to_string(c)),
              Value::Int64(rng.UniformInt(0, 24)),
              Value::String(kSegments[rng.Uniform(kSegments.size())]),
              Value::Double(rng.UniformDouble(-999.99, 9999.99)),
              Value::String(RandomText(30, &rng))}));
  }

  // ---- part ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * part,
      cat->CreateTable("part",
                       Schema({Column("p_partkey", TypeId::kInt64),
                               Column("p_name", TypeId::kString),
                               Column("p_brand", TypeId::kString),
                               Column("p_type", TypeId::kString),
                               Column("p_size", TypeId::kInt64),
                               Column("p_retailprice", TypeId::kDouble)})));
  for (int64_t p = 1; p <= num_parts; ++p) {
    VDB_RETURN_NOT_OK(cat->Insert(
        part,
        Tuple{Value::Int64(p), Value::String(RandomText(20, &rng)),
              Value::String("Brand#" +
                            std::to_string(rng.UniformInt(11, 55))),
              Value::String(kTypes[rng.Uniform(kTypes.size())]),
              Value::Int64(rng.UniformInt(1, 50)),
              Value::Double(900.0 + (p % 1000) + 0.01 * (p % 100))}));
  }

  // ---- partsupp ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * partsupp,
      cat->CreateTable("partsupp",
                       Schema({Column("ps_partkey", TypeId::kInt64),
                               Column("ps_suppkey", TypeId::kInt64),
                               Column("ps_availqty", TypeId::kInt64),
                               Column("ps_supplycost", TypeId::kDouble)})));
  for (int64_t p = 1; p <= num_parts; ++p) {
    for (int j = 0; j < 4; ++j) {
      const int64_t s =
          1 + (p + j * (num_suppliers / 4 + 1)) % num_suppliers;
      VDB_RETURN_NOT_OK(cat->Insert(
          partsupp, Tuple{Value::Int64(p), Value::Int64(s),
                          Value::Int64(rng.UniformInt(1, 9999)),
                          Value::Double(rng.UniformDouble(1.0, 1000.0))}));
    }
  }

  // ---- orders & lineitem ----
  VDB_ASSIGN_OR_RETURN(
      TableInfo * orders,
      cat->CreateTable("orders",
                       Schema({Column("o_orderkey", TypeId::kInt64),
                               Column("o_custkey", TypeId::kInt64),
                               Column("o_orderstatus", TypeId::kString),
                               Column("o_totalprice", TypeId::kDouble),
                               Column("o_orderdate", TypeId::kDate),
                               Column("o_orderpriority", TypeId::kString),
                               Column("o_shippriority", TypeId::kInt64),
                               Column("o_comment", TypeId::kString)})));
  VDB_ASSIGN_OR_RETURN(
      TableInfo * lineitem,
      cat->CreateTable(
          "lineitem",
          Schema({Column("l_orderkey", TypeId::kInt64),
                  Column("l_partkey", TypeId::kInt64),
                  Column("l_suppkey", TypeId::kInt64),
                  Column("l_linenumber", TypeId::kInt64),
                  Column("l_quantity", TypeId::kDouble),
                  Column("l_extendedprice", TypeId::kDouble),
                  Column("l_discount", TypeId::kDouble),
                  Column("l_tax", TypeId::kDouble),
                  Column("l_returnflag", TypeId::kString),
                  Column("l_linestatus", TypeId::kString),
                  Column("l_shipdate", TypeId::kDate),
                  Column("l_commitdate", TypeId::kDate),
                  Column("l_receiptdate", TypeId::kDate),
                  Column("l_shipinstruct", TypeId::kString),
                  Column("l_shipmode", TypeId::kString),
                  Column("l_comment", TypeId::kString)})));

  const int64_t start_date = TpchStartDate();
  const int64_t end_date = TpchEndDate();
  const int64_t current_date = catalog::DateFromYmd(1995, 6, 17);

  for (int64_t o = 1; o <= num_orders; ++o) {
    const int64_t custkey = rng.UniformInt(1, num_customers);
    const int64_t orderdate =
        rng.UniformInt(start_date, end_date - 151);
    const int num_lines = static_cast<int>(rng.UniformInt(1, 7));
    double total = 0.0;
    int open_lines = 0;
    for (int line = 1; line <= num_lines; ++line) {
      const int64_t partkey = rng.UniformInt(1, num_parts);
      const int64_t suppkey = rng.UniformInt(1, num_suppliers);
      const double quantity = static_cast<double>(rng.UniformInt(1, 50));
      const double price = quantity * rng.UniformDouble(900.0, 2000.0);
      const double discount = 0.01 * rng.UniformInt(0, 10);
      const double tax = 0.01 * rng.UniformInt(0, 8);
      const int64_t shipdate = orderdate + rng.UniformInt(1, 121);
      const int64_t commitdate = orderdate + rng.UniformInt(30, 90);
      const int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
      total += price;
      const bool shipped = shipdate <= current_date;
      if (!shipped) ++open_lines;
      const char* returnflag =
          !shipped ? "N" : (rng.Bernoulli(0.5) ? "R" : "A");
      VDB_RETURN_NOT_OK(cat->Insert(
          lineitem,
          Tuple{Value::Int64(o), Value::Int64(partkey),
                Value::Int64(suppkey), Value::Int64(line),
                Value::Double(quantity), Value::Double(price),
                Value::Double(discount), Value::Double(tax),
                Value::String(returnflag),
                Value::String(shipped ? "F" : "O"), Value::Date(shipdate),
                Value::Date(commitdate), Value::Date(receiptdate),
                Value::String(
                    kInstructions[rng.Uniform(kInstructions.size())]),
                Value::String(kShipModes[rng.Uniform(kShipModes.size())]),
                Value::String(
                    RandomText(config.lineitem_comment_chars, &rng))}));
    }
    const char* status =
        open_lines == num_lines ? "O" : (open_lines == 0 ? "F" : "P");
    VDB_RETURN_NOT_OK(cat->Insert(
        orders,
        Tuple{Value::Int64(o), Value::Int64(custkey), Value::String(status),
              Value::Double(total), Value::Date(orderdate),
              Value::String(kPriorities[rng.Uniform(kPriorities.size())]),
              Value::Int64(0), Value::String(OrderComment(config.order_comment_chars, &rng))}));
  }

  if (config.create_indexes) {
    // OSDB-style "extensive set of indexes": primary keys plus the join and
    // date columns the workload touches.
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("region_pk", "region", "r_regionkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("nation_pk", "nation", "n_nationkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("supplier_pk", "supplier", "s_suppkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("customer_pk", "customer", "c_custkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("part_pk", "part", "p_partkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("partsupp_part", "partsupp", "ps_partkey")
            .status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("partsupp_supp", "partsupp", "ps_suppkey")
            .status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("orders_pk", "orders", "o_orderkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("orders_cust", "orders", "o_custkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("orders_date", "orders", "o_orderdate").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("lineitem_order", "lineitem", "l_orderkey")
            .status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("lineitem_part", "lineitem", "l_partkey").status());
    VDB_RETURN_NOT_OK(
        cat->CreateIndex("lineitem_shipdate", "lineitem", "l_shipdate")
            .status());
  }

  if (config.analyze) {
    VDB_RETURN_NOT_OK(cat->AnalyzeAll(config.histogram_buckets));
  }
  return Status::OK();
}

}  // namespace vdb::datagen
