#include "datagen/calibration_db.h"

#include "datagen/synthetic.h"

namespace vdb::datagen {

namespace {

std::vector<ColumnSpec> CalibrationSchema(uint32_t pad_bytes) {
  ColumnSpec a;
  a.name = "a";
  a.type = catalog::TypeId::kInt64;
  a.distribution = Distribution::kSequential;
  ColumnSpec b;
  b.name = "b";
  b.type = catalog::TypeId::kInt64;
  b.distribution = Distribution::kUniform;
  b.min_value = 0;
  b.max_value = 999;
  ColumnSpec c;
  c.name = "c";
  c.type = catalog::TypeId::kInt64;
  c.distribution = Distribution::kUniform;
  c.min_value = 0;
  c.max_value = 9999;
  ColumnSpec d;
  d.name = "d";
  d.type = catalog::TypeId::kDouble;
  d.distribution = Distribution::kUniformReal;
  d.min_value = 0.0;
  d.max_value = 1.0;
  ColumnSpec pad;
  pad.name = "pad";
  pad.type = catalog::TypeId::kString;
  pad.distribution = Distribution::kRandomText;
  pad.string_length = pad_bytes;
  return {a, b, c, d, pad};
}

}  // namespace

Status GenerateCalibrationDb(catalog::Catalog* cat,
                             const CalibrationDbConfig& config) {
  const auto schema = CalibrationSchema(config.pad_bytes);
  VDB_RETURN_NOT_OK(GenerateTable(cat, "cal_small", schema,
                                  config.base_rows, config.seed));
  VDB_RETURN_NOT_OK(GenerateTable(cat, "cal_large", schema,
                                  config.base_rows * 8, config.seed + 1));
  VDB_RETURN_NOT_OK(GenerateTable(cat, "cal_indexed", schema,
                                  config.base_rows, config.seed + 2));
  VDB_RETURN_NOT_OK(
      cat->CreateIndex("cal_indexed_a", "cal_indexed", "a").status());
  VDB_RETURN_NOT_OK(
      cat->CreateIndex("cal_indexed_b", "cal_indexed", "b").status());
  return cat->AnalyzeAll();
}

}  // namespace vdb::datagen
