#include "datagen/tpch_queries.h"

namespace vdb::datagen {

const std::vector<TpchQueryDef>& TpchQueries() {
  static const std::vector<TpchQueryDef>* kQueries =
      new std::vector<TpchQueryDef>{
          {1, "pricing summary report",
           "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, "
           "sum(l_extendedprice) as sum_base_price, "
           "sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, "
           "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as "
           "sum_charge, avg(l_quantity) as avg_qty, avg(l_extendedprice) "
           "as avg_price, avg(l_discount) as avg_disc, count(*) as "
           "count_order from lineitem where l_shipdate <= date "
           "'1998-09-02' group by l_returnflag, l_linestatus order by "
           "l_returnflag, l_linestatus"},
          {3, "shipping priority",
           "select o_orderkey, sum(l_extendedprice * (1 - l_discount)) as "
           "revenue, o_orderdate, o_shippriority from customer, orders, "
           "lineitem where c_mktsegment = 'BUILDING' and c_custkey = "
           "o_custkey and l_orderkey = o_orderkey and o_orderdate < date "
           "'1995-03-15' and l_shipdate > date '1995-03-15' group by "
           "o_orderkey, o_orderdate, o_shippriority order by revenue "
           "desc, o_orderdate limit 10"},
          {4, "order priority checking",
           "select o_orderpriority, count(*) as order_count from orders "
           "where o_orderdate >= date '1993-07-01' and o_orderdate < date "
           "'1993-10-01' and exists (select * from lineitem where "
           "l_orderkey = o_orderkey and l_commitdate < l_receiptdate) "
           "group by o_orderpriority order by o_orderpriority"},
          {5, "local supplier volume",
           "select n_name, sum(l_extendedprice * (1 - l_discount)) as "
           "revenue from customer, orders, lineitem, supplier, nation, "
           "region where c_custkey = o_custkey and l_orderkey = "
           "o_orderkey and l_suppkey = s_suppkey and c_nationkey = "
           "s_nationkey and s_nationkey = n_nationkey and n_regionkey = "
           "r_regionkey and r_name = 'ASIA' and o_orderdate >= date "
           "'1994-01-01' and o_orderdate < date '1995-01-01' group by "
           "n_name order by revenue desc"},
          {6, "forecasting revenue change",
           "select sum(l_extendedprice * l_discount) as revenue from "
           "lineitem where l_shipdate >= date '1994-01-01' and l_shipdate "
           "< date '1995-01-01' and l_discount between 0.05 and 0.07 and "
           "l_quantity < 24"},
          {10, "returned item reporting",
           "select c_custkey, c_name, sum(l_extendedprice * (1 - "
           "l_discount)) as revenue, c_acctbal, n_name from customer, "
           "orders, lineitem, nation where c_custkey = o_custkey and "
           "l_orderkey = o_orderkey and o_orderdate >= date '1993-10-01' "
           "and o_orderdate < date '1994-01-01' and l_returnflag = 'R' "
           "and c_nationkey = n_nationkey group by c_custkey, c_name, "
           "c_acctbal, n_name order by revenue desc limit 20"},
          {12, "shipping modes and order priority",
           "select l_shipmode, sum(case when o_orderpriority = '1-URGENT' "
           "or o_orderpriority = '2-HIGH' then 1 else 0 end) as "
           "high_line_count, sum(case when o_orderpriority <> '1-URGENT' "
           "and o_orderpriority <> '2-HIGH' then 1 else 0 end) as "
           "low_line_count from orders, lineitem where o_orderkey = "
           "l_orderkey and l_shipmode in ('MAIL', 'SHIP') and "
           "l_commitdate < l_receiptdate and l_shipdate < l_commitdate "
           "and l_receiptdate >= date '1994-01-01' and l_receiptdate < "
           "date '1995-01-01' group by l_shipmode order by l_shipmode"},
          {13, "customer distribution",
           "select c_count, count(*) as custdist from (select c_custkey, "
           "count(o_orderkey) from customer left outer join orders on "
           "c_custkey = o_custkey and o_comment not like "
           "'%special%requests%' group by c_custkey) as c_orders "
           "(c_custkey, c_count) group by c_count order by custdist desc, "
           "c_count desc"},
          {18, "large volume customer",
           "select c_name, c_custkey, o_orderkey, o_orderdate, "
           "o_totalprice, sum(l_quantity) as total_qty from customer, "
           "orders, lineitem where o_orderkey in (select l_orderkey from "
           "lineitem group by l_orderkey having sum(l_quantity) > 300) "
           "and c_custkey = o_custkey and o_orderkey = l_orderkey group "
           "by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
           "order by o_totalprice desc, o_orderdate limit 100"},
          {14, "promotion effect",
           "select 100.00 * sum(case when p_type like 'PROMO%' then "
           "l_extendedprice * (1 - l_discount) else 0 end) / "
           "sum(l_extendedprice * (1 - l_discount)) as promo_revenue from "
           "lineitem, part where l_partkey = p_partkey and l_shipdate >= "
           "date '1995-09-01' and l_shipdate < date '1995-10-01'"},
      };
  return *kQueries;
}

Result<std::string> TpchQuery(int number) {
  for (const TpchQueryDef& query : TpchQueries()) {
    if (query.number == number) return query.sql;
  }
  return Status::NotFound("TPC-H Q" + std::to_string(number) +
                          " is not in the supported set");
}

}  // namespace vdb::datagen
