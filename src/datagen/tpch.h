// Scaled-down deterministic TPC-H-style schema and data generator
// (customer/orders/lineitem/...), scale-factor parameterized.

#ifndef VDB_DATAGEN_TPCH_H_
#define VDB_DATAGEN_TPCH_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "util/status.h"

namespace vdb::datagen {

/// Configuration for the TPC-H-style database generator.
///
/// This mirrors dbgen's schema and value grammar closely enough that the
/// standard queries are meaningful (foreign keys join, dates are in the
/// 1992-1998 window, ~1.2% of order comments match Q13's
/// '%special%requests%' anti-pattern), at scale factors small enough to run
/// inside the simulator. The paper used the OSDB TPC-H implementation with
/// "an extensive set of indexes"; `create_indexes` replicates that.
struct TpchConfig {
  /// TPC-H scale factor. 1.0 would be ~8.6M rows; experiments use 0.01-0.05.
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Build the OSDB-style index set (primary keys + common join/date keys).
  bool create_indexes = true;
  /// Run ANALYZE over all tables after loading.
  bool analyze = true;
  int histogram_buckets = 32;
  /// Average o_comment length in characters. dbgen averages ~49; larger
  /// values make Q13's LIKE scan proportionally more CPU-expensive.
  uint32_t order_comment_chars = 48;
  /// Average l_comment length. dbgen averages ~27; larger values increase
  /// lineitem's I/O footprint without adding CPU work per tuple.
  uint32_t lineitem_comment_chars = 27;
};

/// Populates `cat` with the eight TPC-H tables. Expected row counts at
/// scale factor s: region 5, nation 25, supplier 10000s, customer 150000s,
/// part 200000s, partsupp 4/part, orders 10/customer, lineitem 1-7/order.
Status GenerateTpch(catalog::Catalog* cat, const TpchConfig& config);

/// First and last order dates in the generated data (inclusive), as
/// days-since-epoch. Matches dbgen: 1992-01-01 .. 1998-08-02.
int64_t TpchStartDate();
int64_t TpchEndDate();

}  // namespace vdb::datagen

#endif  // VDB_DATAGEN_TPCH_H_
