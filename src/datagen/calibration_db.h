// Generator for the synthetic calibration database (paper Section 5):
// tables sized so calibration queries have analytically known work
// vectors.

#ifndef VDB_DATAGEN_CALIBRATION_DB_H_
#define VDB_DATAGEN_CALIBRATION_DB_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "util/status.h"

namespace vdb::datagen {

/// Configuration of the synthetic calibration database (paper Section 5).
///
/// The calibration queries need tables whose plan work vectors (pages read,
/// tuples processed, predicates evaluated, index entries touched) are known
/// analytically, so that measured execution times yield linear equations in
/// the optimizer's cost parameters.
struct CalibrationDbConfig {
  /// Rows in cal_small. cal_large gets 8x as many; cal_indexed the same.
  uint64_t base_rows = 20000;
  uint64_t seed = 7;
  /// Bytes of filler per row, controlling tuple width / pages per table.
  uint32_t pad_bytes = 64;
};

/// Creates three tables:
///  - cal_small(a, b, c, d, pad): a sequential-unique, b uniform in
///    [0, 999], c uniform in [0, 9999], d uniform real; no indexes.
///  - cal_large: same schema, 8x rows; no indexes.
///  - cal_indexed: same schema plus B+-tree indexes on a and b.
/// All tables are ANALYZEd.
Status GenerateCalibrationDb(catalog::Catalog* cat,
                             const CalibrationDbConfig& config);

}  // namespace vdb::datagen

#endif  // VDB_DATAGEN_CALIBRATION_DB_H_
