// The TPC-H query set expressed in the engine's SQL dialect.

#ifndef VDB_DATAGEN_TPCH_QUERIES_H_
#define VDB_DATAGEN_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace vdb::datagen {

/// TPC-H queries expressed in the engine's SQL dialect (interval
/// arithmetic pre-computed into literal dates, as in many benchmark kits).
/// Queries with constructs outside the dialect (nested scalar subqueries,
/// views) are omitted; the supported set — Q1, Q3, Q4, Q5, Q6, Q10, Q12,
/// Q13, Q14, Q18 — covers the paper's experiments and the main plan shapes
/// (scans, multi-way joins, semi/anti joins, outer joins, aggregation).
struct TpchQueryDef {
  int number;
  const char* description;
  std::string sql;
};

/// All supported queries, ascending by number.
const std::vector<TpchQueryDef>& TpchQueries();

/// The SQL text of query `number`; NotFound if unsupported.
Result<std::string> TpchQuery(int number);

}  // namespace vdb::datagen

#endif  // VDB_DATAGEN_TPCH_QUERIES_H_
