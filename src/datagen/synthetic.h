// Deterministic synthetic table generator: per-column value
// distributions driving the shared PRNG.

#ifndef VDB_DATAGEN_SYNTHETIC_H_
#define VDB_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/value.h"
#include "util/random.h"
#include "util/status.h"

namespace vdb::datagen {

/// Value distribution for one generated column.
enum class Distribution {
  kSequential,  // 0, 1, 2, ... (unique)
  kUniform,     // uniform integers in [min_value, max_value]
  kZipf,        // Zipf-skewed integers in [min_value, max_value]
  kUniformReal, // uniform doubles in [min_value, max_value]
  kRandomText,  // random lowercase words, string_length chars on average
};

/// Specification of one synthetic column.
struct ColumnSpec {
  std::string name;
  catalog::TypeId type = catalog::TypeId::kInt64;
  Distribution distribution = Distribution::kUniform;
  double min_value = 0;
  double max_value = 1000;
  double zipf_theta = 0.8;      // for kZipf
  double null_fraction = 0.0;   // fraction of NULLs
  uint32_t string_length = 16;  // for kRandomText
};

/// Generates `num_rows` rows into a new table `name` with the given column
/// specs. Deterministic in `seed`.
Status GenerateTable(catalog::Catalog* cat, const std::string& name,
                     const std::vector<ColumnSpec>& specs, uint64_t num_rows,
                     uint64_t seed);

/// Generates one value per the spec (shared with the TPC-H generator).
catalog::Value GenerateValue(const ColumnSpec& spec, uint64_t row,
                             Random* rng);

/// Random lowercase text of roughly `length` characters with space-separated
/// words; `rng` drives word choice.
std::string RandomText(uint32_t length, Random* rng);

}  // namespace vdb::datagen

#endif  // VDB_DATAGEN_SYNTHETIC_H_
