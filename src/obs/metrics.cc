#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace vdb::obs {

namespace {

// bucket index for a sample: bit_width(nanos), clamped to the table.
// nanos == 0 lands in bucket 0; bucket k >= 1 covers [2^(k-1), 2^k).
int BucketIndex(uint64_t nanos) {
  const int width = std::bit_width(nanos);
  return width >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1
                                         : width;
}

// Representative value (seconds) for a bucket: the geometric midpoint of
// its [2^(k-1), 2^k) nanosecond range.
double BucketMidSeconds(int bucket) {
  if (bucket == 0) return 0.0;
  const double lo = std::ldexp(1.0, bucket - 1);
  return 1e-9 * lo * std::sqrt(2.0);
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::RecordAlways(uint64_t nanos) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(&min_nanos_, nanos);
  AtomicMax(&max_nanos_, nanos);
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double Histogram::min_seconds() const {
  const uint64_t nanos = min_nanos_.load(std::memory_order_relaxed);
  return nanos == UINT64_MAX ? 0.0 : 1e-9 * static_cast<double>(nanos);
}

double Histogram::max_seconds() const {
  return 1e-9 *
         static_cast<double>(max_nanos_.load(std::memory_order_relaxed));
}

double Histogram::QuantileSeconds(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based: ceil(q * total), at least 1.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    seen += buckets_[k].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidSeconds(k);
  }
  return max_seconds();  // racing counts; fall back to the max
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     &enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) return nullptr;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) return nullptr;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.count = histogram->count();
    sample.sum_seconds = histogram->sum_seconds();
    sample.min_seconds = histogram->min_seconds();
    sample.max_seconds = histogram->max_seconds();
    sample.p50_seconds = histogram->QuantileSeconds(0.50);
    sample.p95_seconds = histogram->QuantileSeconds(0.95);
    sample.p99_seconds = histogram->QuantileSeconds(0.99);
    snapshot.histograms[name] = sample;
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// JSON emit / parse / text render, on the shared writer and parser
// (obs/json.h) that the server wire protocol uses too.

std::string MetricsSnapshot::ToJson(int indent) const {
  JsonWriter w(indent);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name);
    w.Uint(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name);
    w.Number(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, sample] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Uint(sample.count);
    const std::pair<const char*, double> fields[] = {
        {"sum_s", sample.sum_seconds}, {"min_s", sample.min_seconds},
        {"max_s", sample.max_seconds}, {"p50_s", sample.p50_seconds},
        {"p95_s", sample.p95_seconds}, {"p99_s", sample.p99_seconds}};
    for (const auto& [key, value] : fields) {
      w.Key(key);
      w.Number(value);
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

bool MetricsSnapshot::FromJson(const std::string& json, MetricsSnapshot* out,
                               std::string* error) {
  *out = MetricsSnapshot();
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(json, &root, &parse_error)) return fail(parse_error);
  if (!root.is_object()) return fail("expected a top-level object");
  for (const auto& [section, value] : root.members) {
    if (section == "counters") {
      if (!value.is_object()) return fail("counters must be an object");
      for (const auto& [name, v] : value.members) {
        if (!v.is_number()) return fail("counter " + name + " not a number");
        out->counters[name] = static_cast<uint64_t>(v.number);
      }
    } else if (section == "gauges") {
      if (!value.is_object()) return fail("gauges must be an object");
      for (const auto& [name, v] : value.members) {
        if (!v.is_number()) return fail("gauge " + name + " not a number");
        out->gauges[name] = v.number;
      }
    } else if (section == "histograms") {
      if (!value.is_object()) return fail("histograms must be an object");
      for (const auto& [name, h] : value.members) {
        if (!h.is_object()) {
          return fail("histogram " + name + " not an object");
        }
        HistogramSample sample;
        for (const auto& [field, v] : h.members) {
          if (!v.is_number()) {
            return fail("histogram field " + field + " not a number");
          }
          if (field == "count") {
            sample.count = static_cast<uint64_t>(v.number);
          } else if (field == "sum_s") {
            sample.sum_seconds = v.number;
          } else if (field == "min_s") {
            sample.min_seconds = v.number;
          } else if (field == "max_s") {
            sample.max_seconds = v.number;
          } else if (field == "p50_s") {
            sample.p50_seconds = v.number;
          } else if (field == "p95_s") {
            sample.p95_seconds = v.number;
          } else if (field == "p99_s") {
            sample.p99_seconds = v.number;
          } else {
            return fail("unknown histogram field " + field);
          }
        }
        out->histograms[name] = sample;
      }
    } else {
      return fail("unknown section " + section);
    }
  }
  return true;
}

std::string MetricsSnapshot::ToText() const {
  if (counters.empty() && gauges.empty() && histograms.empty()) {
    return "(no metrics recorded)\n";
  }
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "  %-28s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "  %-28s %12.3f\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(
        line, sizeof(line),
        "  %-28s n=%llu sum=%.3fs p50=%.3gms p95=%.3gms p99=%.3gms\n",
        name.c_str(), static_cast<unsigned long long>(h.count),
        h.sum_seconds, 1000 * h.p50_seconds, 1000 * h.p95_seconds,
        1000 * h.p99_seconds);
    out += line;
  }
  return out;
}

}  // namespace vdb::obs
