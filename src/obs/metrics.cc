#include "obs/metrics.h"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace vdb::obs {

namespace {

// bucket index for a sample: bit_width(nanos), clamped to the table.
// nanos == 0 lands in bucket 0; bucket k >= 1 covers [2^(k-1), 2^k).
int BucketIndex(uint64_t nanos) {
  const int width = std::bit_width(nanos);
  return width >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1
                                         : width;
}

// Representative value (seconds) for a bucket: the geometric midpoint of
// its [2^(k-1), 2^k) nanosecond range.
double BucketMidSeconds(int bucket) {
  if (bucket == 0) return 0.0;
  const double lo = std::ldexp(1.0, bucket - 1);
  return 1e-9 * lo * std::sqrt(2.0);
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::RecordAlways(uint64_t nanos) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(&min_nanos_, nanos);
  AtomicMax(&max_nanos_, nanos);
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double Histogram::min_seconds() const {
  const uint64_t nanos = min_nanos_.load(std::memory_order_relaxed);
  return nanos == UINT64_MAX ? 0.0 : 1e-9 * static_cast<double>(nanos);
}

double Histogram::max_seconds() const {
  return 1e-9 *
         static_cast<double>(max_nanos_.load(std::memory_order_relaxed));
}

double Histogram::QuantileSeconds(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based: ceil(q * total), at least 1.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    seen += buckets_[k].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidSeconds(k);
  }
  return max_seconds();  // racing counts; fall back to the max
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     &enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) return nullptr;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) return nullptr;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.count = histogram->count();
    sample.sum_seconds = histogram->sum_seconds();
    sample.min_seconds = histogram->min_seconds();
    sample.max_seconds = histogram->max_seconds();
    sample.p50_seconds = histogram->QuantileSeconds(0.50);
    sample.p95_seconds = histogram->QuantileSeconds(0.95);
    sample.p99_seconds = histogram->QuantileSeconds(0.99);
    snapshot.histograms[name] = sample;
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// JSON emit

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON requires a leading digit; %g never emits one-less forms, but
  // guard against "inf"/"nan" textual forms anyway.
  if (std::strpbrk(buf, "infa") != nullptr &&
      std::strpbrk(buf, "0123456789") == nullptr) {
    return "0";
  }
  return buf;
}

struct JsonWriter {
  std::string out;
  int indent;
  int depth = 0;

  void Newline() {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<size_t>(depth * indent), ' ');
  }
  void OpenObject() {
    out.push_back('{');
    ++depth;
  }
  void CloseObject() {
    --depth;
    Newline();
    out.push_back('}');
  }
  void Key(const std::string& name) {
    AppendEscaped(&out, name);
    out += indent < 0 ? ":" : ": ";
  }
};

}  // namespace

std::string MetricsSnapshot::ToJson(int indent) const {
  JsonWriter w{.out = {}, .indent = indent};
  w.OpenObject();

  w.Newline();
  w.Key("counters");
  w.OpenObject();
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) w.out.push_back(',');
    first = false;
    w.Newline();
    w.Key(name);
    w.out += std::to_string(value);
  }
  w.CloseObject();
  w.out.push_back(',');

  w.Newline();
  w.Key("gauges");
  w.OpenObject();
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) w.out.push_back(',');
    first = false;
    w.Newline();
    w.Key(name);
    w.out += FormatDouble(value);
  }
  w.CloseObject();
  w.out.push_back(',');

  w.Newline();
  w.Key("histograms");
  w.OpenObject();
  first = true;
  for (const auto& [name, sample] : histograms) {
    if (!first) w.out.push_back(',');
    first = false;
    w.Newline();
    w.Key(name);
    w.OpenObject();
    const std::pair<const char*, double> fields[] = {
        {"sum_s", sample.sum_seconds}, {"min_s", sample.min_seconds},
        {"max_s", sample.max_seconds}, {"p50_s", sample.p50_seconds},
        {"p95_s", sample.p95_seconds}, {"p99_s", sample.p99_seconds}};
    w.Newline();
    w.Key("count");
    w.out += std::to_string(sample.count);
    for (const auto& [key, value] : fields) {
      w.out.push_back(',');
      w.Newline();
      w.Key(key);
      w.out += FormatDouble(value);
    }
    w.CloseObject();
  }
  w.CloseObject();

  w.CloseObject();
  return w.out;
}

// ---------------------------------------------------------------------------
// JSON parse (the subset ToJson emits: objects, string keys, numbers)

namespace {

struct JsonParser {
  const char* p;
  const char* end;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }
  void SkipSpace() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Expect(char c) {
    SkipSpace();
    if (p >= end || *p != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++p;
    return true;
  }
  bool PeekIs(char c) {
    SkipSpace();
    return p < end && *p == c;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return Fail("bad escape");
        switch (*p) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (end - p < 5) return Fail("bad \\u escape");
            out->push_back(static_cast<char>(
                std::strtol(std::string(p + 1, p + 5).c_str(), nullptr,
                            16)));
            p += 4;
            break;
          }
          default:
            out->push_back(*p);
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
  bool ParseNumber(double* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p) return Fail("expected number");
    p = after;
    return true;
  }
  // Parses {"key": number, ...} via callback.
  template <typename Fn>
  bool ParseFlatObject(Fn&& on_field) {
    if (!Expect('{')) return false;
    if (PeekIs('}')) {
      ++p;
      return true;
    }
    for (;;) {
      std::string key;
      double value = 0;
      if (!ParseString(&key)) return false;
      if (!Expect(':')) return false;
      if (!ParseNumber(&value)) return false;
      if (!on_field(key, value)) return false;
      SkipSpace();
      if (PeekIs(',')) {
        ++p;
        continue;
      }
      return Expect('}');
    }
  }
};

}  // namespace

bool MetricsSnapshot::FromJson(const std::string& json, MetricsSnapshot* out,
                               std::string* error) {
  *out = MetricsSnapshot();
  JsonParser parser{json.data(), json.data() + json.size(), {}};
  bool ok = [&]() -> bool {
    if (!parser.Expect('{')) return false;
    if (parser.PeekIs('}')) {
      ++parser.p;
      return true;
    }
    for (;;) {
      std::string section;
      if (!parser.ParseString(&section)) return false;
      if (!parser.Expect(':')) return false;
      if (section == "counters") {
        if (!parser.ParseFlatObject([&](const std::string& k, double v) {
              out->counters[k] = static_cast<uint64_t>(v);
              return true;
            })) {
          return false;
        }
      } else if (section == "gauges") {
        if (!parser.ParseFlatObject([&](const std::string& k, double v) {
              out->gauges[k] = v;
              return true;
            })) {
          return false;
        }
      } else if (section == "histograms") {
        if (!parser.Expect('{')) return false;
        if (parser.PeekIs('}')) {
          ++parser.p;
        } else {
          for (;;) {
            std::string name;
            if (!parser.ParseString(&name)) return false;
            if (!parser.Expect(':')) return false;
            HistogramSample sample;
            if (!parser.ParseFlatObject([&](const std::string& k, double v) {
                  if (k == "count") {
                    sample.count = static_cast<uint64_t>(v);
                  } else if (k == "sum_s") {
                    sample.sum_seconds = v;
                  } else if (k == "min_s") {
                    sample.min_seconds = v;
                  } else if (k == "max_s") {
                    sample.max_seconds = v;
                  } else if (k == "p50_s") {
                    sample.p50_seconds = v;
                  } else if (k == "p95_s") {
                    sample.p95_seconds = v;
                  } else if (k == "p99_s") {
                    sample.p99_seconds = v;
                  } else {
                    return parser.Fail("unknown histogram field " + k);
                  }
                  return true;
                })) {
              return false;
            }
            out->histograms[name] = sample;
            parser.SkipSpace();
            if (parser.PeekIs(',')) {
              ++parser.p;
              continue;
            }
            if (!parser.Expect('}')) return false;
            break;
          }
        }
      } else {
        return parser.Fail("unknown section " + section);
      }
      parser.SkipSpace();
      if (parser.PeekIs(',')) {
        ++parser.p;
        continue;
      }
      return parser.Expect('}');
    }
  }();
  if (!ok && error != nullptr) {
    *error = parser.error.empty() ? "malformed metrics JSON" : parser.error;
  }
  return ok;
}

}  // namespace vdb::obs
