#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vdb::obs {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // Guard against "inf"/"nan" textual forms, which are not JSON.
  if (std::strpbrk(buf, "infa") != nullptr &&
      std::strpbrk(buf, "0123456789") == nullptr) {
    return "0";
  }
  return buf;
}

void JsonWriter::Prefix() {
  if (have_key_) {
    have_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // the root value
  if (stack_.back()) out_.push_back(',');
  stack_.back() = true;
  NewlineIndent(stack_.size());
}

void JsonWriter::End(char closer) {
  const bool had_elements = !stack_.empty() && stack_.back();
  if (!stack_.empty()) stack_.pop_back();
  if (had_elements) NewlineIndent(stack_.size());
  out_.push_back(closer);
}

void JsonWriter::NewlineIndent(size_t depth) {
  if (indent_ < 0) return;
  out_.push_back('\n');
  out_.append(depth * static_cast<size_t>(indent_), ' ');
}

// ---------------------------------------------------------------------------
// Parser

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;
  int depth = 0;

  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }
  void SkipSpace() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Literal(const char* text, size_t len) {
    if (static_cast<size_t>(end - p) < len ||
        std::memcmp(p, text, len) != 0) {
      return false;
    }
    p += len;
    return true;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return Fail("bad escape");
        switch (*p) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (end - p < 5) return Fail("bad \\u escape");
            const long code = std::strtol(
                std::string(p + 1, p + 5).c_str(), nullptr, 16);
            // Basic-multilingual-plane code points only; encode as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(
                  static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            p += 4;
            break;
          }
          default:
            out->push_back(*p);
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (p >= end) return Fail("unexpected end of input");
    if (++depth > kMaxDepth) return Fail("document nested too deeply");
    bool ok = ParseValueInner(out);
    --depth;
    return ok;
  }
  bool ParseValueInner(JsonValue* out) {
    switch (*p) {
      case '{': {
        ++p;
        out->type = JsonValue::Type::kObject;
        SkipSpace();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        for (;;) {
          std::string key;
          if (!ParseString(&key)) return false;
          SkipSpace();
          if (p >= end || *p != ':') return Fail("expected ':'");
          ++p;
          JsonValue value;
          if (!ParseValue(&value)) return false;
          out->members.emplace_back(std::move(key), std::move(value));
          SkipSpace();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        out->type = JsonValue::Type::kArray;
        SkipSpace();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        for (;;) {
          JsonValue value;
          if (!ParseValue(&value)) return false;
          out->items.push_back(std::move(value));
          SkipSpace();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!Literal("true", 4)) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return true;
      case 'f':
        if (!Literal("false", 5)) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return true;
      case 'n':
        if (!Literal("null", 4)) return Fail("bad literal");
        out->type = JsonValue::Type::kNull;
        return true;
      default: {
        char* after = nullptr;
        const double v = std::strtod(p, &after);
        if (after == p || after > end) return Fail("expected value");
        out->type = JsonValue::Type::kNumber;
        out->number = v;
        p = after;
        return true;
      }
    }
  }
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : std::string();
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  Parser parser{text.data(), text.data() + text.size(), {}};
  bool ok = parser.ParseValue(out);
  if (ok) {
    parser.SkipSpace();
    if (parser.p != parser.end) {
      ok = parser.Fail("trailing characters after document");
    }
  }
  if (!ok && error != nullptr) {
    *error = parser.error.empty() ? "malformed JSON" : parser.error;
  }
  return ok;
}

}  // namespace vdb::obs
