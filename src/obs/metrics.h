// The observability registry: counters, gauges, and latency histograms
// with process-wide registration and snapshot formatting.

#ifndef VDB_OBS_METRICS_H_
#define VDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Observability layer: process-wide counters, gauges, and latency
// histograms with JSON export (DESIGN.md §9).
//
// The subsystem is freestanding (standard library only) so that every
// layer — including util — may instrument itself without dependency
// cycles. All metric operations are thread-safe, and every recording
// operation (Add/Set/Record/ScopedTimer) is allocation-free and reduces
// to one relaxed atomic load plus a branch when the owning registry is
// disabled (the default). Registering a metric allocates once; hot paths
// should hold the returned pointer (e.g. in a function-local static) and
// never look names up per event.
namespace vdb::obs {

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depths, residuals, ...).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Latency histogram over power-of-two nanosecond buckets (bucket k holds
/// samples with bit_width(nanos) == k, i.e. [2^(k-1), 2^k)), spanning
/// 1 ns .. ~18 s per bucket family and saturating above. Quantiles are
/// approximate: the reported value is the geometric midpoint of the
/// bucket containing the quantile, so it is accurate to within ~sqrt(2)x
/// — plenty for the p50/p95/p99 latency shapes the benches track.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void RecordNanos(uint64_t nanos) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    RecordAlways(nanos);
  }
  void RecordSeconds(double seconds) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    if (seconds < 0) seconds = 0;
    RecordAlways(static_cast<uint64_t>(seconds * 1e9));
  }

  bool recording_enabled() const {
    return enabled_->load(std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return 1e-9 * static_cast<double>(
                      sum_nanos_.load(std::memory_order_relaxed));
  }
  double min_seconds() const;
  double max_seconds() const;
  /// Approximate quantile in seconds; q in [0, 1]. 0 when empty.
  double QuantileSeconds(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void RecordAlways(uint64_t nanos);
  void Reset();

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> min_nanos_{UINT64_MAX};
  std::atomic<uint64_t> max_nanos_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// RAII span: records its lifetime into a Histogram. Reads the clock only
/// when the histogram is enabled at construction time, so a disabled
/// registry pays one atomic load and no syscalls.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram != nullptr && histogram->recording_enabled()
                       ? histogram
                       : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->RecordNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Snapshots

struct HistogramSample {
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// A point-in-time copy of every metric in a registry, serializable to
/// (and parseable back from) JSON.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSample> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  /// `indent` < 0 emits a single line.
  std::string ToJson(int indent = 2) const;

  /// Parses ToJson() output. Returns false and sets *error on malformed
  /// input. Accepts any field order; unknown histogram fields are errors.
  static bool FromJson(const std::string& json, MetricsSnapshot* out,
                       std::string* error);

  /// Human-readable rendering (one aligned line per metric) — the format
  /// vdbsh's \metrics command and the server's metrics dump share.
  std::string ToText() const;
};

// ---------------------------------------------------------------------------
// Registry

/// Owns metrics by name. Thread-safe; returned metric pointers are stable
/// for the registry's lifetime (metrics are never deleted, and Reset only
/// zeroes values). Recording is gated on the registry-wide enabled flag,
/// which defaults to off.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry that the engine's instrumentation uses.
  static MetricsRegistry& Global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates. A name names one kind of metric forever; asking
  /// for an existing name with a different kind returns nullptr.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every metric (pointers stay valid).
  void Reset();

  MetricsSnapshot Snapshot() const;
  std::string ToJson(int indent = 2) const { return Snapshot().ToJson(indent); }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vdb::obs

#endif  // VDB_OBS_METRICS_H_
