// Minimal JSON-writing helpers for metrics snapshots and bench reports.

#ifndef VDB_OBS_JSON_H_
#define VDB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Minimal JSON support shared by the metrics snapshot (metrics.cc), the
// server wire protocol (src/server/wire.cc), and the tools: a streaming
// writer with automatic comma/indent management, and a small value-tree
// parser for the subset the engine speaks (null, bool, number, string,
// array, object with string keys). Freestanding — standard library only —
// so it lives in obs next to its first user and below every other layer.
namespace vdb::obs {

/// Appends `s` to `*out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// A JSON-legal rendering of `v` ("%.9g"; non-finite values become "0",
/// which keeps emitted documents parseable everywhere).
std::string FormatJsonNumber(double v);

/// Builds a JSON document incrementally. Commas and newlines are managed
/// automatically; `indent` < 0 emits a compact single line. The caller is
/// responsible for well-formedness (every Begin matched by an End, a Key
/// before each object member's value).
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  void BeginObject() {
    Prefix();
    out_.push_back('{');
    stack_.push_back(false);
  }
  void EndObject() { End('}'); }
  void BeginArray() {
    Prefix();
    out_.push_back('[');
    stack_.push_back(false);
  }
  void EndArray() { End(']'); }

  void Key(std::string_view name) {
    Prefix();
    AppendJsonEscaped(&out_, name);
    out_ += indent_ < 0 ? ":" : ": ";
    have_key_ = true;
  }

  void String(std::string_view v) {
    Prefix();
    AppendJsonEscaped(&out_, v);
  }
  void Number(double v) {
    Prefix();
    out_ += FormatJsonNumber(v);
  }
  void Int(int64_t v) {
    Prefix();
    out_ += std::to_string(v);
  }
  void Uint(uint64_t v) {
    Prefix();
    out_ += std::to_string(v);
  }
  void Bool(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
  }
  void Null() {
    Prefix();
    out_ += "null";
  }
  /// Splices pre-rendered JSON in value position (e.g. a nested document).
  void Raw(std::string_view json) {
    Prefix();
    out_ += json;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Prefix();
  void End(char closer);
  void NewlineIndent(size_t depth);

  std::string out_;
  int indent_;
  bool have_key_ = false;
  /// One entry per open container: true once it has a first element.
  std::vector<bool> stack_;
};

/// Parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup (first match); nullptr when absent or when this
  /// value is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Find + type convenience: empty string / 0 when absent or mistyped.
  std::string GetString(std::string_view key) const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
};

/// Parses `text` into `*out`. Trailing non-whitespace after the document
/// is an error. Returns false and sets `*error` (if non-null) on
/// malformed input.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace vdb::obs

#endif  // VDB_OBS_JSON_H_
