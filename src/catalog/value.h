// The SQL type system and the boxed runtime Value: typed factories,
// comparison, hashing, and NULL handling.

#ifndef VDB_CATALOG_VALUE_H_
#define VDB_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/result.h"

namespace vdb::catalog {

/// SQL data types supported by the engine.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kDate = 3,    // days since 1970-01-01, stored as int64
  kString = 4,  // VARCHAR
};

const char* TypeIdName(TypeId type);

/// True if the type is numeric (int64, double, date) for comparison and
/// arithmetic coercion purposes.
bool IsNumericType(TypeId type);

/// Converts a calendar date to days since 1970-01-01 (proleptic Gregorian).
int64_t DateFromYmd(int year, int month, int day);

/// Renders days-since-epoch as "YYYY-MM-DD".
std::string DateToString(int64_t days);

/// Parses "YYYY-MM-DD". Fails with InvalidArgument on malformed input.
Result<int64_t> ParseDate(const std::string& text);

/// A single SQL value: a typed scalar or NULL.
class Value {
 public:
  /// Default: NULL of int64 type.
  Value() : type_(TypeId::kInt64), is_null_(true) {}

  static Value Bool(bool v) { return Value(TypeId::kBool, v); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value Date(int64_t days) { return Value(TypeId::kDate, days); }
  static Value String(std::string v) {
    Value value;
    value.type_ = TypeId::kString;
    value.is_null_ = false;
    value.data_ = std::move(v);
    return value;
  }
  static Value Null(TypeId type) {
    Value value;
    value.type_ = type;
    value.is_null_ = true;
    return value;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors. Calling the wrong accessor on a non-null value is a
  /// programmer error (checked in debug builds).
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;  // coerces int64/date/bool to double
  const std::string& AsString() const;

  /// Orders two non-null values of comparable types; returns <0, 0, or >0.
  /// Numeric types compare numerically; strings lexicographically.
  static int Compare(const Value& a, const Value& b);

  /// SQL equality (NULL never equals anything; callers handle three-valued
  /// logic above this).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_null_ || b.is_null_) return false;
    return Compare(a, b) == 0;
  }

  /// Maps the value onto a double axis for histogram/selectivity math.
  /// Strings map via their first 8 bytes (big-endian), preserving order.
  double NumericKey() const;

  std::string ToString() const;

  /// Hash for group-by and hash joins. NULLs hash to a fixed value.
  size_t Hash() const;

 private:
  Value(TypeId type, bool v) : type_(type), is_null_(false) {
    if (type == TypeId::kBool) {
      data_ = v;
    } else {
      data_ = static_cast<int64_t>(v);
    }
  }
  Value(TypeId type, int64_t v)
      : type_(type), is_null_(false), data_(v) {}
  Value(TypeId type, double v) : type_(type), is_null_(false), data_(v) {}

  TypeId type_;
  bool is_null_;
  std::variant<bool, int64_t, double, std::string> data_;
};

}  // namespace vdb::catalog

#endif  // VDB_CATALOG_VALUE_H_
