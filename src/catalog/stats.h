// Per-column statistics for the optimizer: row counts, NDV, min/max, and
// equi-depth histograms, computed by Analyze.

#ifndef VDB_CATALOG_STATS_H_
#define VDB_CATALOG_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vdb::catalog {

/// Equi-depth histogram over a column's numeric key axis. Bucket i covers
/// (bounds[i], bounds[i+1]]; each bucket holds ~1/num_buckets of the rows.
class Histogram {
 public:
  Histogram() = default;

  /// Builds an equi-depth histogram from (a sample of) column values.
  /// `values` is consumed (sorted in place).
  static Histogram Build(std::vector<double> values, int num_buckets = 32);

  bool empty() const { return bounds_.size() < 2; }
  size_t NumBuckets() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }

  double min() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0.0 : bounds_.back(); }

  /// Estimated fraction of rows with value <= v (linear interpolation
  /// within buckets). Returns 0/1 outside the value range.
  double FractionBelow(double v) const;

  /// Estimated fraction of rows in [lo, hi].
  double FractionBetween(double lo, double hi) const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
};

/// Per-column statistics gathered by Analyze.
struct ColumnStats {
  uint64_t non_null_count = 0;
  uint64_t null_count = 0;
  uint64_t ndv = 0;  // number of distinct values
  double min = 0.0;  // on the NumericKey axis
  double max = 0.0;
  double avg_width = 8.0;
  Histogram histogram;

  double NullFraction() const {
    const uint64_t total = non_null_count + null_count;
    return total == 0 ? 0.0
                      : static_cast<double>(null_count) /
                            static_cast<double>(total);
  }
};

/// Per-table statistics.
struct TableStats {
  uint64_t row_count = 0;
  uint64_t page_count = 0;
  std::vector<ColumnStats> columns;

  bool Analyzed() const { return !columns.empty(); }
};

}  // namespace vdb::catalog

#endif  // VDB_CATALOG_STATS_H_
